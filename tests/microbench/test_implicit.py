"""Tests for the implicit-barrier micro-benchmarks (Table I pipeline)."""

from __future__ import annotations

import pytest

from repro.cudasim.runtime import CudaRuntime
from repro.microbench.harness import MeasurementConfig
from repro.microbench.implicit import (
    cpu_side_barrier_overhead,
    measure_kernel_total_latency,
    measure_launch_overhead,
)
from repro.sim.arch import DGX1_V100, V100

FAST = MeasurementConfig(warmup=1, samples=3)


def v100_rt():
    return CudaRuntime.single_gpu(V100, seed=11)


class TestFusionMethod:
    def test_traditional_overhead_matches_table1(self):
        r = measure_launch_overhead(v100_rt, "traditional", config=FAST)
        assert r.overhead_ns == pytest.approx(1081.0, rel=0.02)

    def test_cooperative_overhead_matches_table1(self):
        r = measure_launch_overhead(v100_rt, "cooperative", config=FAST)
        assert r.overhead_ns == pytest.approx(1063.0, rel=0.02)

    def test_multi_device_overhead_matches_table1(self):
        factory = lambda: CudaRuntime.for_node(DGX1_V100, gpu_count=1)
        r = measure_launch_overhead(
            factory, "multi_device", devices=[0], config=FAST
        )
        assert r.overhead_ns == pytest.approx(1258.0, rel=0.02)

    def test_multi_device_overhead_grows_with_gpus(self):
        def overhead(n):
            factory = lambda: CudaRuntime.for_node(DGX1_V100, gpu_count=n)
            return measure_launch_overhead(
                factory, "multi_device", devices=list(range(n)),
                units_scale=400, config=FAST,
            ).overhead_ns

        o1, o8 = overhead(1), overhead(8)
        assert o8 == pytest.approx(67_200.0, rel=0.03)  # Fig 9 anchor
        assert o8 > 40 * o1

    def test_equal_ij_rejected(self):
        with pytest.raises(ValueError):
            measure_launch_overhead(v100_rt, "traditional", i_launches=3, j_launches=3)

    def test_unsaturated_pipeline_overestimates(self):
        """The paper's warning: short kernels inflate the measured overhead
        because the dispatch pipeline is not hidden."""
        saturated = measure_launch_overhead(
            v100_rt, "traditional", units_scale=10, config=FAST
        )
        unsaturated = measure_launch_overhead(
            v100_rt, "traditional", units_scale=1, unit_ns=100.0, config=FAST
        )
        assert unsaturated.overhead_ns > 1.5 * saturated.overhead_ns


class TestFig3Estimator:
    def test_traditional_total_latency(self):
        m = measure_kernel_total_latency(v100_rt, "traditional", config=FAST)
        assert m.mean == pytest.approx(8888.0, rel=0.02)

    def test_cooperative_total_latency(self):
        m = measure_kernel_total_latency(v100_rt, "cooperative", config=FAST)
        assert m.mean == pytest.approx(10_248.0, rel=0.02)

    def test_ordering_matches_table1(self):
        vals = {
            lt: measure_kernel_total_latency(v100_rt, lt, config=FAST).mean
            for lt in ("traditional", "cooperative")
        }
        factory = lambda: CudaRuntime.for_node(DGX1_V100, gpu_count=1)
        vals["multi_device"] = measure_kernel_total_latency(
            factory, "multi_device", devices=[0], config=FAST
        ).mean
        assert vals["traditional"] < vals["cooperative"] < vals["multi_device"]


class TestCpuSideBarrier:
    def test_single_gpu_near_null_kernel_latency(self):
        m = cpu_side_barrier_overhead(DGX1_V100, 1, config=FAST)
        # Paper: "relatively close to the kernel total latency of a null
        # kernel" — 9.3 us plotted vs 8.888 us in Table I.
        assert m.mean == pytest.approx(9_300.0, rel=0.05)

    def test_flat_in_gpu_count(self):
        m1 = cpu_side_barrier_overhead(DGX1_V100, 1, config=FAST).mean
        m8 = cpu_side_barrier_overhead(DGX1_V100, 8, config=FAST).mean
        assert m8 < 1.25 * m1  # nearly horizontal Fig 9 series
        assert m8 == pytest.approx(10_600.0, rel=0.05)
