"""Tests for the inter-SM CPU-clock measurement method (Section IX-D)."""

from __future__ import annotations

import pytest

from repro.microbench.harness import MeasurementConfig
from repro.microbench.inter_sm import (
    measure_instruction_latency_inter_sm,
    measure_kernel_total_latency_host,
    verify_sync_repeat_invariance,
)
from repro.microbench.intra_sm import measure_instruction_latency_wong

FAST = MeasurementConfig(warmup=1, samples=8)


class TestInterSMMethod:
    def test_fadd_matches_wong_cross_validation(self, spec):
        """The paper's validation: both methods agree on float-add."""
        wong = measure_instruction_latency_wong(spec, "fadd")
        inter = measure_instruction_latency_inter_sm(spec, "fadd", config=FAST)
        assert inter.latency_cycles(spec.freq_mhz) == pytest.approx(wong, rel=0.15)

    def test_sigma_shrinks_with_repeat_gap(self, v100):
        narrow = measure_instruction_latency_inter_sm(
            v100, "fadd", r1=600, r2=500, config=FAST
        )
        wide = measure_instruction_latency_inter_sm(
            v100, "fadd", r1=4096, r2=256, config=FAST, seed=5
        )
        assert wide.sigma_ns < narrow.sigma_ns

    def test_single_kernel_measurement_is_noisy(self, v100):
        m = measure_kernel_total_latency_host(
            v100, lambda r: 1000.0 * r, 4, config=FAST
        )
        assert m.std > 0.0  # host clock jitter is real

    def test_equal_repeats_rejected(self, v100):
        with pytest.raises(ValueError):
            measure_instruction_latency_inter_sm(v100, "fadd", r1=100, r2=100)

    def test_unknown_instruction_rejected(self, v100):
        with pytest.raises(ValueError):
            measure_instruction_latency_inter_sm(v100, "fma")


class TestRepeatInvariance:
    def test_grid_sync_invariant(self, v100):
        r = verify_sync_repeat_invariance(v100, "grid", config=FAST)
        assert r["relative_spread"] < 0.05

    def test_block_sync_invariant(self, v100):
        r = verify_sync_repeat_invariance(v100, "block", config=FAST)
        assert r["relative_spread"] < 0.05

    def test_unknown_level_rejected(self, v100):
        with pytest.raises(ValueError):
            verify_sync_repeat_invariance(v100, "warp")
