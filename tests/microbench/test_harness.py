"""Tests for the measurement harness."""

from __future__ import annotations


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.microbench.harness import Measurement, MeasurementConfig, collect


class TestMeasurementConfig:
    def test_defaults(self):
        cfg = MeasurementConfig()
        assert cfg.warmup == 1 and cfg.samples == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            MeasurementConfig(warmup=-1)
        with pytest.raises(ValueError):
            MeasurementConfig(samples=0)


class TestMeasurement:
    def test_mean_std(self):
        m = Measurement(values=(1.0, 2.0, 3.0))
        assert m.mean == 2.0
        assert m.std == pytest.approx(1.0)
        assert m.min == 1.0 and m.max == 3.0
        assert m.n == 3

    def test_single_sample_zero_std(self):
        m = Measurement(values=(5.0,))
        assert m.std == 0.0
        assert m.sem == 0.0

    def test_sem(self):
        m = Measurement(values=(1.0, 2.0, 3.0, 4.0))
        assert m.sem == pytest.approx(m.std / 2.0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_stats_match_reference(self, values):
        import numpy as np

        m = Measurement(values=tuple(values))
        assert m.mean == pytest.approx(float(np.mean(values)), abs=1e-6, rel=1e-9)
        assert m.std == pytest.approx(float(np.std(values, ddof=1)), abs=1e-6, rel=1e-9)


class TestCollect:
    def test_warmup_discarded(self):
        calls = []

        def sample():
            calls.append(len(calls))
            return float(len(calls))

        m = collect(sample, MeasurementConfig(warmup=2, samples=3))
        assert len(calls) == 5
        assert m.values == (3.0, 4.0, 5.0)

    def test_no_warmup(self):
        m = collect(lambda: 7.0, MeasurementConfig(warmup=0, samples=2))
        assert m.values == (7.0, 7.0)
