"""Tests for the Eq 7/8 error model."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.microbench.harness import Measurement
from repro.microbench.stats import (
    derive_instruction_latency,
    propagated_sigma,
)


class TestPropagatedSigma:
    def test_eq8_formula(self):
        assert propagated_sigma(3.0, 4.0, 1024, 512) == pytest.approx(5.0 / 512)

    def test_equal_repeats_rejected(self):
        with pytest.raises(ValueError):
            propagated_sigma(1.0, 1.0, 100, 100)

    @given(
        st.floats(0.0, 1e4),
        st.floats(0.0, 1e4),
        st.integers(1, 10_000),
        st.integers(1, 10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_sigma_shrinks_with_repeat_gap(self, s1, s2, r1, r2):
        if r1 == r2:
            return
        sigma = propagated_sigma(s1, s2, r1, r2)
        wider = propagated_sigma(s1, s2, max(r1, r2) * 10, min(r1, r2))
        assert wider <= sigma + 1e-12

    def test_symmetric_in_order(self):
        assert propagated_sigma(2.0, 3.0, 100, 400) == propagated_sigma(
            2.0, 3.0, 400, 100
        )


class TestDeriveLatency:
    def test_eq7_mean(self):
        m1 = Measurement(values=(10_000.0, 10_000.0))
        m2 = Measurement(values=(6_000.0, 6_000.0))
        d = derive_instruction_latency(m1, 1000, m2, 200)
        assert d.latency_ns == pytest.approx(5.0)
        assert d.sigma_ns == 0.0

    def test_cycles_conversion(self):
        m1 = Measurement(values=(2000.0,))
        m2 = Measurement(values=(1000.0,))
        d = derive_instruction_latency(m1, 200, m2, 100)
        # 10 ns at 1000 MHz = 10 cycles.
        assert d.latency_cycles(1000.0) == pytest.approx(10.0)

    def test_equal_repeats_rejected(self):
        m = Measurement(values=(1.0,))
        with pytest.raises(ValueError):
            derive_instruction_latency(m, 5, m, 5)

    def test_noisy_measurements_propagate(self):
        m1 = Measurement(values=(100.0, 110.0, 90.0))
        m2 = Measurement(values=(50.0, 55.0, 45.0))
        d = derive_instruction_latency(m1, 100, m2, 50)
        assert d.sigma_ns == pytest.approx(
            math.sqrt(m1.std**2 + m2.std**2) / 50
        )
