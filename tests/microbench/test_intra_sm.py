"""Tests for Wong-style intra-SM micro-benchmarks."""

from __future__ import annotations

import pytest

from repro.experiments.paper_data import TABLE3
from repro.microbench.intra_sm import (
    measure_instruction_latency_wong,
    measure_shared_bandwidth,
)


class TestWongMethod:
    def test_fadd_latency_v100(self, v100):
        assert measure_instruction_latency_wong(v100, "fadd") == pytest.approx(4.0, abs=0.1)

    def test_fadd_latency_p100(self, p100):
        assert measure_instruction_latency_wong(p100, "fadd") == pytest.approx(6.0, abs=0.1)

    def test_dadd_latency(self, spec):
        expected = spec.instructions.dadd
        assert measure_instruction_latency_wong(spec, "dadd") == pytest.approx(
            expected, abs=0.1
        )

    def test_chain_latency_is_table3_latency(self, spec):
        expected = TABLE3[spec.name]["1_thread"]["latency"]
        assert measure_instruction_latency_wong(spec, "chain") == pytest.approx(
            expected, abs=0.2
        )

    def test_latency_independent_of_repeats(self, v100):
        a = measure_instruction_latency_wong(v100, "fadd", repeats=128)
        b = measure_instruction_latency_wong(v100, "fadd", repeats=2048)
        assert a == pytest.approx(b, abs=0.1)

    def test_unknown_instruction_rejected(self, v100):
        with pytest.raises(ValueError, match="unknown instruction"):
            measure_instruction_latency_wong(v100, "fma")

    def test_invalid_repeats(self, v100):
        with pytest.raises(ValueError):
            measure_instruction_latency_wong(v100, "fadd", repeats=0)


class TestSharedBandwidth:
    @pytest.mark.parametrize("label,n", [
        ("1_thread", 1), ("1_warp", 32), ("32_threads", 32), ("1024_threads", 1024),
    ])
    def test_table3_bandwidths(self, spec, label, n):
        r = measure_shared_bandwidth(spec, n)
        assert r.bandwidth_bytes_per_cycle == pytest.approx(
            TABLE3[spec.name][label]["bandwidth"], rel=0.03
        )

    def test_concurrency_via_littles_law(self, spec):
        r = measure_shared_bandwidth(spec, 32)
        assert r.concurrency_bytes == pytest.approx(
            TABLE3[spec.name]["1_warp"]["concurrency"], rel=0.03
        )

    def test_bandwidth_monotone_in_threads(self, spec):
        bws = [
            measure_shared_bandwidth(spec, n).bandwidth_bytes_per_cycle
            for n in (1, 32, 128, 512, 1024)
        ]
        assert all(a <= b * 1.01 for a, b in zip(bws, bws[1:]))

    def test_port_cap_binds_at_high_thread_counts(self, spec):
        r = measure_shared_bandwidth(spec, 1024)
        assert r.bandwidth_bytes_per_cycle <= spec.shared_mem.sm_cap_bytes_per_cycle * 1.001

    def test_invalid_thread_count(self, spec):
        with pytest.raises(ValueError):
            measure_shared_bandwidth(spec, 0)
        with pytest.raises(ValueError):
            measure_shared_bandwidth(spec, 4096)
