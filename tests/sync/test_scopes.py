"""Unit tests for the cooperative-groups-style sync API (`repro.sync`)."""

from __future__ import annotations

import pytest

from repro.cudasim.runtime import CudaRuntime
from repro.sim.arch import DGX1_V100, P100, V100
from repro.sim.device import grid_sync_latency_ns
from repro.sim.engine import DeadlockError, SimulationError
from repro.sim.node import Node, cross_gpu_latency_ns, multigrid_local_latency_ns
from repro.sim.sm import block_sync_latency_cycles
from repro.sync import (
    BlockGroup,
    CooperativeBarrier,
    CpuBarrier,
    GridGroup,
    HostBarrierGroup,
    MultiGridGroup,
    SoftwareAtomicBarrier,
    SyncScope,
    WarpGroup,
)


class TestProtocolConformance:
    """Every concrete scope satisfies the structural SyncScope protocol."""

    def _scopes(self):
        node = Node(DGX1_V100, gpu_count=2)
        return [
            WarpGroup(V100, 32),
            BlockGroup(V100, 4),
            GridGroup(V100, 1, 128),
            MultiGridGroup(node, 1, 128),
            HostBarrierGroup(2, 500.0),
        ]

    def test_isinstance_of_protocol(self):
        for scope in self._scopes():
            assert isinstance(scope, SyncScope), type(scope).__name__

    def test_size_and_latency_model_positive(self):
        for scope in self._scopes():
            assert scope.size >= 1
            assert scope.latency_model() > 0

    def test_arrive_wait_sync_are_generators(self):
        import types

        for scope in self._scopes():
            for op in (scope.arrive, scope.wait, scope.sync):
                assert isinstance(op(0, 0), types.GeneratorType)


class TestWarpGroup:
    def test_latency_matches_calibration(self):
        assert WarpGroup(V100, 32, "tile").latency_model() == pytest.approx(
            V100.cycles_to_ns(V100.warp_sync.tile_latency)
        )
        # V100 fast-paths the full coalesced warp; partial groups are slow.
        full = WarpGroup(V100, 32, "coalesced").latency_model()
        partial = WarpGroup(V100, 16, "coalesced").latency_model()
        assert partial > full

    def test_blocking_mirrors_architecture(self):
        assert WarpGroup(V100, 32).blocks_all_threads
        assert not WarpGroup(P100, 32).blocks_all_threads

    def test_run_matches_model(self):
        group = WarpGroup(V100, 32)
        assert group.run_rounds().total_ns == pytest.approx(group.latency_model())

    def test_invalid_size_and_kind(self):
        with pytest.raises(ValueError):
            WarpGroup(V100, 0)
        with pytest.raises(ValueError):
            WarpGroup(V100, 33)
        with pytest.raises(ValueError):
            WarpGroup(V100, 32, kind="grid")


class TestBlockGroup:
    def test_latency_matches_table_model(self):
        group = BlockGroup(V100, 8)
        assert group.latency_model() == pytest.approx(
            V100.cycles_to_ns(block_sync_latency_cycles(V100, 8))
        )

    def test_uncontended_sync_costs_single_shot_latency(self):
        group = BlockGroup(V100, 8)
        assert group.run_rounds().total_ns == pytest.approx(group.latency_model())

    def test_oversized_block_rejected(self):
        with pytest.raises(ValueError, match="block limit"):
            BlockGroup(V100, 64)


class TestGridGroup:
    def test_simulation_matches_closed_form(self):
        for b, t in ((1, 32), (2, 256), (8, 64)):
            group = GridGroup(V100, b, t)
            assert group.simulate().latency_per_sync_ns == pytest.approx(
                grid_sync_latency_ns(V100, b, t), rel=0.01
            )

    def test_size_is_total_blocks(self):
        assert GridGroup(V100, 2, 128).size == 2 * V100.sm_count

    def test_partial_participation_deadlocks(self):
        with pytest.raises(DeadlockError):
            GridGroup(V100, 1, 64).simulate(
                participating_blocks=V100.sm_count - 1
            )

    def test_groups_are_single_shot(self):
        group = GridGroup(V100, 1, 64, sm_count=4)
        group.simulate()
        with pytest.raises(SimulationError, match="fresh group"):
            group.simulate()

    def test_split_arrive_wait_compose(self):
        """Driving arrive/wait manually equals the fused sync() path."""
        fused = GridGroup(V100, 1, 32, sm_count=4).simulate(n_syncs=2)

        group = GridGroup(V100, 1, 32, sm_count=4)
        eng = group.engine

        def member(block_id):
            for r in range(2):
                yield from group.arrive(block_id, r)
                yield from group.wait(block_id, r)

        t0 = eng.now
        for b in range(group.size):
            eng.process(member(b), name=f"grid-block{b}")
        eng.run()
        assert eng.now - t0 == fused.total_ns


class TestMultiGridGroup:
    def test_latency_model_is_local_plus_cross(self):
        node = Node(DGX1_V100)
        group = MultiGridGroup(node, 1, 256, gpu_ids=range(6))
        expected = multigrid_local_latency_ns(
            DGX1_V100, 1, 256
        ) + cross_gpu_latency_ns(DGX1_V100, node.interconnect, range(6), 1)
        assert group.latency_model() == expected

    def test_simulation_matches_model(self):
        group = MultiGridGroup(Node(DGX1_V100), 2, 128, gpu_ids=range(4))
        r = group.simulate()
        assert r.latency_per_sync_ns == pytest.approx(group.latency_model())

    def test_partial_gpus_deadlock(self):
        group = MultiGridGroup(Node(DGX1_V100), 1, 64, gpu_ids=range(4))
        with pytest.raises(DeadlockError):
            group.simulate(participating_gpus=[0, 1])

    def test_partial_local_blocks_deadlock(self):
        group = MultiGridGroup(
            Node(DGX1_V100), 1, 64, gpu_ids=range(2),
            full_local_participation=False,
        )
        with pytest.raises(DeadlockError):
            group.simulate()

    def test_validation(self):
        node = Node(DGX1_V100, gpu_count=2)
        with pytest.raises(ValueError, match="not be empty"):
            MultiGridGroup(node, 1, 64, gpu_ids=[])
        with pytest.raises(ValueError):
            MultiGridGroup(node, 1, 64, gpu_ids=[0, 5])
        with pytest.raises(ValueError, match="subset"):
            MultiGridGroup(node, 1, 64, gpu_ids=[0, 1]).simulate(
                participating_gpus=[0, 7]
            )


class TestHostBarrierGroup:
    def test_rounds_and_cost(self):
        group = HostBarrierGroup(4, 700.0)
        run = group.run_rounds(n_syncs=3)
        assert group.rounds_released == 3
        assert run.total_ns == pytest.approx(3 * 700.0)

    def test_mismatched_barrier_counts_deadlock(self):
        group = HostBarrierGroup(2, 100.0)
        eng = group.engine

        def worker(tid):
            yield from group.barrier(tid)
            if tid == 0:
                yield from group.barrier(tid)  # partner never arrives

        for tid in range(2):
            eng.process(worker(tid), name=f"host{tid}")
        with pytest.raises(DeadlockError):
            eng.run()


class TestStrategies:
    def test_software_atomic_strategy_swaps_cleanly(self):
        """Same scope, different mechanism: the software barrier replaces
        the hardware release broadcast with an extra flag atomic plus a
        polling detection lag, and still completes every round."""
        service = V100.grid_sync.atomic_service_ns(1, 8)
        coop = GridGroup(V100, 1, 128, sm_count=8).simulate().total_ns
        group = GridGroup(
            V100, 1, 128, sm_count=8,
            strategy=SoftwareAtomicBarrier(
                expected=8, atomic_service_ns=service, poll_ns=240.0
            ),
        )
        sw = group.simulate().total_ns
        assert sw > 0 and sw != coop
        # Only the release mechanics moved: the difference is exactly the
        # hardware flag broadcast vs (one extra atomic + half a poll).
        flag_ns = V100.grid_sync.base_ns * 0.6
        assert sw - coop == pytest.approx((service + 120.0) - flag_ns)

    def test_cpu_strategy_on_multigrid_scope(self):
        """Scope x strategy is a free matrix: a multi-grid scope can run
        over a CPU-side barrier (the paper's Fig 14 choreography)."""
        node = Node(DGX1_V100, gpu_count=4)
        cost = DGX1_V100.omp_barrier_ns(4)
        group = MultiGridGroup(
            node, 1, 128, gpu_ids=range(4),
            strategy=CpuBarrier(expected=4, cost_ns=cost),
        )
        r = group.simulate()
        # local phases still paid, cross phase replaced by the omp cost
        assert r.total_ns == pytest.approx(group.local_ns + cost)

    def test_strategy_validation(self):
        with pytest.raises(ValueError):
            CooperativeBarrier(expected=0, release_delay_ns=1.0)
        with pytest.raises(ValueError):
            CooperativeBarrier(expected=1, release_delay_ns=-1.0)
        with pytest.raises(ValueError):
            SoftwareAtomicBarrier(expected=1, atomic_service_ns=1.0, poll_ns=0.0)
        with pytest.raises(ValueError):
            CpuBarrier(expected=1, cost_ns=-1.0)


class TestRuntimeFactories:
    def test_this_grid_bound_to_runtime_engine(self):
        rt = CudaRuntime.single_gpu(V100)
        group = rt.this_grid(2, 256)
        assert group.engine is rt.engine
        assert group.size == 2 * V100.sm_count

    def test_this_multi_grid_defaults_to_all_devices(self):
        rt = CudaRuntime.for_node(DGX1_V100, gpu_count=4)
        group = rt.this_multi_grid(1, 128)
        assert group.engine is rt.engine
        assert group.gpu_ids == (0, 1, 2, 3)

    def test_this_multi_grid_device_subset(self):
        rt = CudaRuntime.for_node(DGX1_V100, gpu_count=4)
        assert rt.this_multi_grid(1, 128, devices=[0, 2]).gpu_ids == (0, 2)

    def test_this_grid_validates_co_residency(self):
        rt = CudaRuntime.single_gpu(V100)
        with pytest.raises(ValueError, match="co-reside"):
            rt.this_grid(3, 1024)

    def test_groups_share_runtime_timeline(self):
        """A barrier driven from host processes advances the runtime clock."""
        rt = CudaRuntime.for_node(DGX1_V100, gpu_count=2)
        group = rt.this_multi_grid(1, 128)

        def gpu_proc(gid):
            yield from group.sync(gid, 0)

        for g in range(2):
            rt.spawn_host(gpu_proc(g), name=f"gpu{g}")
        rt.engine.run()
        assert rt.engine.now == pytest.approx(group.latency_model())
