"""Property-based barrier-semantics laws for every SyncScope implementation.

Three laws, checked with hypothesis across scope kinds, participant counts
and round counts:

1. **Exactly-once release** — every participant completes every round
   exactly once (no lost or duplicated wake-ups in the release wavefront).
2. **Round ordering** — no participant observes round ``r+1``'s release
   before every participant has completed round ``r`` (barrier rounds are
   totally ordered; a barrier that lets a fast member lap the group is
   not a barrier).
3. **Latency monotonicity** — per-sync latency is non-decreasing in the
   participant count, along each scope's natural participant axis.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.arch import DGX1_V100, P100, V100
from repro.sim.node import Node
from repro.sync import (
    BlockGroup,
    GridGroup,
    HostBarrierGroup,
    MultiGridGroup,
    WarpGroup,
)

specs = st.sampled_from([V100, P100])
n_rounds = st.integers(min_value=1, max_value=4)


def make_scope(kind: str, spec, participants: int):
    """Build one scope with ``participants`` members on its natural axis."""
    if kind == "warp":
        return WarpGroup(spec, size=participants)
    if kind == "block":
        return BlockGroup(spec, warps_per_block=participants)
    if kind == "grid":
        # participants blocks via the sm_count override (1 block/SM).
        return GridGroup(spec, 1, 64, sm_count=participants)
    if kind == "multigrid":
        # An 8-GPU node of the drawn architecture: the DGX-1 box for
        # V100, and the same box re-specced with P100s (a beyond-paper
        # platform, as scenario sweeps allow) so the barrier laws also
        # cover the P100 multi-grid calibration.
        node_spec = DGX1_V100 if spec is V100 else replace(DGX1_V100, gpu=P100)
        return MultiGridGroup(
            Node(node_spec, gpu_count=8), 1, 64, gpu_ids=range(participants)
        )
    if kind == "host":
        return HostBarrierGroup(participants, DGX1_V100.omp_barrier_ns(participants))
    raise AssertionError(kind)


SCOPE_KINDS = ("warp", "block", "grid", "multigrid", "host")
kinds = st.sampled_from(SCOPE_KINDS)
participant_counts = st.integers(min_value=1, max_value=8)


class TestReleaseSemantics:
    @given(kinds, specs, participant_counts, n_rounds)
    @settings(max_examples=60, deadline=None)
    def test_every_participant_released_exactly_once_per_round(
        self, kind, spec, participants, rounds
    ):
        scope = make_scope(kind, spec, participants)
        run = scope.run_rounds(n_syncs=rounds)
        assert scope.rounds_released == rounds
        for member in run.members:
            releases = run.releases_of(member)
            # exactly one completion per round ...
            assert len(releases) == rounds
            # ... at strictly increasing times (no duplicated wake-ups).
            assert all(a < b for a, b in zip(releases, releases[1:]))

    @given(kinds, specs, participant_counts, n_rounds)
    @settings(max_examples=60, deadline=None)
    def test_round_ordering_preserved_across_participants(
        self, kind, spec, participants, rounds
    ):
        """No member may enter round r+1 before every member finished r."""
        scope = make_scope(kind, spec, participants)
        run = scope.run_rounds(n_syncs=rounds)
        for r in range(rounds - 1):
            last_of_round = max(run.release_ns[(m, r)] for m in run.members)
            first_of_next = min(run.release_ns[(m, r + 1)] for m in run.members)
            assert first_of_next >= last_of_round

    @given(kinds, specs, st.integers(min_value=2, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_missing_participant_hangs_counted_scopes(
        self, kind, spec, participants
    ):
        """Section VIII-B, uniformly: a strict subset of any arrival-counted
        scope leaves the barrier waiting forever."""
        from repro.sim.engine import DeadlockError

        scope = make_scope(kind, spec, participants)
        with pytest.raises(DeadlockError):
            scope.run_rounds(n_syncs=1, members=range(participants - 1))


class TestLatencyMonotonicity:
    @given(kinds, specs, st.integers(min_value=1, max_value=7), n_rounds)
    @settings(max_examples=60, deadline=None)
    def test_simulated_latency_non_decreasing_in_participants(
        self, kind, spec, participants, rounds
    ):
        smaller = make_scope(kind, spec, participants)
        larger = make_scope(kind, spec, participants + 1)
        t_small = smaller.run_rounds(n_syncs=rounds).total_ns
        t_large = larger.run_rounds(n_syncs=rounds).total_ns
        assert t_large >= t_small * (1.0 - 1e-12)

    @given(kinds, specs, st.integers(min_value=1, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_latency_model_non_decreasing_in_participants(
        self, kind, spec, participants
    ):
        assert (
            make_scope(kind, spec, participants + 1).latency_model()
            >= make_scope(kind, spec, participants).latency_model() * (1.0 - 1e-12)
        )
