"""Parametrized kwarg-passthrough parity for the deprecation shims.

``simulate_grid_sync`` / ``simulate_multigrid_sync`` promise to reproduce
the :mod:`repro.sync` scopes event-for-event.  That only holds if every
constructor kwarg — strategy kind, strategy knobs, a fully constructed
strategy carrying an injected :class:`~repro.sim.memory.MemoryChannel`,
engines, participation controls — is forwarded rather than silently
dropped.  These tests pin the contract two ways: structurally (the shim
signature covers every scope-constructor kwarg) and behaviourally (shim
and scope produce equal results and event counts for each strategy
configuration).
"""

from __future__ import annotations

import inspect
import warnings

import pytest

from repro.sim.device import simulate_grid_sync
from repro.sim.engine import DeadlockError, Engine
from repro.sim.memory import MemoryChannel
from repro.sim.node import Node, simulate_multigrid_sync
from repro.sync import GridGroup, MultiGridGroup
from repro.sync.strategies import SoftwareAtomicBarrier


def _shim_grid(spec, *args, **kw):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return simulate_grid_sync(spec, *args, **kw)


def _shim_multigrid(node, *args, **kw):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return simulate_multigrid_sync(node, *args, **kw)


class TestSignatureCoverage:
    """Every scope-constructor kwarg must exist on its shim."""

    @pytest.mark.parametrize(
        "shim, scope, positional",
        [
            (
                simulate_grid_sync,
                GridGroup,
                {"spec", "blocks_per_sm", "threads_per_block"},
            ),
            (
                simulate_multigrid_sync,
                MultiGridGroup,
                {"node", "blocks_per_sm", "threads_per_block"},
            ),
        ],
    )
    def test_shim_accepts_every_scope_kwarg(self, shim, scope, positional):
        scope_params = set(inspect.signature(scope.__init__).parameters) - {
            "self"
        }
        shim_params = set(inspect.signature(shim).parameters)
        dropped = scope_params - positional - shim_params
        assert not dropped, (
            f"{shim.__name__} silently drops scope kwarg(s) {sorted(dropped)}"
        )


# Valid (strategy, knobs) configurations per scope.  Knob sets are the
# ones each scope's builder actually reads — unread knobs are rejected by
# design, which is itself part of the parity (both paths must reject).
GRID_CONFIGS = [
    pytest.param(None, None, id="default"),
    pytest.param("cooperative", None, id="cooperative"),
    pytest.param("cooperative", {"atomic_service_ns": 5.0}, id="coop-knob"),
    pytest.param("atomic", None, id="atomic"),
    pytest.param(
        "atomic",
        {"poll_ns": 200.0, "poll_read_ns": 1.0, "workload_util": 0.5},
        id="atomic-knobs",
    ),
    pytest.param("cpu", None, id="cpu"),
]

MULTIGRID_CONFIGS = [
    pytest.param(None, None, id="default"),
    pytest.param("cooperative", None, id="cooperative"),
    pytest.param("atomic", None, id="atomic"),
    pytest.param(
        "atomic",
        {"poll_ns": 300.0, "workload_util": 0.25, "atomic_service_ns": 40.0},
        id="atomic-knobs",
    ),
    pytest.param("cpu", None, id="cpu"),
]


class TestGridShimParity:
    @pytest.mark.parametrize("strategy, knobs", GRID_CONFIGS)
    def test_strategy_and_knobs_forwarded(self, spec, strategy, knobs):
        eng_old, eng_new = Engine(), Engine()
        old = _shim_grid(
            spec, 2, 128, n_syncs=2, engine=eng_old,
            strategy=strategy, strategy_knobs=knobs,
        )
        new = GridGroup(
            spec, 2, 128, engine=eng_new,
            strategy=strategy, strategy_knobs=knobs,
        ).simulate(n_syncs=2)
        assert old == new
        assert eng_old.event_count == eng_new.event_count

    def test_constructed_strategy_with_channel_forwarded(self, spec):
        # Channel injection travels inside a ready-made strategy instance;
        # the shim must hand the instance through untouched.
        def build(engine):
            return SoftwareAtomicBarrier(
                expected=2 * spec.sm_count,
                atomic_service_ns=4.0,
                poll_ns=150.0,
                channel=MemoryChannel(read_ns=1.0, workload_util=0.5),
            )

        eng_old, eng_new = Engine(), Engine()
        old = _shim_grid(
            spec, 2, 128, engine=eng_old, strategy=build(eng_old)
        )
        new = GridGroup(
            spec, 2, 128, engine=eng_new, strategy=build(eng_new)
        ).simulate()
        assert old == new
        assert eng_old.event_count == eng_new.event_count

    def test_sm_count_and_participation_forwarded(self, spec):
        old = _shim_grid(spec, 1, 64, sm_count=4)
        new = GridGroup(spec, 1, 64, sm_count=4).simulate()
        assert old == new
        with pytest.raises(DeadlockError):
            _shim_grid(spec, 1, 64, sm_count=4, participating_blocks=2)

    def test_bad_knobs_rejected_identically(self, spec):
        with pytest.raises(ValueError, match="no effect"):
            _shim_grid(spec, 1, 64, strategy="cpu", strategy_knobs={"poll_ns": 1.0})
        with pytest.raises(ValueError, match="no effect"):
            GridGroup(spec, 1, 64, strategy="cpu", strategy_knobs={"poll_ns": 1.0})


class TestMultiGridShimParity:
    @pytest.mark.parametrize("strategy, knobs", MULTIGRID_CONFIGS)
    def test_strategy_and_knobs_forwarded(self, dgx1, strategy, knobs):
        node = Node(dgx1, gpu_count=4)
        eng_old, eng_new = Engine(), Engine()
        old = _shim_multigrid(
            node, 1, 32, n_syncs=2, engine=eng_old,
            strategy=strategy, strategy_knobs=knobs,
        )
        new = MultiGridGroup(
            node, 1, 32, engine=eng_new,
            strategy=strategy, strategy_knobs=knobs,
        ).simulate(n_syncs=2)
        assert old == new
        assert eng_old.event_count == eng_new.event_count

    def test_constructed_strategy_with_channel_forwarded(self, dgx1):
        node = Node(dgx1, gpu_count=3)

        def build():
            return SoftwareAtomicBarrier(
                expected=3,
                atomic_service_ns=100.0,
                poll_ns=400.0,
                channel=MemoryChannel(read_ns=50.0, workload_util=0.25),
                flag_rtt_ns=100.0,
            )

        old = _shim_multigrid(node, 1, 32, strategy=build())
        new = MultiGridGroup(node, 1, 32, strategy=build()).simulate()
        assert old == new

    def test_gpu_ids_and_participation_forwarded(self, dgx1):
        node = Node(dgx1)
        old = _shim_multigrid(node, 1, 32, gpu_ids=(0, 2, 5))
        new = MultiGridGroup(node, 1, 32, gpu_ids=(0, 2, 5)).simulate()
        assert old == new
        assert old.gpu_ids == (0, 2, 5)
        with pytest.raises(DeadlockError):
            _shim_multigrid(
                node, 1, 32, gpu_ids=(0, 1, 2), participating_gpus=(0, 1)
            )

    def test_full_local_participation_forwarded(self, dgx1):
        node = Node(dgx1, gpu_count=2)
        with pytest.raises(DeadlockError):
            _shim_multigrid(node, 1, 32, full_local_participation=False)
