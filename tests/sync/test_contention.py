"""Contention model + strategy-kind resolution tests.

Covers the physically-honest ``SoftwareAtomicBarrier``: poll reads as
offered load on a shared :class:`~repro.sim.memory.MemoryChannel`, a
detection lag that grows with participant count and injected workload
traffic, per-wait ``Timeout`` construction, and the kind-string strategy
resolution every scope now supports.
"""

from __future__ import annotations

import pytest

from repro.sim.arch import DGX1_V100, DGX2_V100, V100
from repro.sim.engine import Timeout
from repro.sim.memory import MemoryChannel
from repro.sim.node import Node
from repro.sync import (
    CooperativeBarrier,
    GridGroup,
    HostBarrierGroup,
    MultiGridGroup,
    SoftwareAtomicBarrier,
    WarpGroup,
)


class TestMemoryChannel:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryChannel(read_ns=-1.0)
        with pytest.raises(ValueError):
            MemoryChannel(read_ns=1.0, workload_util=1.0)
        with pytest.raises(ValueError):
            MemoryChannel(read_ns=1.0, workload_util=-0.1)
        ch = MemoryChannel(read_ns=1.0)
        with pytest.raises(ValueError):
            ch.effective_poll_ns(-1, 10.0)
        with pytest.raises(ValueError):
            ch.effective_poll_ns(1, 0.0)

    def test_capacity_floor_boundary_values(self):
        # Regression: utilizations just below 1 used to be accepted and
        # produced physically meaningless detection lags (0.999 stretches
        # every read 1000x).  The channel now rejects anything above the
        # documented capacity floor, exactly at the boundary.
        from repro.sim.memory import MAX_WORKLOAD_UTIL

        ch = MemoryChannel(read_ns=1.0, workload_util=MAX_WORKLOAD_UTIL)
        assert ch.workload_util == MAX_WORKLOAD_UTIL
        assert ch.stretched_read_ns() == pytest.approx(
            1.0 / (1.0 - MAX_WORKLOAD_UTIL)
        )
        for util in (
            MAX_WORKLOAD_UTIL + 1e-9,
            0.96,
            0.999,
            1.0 - 1e-12,
        ):
            with pytest.raises(ValueError, match="capacity floor"):
                MemoryChannel(read_ns=1.0, workload_util=util)
        # The error is actionable: it names the knob and the bound.
        with pytest.raises(ValueError, match="extra.workload_util"):
            ch.inject_workload(0.999)

    def test_capacity_floor_applies_to_strategy_knobs(self):
        # The scenario/scope knob path must hit the same guard: a sweep
        # that injects near-saturation workload traffic fails loudly at
        # construction instead of reporting absurd barrier latencies.
        with pytest.raises(ValueError, match="capacity floor"):
            GridGroup(
                V100, 1, 32, strategy="atomic",
                strategy_knobs={"workload_util": 0.999},
            )
        with pytest.raises(ValueError, match="capacity floor"):
            MultiGridGroup(
                Node(DGX1_V100), 1, 32, strategy="atomic",
                strategy_knobs={"workload_util": 0.99},
            )

    def test_uncontended_poll_period_is_nominal(self):
        ch = MemoryChannel(read_ns=10.0)
        assert ch.effective_poll_ns(1, 1000.0) == 1000.0

    def test_saturated_poll_period_is_service_bound(self):
        # 50 pollers x 10 ns of channel time per read > the 100 ns period.
        ch = MemoryChannel(read_ns=10.0)
        assert ch.effective_poll_ns(50, 100.0) == 500.0

    def test_workload_traffic_shrinks_capacity(self):
        ch = MemoryChannel(read_ns=10.0, workload_util=0.5)
        # Same offered load, half the capacity: period doubles again.
        assert ch.effective_poll_ns(50, 100.0) == 1000.0
        assert ch.stretched_read_ns() == 20.0
        assert ch.stretched_read_ns(30.0) == 80.0

    def test_monotone_in_pollers_and_workload(self):
        ch = MemoryChannel(read_ns=10.0)
        periods = [ch.effective_poll_ns(n, 100.0) for n in (1, 10, 20, 40)]
        assert periods == sorted(periods)
        reads = []
        for util in (0.0, 0.3, 0.6, 0.9):
            ch.inject_workload(util)
            reads.append(ch.stretched_read_ns(5.0))
        assert reads == sorted(reads) and len(set(reads)) == len(reads)


class TestDetectionLag:
    def test_legacy_constant_without_channel(self):
        strat = SoftwareAtomicBarrier(expected=8, atomic_service_ns=5.0, poll_ns=240.0)
        assert strat.detection_lag_ns() == 120.0

    def test_flag_rtt_added_without_channel(self):
        strat = SoftwareAtomicBarrier(
            expected=8, atomic_service_ns=5.0, poll_ns=240.0, flag_rtt_ns=700.0
        )
        assert strat.detection_lag_ns() == 820.0

    def test_grows_with_participant_count(self):
        lags = []
        for n in (2, 8, 32, 128):
            strat = SoftwareAtomicBarrier(
                expected=n, atomic_service_ns=5.0, poll_ns=100.0,
                channel=MemoryChannel(read_ns=10.0),
            )
            lags.append(strat.detection_lag_ns())
        assert lags == sorted(lags)
        assert lags[-1] > lags[0]

    def test_grows_with_workload_traffic(self):
        ch = MemoryChannel(read_ns=10.0)
        strat = SoftwareAtomicBarrier(
            expected=8, atomic_service_ns=5.0, poll_ns=100.0, channel=ch
        )
        lags = []
        for util in (0.0, 0.25, 0.5, 0.75):
            ch.inject_workload(util)
            lags.append(strat.detection_lag_ns())
        assert lags == sorted(lags) and len(set(lags)) == len(lags)

    def test_validation(self):
        with pytest.raises(ValueError):
            SoftwareAtomicBarrier(
                expected=2, atomic_service_ns=1.0, flag_rtt_ns=-1.0
            )


class TestPerWaitTimeout:
    def test_each_wait_constructs_a_fresh_timeout(self):
        """The detection-lag Timeout is built per wait, never shared.

        (The pre-contention code reused one ``Timeout`` instance across
        all waiters and rounds; the lag is now state-dependent, so every
        ``wait`` must price it at detection time.)
        """
        group = GridGroup(
            V100, 1, 128, sm_count=4,
            strategy=SoftwareAtomicBarrier(
                expected=4, atomic_service_ns=2.0, poll_ns=100.0
            ),
        )
        strat = group.strategy
        rnd = group.round_state(0)
        rnd.release.fire()
        timeouts = []
        for _ in range(2):
            gen = strat.wait(rnd)
            first = next(gen)
            assert first is rnd.release
            second = gen.send(None)
            assert isinstance(second, Timeout)
            timeouts.append(second)
        assert timeouts[0] is not timeouts[1]
        assert timeouts[0].delay == timeouts[1].delay == 50.0

    def test_multi_waiter_multi_round_event_sequence_pinned(self):
        """Regression pin: the constant-lag path's event times are exactly
        the analytic protocol costs, for every member and round.

        With 4 blocks on 4 SMs (1 warp each), service s, grid arrive a,
        per-warp release w and poll p, round r completes for every member
        at  (r+1) * (a + 5*s + p/2 + w):  four serialized counter atomics
        plus the releaser's flag atomic, then the broadcast + detection
        lag + one re-dispatch.
        """
        s, p = 2.0, 100.0
        group = GridGroup(
            V100, 1, 32, sm_count=4,
            strategy=SoftwareAtomicBarrier(
                expected=4, atomic_service_ns=s, poll_ns=p
            ),
        )
        a = group._t_arrive.delay
        w = group._t_release.delay
        run = group.run_rounds(n_syncs=3)
        round_ns = a + 5 * s + p / 2 + w
        for member in range(4):
            for r in range(3):
                assert run.release_ns[(member, r)] == pytest.approx(
                    (r + 1) * round_ns
                ), (member, r)


class TestStrategyKindResolution:
    def test_cooperative_string_matches_default(self):
        default = GridGroup(V100, 2, 256).simulate().total_ns
        named = GridGroup(V100, 2, 256, strategy="cooperative").simulate().total_ns
        assert named == default

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown sync strategy"):
            GridGroup(V100, 1, 128, strategy="telepathy")

    def test_unsupported_kind_on_scope_rejected(self):
        with pytest.raises(ValueError, match="not supported by WarpGroup"):
            WarpGroup(V100, 32, strategy="atomic")
        with pytest.raises(ValueError, match="not supported by HostBarrierGroup"):
            HostBarrierGroup(4, 500.0, strategy="atomic")

    def test_knobs_require_a_kind_string(self):
        with pytest.raises(ValueError, match="apply only to strategy kind"):
            GridGroup(V100, 1, 128, strategy_knobs={"poll_ns": 50.0})
        with pytest.raises(ValueError, match="apply only to strategy kind"):
            GridGroup(
                V100, 1, 128,
                strategy=CooperativeBarrier(expected=80, release_delay_ns=1.0),
                strategy_knobs={"poll_ns": 50.0},
            )

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy knob"):
            GridGroup(V100, 1, 128, strategy="atomic", strategy_knobs={"pol_ns": 1.0})

    def test_grid_cpu_strategy_prices_a_relaunch(self):
        group = GridGroup(V100, 1, 128, sm_count=8, strategy="cpu")
        calib = V100.launch_calib("traditional")
        assert group.strategy.cost_ns == calib.gap_for(1) + calib.dispatch_for(1)


class TestContendedBarrierEndToEnd:
    def test_grid_atomic_total_grows_with_workload(self):
        totals = [
            GridGroup(
                V100, 1, 128, sm_count=8, strategy="atomic",
                strategy_knobs={"workload_util": util},
            ).simulate().total_ns
            for util in (0.0, 0.4, 0.8)
        ]
        assert totals == sorted(totals) and len(set(totals)) == len(totals)

    def test_multigrid_atomic_grows_with_participants(self):
        node = Node(DGX1_V100)
        lats = [
            MultiGridGroup(node, 1, 32, gpu_ids=range(n), strategy="atomic")
            .simulate()
            .latency_per_sync_us
            for n in (2, 4, 6, 8)
        ]
        assert lats == sorted(lats) and len(set(lats)) == len(lats)

    def test_topology_shapes_the_atomic_detection_lag(self):
        """Two-hop members on the cube-mesh make the atomic barrier's
        remote flag polls dearer than on the all-1-hop NVSwitch crossbar."""
        mesh = MultiGridGroup(
            Node(DGX1_V100), 1, 32, gpu_ids=range(8), strategy="atomic"
        )
        xbar = MultiGridGroup(
            Node(DGX2_V100, gpu_count=8), 1, 32, gpu_ids=range(8), strategy="atomic"
        )
        assert mesh.strategy.flag_rtt_ns > xbar.strategy.flag_rtt_ns

    def test_channel_accounts_detections(self):
        group = MultiGridGroup(
            Node(DGX1_V100), 1, 32, gpu_ids=range(4), strategy="atomic"
        )
        group.simulate(n_syncs=3)
        assert group.strategy.channel.detections == 4 * 3


class TestInapplicableKnobs:
    def test_knob_unused_by_kind_rejected(self):
        """A knob the chosen (scope, kind) never reads fails loudly instead
        of silently leaving the numbers unchanged."""
        with pytest.raises(ValueError, match="no effect"):
            GridGroup(V100, 1, 128, strategy="cpu", strategy_knobs={"poll_ns": 50.0})
        with pytest.raises(ValueError, match="no effect"):
            MultiGridGroup(
                Node(DGX1_V100), 1, 32, strategy="cooperative",
                strategy_knobs={"workload_util": 0.5},
            )

    def test_applicable_knob_still_accepted(self):
        group = GridGroup(
            V100, 1, 128, strategy="cooperative",
            strategy_knobs={"atomic_service_ns": 7.0},
        )
        assert group.strategy.atomic_service_ns == 7.0
