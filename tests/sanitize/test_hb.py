"""Unit tests for the vector-clock happens-before analysis."""

from repro.sanitize.events import SyncEvent
from repro.sanitize.hb import VectorClock, find_races


def _store(mem, thread, slot, volatile=False):
    return SyncEvent(
        "store", actor=thread, addr=slot, data={"mem": mem, "volatile": volatile}
    )


def _load(mem, thread, slot, volatile=False):
    return SyncEvent(
        "load", actor=thread, addr=slot, data={"mem": mem, "volatile": volatile}
    )


def _commit(mem, thread=None):
    return SyncEvent("commit", actor=thread, data={"mem": mem})


class TestVectorClock:
    def test_tick_and_leq(self):
        a, b = VectorClock(), VectorClock()
        a.tick("x")
        assert not a.leq(b)
        b.join(a)
        assert a.leq(b)

    def test_join_is_componentwise_max(self):
        a = VectorClock({"x": 3, "y": 1})
        b = VectorClock({"x": 1, "z": 5})
        a.join(b)
        assert a.c == {"x": 3, "y": 1, "z": 5}

    def test_copy_is_independent(self):
        a = VectorClock({"x": 1})
        b = a.copy()
        b.tick("x")
        assert a.c["x"] == 1 and b.c["x"] == 2


class TestRaceDetection:
    def test_store_load_without_commit_races(self):
        races = find_races([_store(0, 0, 0), _load(0, 1, 0)])
        assert len(races) == 1
        race = races[0]
        assert race.mem == 0 and race.slot == 0
        assert {race.first.thread, race.second.thread} == {0, 1}
        assert "not ordered" in race.describe()

    def test_commit_orders_the_pair(self):
        races = find_races([_store(0, 0, 0), _commit(0), _load(0, 1, 0)])
        assert races == []

    def test_two_loads_never_race(self):
        races = find_races([_load(0, 0, 0), _load(0, 1, 0)])
        assert races == []

    def test_store_store_races(self):
        races = find_races([_store(0, 0, 0), _store(0, 1, 0)])
        assert len(races) == 1

    def test_volatile_accesses_exempt(self):
        # Table V: the volatile reduction is correct without explicit sync.
        races = find_races(
            [_store(0, 0, 0, volatile=True), _load(0, 1, 0, volatile=True)]
        )
        assert races == []

    def test_different_slots_do_not_race(self):
        races = find_races([_store(0, 0, 0), _load(0, 1, 1)])
        assert races == []

    def test_different_memories_do_not_race(self):
        races = find_races([_store(0, 0, 0), _load(1, 1, 0)])
        assert races == []

    def test_same_thread_never_races(self):
        races = find_races([_store(0, 0, 0), _load(0, 0, 0)])
        assert races == []

    def test_per_thread_fence_orders_only_that_thread(self):
        # t0 fences its own store -> t1's later load is ordered; t2's
        # uncommitted store still races with t1's load.
        races = find_races(
            [
                _store(0, 0, 0),
                _commit(0, thread=0),
                _store(0, 2, 0),
                _load(0, 1, 0),
            ]
        )
        assert len(races) == 1
        assert {races[0].first.thread, races[0].second.thread} == {2, 1}

    def test_one_report_per_pair(self):
        # Thousands of iterations of the same racy pair are one bug.
        events = []
        for _ in range(50):
            events.append(_store(0, 0, 0))
            events.append(_load(0, 1, 0))
        assert len(find_races(events)) == 1

    def test_race_to_dict(self):
        race = find_races([_store(0, 0, 3), _load(0, 1, 3)])[0]
        d = race.to_dict()
        assert d["slot"] == 3
        assert sorted(d["threads"]) == [0, 1]
        assert sorted(d["kinds"]) == ["load", "store"]

    def test_commit_then_new_epoch_races_again(self):
        # A commit closes the old epoch; fresh conflicting accesses in the
        # next epoch are a new (deduped) race on the same pair.
        races = find_races(
            [
                _store(0, 0, 0),
                _commit(0),
                _store(0, 0, 0),
                _load(0, 1, 0),
            ]
        )
        assert len(races) == 1
