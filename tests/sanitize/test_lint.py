"""Per-rule tests for repro-lint: each rule fires on a minimal bad
snippet and stays quiet on the corresponding good one."""

import json
import textwrap

import pytest

from repro.sanitize.lint import (
    RULES,
    filter_baselined,
    lint_paths,
    lint_source,
    load_baseline,
    main,
    write_baseline,
)

# Paths chosen so the path-scoped rules apply.
DRIVER = "src/repro/experiments/exp_fake.py"
SYNC = "src/repro/sync/fake.py"
SRC = "src/repro/fake.py"
TEST = "tests/fake_test.py"


def _rules(source, path=SRC):
    return [v.rule for v in lint_source(textwrap.dedent(source), path)]


class TestSAN101:
    def test_fires_on_bare_sync_call(self):
        assert _rules("def f(g):\n    g.sync(0, 0)\n") == ["SAN101"]
        assert _rules("def f(g):\n    g.arrive(0, 0)\n") == ["SAN101"]
        assert _rules("def f(g):\n    g.wait(0, 0)\n") == ["SAN101"]

    def test_quiet_on_yield_from(self):
        assert _rules("def f(g):\n    yield from g.sync(0, 0)\n") == []

    def test_quiet_on_exempt_receivers(self):
        assert _rules("import os\ndef f():\n    os.wait()\n") == []
        assert _rules("def f(proc):\n    proc.wait()\n") == []


class TestSAN102:
    def test_fires_on_inline_timeout_in_sync_code(self):
        src = "def wait(self):\n    yield Timeout(5.0)\n"
        assert _rules(src, SYNC) == ["SAN102"]

    def test_quiet_on_named_timeout_constant(self):
        assert _rules("def wait(self):\n    yield self._t_arrive\n", SYNC) == []

    def test_quiet_outside_sync_package(self):
        assert _rules("def f():\n    yield Timeout(5.0)\n", SRC) == []


class TestSAN103:
    def test_fires_on_import(self):
        src = "from repro.sim import simulate_grid_sync\n"
        assert _rules(src, TEST) == ["SAN103"]

    def test_fires_on_attribute_use(self):
        src = "import repro.sim as sim\nr = sim.simulate_multigrid_sync(n, 1, 32)\n"
        assert "SAN103" in _rules(src, TEST)

    def test_quiet_on_scope_classes(self):
        assert _rules("from repro.sync.groups import GridGroup\n", TEST) == []


class TestSAN104:
    def test_fires_on_wall_clock_in_driver(self):
        src = "import time\ndef run_x(s):\n    t = time.time()\n"
        assert _rules(src, DRIVER) == ["SAN104"]
        src2 = "import time\ndef run_x(s):\n    time.sleep(1)\n"
        assert "SAN104" in _rules(src2, DRIVER)

    def test_quiet_outside_drivers(self):
        src = "import time\ndef f():\n    return time.time()\n"
        assert _rules(src, SRC) == []

    def test_quiet_on_engine_time(self):
        assert _rules("def run_x(s):\n    t = engine.now\n", DRIVER) == []


class TestSAN105:
    def test_fires_on_bare_random(self):
        assert _rules("import random\nx = random.random()\n") == ["SAN105"]
        assert "SAN105" in _rules("import numpy as np\nx = np.random.rand(3)\n")

    def test_quiet_on_seeded_generator(self):
        assert _rules("import numpy as np\nr = np.random.default_rng(7)\n") == []

    def test_quiet_outside_src(self):
        assert _rules("import random\nx = random.random()\n", TEST) == []


class TestSAN106:
    def test_fires_on_prefixed_extras_key(self):
        assert _rules("def f(s):\n    return s.extra('extra.n')\n") == ["SAN106"]
        assert _rules("def f(s):\n    return s.extra_float('extra.n')\n") == ["SAN106"]

    def test_quiet_on_stripped_key(self):
        assert _rules("def f(s):\n    return s.extra('n')\n") == []


class TestSAN107:
    def test_fires_on_swallowed_exception(self):
        src = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert _rules(src) == ["SAN107"]
        assert _rules("try:\n    f()\nexcept:\n    pass\n") == ["SAN107"]

    def test_quiet_when_narrowed_or_handled(self):
        assert _rules("try:\n    f()\nexcept OSError:\n    pass\n") == []
        src = "try:\n    f()\nexcept Exception:\n    log()\n"
        assert _rules(src) == []

    def test_quiet_outside_src(self):
        src = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert _rules(src, TEST) == []


class TestSAN108:
    def test_fires_on_disabled_deadlock_detection(self):
        src = "def f(e):\n    e.run(detect_deadlock=False)\n"
        assert _rules(src, DRIVER) == ["SAN108"]

    def test_quiet_inside_sim_package(self):
        src = "def f(e):\n    e.run(detect_deadlock=False)\n"
        assert _rules(src, "src/repro/sim/backends/base.py") == []

    def test_quiet_on_enabled(self):
        assert _rules("def f(e):\n    e.run()\n", DRIVER) == []


class TestSAN109:
    def test_fires_on_direct_construction(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "pool = ProcessPoolExecutor(max_workers=4)\n"
        )
        assert _rules(src) == ["SAN109"]

    def test_fires_on_qualified_construction(self):
        src = (
            "import concurrent.futures\n"
            "pool = concurrent.futures.ProcessPoolExecutor(max_workers=4)\n"
        )
        assert _rules(src) == ["SAN109"]

    def test_quiet_in_worker_layer(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "pool = ProcessPoolExecutor(max_workers=4)\n"
        )
        assert _rules(src, "src/repro/experiments/service/workers.py") == []

    def test_quiet_outside_src(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "pool = ProcessPoolExecutor(max_workers=4)\n"
        )
        assert _rules(src, TEST) == []

    def test_quiet_on_thread_pool(self):
        src = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "pool = ThreadPoolExecutor(max_workers=4)\n"
        )
        assert _rules(src) == []


class TestInfrastructure:
    def test_rule_catalog_is_complete(self):
        assert set(RULES) == {f"SAN10{i}" for i in range(1, 10)}
        for summary, anchor in RULES.values():
            assert summary and anchor.startswith("docs/sanitize.md#")

    def test_syntax_error_is_reported_not_raised(self):
        vio = lint_source("def f(:\n", SRC)
        assert len(vio) == 1 and "does not parse" in vio[0].message

    def test_fingerprint_ignores_line_numbers(self):
        a = lint_source("def f(g):\n    g.sync(0, 0)\n", SRC)[0]
        b = lint_source("\n\n\ndef f(g):\n    g.sync(0, 0)\n", SRC)[0]
        assert a.fingerprint == b.fingerprint
        assert a.line != b.line

    def test_baseline_round_trip(self, tmp_path):
        vio = lint_source("def f(g):\n    g.sync(0, 0)\n", SRC)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, vio)
        baseline = load_baseline(baseline_file)
        assert filter_baselined(vio, baseline) == []

    def test_baseline_multiset_absorbs_exact_count(self, tmp_path):
        # Two identical baselined lines absorb two occurrences, not three.
        src = "def f(g):\n    g.sync(0, 0)\n    g.sync(0, 0)\n"
        vio = lint_source(src, SRC)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, vio)
        baseline = load_baseline(baseline_file)
        more = lint_source(src + "    g.sync(0, 0)\n", SRC)
        fresh = filter_baselined(more, baseline)
        assert len(fresh) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_version_mismatch_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError, match="unsupported baseline version"):
            load_baseline(bad)


class TestCli:
    def _write(self, tmp_path, source):
        f = tmp_path / "snippet.py"
        f.write_text(textwrap.dedent(source))
        return f

    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        f = self._write(tmp_path, "def f(g):\n    yield from g.sync(0, 0)\n")
        assert main([str(f), "--no-baseline"]) == 0

    def test_exit_one_on_violation(self, tmp_path, capsys):
        f = self._write(tmp_path, "def f(g):\n    g.sync(0, 0)\n")
        assert main([str(f), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "SAN101" in out

    def test_json_format(self, tmp_path, capsys):
        f = self._write(tmp_path, "def f(g):\n    g.sync(0, 0)\n")
        assert main([str(f), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "SAN101"

    def test_write_then_check_baseline(self, tmp_path, capsys):
        f = self._write(tmp_path, "def f(g):\n    g.sync(0, 0)\n")
        baseline = tmp_path / "baseline.json"
        assert main([str(f), "--baseline", str(baseline), "--write-baseline"]) == 0
        assert main([str(f), "--baseline", str(baseline)]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "SAN101" in out and "SAN108" in out


class TestRepoIsClean:
    def test_committed_baseline_covers_the_tree(self):
        """`repro-lint src tests` must be clean against the committed
        baseline — the same gate CI runs."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        violations = lint_paths([str(root / "src"), str(root / "tests")])
        # Re-key paths relative to the repo root, as CI invokes it.
        for v in violations:
            v.path = v.path.replace(str(root) + "/", "")
        baseline = load_baseline(root / "lint-baseline.json")
        fresh = filter_baselined(violations, baseline)
        assert fresh == [], "\n".join(v.render() for v in fresh)
