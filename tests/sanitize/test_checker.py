"""Tests for the dynamic checker rules and SanitizerSession."""

import json

import pytest

from repro.sanitize import (
    SANITIZE_MODES,
    SanitizerSession,
    check_deadlock,
    check_sync,
    render_findings,
    run_checks,
)
from repro.sanitize import events as ev
from repro.sim.arch import V100
from repro.sim.engine import DeadlockError
from repro.sync.groups import GridGroup, WarpGroup


@pytest.fixture(autouse=True)
def _no_leaked_monitor():
    yield
    ev.uninstall()


def _partial_grid_findings(mode="synccheck"):
    with SanitizerSession(mode) as sess:
        group = GridGroup(V100, blocks_per_sm=1, threads_per_block=64, sm_count=4)
        with pytest.raises(DeadlockError):
            group.simulate(participating_blocks=2)
    return sess


class TestDivergence:
    def test_names_members_round_scope(self):
        sess = _partial_grid_findings()
        div = [f for f in sess.findings() if f.rule == "SYNC-DIVERGENCE"]
        assert len(div) == 1
        details = div[0].details
        assert details["missing"] == [2, 3]
        assert details["arrived"] == [0, 1]
        assert details["round"] == 0
        assert "GridGroup" in details["scope"]

    def test_quiet_on_full_participation(self):
        with SanitizerSession("synccheck") as sess:
            group = GridGroup(V100, 1, 64, sm_count=4)
            group.simulate()
        assert sess.findings() == []

    def test_only_first_divergent_round_reported(self):
        # Round 1 never gathers arrivals at all (everyone is stuck in
        # round 0), so exactly one divergence is reported, not a cascade.
        sess = _partial_grid_findings()
        assert sum(f.rule == "SYNC-DIVERGENCE" for f in sess.findings()) == 1


class TestDeadlockBlame:
    def test_blame_names_release_signal_and_missing(self):
        sess = _partial_grid_findings()
        blame = [f for f in sess.findings() if f.rule == "DEADLOCK-BLAME"]
        assert len(blame) == 1
        assert "grid-release-0" in blame[0].message
        assert "members [2, 3] never arrived" in blame[0].message
        edges = blame[0].details["waiters"]
        assert len(edges) == 2
        assert all(e["kind"] == "signal" for e in edges)
        assert all(e["round"] == 0 for e in edges)

    def test_check_deadlock_empty_without_quiescence(self):
        mon = ev.SyncMonitor()
        assert check_deadlock(mon) == []


class TestProtocolRules:
    def _run(self, build):
        with SanitizerSession("synccheck") as sess:
            build()
        return [f.rule for f in sess.findings()], sess

    def test_double_arrive(self):
        def build():
            g = WarpGroup(V100, size=2)

            def lane0():
                yield from g.arrive(0, 0)
                yield from g.arrive(0, 0)
                yield from g.wait(0, 0)

            def lane1():
                yield from g.wait(1, 0)

            g.engine.process(lane0(), name="lane0")
            g.engine.process(lane1(), name="lane1")
            g.engine.run()

        rules, _ = self._run(build)
        assert "SYNC-DOUBLE-ARRIVE" in rules
        assert "SYNC-WAIT-BEFORE-ARRIVE" in rules

    def test_round_skew(self):
        def build():
            g = WarpGroup(V100, size=1)

            def lane():
                yield from g.arrive(0, 0)
                yield from g.arrive(0, 1)
                yield from g.wait(0, 0)
                yield from g.wait(0, 1)

            g.engine.process(lane(), name="lane0")
            g.engine.run()

        rules, sess = self._run(build)
        assert "SYNC-ROUND-SKEW" in rules
        skew = next(f for f in sess.findings() if f.rule == "SYNC-ROUND-SKEW")
        assert skew.details["skipped_round"] == 0

    def test_clean_protocol_is_quiet(self):
        def build():
            g = WarpGroup(V100, size=2)

            def lane(i):
                yield from g.sync(i, 0)
                yield from g.sync(i, 1)

            for i in range(2):
                g.engine.process(lane(i), name=f"lane{i}")
            g.engine.run()

        rules, _ = self._run(build)
        assert rules == []

    def test_violations_deduplicated(self):
        mon = ev.SyncMonitor()
        scope = WarpGroup(V100, size=2)
        sid = mon.register_scope(scope)
        for _ in range(3):
            mon.events.append(
                ev.SyncEvent("wait", scope=sid, member=1, round=0)
            )
        findings = check_sync(mon)
        assert sum(f.rule == "SYNC-WAIT-BEFORE-ARRIVE" for f in findings) == 1


class TestSession:
    def test_modes_exposed(self):
        assert SANITIZE_MODES == ("off", "synccheck", "racecheck", "full")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown sanitize mode"):
            SanitizerSession("everything")
        with pytest.raises(ValueError, match="unknown sanitize mode"):
            run_checks(ev.SyncMonitor(), "off")

    def test_off_mode_is_noop(self):
        with SanitizerSession("off") as sess:
            assert ev.MONITOR is None
        assert sess.findings() == []
        assert sess.summary() == {"mode": "off", "events": 0, "findings": []}

    def test_synccheck_skips_memory_capture(self):
        assert SanitizerSession("synccheck").monitor.capture_memory is False
        assert SanitizerSession("racecheck").monitor.capture_memory is True
        assert SanitizerSession("full").monitor.capture_memory is True

    def test_nesting_restores_previous_monitor(self):
        with SanitizerSession("synccheck") as outer:
            with SanitizerSession("racecheck") as inner:
                assert ev.MONITOR is inner.monitor
            assert ev.MONITOR is outer.monitor
        assert ev.MONITOR is None

    def test_monitor_uninstalled_on_exception(self):
        with pytest.raises(RuntimeError):
            with SanitizerSession("full"):
                raise RuntimeError("boom")
        assert ev.MONITOR is None

    def test_summary_is_json_able(self):
        sess = _partial_grid_findings("full")
        payload = sess.summary()
        text = json.dumps(payload)
        back = json.loads(text)
        assert back["mode"] == "full"
        assert back["events"] > 0
        rules = [f["rule"] for f in back["findings"]]
        assert "SYNC-DIVERGENCE" in rules
        for f in back["findings"]:
            assert f["anchor"].startswith("docs/sanitize.md#")

    def test_racecheck_mode_skips_sync_rules(self):
        sess = _partial_grid_findings("racecheck")
        rules = [f.rule for f in sess.findings()]
        assert "SYNC-DIVERGENCE" not in rules
        assert "DEADLOCK-BLAME" in rules  # deadlock blame runs in every mode

    def test_truncation_warning(self):
        with SanitizerSession("synccheck", max_events=5) as sess:
            group = GridGroup(V100, 1, 64, sm_count=4)
            group.simulate()
        warn = [f for f in sess.findings() if f.rule == "SANITIZE-TRUNCATED"]
        assert len(warn) == 1
        assert warn[0].severity == "warning"

    def test_render_findings_lines(self):
        sess = _partial_grid_findings()
        lines = render_findings(sess.findings())
        assert any(line.startswith("[SYNC-DIVERGENCE] error:") for line in lines)
        assert all("docs/sanitize.md" in line for line in lines)
