"""Unit tests for the sync-event stream (repro.sanitize.events)."""

import pytest

from repro.sanitize import events as ev
from repro.sim.arch import V100
from repro.sync.groups import GridGroup, MultiGridGroup


@pytest.fixture(autouse=True)
def _no_leaked_monitor():
    yield
    ev.uninstall()


class TestMonitorGlobal:
    def test_disabled_by_default(self):
        assert ev.MONITOR is None
        assert ev.current_monitor() is None

    def test_install_uninstall(self):
        mon = ev.SyncMonitor()
        assert ev.install(mon) is mon
        assert ev.MONITOR is mon
        assert ev.current_monitor() is mon
        ev.uninstall()
        assert ev.MONITOR is None


class TestEventRecord:
    def test_to_dict_omits_none(self):
        e = ev.SyncEvent("arrive", time=1.0, scope=0, member=2, round=0)
        d = e.to_dict()
        assert d == {"kind": "arrive", "time": 1.0, "scope": 0, "member": 2, "round": 0}
        assert "actor" not in d and "addr" not in d and "data" not in d

    def test_kinds_closed_set(self):
        assert "arrive" in ev.EVENT_KINDS
        assert "commit" in ev.EVENT_KINDS
        assert len(ev.EVENT_KINDS) == len(set(ev.EVENT_KINDS))


class TestEventCap:
    def test_cap_counts_dropped(self):
        mon = ev.SyncMonitor(max_events=3)
        for i in range(5):
            mon.on_signal_fire(type("S", (), {"name": f"s{i}"})(), now=float(i))
        assert len(mon.events) == 3
        assert mon.dropped == 2


class TestScopeRegistration:
    def test_range_membership(self):
        mon = ev.SyncMonitor()
        group = GridGroup(V100, blocks_per_sm=1, threads_per_block=64, sm_count=4)
        sid = mon.register_scope(group)
        info = mon.scopes[sid]
        assert info.kind == "GridGroup"
        assert info.members == (0, 1, 2, 3)
        assert info.release_name == "grid-release"
        # Registration is idempotent and emits exactly one scope event.
        assert mon.register_scope(group) == sid
        assert len(mon.events_of("scope")) == 1

    def test_gpu_ids_membership(self):
        from repro.sim.arch import get_node_spec
        from repro.sim.node import Node

        mon = ev.SyncMonitor()
        node = Node(get_node_spec("DGX1"), gpu_count=4)
        group = MultiGridGroup(node, 1, 32, gpu_ids=(1, 3))
        sid = mon.scope_id(group)
        assert mon.scopes[sid].members == (1, 3)

    def test_distinct_scopes_get_distinct_ids(self):
        mon = ev.SyncMonitor()
        a = GridGroup(V100, 1, 64, sm_count=2)
        b = GridGroup(V100, 1, 64, sm_count=2)
        assert mon.scope_id(a) != mon.scope_id(b)


class TestRoundSignalMap:
    def test_round_maps_release_signal(self):
        mon = ev.SyncMonitor()
        ev.install(mon)
        group = GridGroup(V100, 1, 64, sm_count=2)
        rnd = group.round_state(0)
        assert mon.round_of_signal(id(rnd.release)) == (mon.scope_id(group), 0)
        assert mon.round_of_signal(12345) is None


class TestMemoryHooks:
    def test_capture_memory_flag_gates_recording(self):
        from repro.sim.memory import SharedMemory

        mon = ev.SyncMonitor(capture_memory=False)
        ev.install(mon)
        mem = SharedMemory(2)
        mem.store(0, 0, 1.0)
        mem.load(1, 0)
        mem.commit()
        assert mon.events_of("store", "load", "commit") == []

    def test_memory_events_recorded_when_enabled(self):
        from repro.sim.memory import SharedMemory

        mon = ev.SyncMonitor(capture_memory=True)
        ev.install(mon)
        mem = SharedMemory(2)
        mem.store(0, 1, 4.2, volatile=True)
        mem.load(1, 1)
        mem.commit_thread(0)
        kinds = [e.kind for e in mon.events]
        assert kinds == ["store", "load", "commit"]
        store = mon.events[0]
        assert store.actor == 0 and store.addr == 1
        assert store.data["volatile"] is True
        assert mon.events[2].actor == 0  # per-thread fence keeps the actor
