"""Integration of the sanitizer with Scenario / CLI / reports / runner."""

import pytest

from repro.experiments.base import ExperimentReport, merge_reports
from repro.experiments.cli import main as cli_main
from repro.experiments.service.workers import _run_driver
from repro.experiments.scenario import Scenario
from repro.sanitize import events as ev
from repro.sim.arch import V100
from repro.sim.engine import BlockedWaiter, DeadlockError
from repro.sync.groups import GridGroup


@pytest.fixture(autouse=True)
def _no_leaked_monitor():
    yield
    ev.uninstall()


class TestScenarioField:
    def test_default_is_none(self):
        assert Scenario().sanitize is None

    def test_off_normalizes_to_none(self):
        assert Scenario(sanitize="off").sanitize is None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown sanitize mode"):
            Scenario(sanitize="everything")

    def test_off_hashes_like_default(self):
        # "off" must not perturb the content hash: cached unsanitized
        # artifacts stay valid when --sanitize off is passed explicitly.
        assert Scenario(sanitize="off").content_hash == Scenario().content_hash
        assert "sanitize" not in Scenario(sanitize="off").to_dict()

    def test_active_mode_changes_hash_and_round_trips(self):
        s = Scenario(sanitize="full")
        assert s.content_hash != Scenario().content_hash
        assert s.to_dict()["sanitize"] == "full"
        assert Scenario.from_dict(s.to_dict()).sanitize == "full"
        assert "sanitize=full" in s.describe()

    def test_override_string_path(self):
        from repro.experiments.scenario import apply_overrides

        s = apply_overrides(Scenario(), ["sanitize=racecheck"])
        assert s.sanitize == "racecheck"


class TestCliValidation:
    def test_unknown_sanitize_mode_exits_2(self, capsys):
        assert cli_main(["--sanitize", "bogus"]) == 2
        assert "unknown sanitize mode" in capsys.readouterr().err

    def test_resume_rejects_sanitize(self, tmp_path, capsys):
        journal = tmp_path / "sweep.journal"
        journal.write_text("")
        rc = cli_main(["--resume", str(journal), "--sanitize", "full"])
        assert rc == 2
        assert "--resume" in capsys.readouterr().err


class TestReportPayload:
    def _report(self, sanitizer=None):
        rep = ExperimentReport(exp_id="x", title="X")
        rep.add("row", paper=1.0, measured=1.0, unit="ns")
        rep.sanitizer = sanitizer
        return rep

    def test_omitted_when_unset(self):
        assert "sanitizer" not in self._report().to_dict()

    def test_round_trip_and_render(self):
        payload = {
            "mode": "full",
            "events": 12,
            "findings": [
                {
                    "rule": "SYNC-DIVERGENCE",
                    "severity": "error",
                    "message": "members [2, 3] never arrived",
                    "anchor": "docs/sanitize.md#sync-divergence",
                }
            ],
        }
        rep = self._report(payload)
        back = ExperimentReport.from_dict(rep.to_dict())
        assert back.sanitizer == payload
        text = back.render()
        assert "sanitizer[full]: 1 finding(s), 12 events" in text
        assert "SYNC-DIVERGENCE" in text

    def test_merge_combines_payloads(self):
        a = self._report({"mode": "full", "events": 3, "findings": []})
        b = self._report(
            {"mode": "full", "events": 4, "findings": [{"rule": "R"}]}
        )
        merged = merge_reports("x", "X", [a, b])
        assert merged.sanitizer["mode"] == "full"
        assert merged.sanitizer["events"] == 7
        assert len(merged.sanitizer["findings"]) == 1

    def test_merge_ignores_unsanitized(self):
        merged = merge_reports("x", "X", [self._report(), self._report()])
        assert merged.sanitizer is None


class _Spec:
    """Minimal stand-in for an ExperimentSpec (only .driver is used)."""

    def __init__(self, driver):
        self.driver = driver


class TestRunDriver:
    def test_unsanitized_passthrough(self):
        def driver(scenario):
            assert ev.MONITOR is None
            return ExperimentReport(exp_id="x", title="X")

        rep = _run_driver(_Spec(driver), Scenario())
        assert rep.sanitizer is None

    def test_sanitized_attaches_summary(self):
        def driver(scenario):
            assert ev.MONITOR is not None
            GridGroup(V100, 1, 64, sm_count=2).simulate()
            return ExperimentReport(exp_id="x", title="X")

        rep = _run_driver(_Spec(driver), Scenario(sanitize="full"))
        assert rep.sanitizer["mode"] == "full"
        assert rep.sanitizer["events"] > 0
        assert rep.sanitizer["findings"] == []

    def test_deadlock_message_carries_findings(self):
        def driver(scenario):
            group = GridGroup(V100, 1, 64, sm_count=4)
            group.simulate(participating_blocks=2)

        with pytest.raises(DeadlockError) as excinfo:
            _run_driver(_Spec(driver), Scenario(sanitize="synccheck"))
        msg = str(excinfo.value)
        assert "sanitizer findings:" in msg
        assert "SYNC-DIVERGENCE" in msg
        assert "DEADLOCK-BLAME" in msg
        assert ev.MONITOR is None  # session unwound despite the raise


class TestStructuredDeadlock:
    def test_waiters_populated_without_sanitizer(self):
        # The structured blame rides on DeadlockError even with the
        # sanitizer off — the engine-level half of the bug fix.
        group = GridGroup(V100, 1, 64, sm_count=4)
        with pytest.raises(DeadlockError) as excinfo:
            group.simulate(participating_blocks=2)
        waiters = excinfo.value.waiters
        assert waiters and all(isinstance(w, BlockedWaiter) for w in waiters)
        kinds = {w.wait_kind for w in waiters}
        assert kinds == {"signal"}
        assert any(w.target_name.startswith("grid-release") for w in waiters)
        # Sorted, and each record renders to a human-readable line.
        assert [w.process for w in waiters] == sorted(w.process for w in waiters)
        assert "blocked on signal" in waiters[0].describe()

    def test_message_unchanged_by_waiters(self):
        # Byte-compat: the structured records must not alter the message
        # the pinned pitfall experiments assert on.
        plain = DeadlockError(["a", "b"])
        rich = DeadlockError(
            ["a", "b"], waiters=[BlockedWaiter("a", "signal", "s", None)]
        )
        assert str(plain) == str(rich)
