"""Tests for ASCII table and heat-map rendering."""

from __future__ import annotations


from repro.viz.heatmap import render_heatmap, render_heatmap_pair
from repro.viz.tables import format_value, render_table


class TestFormatValue:
    def test_none_is_dash(self):
        assert format_value(None) == "-"

    def test_bools(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_float_precision_tiers(self):
        assert format_value(0.0) == "0"
        assert format_value(3.14159) == "3.14"
        assert format_value(123.456) == "123.5"
        assert format_value(123456.0) == "123,456"

    def test_strings_pass_through(self):
        assert format_value("abc") == "abc"


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        out = render_table(["a", "b"], [[1, 2.5], ["x", None]], title="T")
        assert "T" in out
        assert "| a" in out or " a |" in out
        assert "2.50" in out
        assert "-" in out

    def test_empty_rows_ok(self):
        out = render_table(["col"], [])
        assert "col" in out

    def test_column_alignment(self):
        out = render_table(["h"], [[1], [100000]])
        lines = [l for l in out.splitlines() if l.startswith("|")]
        assert len({len(l) for l in lines}) == 1  # all rows same width


class TestRenderHeatmap:
    def test_layout_matches_paper_axes(self):
        cells = {(1, 32): 1.5, (2, 64): 2.5}
        out = render_heatmap(cells, title="HM")
        assert "HM" in out
        assert "1024" in out  # thread columns
        assert "1.50" in out and "2.50" in out

    def test_missing_cells_blank(self):
        out = render_heatmap({(1, 32): 1.0})
        # Row for 32 blocks/SM exists but has no values.
        row32 = [l for l in out.splitlines() if l.strip().startswith("32")][0]
        assert "1.00" not in row32

    def test_pair_reports_error_stats(self):
        measured = {(1, 32): 1.1}
        paper = {(1, 32): 1.0}
        out = render_heatmap_pair(measured, paper, title="X")
        assert "relative error" in out
        assert "10.0%" in out
