"""Tests for the iterative-stencil application."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.stencil import (
    stencil_multi_kernel,
    stencil_persistent,
    stencil_reference,
    stencil_strategy_crossover,
)


class TestReference:
    def test_zero_steps_is_identity(self):
        u = np.arange(10.0)
        np.testing.assert_array_equal(stencil_reference(u, 0), u)

    def test_boundaries_fixed(self):
        u = np.array([1.0, 5.0, 5.0, 5.0, 9.0])
        out = stencil_reference(u, 20)
        assert out[0] == 1.0 and out[-1] == 9.0

    def test_converges_to_linear_profile(self):
        u = np.zeros(9)
        u[0], u[-1] = 0.0, 8.0
        out = stencil_reference(u, 2000)
        np.testing.assert_allclose(out, np.linspace(0, 8, 9), atol=1e-6)

    def test_validates_input(self):
        with pytest.raises(ValueError):
            stencil_reference(np.zeros(2), 1)
        with pytest.raises(ValueError):
            stencil_reference(np.zeros(10), -1)

    @given(
        st.lists(st.floats(-10, 10), min_size=3, max_size=64),
        st.integers(0, 30),
    )
    @settings(max_examples=40, deadline=None)
    def test_mean_bounded_by_extremes(self, vals, steps):
        """Jacobi smoothing never exceeds the initial min/max (maximum
        principle)."""
        u = np.array(vals)
        out = stencil_reference(u, steps)
        assert out.max() <= u.max() + 1e-9
        assert out.min() >= u.min() - 1e-9


class TestStrategiesAgree:
    @pytest.fixture(scope="class")
    def initial(self):
        return np.random.default_rng(3).uniform(size=2048)

    def test_multi_kernel_matches_reference(self, spec, initial):
        r = stencil_multi_kernel(spec, initial, steps=25)
        assert r.matches(stencil_reference(initial, 25))

    def test_persistent_matches_reference(self, spec, initial):
        r = stencil_persistent(spec, initial, steps=25)
        assert r.matches(stencil_reference(initial, 25))

    def test_steps_validated(self, v100, initial):
        with pytest.raises(ValueError):
            stencil_multi_kernel(v100, initial, steps=0)
        with pytest.raises(ValueError):
            stencil_persistent(v100, initial, steps=0)

    def test_persistent_rejects_bad_occupancy(self, v100, initial):
        with pytest.raises(ValueError, match="co-resident"):
            stencil_persistent(v100, initial, 5, threads_per_block=1024,
                               blocks_per_sm=4)


class TestTradeoff:
    def test_persistent_overhead_is_grid_sync(self, v100):
        from repro.sim.device import grid_sync_latency_ns

        initial = np.zeros(4096)
        r = stencil_persistent(v100, initial, steps=10)
        assert r.per_step_overhead_ns == pytest.approx(
            grid_sync_latency_ns(v100, 2, 256)
        )

    def test_multi_kernel_overhead_near_null_latency_for_small_grids(self, v100):
        initial = np.zeros(4096)
        r = stencil_multi_kernel(v100, initial, steps=10)
        # Small steps cannot hide the dispatch pipeline: ~Table I total.
        assert r.per_step_overhead_ns == pytest.approx(8888.0, rel=0.15)

    def test_persistent_wins_small_grids(self, v100):
        r = stencil_strategy_crossover(v100, 1 << 14, steps=50)
        assert r["winner"] == "persistent"
        assert r["reused_shared_memory"]
        assert r["correct"]

    def test_strategies_converge_for_huge_grids(self, v100):
        r = stencil_strategy_crossover(v100, 1 << 28, steps=50)
        # Bandwidth-bound regime: within a few percent either way.
        ratio = r["persistent_us"] / r["multi_kernel_us"]
        assert 0.9 < ratio < 1.1

    def test_crossover_exists_between_regimes(self, v100):
        small = stencil_strategy_crossover(v100, 1 << 14, steps=50)
        huge = stencil_strategy_crossover(v100, 1 << 28, steps=50)
        assert small["persistent_us"] / small["multi_kernel_us"] < \
            huge["persistent_us"] / huge["multi_kernel_us"]
