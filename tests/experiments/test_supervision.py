"""Supervised-execution tests: crash isolation, timeout, retry, claims.

Every failure is injected deterministically through
:mod:`repro.experiments.faults`; nothing here depends on races or luck.
The fork start method (Linux default) lets programmatic plans reach pool
workers, and the runner additionally ships the active plan inside each
worker payload, so these tests hold under ``spawn`` too.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.experiments import faults, runner
from repro.experiments.service import cache as service_cache
from repro.experiments.faults import FaultRule
from repro.experiments.journal import SweepJournal, load_journal
from repro.experiments.scenario import Scenario

V100 = Scenario(gpus=("V100",))
P100 = Scenario(gpus=("P100",))

FAST = runner.RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)


@pytest.fixture(autouse=True)
def clean_plan(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.set_plan(None)
    yield
    faults.set_plan(None)


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "cache"


class TestRetryPolicy:
    def test_default_retries_transient_kinds_only(self):
        policy = runner.RetryPolicy()
        for kind in (runner.KIND_CRASH, runner.KIND_TIMEOUT, runner.KIND_TRANSIENT):
            assert policy.is_retryable(kind)
        assert not policy.is_retryable(runner.KIND_ERROR)

    def test_should_retry_respects_max_attempts(self):
        policy = runner.RetryPolicy(max_attempts=2)
        assert policy.should_retry(runner.KIND_CRASH, 1)
        assert not policy.should_retry(runner.KIND_CRASH, 2)

    def test_custom_retryable_predicate(self):
        policy = runner.RetryPolicy(retryable=lambda kind: True)
        assert policy.should_retry(runner.KIND_ERROR, 1)

    def test_backoff_is_exponential_and_capped(self):
        policy = runner.RetryPolicy(base_delay=0.1, max_delay=0.3, jitter=0.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(4) == pytest.approx(0.3)  # capped

    def test_jitter_is_deterministic_and_bounded(self):
        policy = runner.RetryPolicy(base_delay=0.1, jitter=0.5)
        a = policy.backoff(1, key="table4/abc")
        b = policy.backoff(1, key="table4/abc")
        other = policy.backoff(1, key="fig8/def")
        assert a == b  # reproducible run to run
        assert 0.1 <= a < 0.15
        assert a != other  # decorrelated across points

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            runner.RetryPolicy(max_attempts=0)

    def test_no_retry_is_single_attempt(self):
        assert runner.NO_RETRY.max_attempts == 1


class TestCrashIsolation:
    def test_worker_kill_does_not_lose_siblings(self, cache_dir):
        # One point's worker dies on its first attempt; every point of the
        # sweep must still complete, and the casualty's counters must show
        # the crash.
        with faults.injected(
            FaultRule(kind="kill", match="table4", scenario="P100", attempts=1)
        ):
            results = runner.run_points(
                [("table4", V100), ("table4", P100), ("table1", V100)],
                jobs=2, cache_dir=cache_dir, retry=FAST,
            )
        assert all(r.ok for r in results)
        assert sum(r.crashes for r in results) >= 1
        crashed = [r for r in results if r.crashes]
        assert all(r.attempts > 1 for r in crashed)

    def test_unrecoverable_crash_fails_with_kind_crash(self, cache_dir):
        # The worker dies on *every* attempt: the point fails with kind
        # "crash" after exhausting the policy, and healthy siblings from
        # other experiments still land.
        with faults.injected(
            FaultRule(kind="kill", match="table4", attempts=99)
        ):
            results = runner.run_points(
                [("table1", V100), ("table4", V100)],
                jobs=2, cache_dir=cache_dir,
                retry=runner.RetryPolicy(max_attempts=2, base_delay=0.01),
            )
        by_id = {r.exp_id: r for r in results}
        assert by_id["table1"].ok
        # Suspect isolation: the innocent sibling is never charged a
        # crash attempt just because it shared the pool with the culprit.
        assert by_id["table1"].crashes == 0
        dead = by_id["table4"]
        assert not dead.ok
        assert dead.error_kind == runner.KIND_CRASH
        assert dead.attempts == 2 and dead.crashes == 2

    def test_serial_jobs1_survives_kill_fault(self, cache_dir):
        # In-process execution downgrades the kill to a transient raise
        # (the process must survive) and the retry makes the point pass.
        with faults.injected(
            FaultRule(kind="kill", match="table4", attempts=1)
        ):
            results = runner.run_points(
                [("table4", V100)], jobs=1, cache_dir=cache_dir, retry=FAST,
            )
        assert results[0].ok and results[0].attempts == 2


class TestFlakyRetry:
    def test_twice_flaky_point_completes_on_third_attempt(self, cache_dir):
        with faults.injected(FaultRule(kind="flaky", match="table4", attempts=2)):
            results = runner.run_points(
                [("table4", V100)], jobs=1, cache_dir=cache_dir, retry=FAST,
            )
        assert results[0].ok
        assert results[0].attempts == 3
        assert results[0].retries == 2

    def test_flaky_in_pool_workers(self, cache_dir):
        with faults.injected(FaultRule(kind="flaky", match="table4", attempts=1)):
            results = runner.run_points(
                [("table4", V100), ("table4", P100)],
                jobs=2, cache_dir=cache_dir, retry=FAST,
            )
        assert all(r.ok for r in results)
        assert all(r.attempts == 2 for r in results)

    def test_no_retry_surfaces_transient_failure(self, cache_dir):
        with faults.injected(FaultRule(kind="flaky", match="table4", attempts=2)):
            results = runner.run_points(
                [("table4", V100)], jobs=1, cache_dir=cache_dir,
                retry=runner.NO_RETRY,
            )
        assert not results[0].ok
        assert results[0].error_kind == runner.KIND_TRANSIENT
        assert results[0].attempts == 1


class TestFailFast:
    def test_deterministic_error_never_retried(self, cache_dir):
        with faults.injected(FaultRule(kind="error", match="table4", attempts=99)):
            results = runner.run_points(
                [("table4", V100)], jobs=1, cache_dir=cache_dir, retry=FAST,
            )
        assert not results[0].ok
        assert results[0].error_kind == runner.KIND_ERROR
        assert results[0].attempts == 1  # failed fast

    def test_deterministic_error_fails_fast_in_pool(self, cache_dir):
        with faults.injected(FaultRule(kind="error", match="table4", attempts=99)):
            results = runner.run_points(
                [("table4", V100), ("table1", V100)],
                jobs=2, cache_dir=cache_dir, retry=FAST,
            )
        by_id = {r.exp_id: r for r in results}
        assert not by_id["table4"].ok and by_id["table4"].attempts == 1
        assert by_id["table1"].ok


class TestTimeout:
    def test_stuck_point_times_out_and_retries(self, cache_dir):
        # Attempt 1 sleeps far past the deadline; the supervisor kills the
        # pool, records a timeout, and attempt 2 (no delay rule) passes.
        with faults.injected(
            FaultRule(kind="delay", match="table4", delay=30.0, attempts=1)
        ):
            t0 = time.monotonic()
            results = runner.run_points(
                [("table4", V100)], jobs=2, cache_dir=cache_dir,
                timeout=0.8,
                retry=runner.RetryPolicy(max_attempts=2, base_delay=0.01),
            )
            elapsed = time.monotonic() - t0
        assert results[0].ok
        assert results[0].timeouts == 1
        assert results[0].attempts == 2
        assert elapsed < 10  # the 30s sleep was killed, not awaited

    def test_timeout_exhaustion_fails_with_kind_timeout(self, cache_dir):
        with faults.injected(
            FaultRule(kind="delay", match="table4", delay=30.0, attempts=99)
        ):
            results = runner.run_points(
                [("table4", V100)], jobs=1, cache_dir=cache_dir,
                timeout=0.5, retry=runner.NO_RETRY,
            )
        assert not results[0].ok
        assert results[0].error_kind == runner.KIND_TIMEOUT
        assert "wall-clock timeout" in results[0].error

    def test_timeout_forces_pool_even_for_jobs1(self, cache_dir):
        # jobs=1 + timeout must still enforce the deadline (via a
        # single-worker pool) instead of silently ignoring it.
        with faults.injected(
            FaultRule(kind="delay", match="table4", delay=30.0, attempts=1)
        ):
            results = runner.run_points(
                [("table4", V100)], jobs=1, cache_dir=cache_dir,
                timeout=0.8,
                retry=runner.RetryPolicy(max_attempts=2, base_delay=0.01),
            )
        assert results[0].ok and results[0].timeouts == 1

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            runner.run_points([("table4", V100)], timeout=0.0)


class TestQuarantine:
    def test_corrupt_entry_quarantined_and_warned_once(self, cache_dir, capsys):
        first = runner.execute_point("table4", V100, cache_dir=cache_dir)
        [path] = list(cache_dir.glob("table4-*.json"))
        path.write_text("{definitely not json")
        res = runner.execute_point("table4", V100, cache_dir=cache_dir)
        assert res.ok and not res.cached
        assert res.report == first.report
        # The bad bytes moved aside (recomputed once, not re-parsed forever)
        # and a fresh entry took the key back.
        assert path.with_name(path.name + ".corrupt").exists()
        assert path.exists()
        err = capsys.readouterr().err
        assert err.count("corrupt result cache entry") == 1

    def test_quarantined_entry_not_reparsed(self, cache_dir, capsys, monkeypatch):
        monkeypatch.setattr(service_cache, "_QUARANTINE_WARNED", set())
        runner.execute_point("table4", V100, cache_dir=cache_dir)
        [path] = list(cache_dir.glob("table4-*.json"))
        path.write_text("{broken")
        runner.execute_point("table4", V100, cache_dir=cache_dir)
        capsys.readouterr()
        res = runner.execute_point("table4", V100, cache_dir=cache_dir)
        assert res.cached  # healthy entry back in place
        assert "corrupt" not in capsys.readouterr().err


class TestCacheClaims:
    def test_claim_excludes_second_acquirer(self, tmp_path):
        path = tmp_path / "entry.json"
        a = service_cache.CacheClaim(path)
        b = service_cache.CacheClaim(path)
        assert a.acquire()
        assert not b.acquire()
        a.release()
        assert b.acquire()
        b.release()

    def test_dead_owner_claim_is_stale_and_taken_over(self, tmp_path):
        scen = V100
        path = service_cache.cache_path(tmp_path, "table4", scen)
        tmp_path.mkdir(exist_ok=True)
        claim_file = path.with_name(path.name + ".claim")
        # Pid far above pid_max: provably not a live process.
        claim_file.write_text(json.dumps({"pid": 2**22 + 12345, "time": time.time()}))
        t0 = time.monotonic()
        res = runner.execute_point("table4", scen, cache_dir=tmp_path)
        assert res.ok and not res.cached
        assert time.monotonic() - t0 < 5.0  # takeover, not a TTL wait
        assert not claim_file.exists()

    def test_torn_claim_file_is_stale(self, tmp_path):
        path = tmp_path / "entry.json"
        claim = service_cache.CacheClaim(path)
        claim.path.write_text("{torn")
        assert claim.is_stale()

    def test_live_claim_waits_for_published_result(self, tmp_path, cache_dir):
        # A rival (simulated by this very process: live pid) holds the
        # claim; a second writer must wait and then consume the published
        # report instead of recomputing.
        fresh = runner.execute_point("table4", V100, cache_dir=cache_dir)
        path = service_cache.cache_path(tmp_path, "table4", V100)
        tmp_path.mkdir(exist_ok=True)
        claim_file = path.with_name(path.name + ".claim")
        claim_file.write_text(json.dumps({"pid": os.getpid(), "time": time.time()}))

        def publish():
            time.sleep(0.3)
            service_cache.cache_store(path, fresh.report)
            claim_file.unlink()

        thread = threading.Thread(target=publish)
        thread.start()
        t0 = time.monotonic()
        res = runner.execute_point("table4", V100, cache_dir=tmp_path)
        thread.join()
        assert res.ok and res.cached
        assert res.report == fresh.report
        assert time.monotonic() - t0 >= 0.25  # actually waited

    def test_claims_cleaned_up_after_success(self, cache_dir):
        runner.execute_point("table4", V100, cache_dir=cache_dir)
        assert not list(cache_dir.glob("*.claim"))

    def test_failed_point_releases_claim(self, cache_dir):
        with faults.injected(FaultRule(kind="error", match="table4")):
            runner.execute_point("table4", V100, cache_dir=cache_dir)
        assert not list(cache_dir.glob("*.claim"))


class TestJournalIntegration:
    def test_run_points_journals_progress(self, cache_dir, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        points = [("table4", V100), ("table4", P100)]
        runner.run_points(points, jobs=1, cache_dir=cache_dir, journal=journal)
        journal.close()
        state = load_journal(tmp_path / "sweep.jsonl")
        assert state.points == points
        assert state.finished == {0, 1}
        assert state.unfinished == []
        assert state.code_version == runner.code_version()

    def test_failures_and_retries_are_journaled(self, cache_dir, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        with faults.injected(FaultRule(kind="flaky", match="table4", attempts=1)):
            runner.run_points(
                [("table4", V100)], jobs=1, cache_dir=cache_dir,
                retry=FAST, journal=journal,
            )
        journal.close()
        records = [
            json.loads(line)
            for line in (tmp_path / "sweep.jsonl").read_text().splitlines()
        ]
        events = [r["event"] for r in records]
        assert events == ["sweep", "start", "fail", "start", "finish"]
        assert records[2]["kind"] == "transient"

    def test_pool_path_journals_too(self, cache_dir, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        points = [("table4", V100), ("table4", P100), ("table1", V100)]
        runner.run_points(points, jobs=2, cache_dir=cache_dir, journal=journal)
        journal.close()
        state = load_journal(tmp_path / "sweep.jsonl")
        assert state.finished == {0, 1, 2}


class TestSupervisedEquivalence:
    def test_supervised_results_match_serial(self, cache_dir):
        points = [("table4", V100), ("table4", P100), ("table1", V100)]
        serial = runner.run_points(points, jobs=1, use_cache=False)
        supervised = runner.run_points(
            points, jobs=2, use_cache=False, timeout=120.0,
        )
        for a, b in zip(serial, supervised):
            assert a.report == b.report
            assert a.report.render() == b.report.render()
