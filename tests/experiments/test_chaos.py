"""Chaos suite: the real CLI under deterministic fault plans.

Everything here runs ``repro-experiments`` as a *subprocess* with
``REPRO_FAULT_PLAN`` set, so the faults fire inside genuine pool workers
of a genuine CLI process — worker kills really break a
``ProcessPoolExecutor``, timeouts really terminate stuck processes, and
a mid-sweep SIGKILL really orphans a journal that ``--resume`` must then
pick up.  CI runs this suite standalone (``pytest -m chaos``) as its
chaos job; it is also part of the normal tier-1 run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.faults import FaultPlan, FaultRule

pytestmark = pytest.mark.chaos

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run_cli(args, fault_plan, cache_dir, timeout=120, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_EXPERIMENTS_CACHE"] = str(cache_dir)
    env.pop("REPRO_FAULT_PLAN", None)
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = fault_plan.to_json()
    if extra_env:
        env.update(extra_env)
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.cli", *args],
        capture_output=True, text=True, timeout=timeout, env=env,
    )


class TestChaosWorkerKill:
    def test_killed_worker_recovered_under_jobs2(self, tmp_path):
        # Acceptance scenario: a --jobs sweep with an injected worker
        # crash AND an injected twice-flaky point completes with a full
        # merged report, attempt counters visible in --json.
        plan = FaultPlan((
            FaultRule(kind="kill", match="table4", scenario="P100", attempts=1),
            FaultRule(kind="flaky", match="table1", attempts=2),
        ))
        proc = _run_cli(
            ["table4", "table1", "--json", "--jobs", "2", "--retries", "2",
             "--cache-dir", str(tmp_path)],
            plan, tmp_path,
        )
        assert proc.returncode == 0, proc.stderr
        reports = json.loads(proc.stdout)
        assert [r["exp_id"] for r in reports] == ["table4", "table1"]
        assert all(r["rows"] for r in reports)
        stats = {r["exp_id"]: r["execution"] for r in reports}
        assert stats["table4"]["crashes"] >= 1
        assert stats["table1"]["retries"] == 2  # twice-flaky took 3 attempts
        assert all(s["failed"] == 0 for s in stats.values())


class TestChaosTimeout:
    def test_stuck_worker_killed_and_retried(self, tmp_path):
        plan = FaultPlan((
            FaultRule(kind="delay", match="table4", scenario="V100",
                      delay=30.0, attempts=1),
        ))
        t0 = time.monotonic()
        proc = _run_cli(
            ["table4", "--json", "--jobs", "2", "--timeout", "1.5",
             "--retries", "1", "--cache-dir", str(tmp_path)],
            plan, tmp_path,
        )
        elapsed = time.monotonic() - t0
        assert proc.returncode == 0, proc.stderr
        stats = json.loads(proc.stdout)[0]["execution"]
        assert stats["timeouts"] >= 1
        assert stats["failed"] == 0
        assert elapsed < 30  # the 30s sleeper was killed, not awaited


class TestChaosCacheWrite:
    def test_cache_write_failure_degrades_to_warning(self, tmp_path):
        plan = FaultPlan((FaultRule(kind="cache-write", match="*"),))
        proc = _run_cli(
            ["table4", "--json", "--jobs", "2", "--cache-dir", str(tmp_path)],
            plan, tmp_path,
        )
        assert proc.returncode == 0, proc.stderr
        reports = json.loads(proc.stdout)
        assert reports[0]["rows"]
        assert "could not write result cache entry" in proc.stderr
        # Nothing was published under the injected failure.
        assert not list(tmp_path.glob("table4-*.json"))


class TestChaosKillMidSweepThenResume:
    def test_sigkilled_sweep_resumes_only_unfinished(self, tmp_path):
        # The sweep's table4 points hang on an injected 60s delay while
        # the table5 points finish; SIGKILL the whole CLI once the journal
        # shows the first finishes, then resume without the fault plan.
        journal = tmp_path / "sweep-journal.jsonl"
        plan = FaultPlan((
            FaultRule(kind="delay", match="table4", delay=60.0, attempts=9),
        ))
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_EXPERIMENTS_CACHE"] = str(tmp_path)
        env["REPRO_FAULT_PLAN"] = plan.to_json()
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.cli",
             "table5", "table4", "--json", "--jobs", "2",
             "--cache-dir", str(tmp_path)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        )
        try:
            deadline = time.monotonic() + 60
            finished = 0
            while time.monotonic() < deadline:
                if journal.exists():
                    finished = sum(
                        1 for line in journal.read_text().splitlines()
                        if '"finish"' in line
                    )
                    if finished >= 2:  # both table5 points landed
                        break
                if proc.poll() is not None:
                    pytest.fail(
                        "sweep exited before it could be killed: "
                        + proc.communicate()[1].decode(errors="replace")
                    )
                time.sleep(0.05)
            assert finished >= 2, "table5 points never finished"
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        resumed = _run_cli(
            ["--resume", str(journal), "--json", "--cache-dir", str(tmp_path)],
            None, tmp_path,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming sweep" in resumed.stderr
        reports = json.loads(resumed.stdout)
        assert [r["exp_id"] for r in reports] == ["table5", "table4"]
        stats = {r["exp_id"]: r["execution"] for r in reports}
        # Finished points came back from the cache (not re-executed)...
        assert stats["table5"]["cached"] == 2
        # ...and the interrupted points really executed this time.
        assert stats["table4"]["failed"] == 0
        assert all(r["rows"] for r in reports)


class TestChaosKillMidSweepThenStatus:
    def test_sigkilled_sharded_sweep_reports_progress_and_partials(
        self, tmp_path
    ):
        # Streaming-aggregation acceptance: SIGKILL a sharded sweep
        # mid-flight, then `status` must report per-shard progress from
        # the journal alone, and `status --partial` must render a merged
        # report from the finished points' cache entries.
        journal = tmp_path / "sweep-journal.jsonl"
        plan = FaultPlan((
            FaultRule(kind="delay", match="table4", delay=60.0, attempts=9),
        ))
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_EXPERIMENTS_CACHE"] = str(tmp_path)
        env["REPRO_FAULT_PLAN"] = plan.to_json()
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.cli",
             "table5", "table4", "--json", "--jobs", "2", "--shards", "2",
             "--cache-dir", str(tmp_path)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        )
        try:
            deadline = time.monotonic() + 60
            finished = 0
            while time.monotonic() < deadline:
                if journal.exists():
                    finished = sum(
                        1 for line in journal.read_text().splitlines()
                        if '"finish"' in line
                    )
                    if finished >= 2:  # both table5 points landed
                        break
                if proc.poll() is not None:
                    pytest.fail(
                        "sweep exited before it could be killed: "
                        + proc.communicate()[1].decode(errors="replace")
                    )
                time.sleep(0.05)
            assert finished >= 2, "table5 points never finished"
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        status = _run_cli(["status", str(journal), "--json"], None, tmp_path)
        assert status.returncode == 0, status.stderr
        payload = json.loads(status.stdout)
        assert payload["shards"] == 2
        assert payload["finished"] >= 2
        assert payload["experiments"]["table5"]["finished"] == 2
        # Per-shard attribution survives the kill: every finish is
        # accounted to the shard whose pool ran it.
        shard_finished = sum(
            s["finished"] for s in payload["shard_progress"].values()
        )
        assert shard_finished == payload["finished"]

        partial = _run_cli(
            ["status", str(journal), "--partial", "--cache-dir",
             str(tmp_path)],
            None, tmp_path,
        )
        assert partial.returncode == 0, partial.stderr
        assert "(partial: 2/2 point(s) finished)" in partial.stdout
        assert "Table 5" in partial.stdout or "table5" in partial.stdout