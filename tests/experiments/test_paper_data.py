"""Integrity checks on the transcribed paper data."""

from __future__ import annotations

import pytest

from repro.experiments.paper_data import (
    FADD_LATENCY_CYCLES,
    FIG5_GRID_SYNC_US,
    FIG7_MULTIGRID_P100_US,
    FIG8_MULTIGRID_V100_US,
    TABLE1_NS,
    TABLE2,
    TABLE3,
    TABLE4,
    TABLE5_CYCLES,
    TABLE6_GBPS,
)


class TestHeatmapsWellFormed:
    @pytest.mark.parametrize("table", [FIG5_GRID_SYNC_US["V100"], FIG5_GRID_SYNC_US["P100"]])
    def test_fig5_cells_obey_occupancy(self, table):
        for (b, t) in table:
            assert b * t <= 2048, "published cells always co-reside"

    def test_fig8_panels_share_cell_grid(self):
        grids = [set(panel) for panel in FIG8_MULTIGRID_V100_US.values()]
        assert all(g == grids[0] for g in grids)

    def test_fig7_panels_share_cell_grid(self):
        grids = [set(panel) for panel in FIG7_MULTIGRID_P100_US.values()]
        assert all(g == grids[0] for g in grids)

    def test_multigrid_latency_grows_with_gpus_at_small_config(self):
        cell = (1, 32)
        vals = [FIG8_MULTIGRID_V100_US[n][cell] for n in (1, 2, 5, 6, 8)]
        assert vals == sorted(vals)

    def test_all_latencies_positive(self):
        for panel in (*FIG8_MULTIGRID_V100_US.values(), *FIG7_MULTIGRID_P100_US.values()):
            assert all(v > 0 for v in panel.values())


class TestTableConsistency:
    def test_table1_total_exceeds_overhead(self):
        for row in TABLE1_NS.values():
            assert row["kernel_total_latency"] > row["launch_overhead"]

    def test_table2_rows_match_across_archs(self):
        assert set(TABLE2["V100"]) == set(TABLE2["P100"])

    def test_table3_concurrency_is_littles_law(self):
        for arch in TABLE3:
            for row in TABLE3[arch].values():
                assert row["concurrency"] == pytest.approx(
                    row["bandwidth"] * row["latency"], rel=0.05
                )

    def test_table4_consistent_with_eq5(self):
        """The paper's own switching points follow Eq 5 from Table III."""
        for arch in TABLE4:
            t3 = TABLE3[arch]
            sync = TABLE4[arch]["warp"]["sync_latency"]
            thr_b = t3["1_thread"]["bandwidth"]
            thr_m = t3["1_warp"]["bandwidth"]
            nl = sync * thr_m * thr_b / (thr_m - thr_b)
            assert nl == pytest.approx(TABLE4[arch]["warp"]["n_large"], rel=0.03)

    def test_table5_nosync_fastest(self):
        for arch in TABLE5_CYCLES:
            rows = TABLE5_CYCLES[arch]
            assert min(rows, key=rows.get) == "nosync"

    def test_table6_theory_is_upper_bound(self):
        for arch in TABLE6_GBPS:
            theory = TABLE6_GBPS[arch]["theory"]
            for k, v in TABLE6_GBPS[arch].items():
                assert v <= theory

    def test_fadd_reference(self):
        assert FADD_LATENCY_CYCLES == {"V100": 4.0, "P100": 6.0}
