"""Tests for the experiment registry, report machinery, and CLI."""

from __future__ import annotations

import pytest

from repro.experiments.base import ComparisonRow, ExperimentReport
from repro.experiments.cli import main
from repro.experiments.registry import EXPERIMENTS, run_experiment


class TestReport:
    def test_rel_err(self):
        row = ComparisonRow("x", paper=100.0, measured=110.0)
        assert row.rel_err == pytest.approx(0.10)

    def test_rel_err_none_cases(self):
        assert ComparisonRow("x", None, 1.0).rel_err is None
        assert ComparisonRow("x", 0.0, 1.0).rel_err is None

    def test_summary_statistics(self):
        rep = ExperimentReport("id", "t")
        rep.add("a", 100.0, 110.0)
        rep.add("b", 100.0, 90.0)
        assert rep.mean_rel_err == pytest.approx(0.10)
        assert rep.max_rel_err == pytest.approx(0.10)

    def test_render_contains_rows_and_notes(self):
        rep = ExperimentReport("id", "Title")
        rep.add("metric", 1.0, 1.1, "us", note="hello")
        rep.notes.append("a note")
        rep.add_artifact("ARTIFACT")
        out = rep.render()
        for token in ("Title", "metric", "hello", "a note", "ARTIFACT", "+10.0%"):
            assert token in out


class TestRegistry:
    def test_covers_every_paper_artifact(self):
        expected = {
            "table1", "table2", "table3", "table4", "table5", "table6", "table8",
            "fig4", "fig5", "fig7", "fig8", "fig9", "fig15", "fig16", "fig18",
            "deadlock", "validation",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_id_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig999")

    @pytest.mark.parametrize("exp_id", ["table1", "table4", "table5", "fig18", "deadlock"])
    def test_fast_experiments_produce_clean_reports(self, exp_id):
        rep = run_experiment(exp_id)
        assert rep.exp_id == exp_id
        assert rep.rows
        assert rep.render()

    def test_reproduction_quality_gate(self):
        """Headline experiments must land within 10% mean error."""
        for exp_id in ("table1", "table4", "table5"):
            rep = run_experiment(exp_id)
            assert rep.mean_rel_err is not None and rep.mean_rel_err < 0.10, exp_id


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig16" in out

    def test_run_single(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "sum 32 doubles" in out

    def test_unknown_id_exit_code(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
