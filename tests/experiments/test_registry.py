"""Tests for the experiment registry, report machinery, and CLI."""

from __future__ import annotations

import json

import pytest

from repro.experiments.base import ComparisonRow, ExperimentReport
from repro.experiments.cli import main
from repro.experiments.registry import (
    EXPERIMENTS,
    filter_by_tags,
    known_tags,
    run_experiment,
)


class TestReport:
    def test_rel_err(self):
        row = ComparisonRow("x", paper=100.0, measured=110.0)
        assert row.rel_err == pytest.approx(0.10)

    def test_rel_err_none_cases(self):
        assert ComparisonRow("x", None, 1.0).rel_err is None
        assert ComparisonRow("x", 0.0, 1.0).rel_err is None

    def test_summary_statistics(self):
        rep = ExperimentReport("id", "t")
        rep.add("a", 100.0, 110.0)
        rep.add("b", 100.0, 90.0)
        assert rep.mean_rel_err == pytest.approx(0.10)
        assert rep.max_rel_err == pytest.approx(0.10)

    def test_render_contains_rows_and_notes(self):
        rep = ExperimentReport("id", "Title")
        rep.add("metric", 1.0, 1.1, "us", note="hello")
        rep.notes.append("a note")
        rep.add_artifact("ARTIFACT")
        out = rep.render()
        for token in ("Title", "metric", "hello", "a note", "ARTIFACT", "+10.0%"):
            assert token in out


class TestRegistry:
    def test_covers_every_paper_artifact(self):
        expected = {
            "table1", "table2", "table3", "table4", "table5", "table6", "table8",
            "fig4", "fig5", "fig7", "fig8", "fig9", "fig15", "fig16", "fig18",
            "deadlock", "validation", "sync_methods", "divergence",
            "pitfalls_sanitized",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_id_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig999")

    @pytest.mark.parametrize("exp_id", ["table1", "table4", "table5", "fig18", "deadlock"])
    def test_fast_experiments_produce_clean_reports(self, exp_id):
        rep = run_experiment(exp_id)
        assert rep.exp_id == exp_id
        assert rep.rows
        assert rep.render()

    def test_reproduction_quality_gate(self):
        """Headline experiments must land within 10% mean error."""
        for exp_id in ("table1", "table4", "table5"):
            rep = run_experiment(exp_id)
            assert rep.mean_rel_err is not None and rep.mean_rel_err < 0.10, exp_id


class TestSpecs:
    def test_ids_match_keys(self):
        for exp_id, spec in EXPERIMENTS.items():
            assert spec.id == exp_id

    def test_every_spec_has_scenarios_title_tags(self):
        for spec in EXPERIMENTS.values():
            assert spec.default_scenarios
            assert spec.title
            assert spec.tags

    def test_tolerances_match_current_reproduction(self):
        """Every default run must land inside the CLI's tolerance gate."""
        for spec in EXPERIMENTS.values():
            rep = run_experiment(spec.id)
            if spec.tolerance is not None and rep.mean_rel_err is not None:
                assert rep.mean_rel_err <= spec.tolerance, spec.id


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig16" in out

    def test_list_shows_titles_and_tags(self, capsys):
        main(["--list"])
        out = capsys.readouterr().out
        assert "Warp-level synchronization" in out  # title
        assert "[reduction, multi-gpu]" in out  # tags

    def test_run_single(self, capsys):
        assert main(["table5", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "sum 32 doubles" in out

    def test_unknown_id_exit_code(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_json_output_parses_and_is_lossless(self, capsys, tmp_path):
        assert main(["table4", "--json", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        [data] = json.loads(out)
        rep = ExperimentReport.from_dict(data)
        assert rep.exp_id == "table4"
        assert rep.rows and rep.scenario["points"]

    def test_jobs_matches_serial_output(self, capsys, tmp_path):
        assert main(["table4", "deadlock", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(["table4", "deadlock", "--jobs", "2", "--cache-dir", str(tmp_path)])
            == 0
        )
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_cache_roundtrip_output_identical(self, capsys, tmp_path):
        args = ["table4", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_scenario_override_narrows_gpus(self, capsys):
        assert main(["table4", "--no-cache", "--scenario", "gpus=P100"]) == 0
        out = capsys.readouterr().out
        # Rows for P100 only (the qualitative note still mentions both).
        assert "P100 warp sync latency" in out
        assert "V100 warp sync latency" not in out
        # Overrides collapsed both per-GPU defaults into one scenario; the
        # deduped point must run once, not once per default.
        assert out.count("P100 warp sync latency") == 1

    def test_gpu_count_override_clamps_sweeps(self, capsys):
        """--scenario gpu_count=4 must clamp Fig 8's paper sweep, not crash."""
        assert (
            main(["fig8", "--no-cache", "--scenario", "gpu_count=4"]) == 0
        )
        out = capsys.readouterr().out
        assert "V100 x4" in out and "x5" not in out

    def test_bad_scenario_override_exit_code(self, capsys):
        assert main(["table4", "--scenario", "gpus=K80"]) == 2
        assert "bad --scenario" in capsys.readouterr().err

    def test_driver_failure_exit_code(self, capsys, monkeypatch, tmp_path):
        from dataclasses import replace

        from repro.experiments import registry

        def boom(scenario):
            raise RuntimeError("smoke")

        monkeypatch.setitem(
            registry.EXPERIMENTS, "table4", replace(EXPERIMENTS["table4"], driver=boom)
        )
        assert main(["table4", "--cache-dir", str(tmp_path)]) == 1
        assert "smoke" in capsys.readouterr().err

    def test_tolerance_exceeded_exit_code(self, capsys, monkeypatch, tmp_path):
        from dataclasses import replace

        from repro.experiments import registry

        monkeypatch.setitem(
            registry.EXPERIMENTS,
            "table4",
            replace(EXPERIMENTS["table4"], tolerance=-1.0),
        )
        assert main(["table4", "--no-cache"]) == 1
        assert "exceeded tolerance" in capsys.readouterr().err


class TestTags:
    def test_known_tags_union(self):
        tags = known_tags()
        assert "smoke" in tags and "sync" in tags
        assert tags == tuple(sorted(tags))

    def test_filter_by_tags(self):
        ids = list(EXPERIMENTS)
        smoke = filter_by_tags(ids, ["smoke"])
        # CI's smoke subset, selected by tag instead of a name list.
        assert smoke == [
            "table1", "fig8", "sync_methods", "table4", "table5", "divergence",
            "deadlock", "pitfalls_sanitized", "validation",
        ]
        assert filter_by_tags(ids, ["warp", "block"]) == [
            "table2", "fig4", "table5", "fig18", "divergence"
        ]

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="known tags"):
            filter_by_tags(list(EXPERIMENTS), ["smoek"])

    def test_cli_list_filtered_by_tags(self, capsys):
        assert main(["--list", "--tags", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "validation" in out
        assert "fig16" not in out

    def test_cli_run_filtered_by_tags(self, capsys):
        assert main(["--tags", "model,warp", "table4", "table2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Predicted worker switching points" in out
        assert "Warp-level synchronization" in out

    def test_cli_bad_tag_exit_code(self, capsys):
        assert main(["--tags", "nope"]) == 2
        assert "bad --tags" in capsys.readouterr().err

    def test_cli_empty_tag_selection_exit_code(self, capsys):
        # Valid tag, but none of the named experiments carry it.
        assert main(["table4", "--tags", "warp"]) == 2
        assert "no experiments match" in capsys.readouterr().err
