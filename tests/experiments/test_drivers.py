"""End-to-end checks on the heavier experiment drivers.

These run the full sweeps once each and assert the paper's qualitative
claims plus quantitative error bounds — the acceptance criteria from
DESIGN.md §6.
"""

from __future__ import annotations

import pytest

from repro.experiments.exp_launch import run_fig9
from repro.experiments.exp_model import run_table3, run_validation
from repro.experiments.exp_reduction import run_fig15, run_fig16, run_table6
from repro.experiments.exp_sync import run_fig4, run_fig5, run_fig7, run_fig8, run_table2
from repro.experiments.summary import run_summary


class TestSyncDrivers:
    def test_table2_quality(self):
        rep = run_table2()
        assert rep.mean_rel_err < 0.05

    def test_fig4_saturation(self):
        rep = run_fig4()
        assert rep.mean_rel_err < 0.05

    def test_fig5_quality(self):
        rep = run_fig5()
        assert rep.mean_rel_err < 0.10
        assert any("blocks/SM" in n for n in rep.notes)

    def test_fig7_quality(self):
        rep = run_fig7()
        assert rep.mean_rel_err < 0.10

    def test_fig8_quality(self):
        rep = run_fig8()
        assert rep.mean_rel_err < 0.10
        assert any("plateau" in n or "hop" in n for n in rep.notes)


class TestLaunchDrivers:
    def test_fig9_anchors_and_claims(self):
        rep = run_fig9(gpu_counts=(1, 2, 5, 6, 8))
        assert rep.mean_rel_err < 0.08
        # The two qualitative claims recorded in the notes must both hold.
        assert any("True" in n for n in rep.notes)
        assert not any("False" in n for n in rep.notes)


class TestModelDrivers:
    def test_table3_quality(self):
        assert run_table3().mean_rel_err < 0.03

    def test_validation_cross_checks(self):
        rep = run_validation()
        assert rep.mean_rel_err is not None
        for row in rep.rows:
            if "fadd" in row.label:
                assert abs(row.rel_err) < 0.10


class TestReductionDrivers:
    def test_fig15_claims(self):
        rep = run_fig15()
        bool_rows = [r for r in rep.rows if r.unit == "bool"]
        assert bool_rows and all(r.measured == 1.0 for r in bool_rows)

    def test_table6_quality(self):
        assert run_table6().mean_rel_err < 0.03

    def test_fig16_claims(self):
        rep = run_fig16()
        bool_rows = [r for r in rep.rows if r.unit == "bool"]
        assert all(r.measured == 1.0 for r in bool_rows)


class TestSummary:
    def test_every_table8_observation_passes(self):
        rep = run_summary()
        failing = [r.label for r in rep.rows if r.measured != 1.0]
        assert not failing, failing
