"""End-to-end checks on the heavier experiment drivers.

These run the full sweeps once each and assert the paper's qualitative
claims plus quantitative error bounds — the acceptance criteria from
DESIGN.md §6.
"""

from __future__ import annotations


from repro.experiments.exp_launch import run_fig9
from repro.experiments.exp_model import run_table3, run_validation
from repro.experiments.exp_reduction import run_fig15, run_fig16, run_table6
from repro.experiments.exp_sync import (
    run_fig4,
    run_fig5,
    run_fig7,
    run_fig8,
    run_sync_methods,
    run_table2,
)
from repro.experiments.summary import run_summary


class TestSyncDrivers:
    def test_table2_quality(self):
        rep = run_table2()
        assert rep.mean_rel_err < 0.05

    def test_fig4_saturation(self):
        rep = run_fig4()
        assert rep.mean_rel_err < 0.05

    def test_fig5_quality(self):
        rep = run_fig5()
        assert rep.mean_rel_err < 0.10
        assert any("blocks/SM" in n for n in rep.notes)

    def test_fig7_quality(self):
        rep = run_fig7()
        assert rep.mean_rel_err < 0.10

    def test_fig8_quality(self):
        rep = run_fig8()
        assert rep.mean_rel_err < 0.10
        assert any("plateau" in n or "hop" in n for n in rep.notes)


class TestLaunchDrivers:
    def test_fig9_anchors_and_claims(self):
        rep = run_fig9(gpu_counts=(1, 2, 5, 6, 8))
        assert rep.mean_rel_err < 0.08
        # The two qualitative claims recorded in the notes must both hold.
        assert any("True" in n for n in rep.notes)
        assert not any("False" in n for n in rep.notes)


class TestModelDrivers:
    def test_table3_quality(self):
        assert run_table3().mean_rel_err < 0.03

    def test_validation_cross_checks(self):
        rep = run_validation()
        assert rep.mean_rel_err is not None
        for row in rep.rows:
            if "fadd" in row.label:
                assert abs(row.rel_err) < 0.10


class TestReductionDrivers:
    def test_fig15_claims(self):
        rep = run_fig15()
        bool_rows = [r for r in rep.rows if r.unit == "bool"]
        assert bool_rows and all(r.measured == 1.0 for r in bool_rows)

    def test_table6_quality(self):
        assert run_table6().mean_rel_err < 0.03

    def test_fig16_claims(self):
        rep = run_fig16()
        bool_rows = [r for r in rep.rows if r.unit == "bool"]
        assert all(r.measured == 1.0 for r in bool_rows)


class TestSummary:
    def test_every_table8_observation_passes(self):
        rep = run_summary()
        failing = [r.label for r in rep.rows if r.measured != 1.0]
        assert not failing, failing


class TestSyncMethodsDriver:
    def test_default_sweep_anchors_and_claims(self):
        rep = run_sync_methods()
        # Cooperative anchors (Fig 8/9 points) hold within the gate.
        assert rep.rows and rep.mean_rel_err < 0.10
        # The contention model's two growth laws are asserted by the driver
        # itself and reported as a note.
        assert any(
            "monotone in participant count: True" in n
            and "monotone in injected workload traffic: True" in n
            for n in rep.notes
        )
        # The DGX-1 cube-mesh produces at least one method crossover.
        assert any("method crossover" in n for n in rep.notes)
        assert len(rep.artifacts) >= 2  # strategy table + contention scan

    def test_sync_strategy_restricts_the_sweep(self):
        from repro.experiments.scenario import Scenario

        rep = run_sync_methods(
            Scenario(gpus=("V100",), sync_strategy="atomic")
        )
        # No cooperative series -> no paper anchors -> gate vacuous.
        assert not rep.rows and rep.mean_rel_err is None
        art = rep.artifacts[0]
        assert "atomic" in art and "cooperative" not in art

    def test_knob_overrides_flow_to_the_strategy(self):
        from repro.experiments.scenario import Scenario

        base = run_sync_methods(
            Scenario(gpus=("V100",), sync_strategy="atomic")
        )
        loaded = run_sync_methods(
            Scenario(
                gpus=("V100",), sync_strategy="atomic",
                extras=(("workload_util", "0.75"),),
            )
        )

        def last_latency(rep):
            # Final data row of the sweep table: "| 8 | <latency> |".
            row = [
                line for line in rep.artifacts[0].splitlines()
                if line.startswith("|    8 |")
            ][-1]
            return float(row.split("|")[2])

        assert last_latency(loaded) > last_latency(base)

    def test_non_default_topology_reprices_the_curves(self):
        from repro.experiments.scenario import Scenario

        mesh = run_sync_methods(Scenario(gpus=("V100",)))
        xbar = run_sync_methods(
            Scenario(gpus=("V100",), node="DGX2", gpu_count=8)
        )
        # Overridden machine room: anchors suppressed, sweep still runs.
        assert not xbar.rows
        assert mesh.artifacts[0] != xbar.artifacts[0]


class TestExplicitCooperativeKeepsAnchors:
    def test_fig8_rows_identical_to_default(self):
        from repro.experiments.scenario import Scenario

        default = run_fig8(Scenario(gpus=("V100",)))
        explicit = run_fig8(Scenario(gpus=("V100",), sync_strategy="cooperative"))
        # Kind-string cooperative resolves to the byte-identical default
        # strategy, so the anchors (and the tolerance gate) must survive.
        assert explicit.rows == default.rows
        assert explicit.render() == default.render()

    def test_cooperative_with_knobs_suppresses_anchors(self):
        from repro.experiments.scenario import Scenario

        rep = run_fig5(
            Scenario(
                gpus=("V100",), sync_strategy="cooperative",
                extras=(("atomic_service_ns", "12"),),
            )
        )
        assert not rep.rows
        assert any("tolerance gate does not apply" in n for n in rep.notes)
