"""Unit tests for the deterministic fault-injection harness."""

from __future__ import annotations

import time

import pytest

from repro.experiments import faults
from repro.experiments.faults import (
    FaultPlan,
    FaultRule,
    InjectedFaultError,
    TransientPointError,
    active_plan,
    apply_driver_faults,
    maybe_fail_cache_write,
    set_plan,
)


@pytest.fixture(autouse=True)
def clean_plan(monkeypatch):
    """Every test starts and ends without an active plan."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    set_plan(None)
    yield
    set_plan(None)


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(kind="meteor-strike")

    def test_attempts_must_be_positive(self):
        with pytest.raises(ValueError, match="attempts"):
            FaultRule(kind="flaky", attempts=0)

    def test_applies_matches_exp_id_glob(self):
        rule = FaultRule(kind="flaky", match="table*")
        assert rule.applies("table4", "V100", 1)
        assert not rule.applies("fig8", "V100", 1)

    def test_applies_matches_scenario_substring(self):
        rule = FaultRule(kind="flaky", scenario="P100")
        assert rule.applies("table4", "P100", 1)
        assert not rule.applies("table4", "V100", 1)

    def test_applies_respects_attempt_window(self):
        rule = FaultRule(kind="flaky", attempts=2)
        assert rule.applies("x", "", 1)
        assert rule.applies("x", "", 2)
        assert not rule.applies("x", "", 3)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault rule field"):
            FaultRule.from_dict({"kind": "flaky", "knid": "oops"})

    def test_from_dict_requires_kind(self):
        with pytest.raises(ValueError, match="missing required field"):
            FaultRule.from_dict({"match": "table4"})


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan((
            FaultRule(kind="kill", match="table4", attempts=2, exit_code=3),
            FaultRule(kind="delay", delay=1.5),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_json_rejects_non_array(self):
        with pytest.raises(ValueError, match="JSON array"):
            FaultPlan.from_json('{"kind": "kill"}')

    def test_first_match_honors_order_and_kind_filter(self):
        flaky = FaultRule(kind="flaky", match="*")
        kill = FaultRule(kind="kill", match="*")
        plan = FaultPlan((flaky, kill))
        assert plan.first_match(("flaky", "kill"), "x", "", 1) is flaky
        assert plan.first_match(("kill",), "x", "", 1) is kill
        assert plan.first_match(("cache-write",), "x", "", 1) is None


class TestActivePlan:
    def test_none_without_plan_or_env(self):
        assert active_plan() is None

    def test_programmatic_plan_wins_over_env(self, monkeypatch):
        env_plan = FaultPlan((FaultRule(kind="delay"),))
        monkeypatch.setenv(faults.ENV_VAR, env_plan.to_json())
        local = FaultPlan((FaultRule(kind="flaky"),))
        set_plan(local)
        assert active_plan() is local

    def test_env_plan_parsed(self, monkeypatch):
        plan = FaultPlan((FaultRule(kind="kill", match="fig8"),))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        assert active_plan() == plan

    def test_injected_context_manager_installs_and_clears(self):
        with faults.injected(FaultRule(kind="flaky")):
            assert active_plan() is not None
        assert active_plan() is None


class TestDriverHooks:
    def test_noop_without_plan(self):
        apply_driver_faults("table4", "V100", 1)  # must not raise

    def test_flaky_raises_transient_within_window(self):
        with faults.injected(FaultRule(kind="flaky", attempts=2)):
            with pytest.raises(InjectedFaultError):
                apply_driver_faults("table4", "V100", 1)
            with pytest.raises(TransientPointError):
                apply_driver_faults("table4", "V100", 2)
            apply_driver_faults("table4", "V100", 3)  # window passed

    def test_error_raises_deterministic_not_transient(self):
        with faults.injected(FaultRule(kind="error")):
            with pytest.raises(RuntimeError) as exc_info:
                apply_driver_faults("table4", "V100", 1)
        assert not isinstance(exc_info.value, TransientPointError)

    def test_kill_outside_worker_downgrades_to_transient_raise(self):
        # A kill fault must never take down the in-process caller (CLI
        # with jobs=1, a test run, a notebook): it degrades to a
        # retryable error instead of os._exit.
        assert not faults.IN_WORKER
        with faults.injected(FaultRule(kind="kill")):
            with pytest.raises(TransientPointError, match="in-process"):
                apply_driver_faults("table4", "V100", 1)

    def test_delay_sleeps(self):
        with faults.injected(FaultRule(kind="delay", delay=0.05)):
            t0 = time.monotonic()
            apply_driver_faults("table4", "V100", 1)
            assert time.monotonic() - t0 >= 0.05

    def test_rules_filter_by_experiment(self):
        with faults.injected(FaultRule(kind="flaky", match="fig8")):
            apply_driver_faults("table4", "V100", 1)  # no match, no raise


class TestCacheWriteHook:
    def test_noop_without_plan(self):
        maybe_fail_cache_write("table4", "V100")

    def test_matching_rule_raises_oserror(self):
        with faults.injected(FaultRule(kind="cache-write", match="table4")):
            with pytest.raises(OSError, match="injected cache write failure"):
                maybe_fail_cache_write("table4", "V100")
            maybe_fail_cache_write("fig8", "V100")  # no match
