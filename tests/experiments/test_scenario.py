"""Tests for the declarative scenario layer."""

from __future__ import annotations

import pytest

from repro.experiments.scenario import (
    PAPER_SCENARIO,
    Scenario,
    apply_overrides,
    parse_override,
)


class TestConstruction:
    def test_paper_default(self):
        assert PAPER_SCENARIO.gpus == ("V100", "P100")
        assert PAPER_SCENARIO.node == "DGX1"

    def test_sequences_normalized_to_tuples(self):
        s = Scenario(gpus=["V100"], gpu_counts=[2, 4])
        assert s.gpus == ("V100",)
        assert s.gpu_counts == (2, 4)

    def test_extras_sorted_for_stable_identity(self):
        a = Scenario(extras=(("b", "2"), ("a", "1")))
        b = Scenario(extras=(("a", "1"), ("b", "2")))
        assert a == b
        assert a.content_hash == b.content_hash

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gpus": ()},
            {"gpus": ("K80",)},
            {"node": "DGX9"},
            {"interconnect": "infiniband"},
            {"gpu_count": 0},
            {"gpu_counts": (0,)},
            {"size_bytes": 0},
            # Cross-field combinations that cannot build:
            {"node": "DGX2", "interconnect": "nvlink-cube-mesh"},  # mesh caps at 8
            {"gpu_count": 9},  # DGX1 cube-mesh has 8 GPUs
            {"node": "DGX2", "gpu_count": 17},  # NVSwitch caps at 16
            {"gpu_count": 4, "gpu_counts": (2, 5)},  # sweep beyond the node
        ],
    )
    def test_invalid_rejected_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            Scenario(**kwargs)

    def test_buildable_cross_field_combinations_accepted(self):
        Scenario(node="DGX1", interconnect="nvswitch", gpu_count=16)
        Scenario(node="DGX2", gpu_count=12, gpu_counts=(2, 12))
        Scenario(interconnect="ring", gpu_count=6)


class TestResolution:
    def test_gpu_specs_in_order(self):
        names = [s.name for s in Scenario(gpus=("P100", "V100")).gpu_specs()]
        assert names == ["P100", "V100"]

    def test_node_spec_overrides(self):
        s = Scenario(gpus=("V100",), node="DGX1", interconnect="nvswitch", gpu_count=6)
        spec = s.node_spec()
        assert spec.interconnect == "nvswitch"
        assert spec.gpu_count == 6

    def test_build_node_applies_topology(self):
        node = Scenario(gpus=("V100",), interconnect="ring").build_node()
        assert node.interconnect.name == "ring"
        assert node.interconnect.hops(0, 4) == 4  # ring distance, not cube-mesh

    def test_sweep_counts_default_passthrough(self):
        assert PAPER_SCENARIO.sweep_counts((1, 2)) == (1, 2)
        assert Scenario(gpu_counts=(4, 8)).sweep_counts((1, 2)) == (4, 8)

    def test_sweep_counts_clamped_to_shrunk_node(self):
        """A gpu_count override below the paper sweep must clamp the
        default points (ending at the node size) instead of crashing."""
        s = Scenario(gpus=("V100",), gpu_count=4)
        assert s.sweep_counts((1, 2, 5, 6, 8)) == (1, 2, 4)
        assert s.sweep_counts((1, 2, 4)) == (1, 2, 4)

    def test_extra_lookup(self):
        s = Scenario(extras=(("k", "v"),))
        assert s.extra("k") == "v"
        assert s.extra("missing", "d") == "d"


class TestIdentity:
    def test_roundtrip_preserves_equality_and_hash(self):
        s = Scenario(
            gpus=("V100",), node="DGX2", gpu_count=12, interconnect="nvswitch",
            gpu_counts=(2, 4, 8), size_bytes=1 << 30, extras=(("x", "1"),),
        )
        back = Scenario.from_dict(s.to_dict())
        assert back == s
        assert back.content_hash == s.content_hash

    def test_hash_changes_with_content(self):
        assert (
            Scenario(gpus=("V100",)).content_hash
            != Scenario(gpus=("P100",)).content_hash
        )

    def test_case_variants_share_identity(self):
        """Lookups are case-insensitive, so case variants must canonicalize
        to one scenario — otherwise the cache stores duplicate entries."""
        a = Scenario(gpus=("v100",), node="dgx1")
        b = Scenario(gpus=("V100",), node="DGX1")
        assert a == b
        assert a.content_hash == b.content_hash
        assert a.gpus == ("V100",) and a.node == "DGX1"

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown scenario fields"):
            Scenario.from_dict({"gpus": ["V100"], "bogus": 1})

    def test_describe_mentions_distinctives(self):
        s = Scenario(gpus=("V100",), node="DGX2", interconnect="nvswitch")
        d = s.describe()
        assert "V100" in d and "DGX2" in d and "nvswitch" in d


class TestOverrides:
    def test_parse_list_fields(self):
        assert parse_override("gpus=V100,P100") == ("gpus", ("V100", "P100"))
        assert parse_override("gpu_counts=2,4") == ("gpu_counts", (2, 4))

    def test_parse_scalar_fields(self):
        assert parse_override("gpu_count=4") == ("gpu_count", 4)
        assert parse_override("node=DGX2") == ("node", "DGX2")

    def test_namespaced_extra_accepted(self):
        assert parse_override("extra.knob=7") == ("extras", ("knob", "7"))

    def test_unknown_key_rejected_listing_valid_keys(self):
        """A typo ('gpu=' for 'gpus=') must fail loudly, not silently
        ride along as an ignored extra yielding the default scenario."""
        with pytest.raises(ValueError, match="unknown scenario key 'gpu'"):
            parse_override("gpu=V100")
        with pytest.raises(ValueError, match="gpus, gpu_counts, node"):
            parse_override("knob=7")
        with pytest.raises(ValueError, match="extra.<name>"):
            parse_override("knob=7")

    def test_bare_extra_prefix_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario key"):
            parse_override("extra.=7")

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_override("gpus")

    def test_apply_overrides(self):
        s = apply_overrides(
            PAPER_SCENARIO, ["gpus=V100", "interconnect=ring", "extra.knob=7"]
        )
        assert s.gpus == ("V100",)
        assert s.interconnect == "ring"
        assert s.extra("knob") == "7"
        # original untouched
        assert PAPER_SCENARIO.interconnect is None

    def test_apply_overrides_validates(self):
        with pytest.raises(ValueError):
            apply_overrides(PAPER_SCENARIO, ["gpu_count=0"])


class TestSyncStrategyKnob:
    def test_default_is_none_and_omitted_from_canonical_form(self):
        s = Scenario()
        assert s.sync_strategy is None
        # Omission keeps every pre-knob scenario's content hash (and cache
        # key, and report provenance) byte-identical.
        assert "sync_strategy" not in s.to_dict()

    def test_set_strategy_serializes_and_round_trips(self):
        s = Scenario(sync_strategy="atomic")
        d = s.to_dict()
        assert d["sync_strategy"] == "atomic"
        assert Scenario.from_dict(d) == s
        assert s.content_hash != Scenario().content_hash

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown sync_strategy"):
            Scenario(sync_strategy="telepathy")

    def test_parse_override(self):
        assert parse_override("sync_strategy=atomic") == ("sync_strategy", "atomic")
        s = apply_overrides(Scenario(), ["sync_strategy=cpu"])
        assert s.sync_strategy == "cpu"

    def test_describe_mentions_strategy(self):
        assert "sync=atomic" in Scenario(sync_strategy="atomic").describe()

    def test_sync_knobs_collects_known_keys_as_floats(self):
        s = Scenario(
            sync_strategy="atomic",
            extras=(
                ("poll_ns", "240"),
                ("workload_util", "0.5"),
                ("unrelated", "7"),
            ),
        )
        assert s.sync_knobs() == {"poll_ns": 240.0, "workload_util": 0.5}

    def test_typed_extra_accessors(self):
        s = Scenario(extras=(("n", "010"), ("x", "5e-1")))
        assert s.extra_int("n") == 10
        assert s.extra_float("x") == 0.5
        assert s.extra_int("missing", 3) == 3
        assert s.extra_float("missing") is None


class TestExtrasCanonicalization:
    def test_equivalent_int_spellings_share_identity(self):
        a = Scenario(extras=(("n", "10"),))
        b = Scenario(extras=(("n", "010"),))
        c = Scenario(extras=(("n", " 10 "),))
        assert a == b == c
        assert a.content_hash == b.content_hash == c.content_hash

    def test_equivalent_float_spellings_share_identity(self):
        a = Scenario(extras=(("u", "0.5"),))
        b = Scenario(extras=(("u", "5e-1"),))
        assert a == b
        assert a.content_hash == b.content_hash

    def test_int_and_float_stay_distinct(self):
        assert (
            Scenario(extras=(("n", "10"),)).content_hash
            != Scenario(extras=(("n", "10.0"),)).content_hash
        )

    def test_non_numeric_values_pass_through(self):
        s = Scenario(extras=(("name", "V100-sxm2"), ("inf", "inf")))
        assert s.extra("name") == "V100-sxm2"
        # Non-finite floats are not canonicalized (inf/nan stay strings).
        assert s.extra("inf") == "inf"

    def test_native_numbers_accepted(self):
        a = Scenario(extras=(("n", 10),))
        b = Scenario(extras=(("n", "10"),))
        assert a.content_hash == b.content_hash
