"""Multi-writer stress tests for the O_EXCL cache claim/publish protocol.

Many genuinely concurrent *processes* race on one cache key — the
shared-cache scenario the claim protocol exists for (sweep shards,
duplicated points across simultaneous sweeps, one cache dir on a shared
filesystem).  The invariants pinned here:

* **exactly-one-compute** — one racer wins the ``O_EXCL`` claim and runs
  the driver; every other racer is served the published entry;
* **no torn reads** — every racer gets a byte-identical, fully-parsed
  report (write-then-rename publishing means a reader never observes a
  partial entry);
* **no leftovers** — once the race settles, no ``*.claim`` or ``*.tmp``
  files remain;
* **dead-claim takeover** — a claim whose owner pid is gone does not
  wedge the key: the next racer takes the claim over and computes.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

from repro.experiments.scenario import Scenario
from repro.experiments.service import cache, execute_point

SCEN = Scenario(gpus=("V100",))
EXP = "table4"

# A pid that cannot exist: beyond the default pid_max on 64-bit Linux
# (and comfortably beyond any real allocation elsewhere).
DEAD_PID = 2**22 + 12345

# fork: children inherit the imported package, the memoized code version
# and the Barrier — the race starts from identical state, simultaneously.
_CTX = multiprocessing.get_context("fork")


def _racer(barrier, cache_dir, out):
    """One racing process: run the point, report what it observed."""
    _ = barrier.wait()  # stdlib Barrier, not a sync scope (returns arrival index)
    res = execute_point(EXP, SCEN, use_cache=True, cache_dir=cache_dir)
    out.put({
        "pid": os.getpid(),
        "cached": res.cached,
        "ok": res.ok,
        "report": res.report.to_json() if res.report is not None else None,
        "error": res.error,
    })


def _race(tmp_path, racers):
    barrier = _CTX.Barrier(racers)
    out = _CTX.Queue()
    procs = [
        _CTX.Process(target=_racer, args=(barrier, tmp_path, out))
        for _ in range(racers)
    ]
    for p in procs:
        p.start()
    results = [out.get(timeout=120) for _ in procs]
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    return results


class TestMultiWriterRace:
    def test_exactly_one_compute_no_torn_reads_no_leftovers(self, tmp_path):
        results = _race(tmp_path, racers=8)
        assert len(results) == 8
        assert all(r["ok"] for r in results), [r["error"] for r in results]

        # Exactly one racer computed; everyone else was served the
        # published entry (cached=True covers both a direct hit and the
        # await-claimed-result path).
        computed = [r for r in results if not r["cached"]]
        assert len(computed) == 1, (
            f"{len(computed)} racers computed; the claim elected no single "
            f"writer"
        )

        # No torn reads: every report parses and all are byte-identical
        # to the computed one.
        reports = {r["report"] for r in results}
        assert len(reports) == 1
        json.loads(reports.pop())  # well-formed JSON

        # The race left no coordination litter behind.
        assert list(tmp_path.glob("*.claim")) == []
        assert list(tmp_path.glob("*.tmp")) == []
        # Exactly the one published entry.
        assert len(list(tmp_path.glob(f"{EXP}-*.json"))) == 1

    def test_repeated_races_stay_single_compute(self, tmp_path):
        # Re-running the race against a now-warm cache must not recompute:
        # every racer is a plain cache hit.
        first = _race(tmp_path, racers=4)
        assert sum(not r["cached"] for r in first) == 1
        second = _race(tmp_path, racers=4)
        assert all(r["cached"] for r in second)
        assert {r["report"] for r in first} == {r["report"] for r in second}


class TestDeadClaimTakeover:
    def _plant_dead_claim(self, tmp_path, pid=DEAD_PID, age=0.0):
        entry = cache.cache_path(tmp_path, EXP, SCEN)
        entry.parent.mkdir(parents=True, exist_ok=True)
        claim = entry.with_name(entry.name + ".claim")
        claim.write_text(json.dumps({"pid": pid, "time": time.time() - age}))
        return entry, claim

    def test_dead_owner_claim_is_taken_over(self, tmp_path):
        # A claim from a crashed worker (pid provably gone) must not
        # block the racers: one takes it over and computes.
        self._plant_dead_claim(tmp_path)
        t0 = time.monotonic()
        results = _race(tmp_path, racers=4)
        elapsed = time.monotonic() - t0
        assert all(r["ok"] for r in results)
        # At least one racer took the claim over and computed.  Exactly
        # one in the common case — but the takeover window (unlink, then
        # O_EXCL re-acquire) is advisory by design: the protocol prefers
        # duplicate work over a wedged key, so a second simultaneous
        # takeover is legal as long as the published result is unique.
        computed = sum(not r["cached"] for r in results)
        assert 1 <= computed <= len(results)
        assert len({r["report"] for r in results}) == 1
        # Takeover is prompt — nobody sat out the 30s claim-wait budget.
        assert elapsed < 25
        assert list(tmp_path.glob("*.claim")) == []

    def test_torn_claim_file_is_taken_over(self, tmp_path):
        # A half-written claim (owner died mid-write) reads as stale.
        entry, claim = self._plant_dead_claim(tmp_path)
        claim.write_text('{"pid": 123')  # torn JSON
        results = _race(tmp_path, racers=2)
        assert all(r["ok"] for r in results)
        assert sum(not r["cached"] for r in results) >= 1
        assert len({r["report"] for r in results}) == 1
        assert list(tmp_path.glob("*.claim")) == []

    def test_is_stale_semantics(self, tmp_path):
        entry, claim_path = self._plant_dead_claim(tmp_path)
        claim = cache.CacheClaim(entry)
        assert claim.is_stale()  # dead pid
        # A live-pid claim is not stale until the TTL passes...
        claim_path.write_text(
            json.dumps({"pid": os.getpid(), "time": time.time()})
        )
        assert not claim.is_stale()
        # ...and ages out past the TTL even when the pid check is moot.
        claim_path.write_text(
            json.dumps(
                {"pid": os.getpid(), "time": time.time() - 2 * 600.0}
            )
        )
        assert claim.is_stale()
        # A vanished claim means "released", not "stale".
        claim_path.unlink()
        assert not claim.is_stale()
