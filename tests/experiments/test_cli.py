"""CLI failure-path regression tests: partial results must always land.

``repro-experiments --json`` feeds CI (the JSON artifact is uploaded
*especially* when the smoke step fails), so the contract pinned here is:
whenever a driver failure or a tolerance breach sets exit code 1, the
merged report — with every successful point's rows — is still written to
stdout as valid JSON, and diagnostics go to stderr only.  This is the
``keep partial results on failure`` path promised by
:func:`repro.experiments.runner.merge_experiment`.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.experiments import registry
from repro.experiments.cli import main
from repro.experiments.registry import EXPERIMENTS


def _patch_driver(monkeypatch, exp_id, driver):
    monkeypatch.setitem(
        registry.EXPERIMENTS, exp_id, replace(EXPERIMENTS[exp_id], driver=driver)
    )


@pytest.fixture
def flaky_table5(monkeypatch):
    """table5 whose P100 point fails while the V100 point succeeds."""
    orig = EXPERIMENTS["table5"].driver

    def driver(scenario):
        if "P100" in scenario.gpus:
            raise RuntimeError("injected-p100-failure")
        return orig(scenario)

    _patch_driver(monkeypatch, "table5", driver)


class TestJsonPartialResults:
    def test_driver_failure_still_writes_merged_json(self, flaky_table5, capsys):
        assert main(["table5", "--json", "--no-cache"]) == 1
        out, err = capsys.readouterr()
        reports = json.loads(out)  # stdout must stay valid JSON
        assert [r["exp_id"] for r in reports] == ["table5"]
        # The merged report carries the surviving (V100) point's rows...
        assert reports[0]["rows"], "partial results were dropped"
        assert all("V100" in r["label"] for r in reports[0]["rows"])
        # ...and the scenario provenance of the successful point only.
        points = reports[0]["scenario"]["points"]
        assert [p["gpus"] for p in points] == [["V100"]]
        # Diagnostics stay on stderr, out of the JSON stream.
        assert "injected-p100-failure" in err

    def test_driver_failure_parallel_jobs(self, flaky_table5, capsys):
        assert main(["table5", "--json", "--no-cache", "--jobs", "2"]) == 1
        reports = json.loads(capsys.readouterr().out)
        assert reports[0]["rows"]

    def test_all_points_failing_writes_empty_array(self, monkeypatch, capsys):
        def boom(scenario):
            raise RuntimeError("boom")

        _patch_driver(monkeypatch, "table5", boom)
        assert main(["table5", "--json", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert json.loads(out) == []

    def test_tolerance_breach_still_writes_json(self, monkeypatch, capsys):
        monkeypatch.setitem(
            registry.EXPERIMENTS,
            "table4",
            replace(EXPERIMENTS["table4"], tolerance=-1.0),
        )
        assert main(["table4", "--json", "--no-cache"]) == 1
        out, err = capsys.readouterr()
        reports = json.loads(out)
        assert [r["exp_id"] for r in reports] == ["table4"]
        assert reports[0]["rows"]
        assert "exceeded tolerance" in err

    def test_failure_alongside_healthy_experiment(self, flaky_table5, capsys):
        # A failing experiment must not take its siblings' reports down.
        assert main(["table5", "table4", "--json", "--no-cache"]) == 1
        reports = json.loads(capsys.readouterr().out)
        assert [r["exp_id"] for r in reports] == ["table5", "table4"]


class TestCacheStoreFailure:
    def test_unwritable_cache_dir_degrades_to_uncached(self, tmp_path, capsys):
        # Regression: an OSError from the cache store used to abort the
        # whole sweep (losing every result); it must degrade to a warning.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        bad_dir = blocker / "cache"
        assert main(["table4", "--json", "--cache-dir", str(bad_dir)]) == 0
        out, err = capsys.readouterr()
        assert json.loads(out)[0]["exp_id"] == "table4"
        assert "could not write result cache entry" in err


class TestWorkerCrashIsolation:
    """A worker that dies mid-sweep must not take sibling results with it.

    This extends the partial-results contract above from driver
    *exceptions* to driver *crashes*: the process is simply gone
    (``os._exit``), the pool breaks, and the merged ``--json`` report
    must still carry every surviving point's rows.
    """

    @pytest.fixture
    def crashing_table5(self, monkeypatch):
        """table5 whose P100 point kills its worker outright, every time."""
        import os as _os

        orig = EXPERIMENTS["table5"].driver

        def driver(scenario):
            if "P100" in scenario.gpus:
                _os._exit(1)
            return orig(scenario)

        _patch_driver(monkeypatch, "table5", driver)

    def test_crash_does_not_lose_siblings_and_json_lands(
        self, crashing_table5, capsys
    ):
        rc = main(["table5", "--json", "--no-cache", "--jobs", "2"])
        assert rc == 1  # the crashing point is a real failure
        out, err = capsys.readouterr()
        reports = json.loads(out)  # stdout must stay valid JSON
        assert [r["exp_id"] for r in reports] == ["table5"]
        assert reports[0]["rows"], "sibling results were lost to the crash"
        assert all("V100" in r["label"] for r in reports[0]["rows"])
        assert reports[0]["execution"]["crashes"] >= 1
        assert reports[0]["execution"]["failed"] == 1
        assert "crash" in err

    def test_crash_alongside_healthy_experiment(self, crashing_table5, capsys):
        rc = main(
            ["table5", "table4", "--json", "--no-cache", "--jobs", "2"]
        )
        assert rc == 1
        reports = json.loads(capsys.readouterr().out)
        assert [r["exp_id"] for r in reports] == ["table5", "table4"]
        assert reports[1]["rows"]

    def test_recovered_crash_exits_zero(self, tmp_path, monkeypatch, capsys):
        # The worker dies only on the first attempt; with retries the
        # sweep must finish cleanly and surface the recovery counters.
        from repro.experiments import faults

        plan = faults.FaultPlan((
            faults.FaultRule(kind="kill", match="table5", scenario="P100",
                             attempts=1),
        ))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        rc = main([
            "table5", "--json", "--jobs", "2", "--retries", "2",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        out, err = capsys.readouterr()
        assert rc == 0
        reports = json.loads(out)
        stats = reports[0]["execution"]
        assert stats["failed"] == 0
        assert stats["crashes"] >= 1
        assert stats["attempts"] > stats["points"]
        assert "recovered" in err


class TestExecutionCounters:
    def test_clean_run_counters(self, capsys):
        assert main(["table4", "--json", "--no-cache"]) == 0
        reports = json.loads(capsys.readouterr().out)
        stats = reports[0]["execution"]
        assert stats["points"] == 2
        assert stats["attempts"] == 2
        assert stats["retries"] == 0
        assert stats["crashes"] == 0
        assert stats["timeouts"] == 0
        assert stats["failed"] == 0

    def test_flaky_point_retry_counters(self, tmp_path, monkeypatch, capsys):
        from repro.experiments import faults

        plan = faults.FaultPlan((
            faults.FaultRule(kind="flaky", match="table4", scenario="V100",
                             attempts=2),
        ))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        rc = main([
            "table4", "--json", "--retries", "2",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert rc == 0
        reports = json.loads(capsys.readouterr().out)
        stats = reports[0]["execution"]
        assert stats["retries"] == 2  # the twice-flaky point took 3 attempts
        assert stats["failed"] == 0


class TestResume:
    def _journal(self, cache):
        from repro.experiments.journal import default_journal_path

        return default_journal_path(cache)

    def test_resume_reexecutes_only_unfinished_points(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.experiments import faults

        cache = tmp_path / "cache"
        calls = tmp_path / "calls"
        calls.mkdir()
        orig = EXPERIMENTS["table5"].driver

        def counting(scenario):
            label = "-".join(scenario.gpus)
            n = len(list(calls.glob(f"{label}*")))
            (calls / f"{label}.{n}").touch()
            return orig(scenario)

        _patch_driver(monkeypatch, "table5", counting)

        # Sweep 1: the P100 point fails deterministically -> exit 1 with a
        # journal recording one finish and one failure.
        plan = faults.FaultPlan((
            faults.FaultRule(kind="error", match="table5", scenario="P100",
                             attempts=99),
        ))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        assert main(["table5", "--json", "--cache-dir", str(cache)]) == 1
        capsys.readouterr()
        assert len(list(calls.glob("V100*"))) == 1

        # Resume without the fault: only the failed point runs a driver;
        # the finished point is served from the cache.
        monkeypatch.delenv(faults.ENV_VAR)
        rc = main(["--resume", str(self._journal(cache)), "--json",
                   "--cache-dir", str(cache)])
        out, err = capsys.readouterr()
        assert rc == 0
        assert len(list(calls.glob("V100*"))) == 1  # not re-executed
        assert len(list(calls.glob("P100*"))) >= 1  # re-executed
        reports = json.loads(out)
        assert reports[0]["execution"]["cached"] == 1
        assert reports[0]["execution"]["failed"] == 0
        assert len(reports[0]["scenario"]["points"]) == 2  # full merged report
        assert "resuming sweep" in err

    def test_completed_journal_resumes_to_full_cache_hits(
        self, tmp_path, capsys
    ):
        cache = tmp_path / "cache"
        assert main(["table4", "--json", "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        rc = main(["--resume", str(self._journal(cache)), "--json",
                   "--cache-dir", str(cache)])
        out, _ = capsys.readouterr()
        assert rc == 0
        stats = json.loads(out)[0]["execution"]
        assert stats["cached"] == stats["points"] == 2

    def test_resume_rejects_point_selection_args(self, tmp_path, capsys):
        rc = main(["table4", "--resume", str(tmp_path / "j.jsonl")])
        assert rc == 2
        assert "from the journal" in capsys.readouterr().err

    def test_resume_rejects_no_cache(self, tmp_path, capsys):
        rc = main(["--resume", str(tmp_path / "j.jsonl"), "--no-cache"])
        assert rc == 2
        assert "needs the result cache" in capsys.readouterr().err

    def test_resume_missing_journal_is_usage_error(self, tmp_path, capsys):
        rc = main(["--resume", str(tmp_path / "absent.jsonl")])
        assert rc == 2
        assert "cannot resume" in capsys.readouterr().err


class TestSupervisionUsage:
    def test_negative_retries_rejected(self, capsys):
        assert main(["table4", "--retries", "-1"]) == 2
        assert "--retries" in capsys.readouterr().err

    def test_nonpositive_timeout_rejected(self, capsys):
        assert main(["table4", "--timeout", "0"]) == 2
        assert "--timeout" in capsys.readouterr().err
