"""CLI failure-path regression tests: partial results must always land.

``repro-experiments --json`` feeds CI (the JSON artifact is uploaded
*especially* when the smoke step fails), so the contract pinned here is:
whenever a driver failure or a tolerance breach sets exit code 1, the
merged report — with every successful point's rows — is still written to
stdout as valid JSON, and diagnostics go to stderr only.  This is the
``keep partial results on failure`` path promised by
:func:`repro.experiments.runner.merge_experiment`.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.experiments import registry
from repro.experiments.cli import main
from repro.experiments.registry import EXPERIMENTS


def _patch_driver(monkeypatch, exp_id, driver):
    monkeypatch.setitem(
        registry.EXPERIMENTS, exp_id, replace(EXPERIMENTS[exp_id], driver=driver)
    )


@pytest.fixture
def flaky_table5(monkeypatch):
    """table5 whose P100 point fails while the V100 point succeeds."""
    orig = EXPERIMENTS["table5"].driver

    def driver(scenario):
        if "P100" in scenario.gpus:
            raise RuntimeError("injected-p100-failure")
        return orig(scenario)

    _patch_driver(monkeypatch, "table5", driver)


class TestJsonPartialResults:
    def test_driver_failure_still_writes_merged_json(self, flaky_table5, capsys):
        assert main(["table5", "--json", "--no-cache"]) == 1
        out, err = capsys.readouterr()
        reports = json.loads(out)  # stdout must stay valid JSON
        assert [r["exp_id"] for r in reports] == ["table5"]
        # The merged report carries the surviving (V100) point's rows...
        assert reports[0]["rows"], "partial results were dropped"
        assert all("V100" in r["label"] for r in reports[0]["rows"])
        # ...and the scenario provenance of the successful point only.
        points = reports[0]["scenario"]["points"]
        assert [p["gpus"] for p in points] == [["V100"]]
        # Diagnostics stay on stderr, out of the JSON stream.
        assert "injected-p100-failure" in err

    def test_driver_failure_parallel_jobs(self, flaky_table5, capsys):
        assert main(["table5", "--json", "--no-cache", "--jobs", "2"]) == 1
        reports = json.loads(capsys.readouterr().out)
        assert reports[0]["rows"]

    def test_all_points_failing_writes_empty_array(self, monkeypatch, capsys):
        def boom(scenario):
            raise RuntimeError("boom")

        _patch_driver(monkeypatch, "table5", boom)
        assert main(["table5", "--json", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert json.loads(out) == []

    def test_tolerance_breach_still_writes_json(self, monkeypatch, capsys):
        monkeypatch.setitem(
            registry.EXPERIMENTS,
            "table4",
            replace(EXPERIMENTS["table4"], tolerance=-1.0),
        )
        assert main(["table4", "--json", "--no-cache"]) == 1
        out, err = capsys.readouterr()
        reports = json.loads(out)
        assert [r["exp_id"] for r in reports] == ["table4"]
        assert reports[0]["rows"]
        assert "exceeded tolerance" in err

    def test_failure_alongside_healthy_experiment(self, flaky_table5, capsys):
        # A failing experiment must not take its siblings' reports down.
        assert main(["table5", "table4", "--json", "--no-cache"]) == 1
        reports = json.loads(capsys.readouterr().out)
        assert [r["exp_id"] for r in reports] == ["table5", "table4"]


class TestCacheStoreFailure:
    def test_unwritable_cache_dir_degrades_to_uncached(self, tmp_path, capsys):
        # Regression: an OSError from the cache store used to abort the
        # whole sweep (losing every result); it must degrade to a warning.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        bad_dir = blocker / "cache"
        assert main(["table4", "--json", "--cache-dir", str(bad_dir)]) == 0
        out, err = capsys.readouterr()
        assert json.loads(out)[0]["exp_id"] == "table4"
        assert "could not write result cache entry" in err
