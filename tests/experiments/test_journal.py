"""Tests for the append-only sweep journal and resume-state parsing."""

from __future__ import annotations

import json

import pytest

from repro.experiments.journal import (
    SweepJournal,
    default_journal_path,
    load_journal,
)
from repro.experiments.scenario import Scenario

POINTS = [
    ("table4", Scenario(gpus=("V100",))),
    ("table4", Scenario(gpus=("P100",))),
    ("table1", Scenario(gpus=("V100",))),
]


def _write_sweep(path, finished=(), failed=()):
    journal = SweepJournal(path)
    journal.sweep_start(POINTS, "cafecafecafecafe", jobs=2)
    for i in finished:
        journal.point_start(i, POINTS[i][0], 1)
        journal.point_finish(i, POINTS[i][0], 1, cached=False)
    for i in failed:
        journal.point_start(i, POINTS[i][0], 1)
        journal.point_fail(i, POINTS[i][0], 1, "crash", "worker died")
    journal.close()
    return journal


class TestRoundTrip:
    def test_records_parse_back(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        _write_sweep(path, finished=[0, 2], failed=[1])
        state = load_journal(path)
        assert state.points == POINTS
        assert state.code_version == "cafecafecafecafe"
        assert state.finished == {0, 2}
        assert state.failed == {1: "crash"}
        assert state.started == {0, 1, 2}
        assert state.unfinished == [1]

    def test_finish_after_fail_clears_failure(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(path)
        journal.sweep_start(POINTS, "v", jobs=1)
        journal.point_fail(0, "table4", 1, "timeout", "too slow")
        journal.point_finish(0, "table4", 2, cached=False)
        journal.close()
        state = load_journal(path)
        assert state.finished == {0}
        assert state.failed == {}

    def test_fail_records_last_error_line_only(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(path)
        journal.sweep_start(POINTS, "v", jobs=1)
        journal.point_fail(0, "table4", 1, "error", "Traceback...\nBoom: bad")
        journal.close()
        last = json.loads(path.read_text().splitlines()[-1])
        assert last["error"] == "Boom: bad"


class TestGenerations:
    def test_last_sweep_header_wins(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        _write_sweep(path, finished=[0, 1, 2])
        # A resume appends a fresh generation; earlier finishes are history.
        journal = SweepJournal(path)
        journal.sweep_start(POINTS, "v2", jobs=1)
        journal.point_finish(1, "table4", 1, cached=True)
        journal.close()
        state = load_journal(path)
        assert state.code_version == "v2"
        assert state.finished == {1}
        assert state.unfinished == [0, 2]


class TestCorruption:
    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        _write_sweep(path, finished=[0])
        with open(path, "a") as fh:
            fh.write('{"event": "finish", "index": 1, "exp')  # crash mid-write
        state = load_journal(path)
        assert state.finished == {0}  # torn record ignored

    def test_torn_interior_line_raises(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        _write_sweep(path, finished=[0])
        with open(path, "a") as fh:
            fh.write('{"event": bad\n')
            fh.write(json.dumps({"event": "finish", "index": 1,
                                 "exp_id": "table4", "attempts": 1,
                                 "cached": False}) + "\n")
        with pytest.raises(ValueError, match="corrupt sweep journal"):
            load_journal(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read sweep journal"):
            load_journal(tmp_path / "nope.jsonl")

    def test_no_header_raises(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text('{"event": "finish", "index": 0}\n')
        with pytest.raises(ValueError, match="no sweep header"):
            load_journal(path)

    def test_out_of_range_records_ignored(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(path)
        journal.sweep_start(POINTS[:1], "v", jobs=1)
        journal.point_finish(7, "table4", 1, cached=False)  # stale index
        journal.point_finish(0, "table4", 1, cached=False)
        journal.close()
        state = load_journal(path)
        assert state.finished == {0}


class TestDegradation:
    def test_unwritable_journal_warns_and_noops(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        journal = SweepJournal(blocker / "sweep.jsonl")
        journal.sweep_start(POINTS, "v", jobs=1)  # must not raise
        journal.point_finish(0, "table4", 1, cached=False)
        journal.close()
        err = capsys.readouterr().err
        assert err.count("could not open sweep journal") == 1  # warned once


class TestDefaultPath:
    def test_lives_next_to_the_cache(self, tmp_path):
        assert default_journal_path(tmp_path) == tmp_path / "sweep-journal.jsonl"
