"""Tests for the EXPERIMENTS.md generator."""

from __future__ import annotations


from repro.experiments.base import ExperimentReport
from repro.experiments.report import experiments_markdown, write_experiments_md


def _fake_reports():
    a = ExperimentReport("table1", "Fake launch table")
    a.add("overhead", 1081.0, 1090.0, "ns")
    a.notes.append("a note")
    a.add_artifact("ARTIFACT-BLOCK")
    b = ExperimentReport("fig5", "Fake heatmap")
    b.add("cell", 1.43, 1.40, "us")
    return [a, b]


class TestMarkdown:
    def test_sections_rendered(self):
        md = experiments_markdown(_fake_reports())
        assert "## table1: Fake launch table" in md
        assert "## fig5: Fake heatmap" in md
        assert "| overhead | 1081 | 1090 | ns | +0.8% |" in md
        assert "> a note" in md
        assert "ARTIFACT-BLOCK" in md

    def test_overall_summary_present(self):
        md = experiments_markdown(_fake_reports())
        assert "2 experiments" in md
        assert "mean |err|" in md

    def test_header_documents_regeneration(self):
        md = experiments_markdown(_fake_reports())
        assert "repro-experiments" in md
        assert "DESIGN.md" in md


class TestWriteFile:
    def test_writes_to_path(self, tmp_path, monkeypatch):
        # Patch the registry to the fast fakes so the test stays quick.
        import repro.experiments.report as report_mod

        monkeypatch.setattr(
            report_mod,
            "experiments_markdown",
            lambda **kw: experiments_markdown(_fake_reports()),
        )
        out = write_experiments_md(tmp_path / "E.md")
        text = out.read_text()
        assert "Fake launch table" in text
        assert "Generated in" in text
