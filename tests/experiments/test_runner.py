"""Tests for the execution layer: single entry path, cache, parallelism."""

from __future__ import annotations

import pytest

from repro.experiments import runner
from repro.experiments.service import cache as service_cache
from repro.experiments.service import workers as service_workers
from repro.experiments.registry import EXPERIMENTS, get_spec
from repro.experiments.scenario import Scenario

# A fast subset covering single- and multi-GPU drivers.
FAST_IDS = ["table1", "table4", "fig8", "deadlock"]


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "cache"


class TestCodeVersion:
    def test_stable_within_process(self):
        assert runner.code_version() == runner.code_version()

    def test_is_hex_digest(self):
        v = runner.code_version()
        assert len(v) == 16
        int(v, 16)


class TestExecutePoint:
    def test_runs_and_stamps_scenario(self, cache_dir):
        scen = Scenario(gpus=("V100",))
        res = runner.execute_point("table4", scen, cache_dir=cache_dir)
        assert res.ok and not res.cached
        assert res.report.scenario == scen.to_dict()

    def test_cache_round_trip_is_lossless(self, cache_dir):
        scen = Scenario(gpus=("V100",))
        fresh = runner.execute_point("table4", scen, cache_dir=cache_dir)
        hit = runner.execute_point("table4", scen, cache_dir=cache_dir)
        assert hit.cached
        assert hit.report == fresh.report
        assert hit.report.render() == fresh.report.render()

    def test_no_cache_bypasses_store_and_load(self, cache_dir):
        scen = Scenario(gpus=("V100",))
        runner.execute_point("table4", scen, use_cache=False, cache_dir=cache_dir)
        assert not cache_dir.exists()  # nothing stored
        res = runner.execute_point("table4", scen, use_cache=False, cache_dir=cache_dir)
        assert not res.cached

    def test_cache_key_includes_scenario_hash(self, cache_dir):
        runner.execute_point("table4", Scenario(gpus=("V100",)), cache_dir=cache_dir)
        runner.execute_point("table4", Scenario(gpus=("P100",)), cache_dir=cache_dir)
        assert len(list(cache_dir.glob("table4-*.json"))) == 2

    def test_cache_key_includes_code_version(self, cache_dir, monkeypatch):
        scen = Scenario(gpus=("V100",))
        runner.execute_point("table4", scen, cache_dir=cache_dir)
        monkeypatch.setattr(service_cache, "_CODE_VERSION", "deadbeefdeadbeef")
        res = runner.execute_point("table4", scen, cache_dir=cache_dir)
        assert not res.cached  # old entry invisible under the new version

    @pytest.mark.parametrize("garbage", ["{not json", "[1, 2, 3]", '{"a": 1}'])
    def test_corrupt_cache_entry_recomputed(self, cache_dir, garbage):
        scen = Scenario(gpus=("V100",))
        first = runner.execute_point("table4", scen, cache_dir=cache_dir)
        [path] = list(cache_dir.glob("table4-*.json"))
        path.write_text(garbage)
        res = runner.execute_point("table4", scen, cache_dir=cache_dir)
        assert res.ok and not res.cached
        assert res.report == first.report

    def test_driver_failure_captured_not_raised(self, cache_dir, monkeypatch):
        from dataclasses import replace

        from repro.experiments import registry

        def boom(scenario):
            raise RuntimeError("driver exploded")

        monkeypatch.setitem(
            registry.EXPERIMENTS, "table4", replace(get_spec("table4"), driver=boom)
        )
        res = runner.execute_point("table4", Scenario(gpus=("V100",)), cache_dir=cache_dir)
        assert not res.ok
        assert "driver exploded" in res.error
        # failures are never cached
        assert not list(cache_dir.glob("table4-*.json")) if cache_dir.exists() else True

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            runner.execute_point("nope", Scenario())


class TestRunPoints:
    def test_serial_parallel_cached_byte_identical(self, cache_dir):
        points = [
            (e, s) for e in FAST_IDS for s in EXPERIMENTS[e].default_scenarios
        ]
        serial = runner.run_points(points, jobs=1, use_cache=False)
        parallel = runner.run_points(points, jobs=2, use_cache=True, cache_dir=cache_dir)
        cached = runner.run_points(points, jobs=1, use_cache=True, cache_dir=cache_dir)
        assert all(r.cached for r in cached)
        for a, b, c in zip(serial, parallel, cached):
            assert a.report == b.report == c.report
            assert a.report.render() == b.report.render() == c.report.render()
            assert a.report.to_json() == b.report.to_json() == c.report.to_json()

    def test_results_in_input_order(self, cache_dir):
        points = [
            ("table4", Scenario(gpus=("P100",))),
            ("table1", Scenario(gpus=("V100",))),
            ("table4", Scenario(gpus=("V100",))),
        ]
        results = runner.run_points(points, jobs=2, cache_dir=cache_dir)
        assert [(r.exp_id, r.scenario) for r in results] == points

    def test_invalid_jobs(self):
        with pytest.raises(ValueError):
            runner.run_points([], jobs=0)


class TestExperimentApi:
    def test_run_experiment_merges_default_scenarios(self, cache_dir):
        rep = runner.run_experiment("table4", cache_dir=cache_dir)
        labels = [r.label for r in rep.rows]
        assert any(l.startswith("V100") for l in labels)
        assert any(l.startswith("P100") for l in labels)
        assert rep.title == get_spec("table4").title
        assert len(rep.scenario["points"]) == 2

    def test_run_experiment_custom_scenario(self, cache_dir):
        rep = runner.run_experiment(
            "table4", scenarios=[Scenario(gpus=("P100",))], cache_dir=cache_dir
        )
        assert all(r.label.startswith("P100") for r in rep.rows)

    def test_run_all_paper_order_and_selection(self, cache_dir):
        reps = runner.run_all(ids=["table4", "table1"], cache_dir=cache_dir)
        assert [r.exp_id for r in reps] == ["table4", "table1"]

    def test_run_all_aggregates_failures(self, cache_dir, monkeypatch):
        from dataclasses import replace

        from repro.experiments import registry

        def boom(scenario):
            raise RuntimeError("kaput")

        monkeypatch.setitem(
            registry.EXPERIMENTS, "table4", replace(get_spec("table4"), driver=boom)
        )
        with pytest.raises(runner.ExperimentError, match="kaput"):
            runner.run_all(ids=["table4"], cache_dir=cache_dir)

    def test_registry_delegates_to_runner(self):
        """registry.run_all and run_experiment share the single entry path."""
        from repro.experiments import registry

        from repro.experiments.service import scheduler as service_scheduler

        calls = []
        orig = runner.execute_point

        def spy(exp_id, scenario, **kw):
            calls.append(exp_id)
            return orig(exp_id, scenario, **kw)

        import unittest.mock as mock

        # The serial path resolves execute_point through the scheduler
        # module, which is where registry.* must end up.
        with mock.patch.object(
            service_scheduler, "execute_point", side_effect=spy
        ):
            registry.run_experiment("table4")
            registry.run_all(ids=["table1"])
        assert calls == ["table4", "table4", "table1"]


class TestWorkerCodeVersion:
    def test_pool_worker_pins_parent_code_version(self, cache_dir, monkeypatch):
        """Workers use the version shipped in the payload, never their own
        filesystem digest — a source edit during a parallel run must not
        split one run across two cache keys (the spawn start method would
        otherwise recompute mid-run)."""
        from repro.experiments import faults

        monkeypatch.setattr(service_cache, "_CODE_VERSION", None)
        # worker_main flips the worker marker; restore it so later
        # in-process fault tests keep the kill-downgrade behaviour.
        monkeypatch.setattr(faults, "IN_WORKER", False)
        sentinel = "feedfacefeedface"
        scen = Scenario(gpus=("V100",))
        out = service_workers.worker_main(
            service_workers.WorkItem(
                exp_id="table4", scenario=scen.to_dict(), use_cache=True,
                cache_dir=str(cache_dir), code_version=sentinel,
            )
        )
        assert out.exp_id == "table4" and out.report_json is not None
        assert service_cache._CODE_VERSION == sentinel
        assert list(cache_dir.glob(f"table4-*-{sentinel}.json"))

    def test_run_points_ships_version_with_payload(self, cache_dir, monkeypatch):
        from concurrent.futures import Future

        from repro.experiments import faults

        monkeypatch.setattr(faults, "IN_WORKER", False)
        captured = {}
        real_worker = service_workers.worker_main

        def fake_worker(item):
            captured["version"] = item.code_version
            return real_worker(item)

        # jobs=2 engages the supervised pool path; run in-process (futures
        # resolve at submit time) to observe the payload.
        class FakePool:
            def __init__(self, max_workers):
                pass

            def submit(self, fn, payload):
                fut = Future()
                try:
                    fut.set_result(fn(payload))
                except BaseException as exc:  # pragma: no cover - safety
                    fut.set_exception(exc)
                return fut

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(service_workers, "ProcessPoolExecutor", FakePool)
        monkeypatch.setattr(service_workers, "worker_main", fake_worker)
        points = [("table4", Scenario(gpus=("V100",))), ("table4", Scenario(gpus=("P100",)))]
        results = runner.run_points(points, jobs=2, cache_dir=cache_dir)
        assert all(r.ok for r in results)
        assert captured["version"] == runner.code_version()


class TestCanonicalExtrasShareCache:
    def test_equivalent_extra_spellings_hit_one_entry(self, cache_dir):
        a = Scenario(gpus=("V100",), extras=(("knob", "10"),))
        b = Scenario(gpus=("V100",), extras=(("knob", "010"),))
        first = runner.execute_point("table4", a, cache_dir=cache_dir)
        second = runner.execute_point("table4", b, cache_dir=cache_dir)
        assert not first.cached and second.cached
        assert len(list(cache_dir.glob("table4-*.json"))) == 1


class TestCodeVersionMemoized:
    def test_source_walk_happens_at_most_once_per_process(self, monkeypatch):
        """The source-tree hash is expensive (every repro/**/*.py); the
        runner must compute it once per process, not once per entry."""
        from pathlib import Path

        monkeypatch.setattr(service_cache, "_CODE_VERSION", None)
        walks = {"n": 0}
        real_rglob = Path.rglob

        def counting_rglob(self, pattern):
            walks["n"] += 1
            return real_rglob(self, pattern)

        monkeypatch.setattr(Path, "rglob", counting_rglob)
        v1 = runner.code_version()
        v2 = runner.code_version()
        service_cache.cache_path(Path("/tmp/c"), "table4", Scenario(gpus=("V100",)))
        service_cache.cache_path(Path("/tmp/c"), "table4", Scenario(gpus=("P100",)))
        assert v1 == v2
        assert walks["n"] == 1


class TestBackendCacheIsolation:
    """A backend choice must never collide with another backend's cache
    entry: the backend rides in the scenario's canonical form, so it is
    part of the content-addressed key."""

    def test_backend_scenarios_get_distinct_cache_entries(self, cache_dir):
        base = Scenario(gpus=("V100",))
        ana = Scenario(gpus=("V100",), backend="analytic")
        eng = Scenario(gpus=("V100",), backend="engine")
        paths = {
            service_cache.cache_path(cache_dir, "fig8", s) for s in (base, ana, eng)
        }
        assert len(paths) == 3

    def test_analytic_run_does_not_poison_default_cache(self, cache_dir):
        ana = runner.execute_point(
            "fig8", Scenario(gpus=("V100",), backend="analytic"),
            cache_dir=cache_dir,
        )
        default = runner.execute_point(
            "fig8", Scenario(gpus=("V100",)), cache_dir=cache_dir
        )
        assert ana.ok and default.ok
        assert not default.cached  # computed fresh, not served from analytic
        assert ana.report.backend == "analytic"
        assert default.report.backend is None
        # Same physics either way: the reports' rows agree bit-for-bit.
        assert ana.report.rows == default.report.rows

    def test_engine_only_experiment_notes_fallback(self, cache_dir):
        res = runner.execute_point(
            "table4", Scenario(gpus=("V100",), backend="analytic"),
            cache_dir=cache_dir,
        )
        assert res.ok
        assert res.report.backend == "engine"
        assert any("no analytic-eligible sweeps" in n for n in res.report.notes)
