"""Tests for the layered sweep service: queue, shards, slab, aggregator.

The service decomposes the old monolithic runner into four seams
(``queue -> scheduler -> workers -> aggregate``); these tests pin each
seam's contract in isolation plus the cross-layer invariants: sharded
execution produces byte-identical reports to serial, work stealing is
deterministic, the shared-memory slab round-trips report bytes, and the
``status``/``compact`` subcommands read/rewrite the journal faithfully.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.experiments import registry
from repro.experiments.cli import main
from repro.experiments.journal import (
    SweepJournal,
    compact_journal,
    load_journal,
)
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.scenario import Scenario
from repro.experiments.service import (
    JobQueue,
    ReportAggregator,
    ResultSlab,
    SweepService,
    shard_of,
)
from repro.experiments.service.queue import (
    CLAIMED,
    DONE,
    FAILED,
    PENDING,
    PointResult,
)

POINTS = [
    ("table4", Scenario(gpus=("V100",))),
    ("table4", Scenario(gpus=("P100",))),
    ("table5", Scenario(gpus=("V100",))),
    ("table5", Scenario(gpus=("P100",))),
]


def _result(exp_id, scen, ok=True):
    if ok:
        from repro.experiments.base import ExperimentReport

        return PointResult(exp_id, scen, report=ExperimentReport(exp_id, "t"))
    return PointResult(exp_id, scen, error="boom", error_kind="error")


class TestShardOf:
    def test_deterministic_and_in_range(self):
        for _, scen in POINTS:
            s = shard_of(scen, 3)
            assert 0 <= s < 3
            assert shard_of(scen, 3) == s  # stable across calls

    def test_single_shard_is_zero(self):
        assert shard_of(POINTS[0][1], 1) == 0
        assert shard_of(POINTS[0][1], 0) == 0

    def test_matches_content_hash(self):
        scen = POINTS[0][1]
        assert shard_of(scen, 5) == int(scen.content_hash, 16) % 5


class TestJobQueue:
    def test_from_points_assigns_shards(self):
        q = JobQueue.from_points(POINTS, shards=3)
        assert len(q) == 4
        for job, (exp_id, scen) in zip(q, POINTS):
            assert job.exp_id == exp_id
            assert job.shard == shard_of(scen, 3)
            assert job.state == PENDING

    def test_lifecycle_transitions(self):
        q = JobQueue.from_points(POINTS)
        job = q.jobs[0]
        q.claim(job)
        assert job.state == CLAIMED and not job.settled
        q.requeue(job, ready_at=123.0)
        assert job.state == PENDING and job.ready_at == 123.0
        q.finish(job, _result(*POINTS[0]))
        assert job.state == DONE and job.settled
        q.fail(q.jobs[1], _result(*POINTS[1], ok=False))
        assert q.jobs[1].state == FAILED
        assert q.unsettled == 2

    def test_ready_respects_backoff_and_shard(self):
        q = JobQueue.from_points(POINTS, shards=1)
        q.jobs[0].ready_at = 100.0
        ready = q.ready(0, now=50.0)
        assert q.jobs[0] not in ready
        assert q.jobs[1] in ready
        assert q.ready(0, now=150.0)[0] is q.jobs[0]  # input order

    def test_results_in_input_order(self):
        q = JobQueue.from_points(POINTS)
        # Settle out of order; results() must come back by input position.
        for i in (2, 0, 3, 1):
            q.finish(q.jobs[i], _result(*POINTS[i]))
        assert [r.exp_id for r in q.results()] == [e for e, _ in POINTS]

    def test_from_journal_queues_everything_pending(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(path)
        journal.sweep_start(POINTS, "cafecafecafecafe", jobs=2, shards=2)
        journal.point_start(0, "table4", 1, shard=1)
        journal.point_finish(0, "table4", 1, cached=False)
        journal.close()
        q = JobQueue.from_journal(load_journal(path), shards=2)
        # Finished points re-enter as pending: resume recovers their
        # reports through the cache, not by trusting the journal.
        assert all(job.state == PENDING for job in q)
        assert [(j.exp_id, j.scenario) for j in q] == POINTS


class TestWorkSteal:
    def _queue(self, shards_of_jobs):
        """Queue with explicit shard assignments (bypasses hashing)."""
        q = JobQueue.from_points(
            [POINTS[i % len(POINTS)] for i in range(len(shards_of_jobs))],
            shards=max(shards_of_jobs) + 1,
        )
        for job, shard in zip(q.jobs, shards_of_jobs):
            job.shard = shard
        return q

    def test_steals_last_job_of_most_backlogged_shard(self):
        q = self._queue([1, 1, 1, 2])
        job = q.steal(to_shard=0, now=0.0)
        assert job is q.jobs[2]  # last (coldest) job of shard 1's backlog
        assert job.shard == 0

    def test_tie_breaks_toward_lowest_shard_id(self):
        q = self._queue([2, 2, 1, 1])
        job = q.steal(to_shard=0, now=0.0)
        assert job is q.jobs[3]  # shard 1 wins the tie over shard 2

    def test_nothing_to_steal(self):
        q = self._queue([0, 0])
        assert q.steal(to_shard=0, now=0.0) is None  # own shard exempt
        q2 = self._queue([1])
        q2.claim(q2.jobs[0])
        assert q2.steal(to_shard=0, now=0.0) is None  # claimed exempt

    def test_backoff_jobs_not_stealable(self):
        q = self._queue([1])
        q.jobs[0].ready_at = 100.0
        assert q.steal(to_shard=0, now=50.0) is None
        assert q.steal(to_shard=0, now=150.0) is q.jobs[0]


class TestResultSlab:
    def test_publish_take_roundtrip(self):
        slab = ResultSlab(slots=4, slot_bytes=64)
        try:
            assert slab.take(1) is None  # unpublished slot
            assert slab.publish(1, b'{"exp_id": "table4"}', cached=True)
            data, cached = slab.take(1)
            assert data == b'{"exp_id": "table4"}' and cached is True
            assert slab.take(0) is None  # neighbours untouched
        finally:
            slab.close()
            slab.unlink()

    def test_oversize_payload_rejected(self):
        slab = ResultSlab(slots=1, slot_bytes=8)
        try:
            assert not slab.publish(0, b"x" * 9, cached=False)
            assert slab.take(0) is None
        finally:
            slab.close()
            slab.unlink()

    def test_out_of_range_index_rejected(self):
        slab = ResultSlab(slots=2, slot_bytes=8)
        try:
            assert not slab.publish(2, b"x", cached=False)
            assert slab.take(-1) is None
        finally:
            slab.close()
            slab.unlink()

    def test_worker_attaches_by_name(self):
        parent = ResultSlab(slots=2, slot_bytes=32)
        try:
            attached = ResultSlab(2, 32, name=parent.name)
            assert attached.publish(0, b"payload", cached=False)
            attached.close()
            data, cached = parent.take(0)
            assert data == b"payload" and cached is False
        finally:
            parent.close()
            parent.unlink()


class TestAggregator:
    def test_streaming_fold_and_order(self):
        agg = ReportAggregator()
        for i in (3, 0, 2, 1):
            agg.add(i, _result(*POINTS[i]))
        assert len(agg) == 4
        assert [r.exp_id for r in agg.results()] == [e for e, _ in POINTS]
        assert agg.experiment_ids() == ["table4", "table5"]

    def test_partial_report_none_without_ok_results(self):
        agg = ReportAggregator()
        assert agg.partial_report("table4") is None
        agg.add(0, _result(*POINTS[0], ok=False))
        assert agg.partial_report("table4") is None

    def test_execution_stats_counts_failures(self):
        agg = ReportAggregator()
        agg.add(0, _result(*POINTS[0]))
        agg.add(1, _result(*POINTS[1], ok=False))
        stats = agg.execution_stats()["table4"]
        assert stats["points"] == 2 and stats["failed"] == 1


class TestShardedSweep:
    """Cross-layer invariant: sharding never changes the answer."""

    def test_sharded_run_matches_serial(self, tmp_path):
        from repro.experiments.runner import run_points

        serial = run_points(POINTS, cache_dir=tmp_path / "a")
        sharded = run_points(
            POINTS, jobs=2, shards=2, cache_dir=tmp_path / "b"
        )
        assert [r.ok for r in sharded] == [True] * len(POINTS)
        for a, b in zip(serial, sharded):
            assert a.exp_id == b.exp_id
            assert a.report.to_json() == b.report.to_json()

    def test_service_stats_and_streaming_aggregator(self, tmp_path):
        service = SweepService(jobs=2, shards=2, cache_dir=tmp_path)
        results = service.run(POINTS)
        assert all(r.ok for r in results)
        # Every settled point was streamed into the aggregator...
        assert len(service.aggregator) == len(POINTS)
        reports = service.aggregator.reports(["table4", "table5"])
        assert [r.exp_id for r in reports] == ["table4", "table5"]
        # ...and the slab carried the report bytes (no pickle round-trip).
        assert service.stats.shards == 2
        assert service.stats.slab_points > 0
        assert service.stats.pickle_bytes_avoided > 0

    def test_shards_clamped_to_point_count(self, tmp_path):
        service = SweepService(jobs=4, shards=16, cache_dir=tmp_path)
        results = service.run(POINTS[:2])
        assert all(r.ok for r in results)

    def test_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            SweepService(jobs=0)
        with pytest.raises(ValueError, match="shards"):
            SweepService(shards=0)
        with pytest.raises(ValueError, match="timeout"):
            SweepService(timeout=0)

    def test_cli_rejects_bad_shards(self, capsys):
        assert main(["table4", "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err


class TestJournalSharding:
    def test_shard_recorded_and_bucketed(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(path)
        journal.sweep_start(POINTS, "v", jobs=2, shards=2)
        journal.point_start(0, "table4", 1, shard=0)
        journal.point_finish(0, "table4", 1, cached=False)
        journal.point_start(1, "table4", 1, shard=1)
        journal.point_fail(1, "table4", 1, "crash", "died")
        journal.point_start(2, "table5", 1, shard=1)
        journal.close()
        state = load_journal(path)
        assert state.shard_count == 2 and state.jobs == 2
        assert state.shards == {0: 0, 1: 1, 2: 1}
        progress = state.shard_progress()
        assert progress[0] == {
            "points": 1, "finished": 1, "failed": 0, "running": 0
        }
        assert progress[1] == {
            "points": 2, "finished": 0, "failed": 1, "running": 1
        }
        # Point 3 never started: reported under the "not started" bucket.
        assert progress[-1]["points"] == 1

    def test_steal_attribution_follows_latest_start(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(path)
        journal.sweep_start(POINTS[:1], "v", jobs=2, shards=2)
        journal.point_start(0, "table4", 1, shard=1)
        journal.point_start(0, "table4", 2, shard=0)  # stolen, re-run
        journal.point_finish(0, "table4", 2, cached=False)
        journal.close()
        assert load_journal(path).shards == {0: 0}


class TestCompaction:
    def _grown_journal(self, path):
        journal = SweepJournal(path)
        # An abandoned first generation, then the live one with retries.
        journal.sweep_start(POINTS, "v1", jobs=1)
        journal.point_start(0, "table4", 1)
        journal.sweep_start(POINTS, "v2", jobs=2, shards=2)
        journal.point_start(0, "table4", 1, shard=0)
        journal.point_fail(0, "table4", 1, "timeout", "slow")
        journal.point_start(0, "table4", 2, shard=1)
        journal.point_finish(0, "table4", 2, cached=False)
        journal.point_start(1, "table4", 1, shard=1)
        journal.point_fail(1, "table4", 1, "crash", "died")
        journal.point_start(2, "table5", 1, shard=0)
        journal.close()
        return path

    def _state_key(self, state):
        return (
            state.points, state.code_version, state.finished, state.failed,
            state.started, state.shards, state.jobs, state.shard_count,
        )

    def test_compaction_preserves_resume_state(self, tmp_path):
        path = self._grown_journal(tmp_path / "sweep.jsonl")
        before_state = self._state_key(load_journal(path))
        before, after = compact_journal(path)
        assert after < before
        assert self._state_key(load_journal(path)) == before_state

    def test_superseded_records_dropped(self, tmp_path):
        path = self._grown_journal(tmp_path / "sweep.jsonl")
        compact_journal(path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        # One header + per point: last start and final outcome only.
        assert [r["event"] for r in records if r["event"] == "sweep"] == ["sweep"]
        assert records[0]["code_version"] == "v2"
        point0 = [r for r in records if r.get("index") == 0]
        assert [r["event"] for r in point0] == ["start", "finish"]
        assert point0[0]["attempt"] == 2  # the superseded attempt is gone
        point1 = [r for r in records if r.get("index") == 1]
        assert [r["event"] for r in point1] == ["start", "fail"]

    def test_torn_final_line_dropped(self, tmp_path):
        path = self._grown_journal(tmp_path / "sweep.jsonl")
        with open(path, "a") as fh:
            fh.write('{"event": "finish", "ind')  # crash mid-append
        before_state = self._state_key(load_journal(path))
        compact_journal(path)
        assert self._state_key(load_journal(path)) == before_state
        for line in path.read_text().splitlines():
            json.loads(line)  # every surviving line parses

    def test_compaction_is_idempotent(self, tmp_path):
        path = self._grown_journal(tmp_path / "sweep.jsonl")
        compact_journal(path)
        first = path.read_text()
        before, after = compact_journal(path)
        assert before == after
        assert path.read_text() == first

    def test_no_header_raises(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text('{"event": "start", "index": 0}\n')
        with pytest.raises(ValueError, match="no sweep header"):
            compact_journal(path)

    def test_cli_compact_subcommand(self, tmp_path, capsys):
        path = self._grown_journal(tmp_path / "sweep.jsonl")
        assert main(["compact", str(path)]) == 0
        out = capsys.readouterr().out
        assert "compacted" in out and "record(s)" in out

    def test_cli_compact_missing_journal(self, tmp_path, capsys):
        assert main(["compact", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot compact" in capsys.readouterr().err


class TestStatusSubcommand:
    def _interrupted_journal(self, tmp_path):
        """A sweep journal that looks mid-flight: 1 finished, 1 pending."""
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(path)
        journal.sweep_start(POINTS[:2], "deadbeefdeadbeef", jobs=2, shards=2)
        journal.point_start(0, "table4", 1, shard=0)
        journal.point_finish(0, "table4", 1, cached=False)
        journal.close()
        return path

    def test_status_summary(self, tmp_path, capsys):
        path = self._interrupted_journal(tmp_path)
        assert main(["status", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 point(s), 1 finished" in out
        assert "shards 2" in out
        assert "shard 0: 1 point(s), 1 finished" in out
        assert "not started: 1 point(s)" in out
        assert "table4: 1/2 finished" in out

    def test_status_json(self, tmp_path, capsys):
        path = self._interrupted_journal(tmp_path)
        assert main(["status", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["points"] == 2
        assert payload["finished"] == 1
        assert payload["pending"] == 1
        assert payload["shards"] == 2
        assert payload["shard_progress"]["0"]["finished"] == 1
        assert payload["experiments"]["table4"]["points"] == 2

    def test_status_bad_journal(self, tmp_path, capsys):
        assert main(["status", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read sweep status" in capsys.readouterr().err

    def test_status_partial_renders_cached_reports(self, tmp_path, capsys):
        # A real (completed) sweep: every finished point has a cache
        # entry addressed under the journal's recorded code version.
        cache = tmp_path / "cache"
        assert main(["table4", "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        journal = cache / "sweep-journal.jsonl"
        rc = main(["status", str(journal), "--partial",
                   "--cache-dir", str(cache)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "(partial: 2/2 point(s) finished)" in out
        assert "table4" in out


class TestResumeWithBackend:
    def test_unfinished_points_reexecute_under_new_backend(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.experiments import faults

        cache = tmp_path / "cache"
        journal = cache / "sweep-journal.jsonl"
        # Sweep 1: the P100 point fails; the V100 point finishes+caches.
        plan = faults.FaultPlan((
            faults.FaultRule(kind="error", match="table5", scenario="P100",
                             attempts=99),
        ))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        assert main(["table5", "--json", "--cache-dir", str(cache)]) == 1
        capsys.readouterr()

        # Resume with --backend: the unfinished point re-executes under
        # the requested backend; the finished point keeps its recorded
        # provenance (served from the cache, scenario untouched).
        monkeypatch.delenv(faults.ENV_VAR)
        rc = main(["--resume", str(journal), "--json", "--backend", "auto",
                   "--cache-dir", str(cache)])
        out, err = capsys.readouterr()
        assert rc == 0, err
        reports = json.loads(out)
        assert reports[0]["execution"]["cached"] == 1
        points = {
            tuple(p["gpus"]): p for p in reports[0]["scenario"]["points"]
        }
        assert "backend" not in points[("V100",)]  # original provenance
        assert points[("P100",)]["backend"] == "auto"  # re-executed

    def test_resume_still_rejects_other_selection_args(self, tmp_path, capsys):
        rc = main(["--resume", str(tmp_path / "j.jsonl"),
                   "--scenario", "gpus=V100"])
        assert rc == 2
        assert "--backend" not in capsys.readouterr().err


class TestFacadeSignatures:
    """The runner facade keeps the public API generations of callers use."""

    def test_public_names_still_importable(self):
        from repro.experiments.runner import (  # noqa: F401
            NO_RETRY,
            ExperimentError,
            PointResult,
            RetryPolicy,
            execute_point,
            merge_experiment,
            run_all,
            run_experiment,
            run_points,
        )

    def test_run_points_signature_unchanged(self):
        import inspect

        from repro.experiments.runner import run_points

        params = list(inspect.signature(run_points).parameters)
        assert params[:7] == [
            "points", "jobs", "use_cache", "cache_dir", "timeout", "retry",
            "journal",
        ]
