"""Cross-cutting property-based tests on the cost models and protocols.

These encode the *monotonicity and consistency laws* the paper's data obeys
— any refactor of the simulator that breaks one of these would produce
physically impossible machines even if the anchor points still matched.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.sim.arch import DGX1_V100, P100, V100
from repro.sim.device import grid_sync_latency_ns
from repro.sim.node import Node, cross_gpu_latency_ns, multigrid_local_latency_ns
from repro.sim.occupancy import blocks_per_sm as occ_blocks_per_sm
from repro.sim.sm import block_sync_latency_cycles

specs = st.sampled_from([V100, P100])
blocks = st.sampled_from([1, 2, 4, 8, 16, 32])
threads = st.sampled_from([32, 64, 128, 256, 512, 1024])


def legal(spec, b, t) -> bool:
    return b <= occ_blocks_per_sm(spec, t).blocks_per_sm


class TestGridSyncLaws:
    @given(specs, blocks, threads)
    @settings(max_examples=100, deadline=None)
    def test_positive_and_bounded(self, spec, b, t):
        assume(legal(spec, b, t))
        ns = grid_sync_latency_ns(spec, b, t)
        assert 0 < ns < 100_000  # no cell above 100 us in the paper

    @given(specs, blocks, threads)
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_blocks(self, spec, b, t):
        assume(b > 1 and legal(spec, b, t))
        assert grid_sync_latency_ns(spec, b, t) > grid_sync_latency_ns(spec, b // 2, t)

    @given(specs, blocks, threads)
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_threads(self, spec, b, t):
        assume(t > 32 and legal(spec, b, t))
        assert grid_sync_latency_ns(spec, b, t) >= grid_sync_latency_ns(spec, b, t // 2)

    @given(specs, threads)
    @settings(max_examples=60, deadline=None)
    def test_blocks_dominate_threads(self, spec, t):
        """Doubling blocks/SM always costs more than doubling threads/block
        (the paper's central Fig 5 observation)."""
        assume(legal(spec, 2, t) and legal(spec, 1, min(t * 2, 1024)) and t < 1024)
        base = grid_sync_latency_ns(spec, 1, t)
        more_blocks = grid_sync_latency_ns(spec, 2, t)
        more_threads = grid_sync_latency_ns(spec, 1, t * 2)
        assert more_blocks - base > more_threads - base


class TestMultiGridLaws:
    @given(blocks, threads)
    @settings(max_examples=60, deadline=None)
    def test_multigrid_local_costs_at_least_grid_sync_shape(self, b, t):
        assume(legal(V100, b, t))
        local = multigrid_local_latency_ns(DGX1_V100, b, t)
        assert local > 0

    @given(st.integers(2, 8), blocks)
    @settings(max_examples=60, deadline=None)
    def test_cross_phase_monotone_in_gpu_count(self, n, b):
        node = Node(DGX1_V100)
        smaller = cross_gpu_latency_ns(DGX1_V100, node.interconnect, range(n - 1), b)
        larger = cross_gpu_latency_ns(DGX1_V100, node.interconnect, range(n), b)
        assert larger >= smaller

    @given(st.integers(2, 8), blocks)
    @settings(max_examples=60, deadline=None)
    def test_cross_phase_monotone_in_blocks(self, n, b):
        assume(b > 1)
        node = Node(DGX1_V100)
        assert cross_gpu_latency_ns(
            DGX1_V100, node.interconnect, range(n), b
        ) > cross_gpu_latency_ns(DGX1_V100, node.interconnect, range(n), b // 2)


class TestBlockSyncLaws:
    @given(specs, st.integers(1, 32))
    @settings(max_examples=80, deadline=None)
    def test_latency_affine_in_warps(self, spec, w):
        l1 = block_sync_latency_cycles(spec, w)
        l2 = block_sync_latency_cycles(spec, w + 1)
        assert l2 - l1 == pytest.approx(spec.block_sync.per_warp_latency_cycles)

    @given(st.integers(1, 32))
    @settings(max_examples=40, deadline=None)
    def test_pascal_always_slower_than_volta(self, w):
        # In cycles *and* wall time (P100 also clocks lower).
        assert block_sync_latency_cycles(P100, w) > block_sync_latency_cycles(V100, w)


class TestStreamLaws:
    @given(
        st.lists(st.floats(100.0, 50_000.0), min_size=1, max_size=10),
        st.sampled_from(["traditional", "cooperative"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_pipeline_order_and_spacing(self, durations, launch_type):
        """Kernels retire in order; consecutive starts are separated by at
        least the gap; every kernel starts no earlier than its enqueue plus
        dispatch."""
        from repro.cudasim.kernel import LaunchConfig, WorkKernel
        from repro.cudasim.stream import Stream
        from repro.sim.device import Device
        from repro.sim.engine import Engine

        calib = V100.launch_calib(launch_type)
        eng = Engine()
        s = Stream(eng, Device(V100))
        cfg = LaunchConfig(1, 32)
        recs = [
            s.enqueue(WorkKernel(d), cfg, calib, float(i))
            for i, d in enumerate(durations)
        ]
        for i, rec in enumerate(recs):
            assert rec.end_ns == pytest.approx(rec.start_ns + durations[i])
            assert rec.start_ns >= i + calib.dispatch_ns - 1e-9
        for a, b in zip(recs, recs[1:]):
            assert b.start_ns >= a.end_ns + calib.gap_ns - 1e-9


class TestPerfModelLaws:
    @given(
        st.floats(0.1, 10.0), st.floats(11.0, 400.0),
        st.floats(1.0, 100.0), st.floats(0.0, 10_000.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_switching_points_ordering(self, thr_b, thr_m, lat, sync):
        """N_l >= the point where sync amortizes; both grow with sync cost."""
        from repro.core.perfmodel import WorkerConfig, switching_points

        basic = WorkerConfig("b", thr_b, lat)
        more = WorkerConfig("m", thr_m, lat)
        p1 = switching_points(basic, more, sync)
        p2 = switching_points(basic, more, sync + 100.0)
        assert p2.n_large > p1.n_large
        assert p2.n_medium > p1.n_medium
