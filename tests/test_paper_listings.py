"""Integration tests mapping every code listing in the paper to its
implementation in this library.

The paper's figures 3, 6, 10-14, 17 and 19 are code listings rather than
data; DESIGN.md promises each one a behavioural counterpart.  These tests
execute that counterpart end-to-end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cudasim import CudaRuntime, LaunchConfig, NullKernel, SleepKernel
from repro.host.openmp import OmpTeam
from repro.sim.arch import DGX1_V100, V100


class TestFig3SampleCode:
    """Fig 3: the implicit-barrier micro-benchmark skeleton."""

    def test_fig3_protocol_recovers_kernel_total_latency(self):
        rt = CudaRuntime.single_gpu(V100, host_jitter_ns=0.0)
        cfg = LaunchConfig(1, 32)
        timers = {}

        def host():
            # null_kernel with 10 us of nanosleep, as in the listing.
            kernel = SleepKernel(units=10, unit_ns=1000.0)
            yield from rt.launch(kernel, cfg)  # warm-up (not in timers)
            yield from rt.device_synchronize()
            timers["t1"] = rt.host_clock.read()
            yield from rt.launch(kernel, cfg)
            yield from rt.device_synchronize()
            timers["t2"] = rt.host_clock.read()
            for _ in range(5):
                yield from rt.launch(kernel, cfg)
            yield from rt.device_synchronize()
            timers["t3"] = rt.host_clock.read()

        rt.run_host(host())
        total = ((timers["t3"] - timers["t2"]) - (timers["t2"] - timers["t1"])) / 4
        # 10 us sleep kernels hide the dispatch pipeline, so the estimator
        # returns exec + gap: 10 us + ~1.08 us.
        assert total == pytest.approx(10_000 + 1081, rel=0.02)


class TestFig6CpuBarrier:
    """Fig 6: omp parallel + cudaSetDevice + kernel + sync + omp barrier."""

    def test_fig6_pattern_runs_to_completion(self):
        n = 4
        rt = CudaRuntime.for_node(DGX1_V100, gpu_count=n)
        team = OmpTeam(rt, n_threads=n)
        done = []

        def worker(gid):  # gid = omp_get_thread_num(); cudaSetDevice(gid)
            yield from rt.launch(NullKernel(), LaunchConfig(1, 32), device=gid)
            yield from rt.device_synchronize(device=gid)
            yield from team.barrier(gid)
            done.append(gid)

        team.run(worker)
        assert sorted(done) == list(range(n))
        assert team.barriers_passed == 1


class TestFig10BandwidthProxy:
    """Fig 10: the while-loop load+add proxy kernel."""

    def test_proxy_measures_table3_bandwidth(self, spec):
        from repro.microbench import measure_shared_bandwidth

        r = measure_shared_bandwidth(spec, 32)
        assert r.bandwidth_bytes_per_cycle == pytest.approx(
            {"V100": 19.6, "P100": 13.8}[spec.name], rel=0.03
        )


class TestFig11WarpReduce:
    """Fig 11: warp-level reduction with synchronization per step."""

    def test_listing_semantics_and_timing(self, spec):
        from repro.reduction import warp_reduce_latency_cycles, warp_reduce_value

        vals = np.linspace(0.0, 1.0, 32)
        out = warp_reduce_value(vals, "tile")
        assert out.correct
        assert warp_reduce_latency_cycles(spec, "tile") > 0


class TestFig12BlockReduce:
    """Fig 12: stride loop + block.sync + warp-0 shuffle finish."""

    def test_listing_behaviour(self, spec):
        from repro.reduction import block_reduce_cycles, block_reduce_value

        vals = np.random.default_rng(0).uniform(size=5000)
        assert block_reduce_value(vals, 1024) == pytest.approx(vals.sum())
        cost = block_reduce_cycles(spec, 5000, 1024)
        assert cost.sync_cycles > 0  # the single block.sync() of the listing


class TestFig13Fig14DeviceReductions:
    """Figs 13/14: explicit (grid sync) vs implicit device reductions."""

    def test_both_listings_agree_on_the_sum(self, spec):
        from repro.reduction import make_input, reduce_grid_sync, reduce_implicit

        data = make_input(2 * 1024 * 1024, seed=13)
        explicit = reduce_grid_sync(spec, data)
        implicit = reduce_implicit(spec, data)
        assert explicit.correct and implicit.correct
        assert explicit.value == pytest.approx(implicit.value)

    def test_fig14_multigpu_variant(self, dgx1):
        from repro.reduction import make_input, reduce_cpu_barrier

        data = make_input(8 * 1024 * 1024, seed=14)
        r = reduce_cpu_barrier(dgx1, data, gpu_count=4)
        assert r.correct


class TestFig17TimerLadder:
    """Fig 17: per-thread timer / sync / timer under a 32-way branch."""

    def test_listing_produces_fig18_traces(self, v100, p100):
        from repro.core import warp_sync_blocking_trace

        assert warp_sync_blocking_trace(v100).blocks_all_threads
        assert not warp_sync_blocking_trace(p100).blocks_all_threads


class TestFig19WongKernel:
    """Fig 19: the dependent add chain between two clock() reads."""

    def test_listing_measures_fadd(self, spec):
        from repro.microbench import measure_instruction_latency_wong

        expected = {"V100": 4.0, "P100": 6.0}[spec.name]
        assert measure_instruction_latency_wong(spec, "fadd") == pytest.approx(
            expected, abs=0.1
        )
