"""Shared fixtures: architecture specs and common tolerances."""

from __future__ import annotations

import pytest

from repro.sim.arch import DGX1_V100, P100, P100_PCIE_NODE, V100


@pytest.fixture(params=["V100", "P100"], ids=["V100", "P100"])
def spec(request):
    """Parametrized GPU spec covering both studied architectures."""
    return V100 if request.param == "V100" else P100


@pytest.fixture
def v100():
    return V100


@pytest.fixture
def p100():
    return P100


@pytest.fixture
def dgx1():
    return DGX1_V100


@pytest.fixture
def p100_node():
    return P100_PCIE_NODE


def rel_err(measured: float, paper: float) -> float:
    """Relative error helper used throughout the suite."""
    return abs(measured - paper) / abs(paper)
