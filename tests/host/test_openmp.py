"""Tests for the OpenMP-style host thread team."""

from __future__ import annotations

import pytest

from repro.cudasim.runtime import CudaRuntime
from repro.host.openmp import OmpTeam
from repro.sim.arch import DGX1_V100
from repro.sim.engine import DeadlockError, Timeout


def make_team(n):
    rt = CudaRuntime.for_node(DGX1_V100, gpu_count=max(n, 1))
    return rt, OmpTeam(rt, n_threads=n)


class TestBarrier:
    def test_all_threads_meet(self):
        rt, team = make_team(4)
        releases = []

        def worker(tid):
            yield Timeout(tid * 100.0)  # staggered arrivals
            yield from team.barrier(tid)
            releases.append(rt.engine.now)

        team.run(worker)
        assert len(set(releases)) == 1
        assert releases[0] >= 300.0 + team.barrier_cost_ns

    def test_barrier_cost_from_node_calibration(self):
        rt, team = make_team(8)
        assert team.barrier_cost_ns == DGX1_V100.omp_barrier_ns(8)

    def test_multiple_rounds(self):
        rt, team = make_team(3)
        counts = []

        def worker(tid):
            for _ in range(4):
                yield from team.barrier(tid)
            counts.append(tid)

        team.run(worker)
        assert sorted(counts) == [0, 1, 2]
        assert team.barriers_passed == 4

    def test_mismatched_barrier_counts_deadlock(self):
        rt, team = make_team(2)

        def worker(tid):
            yield from team.barrier(tid)
            if tid == 0:
                yield from team.barrier(tid)  # partner never arrives

        with pytest.raises(DeadlockError):
            team.run(worker)

    def test_invalid_tid_rejected(self):
        rt, team = make_team(2)

        def worker(tid):
            yield from team.barrier(5)

        with pytest.raises(ValueError):
            team.run(worker)

    def test_single_thread_barrier_is_cheap(self):
        rt, team = make_team(1)

        def worker(tid):
            yield from team.barrier(tid)
            return rt.engine.now

        [t] = team.run(worker)
        assert t == pytest.approx(team.barrier_cost_ns)

    def test_empty_team_rejected(self):
        rt = CudaRuntime.for_node(DGX1_V100, gpu_count=1)
        with pytest.raises(ValueError):
            OmpTeam(rt, n_threads=0)

    def test_run_collects_results(self):
        rt, team = make_team(3)

        def worker(tid):
            yield Timeout(1.0)
            return tid * 10

        assert team.run(worker) == [0, 10, 20]
