"""Tests for the thread-precise warp executor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cudasim import instructions as ins
from repro.sim.engine import DeadlockError
from repro.sim.exec_thread import UnsupportedInstruction, WarpExecutor


def run(spec, program, nthreads=32, **kw):
    return WarpExecutor(spec, nthreads=nthreads, **kw).run(program)


class TestBasics:
    def test_compute_advances_one_thread(self, spec):
        def program(ctx):
            yield ins.Compute(cycles=100.0)

        r = run(spec, program, nthreads=1)
        assert r.duration_cycles == pytest.approx(100.0, abs=0.5)

    def test_converged_threads_do_not_serialize(self, spec):
        def program(ctx):
            yield ins.Compute(cycles=100.0)

        r1 = run(spec, program, nthreads=1)
        r32 = run(spec, program, nthreads=32)
        assert r32.duration_cycles == pytest.approx(r1.duration_cycles, rel=0.01)

    def test_fadd_chain_latency(self, spec):
        def program(ctx):
            yield ins.FAdd(count=10)

        r = run(spec, program, nthreads=1)
        assert r.duration_cycles == pytest.approx(10 * spec.instructions.fadd, abs=0.5)

    def test_chainstep_uses_shared_chain_latency(self, spec):
        def program(ctx):
            yield ins.ChainStep(count=4)

        r = run(spec, program, nthreads=1)
        assert r.duration_cycles == pytest.approx(
            4 * spec.shared_mem.chain_latency_cycles, abs=0.5
        )

    def test_read_clock_returns_progressing_values(self, spec):
        def program(ctx):
            t0 = yield ins.ReadClock()
            yield ins.Compute(cycles=50.0)
            t1 = yield ins.ReadClock()
            ctx.record("delta", t1 - t0)

        r = run(spec, program, nthreads=1)
        assert 45.0 <= r.records[0]["delta"] <= 60.0

    def test_returns_collected(self, spec):
        def program(ctx):
            yield ins.Compute(cycles=1.0)
            return ctx.tid * 2

        r = run(spec, program, nthreads=4)
        assert r.returns == {0: 0, 1: 2, 2: 4, 3: 6}

    def test_invalid_thread_count(self, spec):
        with pytest.raises(ValueError):
            WarpExecutor(spec, nthreads=0)
        with pytest.raises(ValueError):
            WarpExecutor(spec, nthreads=33)

    def test_unknown_instruction_rejected(self, spec):
        def program(ctx):
            yield "not-an-instruction"

        with pytest.raises(Exception):
            run(spec, program, nthreads=1)


class TestNanosleep:
    def test_volta_sleeps(self, v100):
        def program(ctx):
            yield ins.Nanosleep(ns=1000.0)

        r = run(v100, program, nthreads=1)
        assert r.duration_ns == pytest.approx(1000.0)

    def test_pascal_lacks_nanosleep(self, p100):
        def program(ctx):
            yield ins.Nanosleep(ns=1000.0)

        with pytest.raises(UnsupportedInstruction, match="Volta"):
            run(p100, program, nthreads=1)


class TestWarpSync:
    def test_full_warp_tile_sync_latency(self, spec):
        def program(ctx):
            yield ins.WarpSync(kind="tile", group_size=32)

        r = run(spec, program)
        assert r.duration_cycles == pytest.approx(
            spec.warp_sync.tile_latency, abs=1.0
        )

    def test_volta_sync_blocks_until_all_arrive(self, v100):
        def program(ctx):
            if ctx.tid == 0:
                yield ins.Compute(cycles=500.0)  # straggler
            yield ins.WarpSync(kind="tile", group_size=32)
            t = yield ins.ReadClock()
            ctx.record("release", t)

        r = run(v100, program)
        releases = [r.records[t]["release"] for t in range(32)]
        assert max(releases) - min(releases) <= 3.0
        assert min(releases) >= 500.0

    def test_pascal_sync_does_not_block(self, p100):
        def program(ctx):
            if ctx.tid == 0:
                yield ins.Compute(cycles=500.0)
            yield ins.WarpSync(kind="tile", group_size=32)
            t = yield ins.ReadClock()
            ctx.record("release", t)

        r = run(p100, program)
        releases = [r.records[t]["release"] for t in range(32)]
        # Thread 0 is still computing when the others pass the "barrier".
        assert min(releases) < 100.0
        assert max(releases) >= 500.0

    def test_sync_in_loop_uses_fresh_rounds(self, spec):
        def program(ctx):
            for _ in range(5):
                yield ins.WarpSync(kind="tile", group_size=32)

        r = run(spec, program)
        assert r.duration_cycles == pytest.approx(
            5 * spec.warp_sync.tile_latency, rel=0.1, abs=2.0
        )

    def test_tile_subgroups_sync_independently(self, v100):
        # Two 16-wide tiles; a straggler in tile 0 must not delay tile 1.
        def program(ctx):
            if ctx.tid == 0:
                yield ins.Compute(cycles=1000.0)
            yield ins.WarpSync(kind="tile", group_size=16)
            t = yield ins.ReadClock()
            ctx.record("release", t)

        r = run(v100, program)
        tile1 = [r.records[t]["release"] for t in range(16, 32)]
        assert max(tile1) < 100.0

    def test_unmasked_partial_arrival_deadlocks_on_volta(self, v100):
        # Half the warp never reaches a full-warp barrier with a full mask:
        # the rendezvous can never complete.
        def program(ctx):
            if ctx.tid < 16:
                yield ins.WarpSync(kind="tile", group_size=32)

        with pytest.raises(DeadlockError):
            run(v100, program)

    def test_masked_partial_sync_completes(self, v100):
        def program(ctx):
            if ctx.tid < 16:
                yield ins.WarpSync(kind="tile", group_size=32, mask=0x0000FFFF)

        run(v100, program)  # no deadlock

    def test_coalesced_full_vs_partial_latency_on_volta(self, v100):
        def program(ctx):
            yield ins.WarpSync(kind="coalesced", group_size=32)

        full = run(v100, program, nthreads=32).duration_cycles
        partial = run(v100, program, nthreads=16).duration_cycles
        assert full == pytest.approx(v100.warp_sync.coalesced_full_latency, abs=1.0)
        assert partial == pytest.approx(
            v100.warp_sync.coalesced_partial_latency, abs=1.0
        )
        assert partial > full  # the V100 slow path (Table II)


class TestShuffle:
    def test_shuffle_down_delivers_neighbor_value(self, v100):
        def program(ctx):
            got = yield ins.ShuffleDown(value=float(ctx.tid), delta=4)
            ctx.record("got", got)

        r = run(v100, program)
        for tid in range(28):
            assert r.records[tid]["got"] == float(tid + 4)

    def test_shuffle_out_of_range_keeps_own_value(self, v100):
        def program(ctx):
            got = yield ins.ShuffleDown(value=float(ctx.tid), delta=4)
            ctx.record("got", got)

        r = run(v100, program)
        for tid in range(28, 32):
            assert r.records[tid]["got"] == float(tid)

    def test_shuffle_latency_tile_vs_coalesced(self, spec):
        def tile(ctx):
            yield ins.ShuffleDown(value=1.0, delta=1, kind="tile")

        def coa(ctx):
            yield ins.ShuffleDown(value=1.0, delta=1, kind="coalesced")

        t = run(spec, tile).duration_cycles
        c = run(spec, coa).duration_cycles
        assert t == pytest.approx(spec.warp_sync.shuffle_tile_latency, abs=1.0)
        assert c == pytest.approx(spec.warp_sync.shuffle_coalesced_latency, abs=1.0)

    def test_pascal_converged_shuffle_is_correct(self, p100):
        def program(ctx):
            got = yield ins.ShuffleDown(value=float(ctx.tid), delta=1)
            ctx.record("got", got)

        r = run(p100, program)
        assert not r.shuffle_incorrect
        assert r.records[0]["got"] == 1.0

    def test_pascal_divergent_shuffle_goes_stale(self, p100):
        def program(ctx):
            yield ins.Diverge()
            got = yield ins.ShuffleDown(value=float(ctx.tid), delta=1)
            ctx.record("got", got)

        r = run(p100, program)
        assert r.shuffle_incorrect

    def test_volta_divergent_shuffle_still_correct(self, v100):
        def program(ctx):
            yield ins.Diverge()
            got = yield ins.ShuffleDown(value=float(ctx.tid), delta=1)
            ctx.record("got", got)

        r = run(v100, program)
        assert not r.shuffle_incorrect
        assert r.records[0]["got"] == 1.0


class TestDivergence:
    def test_diverge_serializes_threads(self, spec):
        def program(ctx):
            yield ins.Diverge()
            t = yield ins.ReadClock()
            ctx.record("t", t)

        r = run(spec, program)
        times = [r.records[t]["t"] for t in range(32)]
        assert times == sorted(times)
        step = spec.instructions.divergent_arm_cycles
        assert times[-1] - times[0] == pytest.approx(31 * step, rel=0.05)


class TestSharedMemoryInstructions:
    def test_store_then_load_roundtrip_same_thread(self, spec):
        def program(ctx):
            yield ins.SharedStore(slot=ctx.tid, value=float(ctx.tid) * 2)
            got = yield ins.SharedLoad(slot=ctx.tid)
            ctx.record("got", got)

        r = run(spec, program, nthreads=4)
        assert [r.records[t]["got"] for t in range(4)] == [0.0, 2.0, 4.0, 6.0]

    def test_cross_thread_load_without_sync_races(self, v100):
        def program(ctx):
            yield ins.SharedStore(slot=ctx.tid, value=1.0)
            yield ins.Compute(cycles=50.0)
            got = yield ins.SharedLoad(slot=(ctx.tid + 1) % 2)
            ctx.record("got", got)

        r = run(v100, program, nthreads=2)
        assert r.shared.race_detected

    def test_sync_commits_cross_thread_writes(self, v100):
        def program(ctx):
            yield ins.SharedStore(slot=ctx.tid, value=float(ctx.tid + 1))
            yield ins.WarpSync(kind="tile", group_size=32)
            got = yield ins.SharedLoad(slot=(ctx.tid + 1) % 32)
            ctx.record("got", got)

        r = run(v100, program)
        assert not r.shared.race_detected
        assert r.records[0]["got"] == 2.0


class TestSimtFastPathEquivalence:
    """The converged-warp fast path must be *bit-identical* to
    thread-precise simulation: same durations, per-thread times, values,
    records, races and shared-memory contents (Table II / Table V / Fig 18
    reproductions all flow through this executor)."""

    @staticmethod
    def _compare(spec, program, nthreads=32):
        fast = WarpExecutor(spec, nthreads=nthreads, simt_fast_path=True).run(
            program
        )
        slow = WarpExecutor(spec, nthreads=nthreads, simt_fast_path=False).run(
            program
        )
        assert fast.duration_ns == slow.duration_ns
        assert fast.start_ns == slow.start_ns
        assert fast.end_ns == slow.end_ns
        assert fast.returns == slow.returns
        assert fast.records == slow.records
        assert fast.shuffle_incorrect == slow.shuffle_incorrect
        assert list(fast.shared.committed) == list(slow.shared.committed)
        assert fast.shared.races == slow.shared.races
        return fast

    def test_pure_compute_identical(self, spec):
        def program(ctx):
            for _ in range(8):
                yield ins.FAdd(count=3)
                yield ins.ChainStep(count=2)

        self._compare(spec, program)

    def test_fallback_on_divergence_identical(self, spec):
        def program(ctx):
            yield ins.Compute(10.0)
            yield ins.Diverge(arms=1)
            t = yield ins.ReadClock()
            ctx.record("t", t)

        self._compare(spec, program)

    def test_fallback_on_shuffle_identical(self, spec):
        def program(ctx):
            yield ins.Compute(4.0)
            v = yield ins.ShuffleDown(float(ctx.lane), delta=1)
            return v

        self._compare(spec, program)

    def test_warp_sync_loop_identical(self, spec):
        def program(ctx):
            total = 0.0
            for r in range(4):
                yield ins.SharedStore(slot=ctx.tid % 16, value=float(ctx.tid + r))
                yield ins.WarpSync(kind="tile")
                total += yield ins.SharedLoad(slot=(ctx.tid + 1) % 16)
            return total

        self._compare(spec, program)

    def test_uneven_thread_exit_identical(self, spec):
        def program(ctx):
            yield ins.Compute(5.0)
            if ctx.tid % 3 == 0:
                return "early"
            yield ins.FAdd(count=2)
            return "late"

        r = self._compare(spec, program)
        assert r.returns[0] == "early" and r.returns[1] == "late"

    def test_single_thread_wong_chain_identical(self, spec):
        def program(ctx):
            t0 = yield ins.ReadClock()
            yield ins.ChainStep(count=32)
            t1 = yield ins.ReadClock()
            ctx.record("window", t1 - t0)

        self._compare(spec, program, nthreads=1)

    @given(
        st.lists(
            st.sampled_from(
                [
                    "compute",
                    "fadd",
                    "chain",
                    "overhead",
                    "readclock",
                    "store",
                    "load",
                    "vstore",
                    "vload",
                    "warpsync",
                    "coalesced_sync",
                    "shuffle",
                    "diverge",
                    "uniform_diverge",
                    "blocksync",
                    "lane_compute",
                ]
            ),
            min_size=1,
            max_size=10,
        ),
        st.integers(min_value=1, max_value=32),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_randomized_instruction_mix_identical(self, script, nthreads, volta):
        from repro.sim.arch import P100, V100

        spec = V100 if volta else P100

        def program(ctx):
            acc = 0.0
            for step, kind in enumerate(script):
                if kind == "compute":
                    yield ins.Compute(3.0 + step)
                elif kind == "fadd":
                    yield ins.FAdd(count=1 + step % 3)
                elif kind == "chain":
                    yield ins.ChainStep(count=1 + step % 2)
                elif kind == "overhead":
                    yield ins.MethodOverhead(cycles=float(step))
                elif kind == "readclock":
                    acc += yield ins.ReadClock()
                elif kind == "store":
                    yield ins.SharedStore(
                        slot=(ctx.tid + step) % 16, value=float(ctx.tid * 10 + step)
                    )
                elif kind == "load":
                    acc += yield ins.SharedLoad(slot=(ctx.tid + step + 1) % 16)
                elif kind == "vstore":
                    yield ins.SharedStore(
                        slot=(ctx.tid + step) % 16,
                        value=float(step),
                        volatile=True,
                    )
                elif kind == "vload":
                    acc += yield ins.SharedLoad(
                        slot=(ctx.tid + step + 1) % 16, volatile=True
                    )
                elif kind == "warpsync":
                    yield ins.WarpSync(kind="tile")
                elif kind == "coalesced_sync":
                    yield ins.WarpSync(kind="coalesced", group_size=32)
                elif kind == "shuffle":
                    acc += yield ins.ShuffleDown(
                        float(ctx.lane + step), delta=1 + step % 4
                    )
                elif kind == "diverge":
                    yield ins.Diverge(arms=1 + ctx.lane % 2)
                elif kind == "uniform_diverge":
                    # Uniform ladder: the staggered-analytic (virtual)
                    # divergence region's entry condition.
                    yield ins.Diverge(arms=2)
                elif kind == "blocksync":
                    yield ins.BlockSync()
                elif kind == "lane_compute":
                    # Per-lane latency: forces the non-uniform fallback.
                    yield ins.Compute(2.0 + ctx.lane % 5)
                ctx.record(f"acc{step}", acc)
            return acc

        self._compare(spec, program, nthreads=nthreads)


class TestReconvergence:
    """The mode-switching scheduler must re-fuse after divergence — and
    stay bit-identical to forced thread-precise execution across every
    fast -> thread-precise -> re-fused boundary (divergent arms, shuffles,
    barrier loops).  The counters on :class:`WarpRunResult` pin the mode
    transitions so a regression back to permanent fallback fails loudly
    rather than silently slowing down."""

    _compare = staticmethod(TestSimtFastPathEquivalence._compare)

    def test_barrier_loop_stays_converged(self, spec):
        # The Fig-4 shape: uniform work punctuated by barriers in a tight
        # loop.  No round is non-uniform, so the warp must never de-fuse.
        def program(ctx):
            for _ in range(6):
                yield ins.Compute(20.0)
                yield ins.BlockSync()

        fast = self._compare(spec, program)
        assert fast.fused_rounds > 0
        assert fast.defuse_count == 0
        assert fast.refuse_count == 0

    def test_volta_warp_sync_loop_stays_converged(self, v100):
        def program(ctx):
            for r in range(5):
                yield ins.SharedStore(slot=ctx.tid % 16, value=float(r))
                yield ins.WarpSync(kind="tile")

        fast = self._compare(v100, program)
        assert fast.fused_rounds > 0
        assert fast.defuse_count == 0

    def test_converged_shuffle_stays_converged(self, spec):
        # Shuffles used to force permanent fallback on both
        # architectures; converged lanes now post/read in lockstep.
        def program(ctx):
            total = 0.0
            for r in range(4):
                total += yield ins.ShuffleDown(float(ctx.lane + r), delta=1)
            return total

        fast = self._compare(spec, program)
        assert fast.fused_rounds > 0
        assert fast.defuse_count == 0

    def test_divergence_then_barrier_refuses(self, spec):
        # Uniform divergent ladder, per-lane analytic work, then the
        # reconvergence join at __syncthreads: the virtual region must
        # re-fuse instead of falling back for the rest of the program.
        def program(ctx):
            for r in range(3):
                yield ins.Compute(30.0)
                yield ins.Diverge(arms=1)
                yield ins.Compute(2.0 + ctx.lane % 3)
                yield ins.BlockSync()
            t = yield ins.ReadClock()
            ctx.record("t", t)

        fast = self._compare(spec, program)
        assert fast.refuse_count == 3
        assert fast.fused_rounds > 0

    def test_nonuniform_region_parks_and_refuses(self, v100):
        # Per-lane latencies de-fuse into real lane processes; the Volta
        # warp barrier is the rendezvous every lane parks at.
        def program(ctx):
            for r in range(3):
                yield ins.Compute(2.0 + ctx.lane % 5)
                yield ins.WarpSync(kind="tile")
            yield ins.Compute(10.0)

        fast = self._compare(v100, program)
        assert fast.defuse_count == 3
        assert fast.refuse_count == 3

    def test_virtual_region_aborts_on_memory_touch(self, spec):
        # A shared-memory access inside the divergent region cannot be
        # virtualized: the abort must replay event-for-event (pinned by
        # the bit-identical comparison) and the warp still re-fuses at
        # the barrier afterwards.
        def program(ctx):
            yield ins.Diverge(arms=1)
            yield ins.SharedStore(slot=ctx.tid % 8, value=float(ctx.lane))
            yield ins.BlockSync()
            got = yield ins.SharedLoad(slot=(ctx.tid + 1) % 8)
            ctx.record("got", got)

        fast = self._compare(spec, program)
        assert fast.defuse_count >= 1
        assert fast.refuse_count >= 1

    def test_divergent_shuffle_boundary(self, spec):
        # Divergence -> shuffle: Volta re-fuses at the shuffle rendezvous
        # (the join), Pascal replays and keeps its stale-read semantics.
        def program(ctx):
            yield ins.Diverge(arms=1)
            got = yield ins.ShuffleDown(float(ctx.lane), delta=1)
            ctx.record("got", got)

        fast = self._compare(spec, program)
        if spec.warp_sync.blocking:
            assert fast.refuse_count == 1
            assert not fast.shuffle_incorrect
        else:
            assert fast.shuffle_incorrect

    def test_uneven_retirement_during_region(self, spec):
        # Lanes retiring inside a divergent region: the region ends
        # "done" (or re-fuses the survivors) without losing any lane's
        # records or end time.
        def program(ctx):
            yield ins.Diverge(arms=1)
            if ctx.lane % 2:
                return "early"
            yield ins.Compute(5.0)
            yield ins.WarpSync(kind="tile", mask=0x55555555)
            return "late"

        self._compare(spec, program)

    def test_thread_precise_mode_reports_zero_counters(self, spec):
        def program(ctx):
            yield ins.Compute(5.0)
            yield ins.BlockSync()

        slow = WarpExecutor(spec, nthreads=8, simt_fast_path=False).run(program)
        assert slow.fused_rounds == 0
        assert slow.defuse_count == 0
        assert slow.refuse_count == 0

    def test_event_sequence_pinned_across_boundary(self, v100):
        # Pin the observable event sequence (clock-read timestamps per
        # lane) through fast -> divergent -> re-fused execution: the
        # staircase must still show per-lane serialization and the
        # post-join reads must collapse back to one common timestamp.
        def program(ctx):
            t0 = yield ins.ReadClock()
            yield ins.Diverge(arms=1)
            t1 = yield ins.ReadClock()
            yield ins.WarpSync(kind="tile")
            t2 = yield ins.ReadClock()
            ctx.record("t0", t0)
            ctx.record("t1", t1)
            ctx.record("t2", t2)

        fast = WarpExecutor(v100, nthreads=32, simt_fast_path=True).run(program)
        slow = WarpExecutor(v100, nthreads=32, simt_fast_path=False).run(program)
        for key in ("t0", "t1", "t2"):
            assert fast.record_series(key) == slow.record_series(key)
        # Converged before the ladder: one shared timestamp.
        assert len(set(fast.record_series("t0"))) == 1
        # Inside the ladder: strictly serialized, one arm apart.
        t1s = fast.record_series("t1")
        assert t1s == sorted(t1s) and len(set(t1s)) == 32
        step = v100.instructions.divergent_arm_cycles
        assert t1s[-1] - t1s[0] == pytest.approx(31 * step, rel=0.05)
        # After the join: re-converged to one shared timestamp again.
        assert len(set(fast.record_series("t2"))) == 1
        assert fast.refuse_count == 1
