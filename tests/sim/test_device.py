"""Tests for the device model and grid-barrier protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.paper_data import FIG5_GRID_SYNC_US
from repro.sim.device import Device, grid_sync_latency_ns, simulate_grid_sync
from repro.sim.engine import DeadlockError
from repro.sync import GridGroup


def _grid_sync(spec, b, t, **kw):
    """Run one grid-sync simulation through the repro.sync scope."""
    sim_kw = {k: kw.pop(k) for k in ("n_syncs", "participating_blocks") if k in kw}
    return GridGroup(spec, b, t, **kw).simulate(**sim_kw)


class TestGridSyncClosedForm:
    def test_matches_simulation(self, spec):
        for b, t in ((1, 32), (2, 256), (8, 64)):
            cf = grid_sync_latency_ns(spec, b, t)
            sim = _grid_sync(spec, b, t).latency_per_sync_ns
            assert sim == pytest.approx(cf, rel=0.01)

    def test_rejects_non_coresident_grid(self, spec):
        with pytest.raises(ValueError, match="co-resident"):
            grid_sync_latency_ns(spec, 4, 1024)

    def test_latency_tracks_blocks_more_than_threads(self, spec):
        # Paper: "more related to the grid dimension than the block dim".
        base = grid_sync_latency_ns(spec, 1, 32)
        more_blocks = grid_sync_latency_ns(spec, 8, 32)
        more_threads = grid_sync_latency_ns(spec, 1, 256)
        assert (more_blocks - base) > 4 * (more_threads - base)


class TestGridSyncSimulation:
    def test_full_heatmap_within_tolerance(self, spec):
        errs = []
        for (b, t), paper in FIG5_GRID_SYNC_US[spec.name].items():
            sim = _grid_sync(spec, b, t).latency_per_sync_us
            errs.append(abs(sim - paper) / paper)
        assert float(np.mean(errs)) < 0.08
        assert float(np.max(errs)) < 0.20

    def test_repeated_syncs_amortize_consistently(self, spec):
        one = _grid_sync(spec, 2, 128, n_syncs=1).latency_per_sync_ns
        many = _grid_sync(spec, 2, 128, n_syncs=5).latency_per_sync_ns
        assert many == pytest.approx(one, rel=0.05)

    def test_partial_participation_deadlocks(self, spec):
        with pytest.raises(DeadlockError):
            _grid_sync(
                spec, 1, 64, participating_blocks=spec.sm_count - 1
            )

    def test_single_missing_block_deadlocks(self, spec):
        with pytest.raises(DeadlockError):
            _grid_sync(
                spec, 2, 64, participating_blocks=2 * spec.sm_count - 1
            )

    def test_full_participation_completes(self, spec):
        r = _grid_sync(spec, 1, 64, participating_blocks=spec.sm_count)
        assert r.total_ns > 0

    def test_invalid_participation_rejected(self, spec):
        with pytest.raises(ValueError):
            _grid_sync(spec, 1, 64, participating_blocks=0)
        with pytest.raises(ValueError):
            _grid_sync(spec, 1, 64, participating_blocks=10**6)

    def test_oversized_cooperative_grid_rejected(self, spec):
        with pytest.raises(ValueError, match="co-reside"):
            _grid_sync(spec, 3, 1024)

    def test_sm_count_override_scales_blocks(self, spec):
        small = _grid_sync(spec, 1, 32, sm_count=4)
        assert small.total_blocks == 4
        full = _grid_sync(spec, 1, 32)
        assert small.latency_per_sync_ns < full.latency_per_sync_ns

    def test_result_metadata(self, spec):
        r = _grid_sync(spec, 2, 128)
        assert r.total_blocks == 2 * spec.sm_count
        assert r.warps_per_sm == 8
        assert r.latency_per_sync_us == pytest.approx(r.latency_per_sync_ns / 1e3)


class TestDevice:
    def test_alloc_and_free(self, v100):
        dev = Device(v100, index=0)
        buf = dev.alloc((128,), name="x")
        assert "x" in dev.buffers
        dev.free(buf)
        assert "x" not in dev.buffers

    def test_peer_access_gating(self, v100):
        d0, d1 = Device(v100, 0), Device(v100, 1)
        remote = d1.alloc((4,))
        assert not d0.can_access(remote)
        d0.enable_peer_access(1)
        assert d0.can_access(remote)

    def test_own_buffers_always_accessible(self, v100):
        dev = Device(v100, 0)
        assert dev.can_access(dev.alloc((4,)))


class TestDeprecatedShim:
    def test_simulate_grid_sync_warns_and_delegates(self, spec):
        with pytest.warns(DeprecationWarning, match="repro.sync.GridGroup"):
            old = simulate_grid_sync(spec, 2, 128, n_syncs=2)
        assert old == _grid_sync(spec, 2, 128, n_syncs=2)


class TestDeprecatedShimStrategy:
    def test_warning_stacklevel_points_at_caller(self, spec):
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            simulate_grid_sync(spec, 1, 128)
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert dep, "shim must emit a DeprecationWarning"
        # stacklevel=2 attributes the warning to this file (the caller),
        # not to sim/device.py — that is what makes the migration hint
        # actionable in a real code base.
        assert dep[0].filename == __file__

    def test_shim_matches_scope_under_non_default_strategy(self, spec):
        from repro.sim.engine import Engine

        eng_old = Engine()
        with pytest.warns(DeprecationWarning):
            old = simulate_grid_sync(
                spec, 2, 128, n_syncs=2, engine=eng_old,
                strategy="atomic", strategy_knobs={"poll_ns": 200.0},
            )
        eng_new = Engine()
        new = _grid_sync(
            spec, 2, 128, n_syncs=2, engine=eng_new,
            strategy="atomic", strategy_knobs={"poll_ns": 200.0},
        )
        assert old == new
        assert eng_old.event_count == eng_new.event_count
