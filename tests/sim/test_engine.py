"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import AllOf, DeadlockError, Engine, SimulationError, Timeout


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_schedule_runs_in_time_order(self):
        eng = Engine()
        order = []
        eng.schedule(5.0, lambda: order.append("b"))
        eng.schedule(1.0, lambda: order.append("a"))
        eng.schedule(9.0, lambda: order.append("c"))
        eng.run()
        assert order == ["a", "b", "c"]
        assert eng.now == 9.0

    def test_equal_times_run_fifo(self):
        eng = Engine()
        order = []
        for i in range(10):
            eng.schedule(3.0, lambda i=i: order.append(i))
        eng.run()
        assert order == list(range(10))

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1.0, lambda: None)

    def test_run_until_stops_early(self):
        eng = Engine()
        hits = []
        eng.schedule(1.0, lambda: hits.append(1))
        eng.schedule(100.0, lambda: hits.append(2))
        eng.run(until=10.0)
        assert hits == [1]
        assert eng.now == 10.0

    def test_run_until_leaves_future_event_pending(self):
        eng = Engine()
        hits = []
        eng.schedule(100.0, lambda: hits.append(2))
        eng.run(until=10.0)
        eng.run()
        assert hits == [2]
        assert eng.now == 100.0

    def test_event_count_increments(self):
        eng = Engine()
        for _ in range(7):
            eng.schedule(1.0, lambda: None)
        eng.run()
        assert eng.event_count == 7

    def test_trace_log(self):
        eng = Engine(trace=True)
        eng.schedule(2.0, lambda: None)
        eng.run()
        assert len(eng.trace_log) == 1
        assert eng.trace_log[0][0] == 2.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_events_always_execute_in_nondecreasing_time(self, delays):
        eng = Engine()
        seen = []
        for d in delays:
            eng.schedule(d, lambda: seen.append(eng.now))
        eng.run()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)


class TestProcesses:
    def test_timeout_advances_time(self):
        eng = Engine()

        def proc():
            yield Timeout(5.0)
            yield Timeout(7.0)
            return eng.now

        assert eng.run_process(proc()) == 12.0

    def test_timeout_delivers_value(self):
        eng = Engine()

        def proc():
            got = yield Timeout(1.0, value="hello")
            return got

        assert eng.run_process(proc()) == "hello"

    def test_process_return_value(self):
        eng = Engine()

        def proc():
            yield Timeout(1.0)
            return 42

        assert eng.run_process(proc()) == 42

    def test_waiting_on_another_process_gets_result(self):
        eng = Engine()

        def child():
            yield Timeout(3.0)
            return "done"

        def parent():
            c = eng.process(child(), name="child")
            got = yield c
            return got, eng.now

        assert eng.run_process(parent()) == ("done", 3.0)

    def test_waiting_on_finished_process_resumes_immediately(self):
        eng = Engine()

        def child():
            yield Timeout(1.0)
            return "early"

        def parent():
            c = eng.process(child(), name="child")
            yield Timeout(10.0)
            got = yield c
            return got, eng.now

        assert eng.run_process(parent()) == ("early", 10.0)

    def test_yielding_garbage_raises(self):
        eng = Engine()

        def proc():
            yield object()

        with pytest.raises(SimulationError, match="unsupported"):
            eng.run_process(proc())

    def test_live_processes_tracked(self):
        eng = Engine()

        def proc():
            yield Timeout(1.0)

        eng.process(proc(), name="p")
        assert len(eng.live_processes) == 1
        eng.run()
        assert eng.live_processes == []

    def test_allof_waits_for_all_children(self):
        eng = Engine()

        def child(d):
            yield Timeout(d)
            return d

        def parent():
            kids = [eng.process(child(d), name=f"c{d}") for d in (5.0, 2.0, 8.0)]
            vals = yield AllOf(kids)
            return vals, eng.now

        vals, t = eng.run_process(parent())
        assert vals == [5.0, 2.0, 8.0]
        assert t == 8.0

    def test_allof_empty_completes_immediately(self):
        eng = Engine()

        def parent():
            vals = yield AllOf([])
            return vals

        assert eng.run_process(parent()) == []

    def test_allof_mixes_signals_and_timeouts(self):
        eng = Engine()
        sig = eng.signal("s")
        eng.schedule(4.0, lambda: sig.fire("sv"))

        def parent():
            vals = yield AllOf([sig, Timeout(1.0, value="tv")])
            return vals

        assert eng.run_process(parent()) == ["sv", "tv"]


class TestSignals:
    def test_fire_wakes_all_waiters(self):
        eng = Engine()
        sig = eng.signal("s")
        woken = []

        def waiter(i):
            got = yield sig
            woken.append((i, got, eng.now))

        for i in range(3):
            eng.process(waiter(i), name=f"w{i}")
        eng.schedule(6.0, lambda: sig.fire("v"))
        eng.run()
        assert woken == [(0, "v", 6.0), (1, "v", 6.0), (2, "v", 6.0)]

    def test_fire_twice_raises(self):
        eng = Engine()
        sig = eng.signal("s")
        sig.fire()
        with pytest.raises(SimulationError, match="twice"):
            sig.fire()

    def test_wait_on_fired_signal_resumes_immediately(self):
        eng = Engine()
        sig = eng.signal("s")
        sig.fire("pre")

        def proc():
            got = yield sig
            return got

        assert eng.run_process(proc()) == "pre"

    def test_waiter_count(self):
        eng = Engine()
        sig = eng.signal("s")

        def waiter():
            yield sig

        eng.process(waiter(), name="w")
        eng.schedule(1.0, lambda: None)
        eng.run(until=0.5, detect_deadlock=False)
        assert sig.waiter_count == 1
        sig.fire()
        eng.run()

    def test_callbacks_invoked_on_fire(self):
        eng = Engine()
        sig = eng.signal("s")
        got = []
        sig.callbacks.append(got.append)
        sig.fire(11)
        assert got == [11]


class TestBatchedFire:
    """Signal.fire enqueues one batch record for large waiter lists; the
    observable semantics (wake order, values, interleaving, deadlock
    reporting) must be identical to per-waiter records."""

    N = 1000  # far above the batching threshold

    def test_fanout_wakes_all_in_fifo_order(self):
        eng = Engine()
        sig = eng.signal("release")
        woken = []

        def waiter(i):
            got = yield sig
            woken.append((i, got, eng.now))

        for i in range(self.N):
            eng.process(waiter(i), name=f"w{i}")
        eng.schedule(3.0, lambda: sig.fire("v"))
        eng.run()
        assert woken == [(i, "v", 3.0) for i in range(self.N)]

    def test_batch_resumes_before_later_scheduled_events(self):
        """Events scheduled after the fire (same timestamp) must run after
        every batched waiter — the ordering a single heap would produce."""
        eng = Engine()
        sig = eng.signal("s")
        order = []

        def waiter(i):
            yield sig
            order.append(f"w{i}")

        for i in range(self.N):
            eng.process(waiter(i), name=f"w{i}")

        def firer():
            yield Timeout(1.0)
            sig.fire()
            eng.schedule(0.0, lambda: order.append("after"))

        eng.process(firer(), name="firer")
        eng.run()
        assert order[-1] == "after"
        assert order[:-1] == [f"w{i}" for i in range(self.N)]

    def test_event_count_matches_unbatched_semantics(self):
        eng = Engine()
        sig = eng.signal("s")

        def waiter():
            yield sig

        for i in range(self.N):
            eng.process(waiter(), name=f"w{i}")
        eng.schedule_fire(1.0, sig)
        eng.run()
        # N initial steps + 1 fire record + N resumes (the batch counts as
        # its member resumes, not as a single event).
        assert eng.event_count == 2 * self.N + 1

    def test_continuations_run_after_all_members_wake(self):
        """Regression: a member yielding Timeout(0.0) after the wake must
        not trampoline its continuation ahead of later batch members —
        exact unbatched order is wake0..wakeN, then cont0..contN."""
        eng = Engine()
        sig = eng.signal("s")
        order = []
        n = 20

        def waiter(i):
            yield sig
            order.append(f"wake{i}")
            yield Timeout(0.0)
            order.append(f"cont{i}")

        for i in range(n):
            eng.process(waiter(i), name=f"w{i}")
        eng.schedule_fire(1.0, sig)
        eng.run()
        expected = [f"wake{i}" for i in range(n)] + [f"cont{i}" for i in range(n)]
        assert order == expected

    def test_matches_unbatched_order_with_mixed_yields(self):
        """Batched and (forced) unbatched fires must interleave identically
        even when members re-yield timeouts, signals, and resources."""
        import repro.sim.engine as engine_mod

        def scenario():
            eng = Engine()
            sig = eng.signal("go")
            res = eng.resource(capacity=2, name="port")
            order = []
            n = 12

            def waiter(i):
                yield sig
                order.append(f"wake{i}")
                if i % 3 == 0:
                    yield Timeout(0.0)
                elif i % 3 == 1:
                    yield res.acquire()
                    yield Timeout(1.0)
                    res.release()
                order.append(f"done{i}")

            for i in range(n):
                eng.process(waiter(i), name=f"w{i}")
            eng.schedule_fire(1.0, sig)
            eng.run()
            return order

        batched = scenario()
        original = engine_mod._BATCH_FIRE_THRESHOLD
        engine_mod._BATCH_FIRE_THRESHOLD = 10**9
        try:
            unbatched = scenario()
        finally:
            engine_mod._BATCH_FIRE_THRESHOLD = original
        assert batched == unbatched

    def test_member_failure_does_not_drop_later_members(self):
        """Regression: if one member's unobserved exception escapes the
        batch dispatch, the unstepped members must survive for a later
        run() — exactly like unbatched resume records left in the deque."""
        eng = Engine()
        sig = eng.signal("s")
        done = []
        n = 10

        def waiter(i):
            yield sig
            if i == 2:
                raise RuntimeError("boom")
            done.append(i)

        for i in range(n):
            eng.process(waiter(i), name=f"w{i}")
        eng.schedule_fire(1.0, sig)
        with pytest.raises(RuntimeError, match="boom"):
            eng.run()
        eng.run()  # survivors resume from the re-enqueued batch
        assert done == [0, 1] + list(range(3, n))

    def test_waiters_that_block_again_are_reported_on_deadlock(self):
        eng = Engine()
        sig = eng.signal("round1")
        stuck = eng.signal("never")

        def waiter(i):
            yield sig
            yield stuck

        for i in range(self.N):
            eng.process(waiter(i), name=f"w{i}")
        eng.schedule_fire(1.0, sig)
        with pytest.raises(DeadlockError) as exc:
            eng.run()
        assert len(exc.value.blocked) == self.N


class TestResources:
    def test_capacity_one_serializes(self):
        eng = Engine()
        res = eng.resource(1, "r")
        spans = []

        def proc(i):
            yield res.acquire()
            start = eng.now
            yield Timeout(10.0)
            res.release()
            spans.append((i, start, eng.now))

        for i in range(3):
            eng.process(proc(i), name=f"p{i}")
        eng.run()
        assert [s[1] for s in spans] == [0.0, 10.0, 20.0]

    def test_fifo_grant_order(self):
        eng = Engine()
        res = eng.resource(1, "r")
        order = []

        def proc(i):
            yield res.acquire()
            order.append(i)
            yield Timeout(1.0)
            res.release()

        for i in range(5):
            eng.process(proc(i), name=f"p{i}")
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_capacity_n_allows_parallelism(self):
        eng = Engine()
        res = eng.resource(3, "r")
        ends = []

        def proc():
            yield res.acquire()
            yield Timeout(10.0)
            res.release()
            ends.append(eng.now)

        for _ in range(3):
            eng.process(proc(), name="p")
        eng.run()
        assert ends == [10.0, 10.0, 10.0]

    def test_release_idle_raises(self):
        eng = Engine()
        res = eng.resource(1, "r")
        with pytest.raises(SimulationError, match="idle"):
            res.release()

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Engine().resource(0)

    def test_queue_length_and_in_use(self):
        eng = Engine()
        res = eng.resource(1, "r")

        def holder():
            yield res.acquire()
            yield Timeout(10.0)
            res.release()

        def waiter():
            yield res.acquire()
            res.release()

        eng.process(holder(), name="h")
        eng.process(waiter(), name="w")
        eng.run(until=5.0)
        assert res.in_use == 1
        assert res.queue_length == 1
        eng.run()

    @given(
        st.integers(min_value=1, max_value=4),
        st.lists(st.floats(min_value=0.1, max_value=20.0), min_size=1, max_size=15),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_exceeds_capacity(self, capacity, durations):
        eng = Engine()
        res = eng.resource(capacity, "r")
        active = [0]
        peak = [0]

        def proc(d):
            yield res.acquire()
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            yield Timeout(d)
            active[0] -= 1
            res.release()

        for d in durations:
            eng.process(proc(d), name="p")
        eng.run()
        assert peak[0] <= capacity
        assert active[0] == 0


class TestReadyQueueFifo:
    """The zero-delay ready deque must merge with the heap in exact
    FIFO-at-equal-time order (the seed engine's single-heap semantics)."""

    def test_heap_event_at_same_time_scheduled_earlier_runs_first(self):
        eng = Engine()
        order = []

        def first():
            order.append("a")
            # Zero-delay event created at t=5: must run *after* the heap
            # event below, which was scheduled before it.
            eng.schedule(0.0, lambda: order.append("c"))

        eng.schedule(5.0, first)
        eng.schedule(5.0, lambda: order.append("b"))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_zero_delay_runs_before_later_heap_event(self):
        eng = Engine()
        order = []
        eng.schedule(0.0, lambda: order.append("ready"))
        eng.schedule(1.0, lambda: order.append("heap"))
        eng.run()
        assert order == ["ready", "heap"]

    def test_zero_delay_processes_interleave_round_robin(self):
        """Multiple runnable processes step in FIFO rounds, never
        run-to-completion (guards the _step trampoline's guard)."""
        eng = Engine()
        order = []

        def proc(i):
            for step in range(3):
                order.append((i, step))
                yield Timeout(0.0)

        for i in range(3):
            eng.process(proc(i), name=f"p{i}")
        eng.run()
        assert order == [(i, s) for s in range(3) for i in range(3)]

    def test_mixed_fn_and_process_events_fifo(self):
        eng = Engine()
        order = []

        def proc():
            order.append("proc-step0")
            yield Timeout(0.0)
            order.append("proc-step1")

        eng.process(proc(), name="p")
        eng.schedule(0.0, lambda: order.append("fn0"))
        eng.run()
        assert order == ["proc-step0", "fn0", "proc-step1"]

    @given(
        st.lists(
            st.tuples(st.sampled_from([0.0, 1.0, 2.0]), st.integers(0, 99)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_equal_time_events_preserve_schedule_order(self, events):
        eng = Engine()
        seen = []
        for delay, tag in events:
            eng.schedule(delay, lambda d=delay, t=tag: seen.append((d, t)))
        eng.run()
        expected = sorted(
            [(d, t) for d, t in events],
            key=lambda pair: pair[0],
        )
        # Python's sort is stable, so equal-time events keep schedule order.
        assert seen == expected

    def test_pending_count_spans_both_queues(self):
        eng = Engine()
        eng.schedule(0.0, lambda: None)
        eng.schedule(5.0, lambda: None)
        assert eng.pending_count == 2
        eng.run()
        assert eng.pending_count == 0


class TestScheduleFire:
    def test_fire_after_delay_delivers_value(self):
        eng = Engine()
        sig = eng.signal("s")
        got = []

        def waiter():
            got.append((yield sig))

        eng.process(waiter(), name="w")
        eng.schedule_fire(4.0, sig, "payload")
        eng.run()
        assert got == ["payload"]
        assert eng.now == 4.0

    def test_zero_delay_fire(self):
        eng = Engine()
        sig = eng.signal("s")
        eng.schedule_fire(0.0, sig, 7)
        eng.run()
        assert sig.fired and sig.value == 7

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            eng.schedule_fire(-1.0, eng.signal("s"))

    def test_signal_reset_rearms(self):
        eng = Engine()
        sig = eng.signal("s")
        sig.fire(1)
        sig.reset()
        assert not sig.fired
        sig.fire(2)
        assert sig.value == 2

    def test_signal_reset_with_waiters_rejected(self):
        eng = Engine()
        sig = eng.signal("s")

        def waiter():
            yield sig

        eng.process(waiter(), name="w")
        eng.schedule(1.0, lambda: None)
        eng.run(until=0.5, detect_deadlock=False)
        with pytest.raises(SimulationError, match="reset"):
            sig.reset()
        sig.fire()
        eng.run()


class TestWakeAt:
    """Absolute-time wakeups: the SIMT fast path lands on lane-locally
    accumulated rendezvous timestamps bit-exactly (a relative
    ``Timeout(t - now)`` cannot guarantee ``now + (t - now) == t``)."""

    def test_resumes_at_exact_absolute_time(self):
        from repro.sim.engine import WakeAt

        eng = Engine()
        # A timestamp accumulated through repeated additions — the exact
        # float the waker must land on, ulp for ulp.
        t = 0.0
        for delta in (1.524390243902439, 327.743902439024, 655.487804878048):
            t = t + delta
        seen = []

        def proc():
            yield WakeAt(t)
            seen.append(eng.now)

        eng.process(proc(), name="p")
        eng.run()
        assert seen == [t]  # bitwise: no Timeout rounding slip

    def test_delivers_value(self):
        from repro.sim.engine import WakeAt

        eng = Engine()
        got = []

        def proc():
            got.append((yield WakeAt(3.0, value="v")))

        eng.process(proc(), name="p")
        eng.run()
        assert got == ["v"]

    def test_past_time_rejected(self):
        from repro.sim.engine import WakeAt

        eng = Engine()

        def proc():
            yield Timeout(10.0)
            yield WakeAt(5.0)  # now == 10: the past

        eng.process(proc(), name="p")
        with pytest.raises(SimulationError, match="in the past"):
            eng.run()

    def test_wake_at_now_runs_after_current_instant(self):
        from repro.sim.engine import WakeAt

        eng = Engine()
        order = []

        def sleeper():
            yield WakeAt(0.0)
            order.append("wake-at")

        def ready():
            order.append("ready")
            yield Timeout(0.0)

        eng.process(sleeper(), name="s")
        eng.process(ready(), name="r")
        eng.run()
        # The WakeAt record carries a later sequence number than the
        # already-queued ready events, so FIFO-at-equal-time holds.
        assert order[0] == "ready"


class TestProcessFailure:
    """A raising process must unblock its waiters with the real error
    instead of leaving them hanging (previously misreported as deadlock)."""

    def test_waiter_sees_child_exception(self):
        eng = Engine()

        def child():
            yield Timeout(1.0)
            raise RuntimeError("boom")

        def parent():
            c = eng.process(child(), name="child")
            try:
                yield c
            except RuntimeError as exc:
                return f"caught {exc}"

        assert eng.run_process(parent()) == "caught boom"

    def test_uncaught_child_error_propagates_not_deadlock(self):
        eng = Engine()

        def child():
            yield Timeout(1.0)
            raise ValueError("bad")

        def parent():
            yield eng.process(child(), name="child")

        with pytest.raises(ValueError, match="bad"):
            eng.run_process(parent())

    def test_error_with_no_waiters_still_aborts_run(self):
        eng = Engine()

        def lonely():
            yield Timeout(1.0)
            raise KeyError("alone")

        eng.process(lonely(), name="lonely")
        with pytest.raises(KeyError):
            eng.run()

    def test_yielding_already_failed_process_raises(self):
        eng = Engine()

        def child():
            yield Timeout(1.0)
            raise RuntimeError("early")

        def parent():
            c = eng.process(child(), name="child")
            try:
                yield c
            except RuntimeError:
                pass
            yield Timeout(10.0)
            try:
                yield c  # already failed: error delivered again
            except RuntimeError:
                return "again"

        assert eng.run_process(parent()) == "again"

    def test_allof_propagates_child_failure(self):
        eng = Engine()

        def ok():
            yield Timeout(5.0)
            return "fine"

        def bad():
            yield Timeout(1.0)
            raise RuntimeError("allof-child")

        def parent():
            kids = [eng.process(ok(), name="ok"), eng.process(bad(), name="bad")]
            try:
                yield AllOf(kids)
            except RuntimeError as exc:
                return str(exc)

        assert eng.run_process(parent()) == "allof-child"

    def test_failed_process_records_error_attribute(self):
        eng = Engine()

        def child():
            yield Timeout(1.0)
            raise RuntimeError("attr")

        def parent():
            c = eng.process(child(), name="child")
            try:
                yield c
            except RuntimeError:
                return c

        proc = eng.run_process(parent())
        assert proc.done and isinstance(proc.error, RuntimeError)

    def test_sibling_chain_propagates(self):
        """Error crosses two levels of waiting processes."""
        eng = Engine()

        def leaf():
            yield Timeout(1.0)
            raise RuntimeError("leaf")

        def middle():
            yield eng.process(leaf(), name="leaf")

        def top():
            try:
                yield eng.process(middle(), name="middle")
            except RuntimeError as exc:
                return f"top saw {exc}"

        assert eng.run_process(top()) == "top saw leaf"


class TestResourceContention:
    def test_grant_order_under_contention_capacity_two(self):
        eng = Engine()
        res = eng.resource(2, "r")
        order = []

        def proc(i):
            yield res.acquire()
            order.append(i)
            yield Timeout(10.0)
            res.release()

        for i in range(6):
            eng.process(proc(i), name=f"p{i}")
        eng.run()
        assert order == [0, 1, 2, 3, 4, 5]

    def test_slot_transfers_to_waiter_without_in_use_dip(self):
        eng = Engine()
        res = eng.resource(1, "r")
        snapshots = []

        def holder():
            yield res.acquire()
            yield Timeout(5.0)
            res.release()
            snapshots.append(("after-release", res.in_use, res.queue_length))

        def waiter():
            yield res.acquire()
            snapshots.append(("granted", res.in_use, res.queue_length))
            res.release()

        eng.process(holder(), name="h")
        eng.process(waiter(), name="w")
        eng.run()
        # The slot moves directly holder -> waiter: in_use never dips to 0
        # between release and grant.
        assert snapshots == [("after-release", 1, 0), ("granted", 1, 0)]

    def test_release_wakes_in_fifo_even_with_interleaved_acquires(self):
        eng = Engine()
        res = eng.resource(1, "r")
        order = []

        def early(i):
            yield res.acquire()
            order.append(i)
            yield Timeout(2.0)
            res.release()

        def late(i):
            yield Timeout(1.0)
            yield res.acquire()
            order.append(i)
            yield Timeout(2.0)
            res.release()

        eng.process(early(0), name="e0")
        eng.process(early(1), name="e1")
        eng.process(late(2), name="l2")
        eng.run()
        assert order == [0, 1, 2]


class TestDeadlockDetection:
    def test_blocked_process_raises_deadlock(self):
        eng = Engine()
        sig = eng.signal("never")

        def proc():
            yield sig

        eng.process(proc(), name="stuck")
        with pytest.raises(DeadlockError) as exc:
            eng.run()
        assert "stuck" in str(exc.value)

    def test_deadlock_lists_all_blocked(self):
        eng = Engine()
        sig = eng.signal("never")

        def proc():
            yield sig

        for i in range(3):
            eng.process(proc(), name=f"b{i}")
        with pytest.raises(DeadlockError) as exc:
            eng.run()
        assert len(exc.value.blocked) == 3

    def test_detection_can_be_disabled(self):
        eng = Engine()
        sig = eng.signal("never")

        def proc():
            yield sig

        eng.process(proc(), name="stuck")
        eng.run(detect_deadlock=False)  # no raise

    def test_clean_completion_no_deadlock(self):
        eng = Engine()

        def proc():
            yield Timeout(1.0)

        eng.process(proc(), name="ok")
        eng.run()  # no raise

    def test_mutual_resource_wait_deadlocks(self):
        eng = Engine()
        a, b = eng.resource(1, "a"), eng.resource(1, "b")

        def p1():
            yield a.acquire()
            yield Timeout(1.0)
            yield b.acquire()

        def p2():
            yield b.acquire()
            yield Timeout(1.0)
            yield a.acquire()

        eng.process(p1(), name="p1")
        eng.process(p2(), name="p2")
        with pytest.raises(DeadlockError):
            eng.run()
