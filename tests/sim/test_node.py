"""Tests for the multi-GPU node model and multi-grid barrier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.paper_data import FIG7_MULTIGRID_P100_US, FIG8_MULTIGRID_V100_US
from repro.sim.engine import DeadlockError
from repro.sim.node import (
    Node,
    cross_gpu_latency_ns,
    multigrid_local_latency_ns,
    simulate_multigrid_sync,
)
from repro.sync import MultiGridGroup


def _mgrid_sync(node, b, t, **kw):
    """Run one multi-grid simulation through the repro.sync scope."""
    sim_kw = {k: kw.pop(k) for k in ("n_syncs", "participating_gpus") if k in kw}
    return MultiGridGroup(node, b, t, **kw).simulate(**sim_kw)


class TestNode:
    def test_default_full_node(self, dgx1):
        assert Node(dgx1).gpu_count == 8

    def test_partial_node(self, dgx1):
        assert Node(dgx1, gpu_count=3).gpu_count == 3

    def test_invalid_gpu_count(self, dgx1):
        with pytest.raises(ValueError):
            Node(dgx1, gpu_count=0)
        with pytest.raises(ValueError):
            Node(dgx1, gpu_count=9)

    def test_device_index_validated(self, dgx1):
        node = Node(dgx1, gpu_count=2)
        with pytest.raises(ValueError):
            node.device(2)

    def test_enable_all_peer_access(self, dgx1):
        node = Node(dgx1, gpu_count=3)
        node.enable_all_peer_access()
        buf = node.device(2).alloc((4,))
        assert node.device(0).can_access(buf)


class TestLocalPhase:
    def test_one_gpu_multigrid_equals_local(self, dgx1):
        node = Node(dgx1, gpu_count=1)
        r = _mgrid_sync(node, 1, 256)
        assert r.cross_ns == 0.0
        assert r.total_ns == pytest.approx(r.local_ns)

    def test_local_matches_fig8_one_gpu_panel(self, dgx1):
        errs = []
        for (b, t), paper in FIG8_MULTIGRID_V100_US[1].items():
            us = multigrid_local_latency_ns(dgx1, b, t) / 1e3
            errs.append(abs(us - paper) / paper)
        assert float(np.mean(errs)) < 0.06

    def test_local_matches_fig7_one_gpu_panel(self, p100_node):
        errs = []
        for (b, t), paper in FIG7_MULTIGRID_P100_US[1].items():
            us = multigrid_local_latency_ns(p100_node, b, t) / 1e3
            errs.append(abs(us - paper) / paper)
        assert float(np.mean(errs)) < 0.07

    def test_rejects_non_coresident_config(self, dgx1):
        with pytest.raises(ValueError):
            multigrid_local_latency_ns(dgx1, 4, 1024)


class TestCrossPhase:
    def test_single_gpu_is_free(self, dgx1):
        node = Node(dgx1)
        assert cross_gpu_latency_ns(dgx1, node.interconnect, [0], 1) == 0.0

    def test_two_hop_penalty_creates_plateau_jump(self, dgx1):
        node = Node(dgx1)
        c5 = cross_gpu_latency_ns(dgx1, node.interconnect, range(5), 1)
        c6 = cross_gpu_latency_ns(dgx1, node.interconnect, range(6), 1)
        assert c6 - c5 > 10_000  # the >10 us Fig 8 jump

    def test_plateaus_flat_within_groups(self, dgx1):
        node = Node(dgx1)
        lat = [
            cross_gpu_latency_ns(dgx1, node.interconnect, range(n), 1)
            for n in range(2, 9)
        ]
        # 2-5 GPUs within ~1 us of each other; likewise 6-8.
        assert max(lat[:4]) - min(lat[:4]) < 1000
        assert max(lat[4:]) - min(lat[4:]) < 3000

    def test_release_term_grows_with_blocks(self, dgx1):
        node = Node(dgx1)
        c1 = cross_gpu_latency_ns(dgx1, node.interconnect, range(2), 1)
        c32 = cross_gpu_latency_ns(dgx1, node.interconnect, range(2), 32)
        assert c32 - c1 > 15_000  # ~0.11 us * (32^1.5 - 1)


class TestMultiGridSimulation:
    @pytest.mark.parametrize("n", [1, 2, 5, 6, 8])
    def test_fig8_panels_within_tolerance(self, dgx1, n):
        node = Node(dgx1)
        errs = []
        for (b, t), paper in FIG8_MULTIGRID_V100_US[n].items():
            sim = _mgrid_sync(node, b, t, gpu_ids=range(n))
            errs.append(abs(sim.latency_per_sync_us - paper) / paper)
        assert float(np.mean(errs)) < 0.08

    @pytest.mark.parametrize("n", [1, 2])
    def test_fig7_panels_within_tolerance(self, p100_node, n):
        node = Node(p100_node)
        errs = []
        for (b, t), paper in FIG7_MULTIGRID_P100_US[n].items():
            sim = _mgrid_sync(node, b, t, gpu_ids=range(n))
            errs.append(abs(sim.latency_per_sync_us - paper) / paper)
        assert float(np.mean(errs)) < 0.08

    def test_pcie_two_gpu_much_slower_than_nvlink(self, dgx1, p100_node):
        nv = _mgrid_sync(Node(dgx1), 1, 32, gpu_ids=range(2))
        pc = _mgrid_sync(Node(p100_node), 1, 32, gpu_ids=range(2))
        # Cross-GPU phase dominates and PCIe pays more (Fig 7 vs Fig 8).
        assert pc.cross_ns > nv.cross_ns

    def test_partial_gpus_deadlock(self, dgx1):
        node = Node(dgx1)
        with pytest.raises(DeadlockError):
            _mgrid_sync(
                node, 1, 64, gpu_ids=range(4), participating_gpus=[0, 1]
            )

    def test_partial_local_blocks_deadlock(self, dgx1):
        node = Node(dgx1)
        with pytest.raises(DeadlockError):
            _mgrid_sync(
                node, 1, 64, gpu_ids=range(2), full_local_participation=False
            )

    def test_participants_must_be_subset(self, dgx1):
        node = Node(dgx1)
        with pytest.raises(ValueError):
            _mgrid_sync(
                node, 1, 64, gpu_ids=[0, 1], participating_gpus=[0, 5]
            )

    def test_repeated_syncs_amortize(self, dgx1):
        node = Node(dgx1)
        one = _mgrid_sync(node, 1, 128, n_syncs=1).latency_per_sync_ns
        many = _mgrid_sync(node, 1, 128, n_syncs=4).latency_per_sync_ns
        assert many == pytest.approx(one, rel=0.05)

    def test_empty_gpu_set_rejected(self, dgx1):
        with pytest.raises(ValueError):
            _mgrid_sync(Node(dgx1), 1, 64, gpu_ids=[])


class TestDeprecatedShim:
    def test_simulate_multigrid_sync_warns_and_delegates(self, dgx1):
        node = Node(dgx1)
        with pytest.warns(DeprecationWarning, match="repro.sync.MultiGridGroup"):
            old = simulate_multigrid_sync(node, 1, 128, gpu_ids=range(3), n_syncs=2)
        assert old == _mgrid_sync(Node(dgx1), 1, 128, gpu_ids=range(3), n_syncs=2)


class TestDeprecatedShimStrategy:
    def test_warning_stacklevel_points_at_caller(self, dgx1):
        import warnings

        node = Node(dgx1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            simulate_multigrid_sync(node, 1, 128, gpu_ids=range(2))
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert dep, "shim must emit a DeprecationWarning"
        assert dep[0].filename == __file__

    def test_shim_matches_scope_under_non_default_strategy(self, dgx1):
        from repro.sim.engine import Engine

        eng_old = Engine()
        with pytest.warns(DeprecationWarning):
            old = simulate_multigrid_sync(
                Node(dgx1), 1, 128, gpu_ids=range(4), n_syncs=2,
                engine=eng_old, strategy="atomic",
                strategy_knobs={"workload_util": 0.5},
            )
        eng_new = Engine()
        new = _mgrid_sync(
            Node(dgx1), 1, 128, gpu_ids=range(4), n_syncs=2,
            engine=eng_new, strategy="atomic",
            strategy_knobs={"workload_util": 0.5},
        )
        assert old == new
        assert eng_old.event_count == eng_new.event_count
