"""Tests for SM-level models: block barriers and warp-sync pipelines."""

from __future__ import annotations

import pytest

from repro.sim.sm import (
    block_sync_latency_cycles,
    simulate_block_sync,
    simulate_warp_sync_throughput,
)


class TestBlockSyncLatencyModel:
    def test_single_warp_latency_matches_table2(self, spec):
        expected = {"V100": 22.0, "P100": 218.0}[spec.name]
        assert block_sync_latency_cycles(spec, 1) == pytest.approx(expected, rel=0.1)

    def test_table4_sync_latency_for_1024_threads(self, spec):
        # 5 syncs of a 32-warp block: 420 cy (V100) / 2135 cy (P100).
        expected = {"V100": 420.0, "P100": 2135.0}[spec.name]
        assert 5 * block_sync_latency_cycles(spec, 32) == pytest.approx(
            expected, rel=0.02
        )

    def test_latency_monotone_in_warps(self, spec):
        lats = [block_sync_latency_cycles(spec, w) for w in (1, 4, 16, 32)]
        assert lats == sorted(lats)

    def test_zero_warps_rejected(self, spec):
        with pytest.raises(ValueError):
            block_sync_latency_cycles(spec, 0)


class TestBlockSyncSimulation:
    def test_single_block_is_latency_bound(self, spec):
        r = simulate_block_sync(spec, warps_per_block=1, n_blocks=1, repeats=4)
        assert r.latency_per_sync_cycles == pytest.approx(
            block_sync_latency_cycles(spec, 1), rel=0.05
        )

    def test_throughput_saturates_at_table2_value(self, spec):
        target = {"V100": 0.475, "P100": 0.091}[spec.name]
        r = simulate_block_sync(spec, warps_per_block=16, n_blocks=4, repeats=8)
        assert r.per_warp_throughput == pytest.approx(target, rel=0.03)

    def test_throughput_plateau_independent_of_partition(self, spec):
        # 64 warps/SM as 2x32 or 8x8 blocks: same barrier-unit bandwidth.
        a = simulate_block_sync(spec, 32, 2, repeats=8).per_warp_throughput
        b = simulate_block_sync(spec, 8, 8, repeats=8).per_warp_throughput
        assert a == pytest.approx(b, rel=0.05)

    def test_oversubscription_time_shares(self, spec):
        resident = simulate_block_sync(spec, 32, 2, repeats=4)
        oversub = simulate_block_sync(spec, 32, 8, repeats=4)
        # 4x the blocks at the same residency: ~4x the wall time.
        assert oversub.total_ns == pytest.approx(4 * resident.total_ns, rel=0.1)

    def test_oversubscription_keeps_plateau_throughput(self, spec):
        oversub = simulate_block_sync(spec, 32, 8, repeats=4)
        target = {"V100": 0.475, "P100": 0.091}[spec.name]
        assert oversub.per_warp_throughput == pytest.approx(target, rel=0.1)

    def test_result_bookkeeping(self, spec):
        r = simulate_block_sync(spec, warps_per_block=4, n_blocks=3, repeats=2)
        assert r.total_warps == 12
        assert r.resident_blocks == 3
        assert r.active_warps == 12

    def test_invalid_arguments(self, spec):
        with pytest.raises(ValueError):
            simulate_block_sync(spec, 0, 1)
        with pytest.raises(ValueError):
            simulate_block_sync(spec, 1, 0)
        with pytest.raises(ValueError):
            simulate_block_sync(spec, 1, 1, repeats=0)
        with pytest.raises(ValueError):
            simulate_block_sync(spec, 64, 1)  # 2048-thread block


class TestWarpSyncThroughput:
    @pytest.mark.parametrize(
        "kind,field",
        [
            ("tile", "tile_throughput"),
            ("coalesced", "coalesced_full_throughput"),
            ("shuffle_tile", "shuffle_tile_throughput"),
            ("shuffle_coalesced", "shuffle_coalesced_throughput"),
        ],
    )
    def test_saturated_throughput_matches_table2(self, spec, kind, field):
        r = simulate_warp_sync_throughput(spec, kind, 32, n_warps=64, repeats=64)
        assert r.throughput_ops_per_cycle == pytest.approx(
            getattr(spec.warp_sync, field), rel=0.02
        )

    def test_partial_coalesced_uses_slow_pipeline(self, v100):
        r = simulate_warp_sync_throughput(v100, "coalesced", 16, n_warps=64, repeats=64)
        assert r.throughput_ops_per_cycle == pytest.approx(0.167, rel=0.03)

    def test_single_warp_is_latency_bound(self, v100):
        r = simulate_warp_sync_throughput(v100, "tile", 32, n_warps=1, repeats=64)
        # One warp can at best retire 1/latency ops per cycle.
        assert r.throughput_ops_per_cycle <= 1.0 / v100.warp_sync.tile_latency * 1.05

    def test_throughput_rises_with_warp_count(self, spec):
        thrs = [
            simulate_warp_sync_throughput(spec, "tile", 32, n_warps=n, repeats=32)
            .throughput_ops_per_cycle
            for n in (1, 4, 16, 64)
        ]
        assert all(a <= b * 1.01 for a, b in zip(thrs, thrs[1:]))

    def test_unknown_kind_rejected(self, spec):
        with pytest.raises(ValueError):
            simulate_warp_sync_throughput(spec, "voodoo", 32)

    def test_invalid_counts_rejected(self, spec):
        with pytest.raises(ValueError):
            simulate_warp_sync_throughput(spec, "tile", 32, n_warps=0)
