"""Tests for the memory system: visibility model, atomics, HBM, buffers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.memory import HBM, DeviceBuffer, L2AtomicUnit, SharedMemory


class TestSharedMemoryVisibility:
    def test_plain_store_invisible_to_others(self):
        sm = SharedMemory(8)
        sm.store(thread=0, slot=3, value=7.0)
        assert sm.load(thread=1, slot=3) == 0.0
        assert sm.race_detected

    def test_plain_store_visible_to_self(self):
        sm = SharedMemory(8)
        sm.store(thread=0, slot=3, value=7.0)
        assert sm.load(thread=0, slot=3) == 7.0
        assert not sm.race_detected

    def test_commit_makes_writes_visible(self):
        sm = SharedMemory(8)
        sm.store(thread=0, slot=3, value=7.0)
        assert sm.commit() == 1
        assert sm.load(thread=1, slot=3) == 7.0
        assert not sm.race_detected

    def test_volatile_store_immediately_visible(self):
        sm = SharedMemory(8)
        sm.store(thread=0, slot=2, value=5.0, volatile=True)
        assert sm.load(thread=1, slot=2) == 5.0
        assert not sm.race_detected

    def test_volatile_load_snoops_pending(self):
        sm = SharedMemory(8)
        sm.store(thread=0, slot=2, value=5.0)
        assert sm.load(thread=1, slot=2, volatile=True) == 5.0
        assert not sm.race_detected

    def test_race_record_details(self):
        sm = SharedMemory(8)
        sm.store(thread=4, slot=1, value=1.0)
        sm.load(thread=9, slot=1, step=2)
        rec = sm.races[0]
        assert (rec.reader, rec.writer, rec.slot, rec.step) == (9, 4, 1, 2)

    def test_commit_thread_commits_only_that_thread(self):
        sm = SharedMemory(8)
        sm.store(thread=0, slot=0, value=1.0)
        sm.store(thread=1, slot=1, value=2.0)
        assert sm.commit_thread(0) == 1
        assert sm.load(thread=2, slot=0) == 1.0
        assert sm.load(thread=2, slot=1) == 0.0  # still pending, raced

    def test_stale_read_returns_last_committed(self):
        sm = SharedMemory(8)
        sm.store(thread=0, slot=0, value=1.0)
        sm.commit()
        sm.store(thread=0, slot=0, value=2.0)
        assert sm.load(thread=1, slot=0) == 1.0

    def test_out_of_range_slot_raises(self):
        sm = SharedMemory(4)
        with pytest.raises(IndexError):
            sm.load(0, 4)
        with pytest.raises(IndexError):
            sm.store(0, -1, 0.0)

    def test_empty_shared_memory_rejected(self):
        with pytest.raises(ValueError):
            SharedMemory(0)

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 7),   # thread
                st.integers(0, 7),   # slot
                st.floats(-10, 10),  # value
                st.booleans(),       # volatile
            ),
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_commit_then_read_equals_last_write(self, ops):
        """After a commit, every slot reads as its most recent write."""
        sm = SharedMemory(8)
        last = {}
        for thread, slot, value, volatile in ops:
            sm.store(thread, slot, value, volatile=volatile)
            last[slot] = value
        sm.commit()
        for slot, value in last.items():
            assert sm.load(thread=99, slot=slot) == value


class TestL2AtomicUnit:
    def test_serializes_across_processes(self):
        eng = Engine()
        unit = L2AtomicUnit(eng, service_ns=10.0)
        ends = []

        def proc():
            yield from unit.atomic()
            ends.append(eng.now)

        for _ in range(5):
            eng.process(proc(), name="a")
        eng.run()
        assert ends == [10.0, 20.0, 30.0, 40.0, 50.0]
        assert unit.ops == 5

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            L2AtomicUnit(Engine(), service_ns=-1.0)


class TestHBM:
    def test_transfer_time_scales_linearly(self, v100):
        hbm = HBM(v100.hbm)
        assert hbm.transfer_ns(2_000_000) == pytest.approx(
            2 * hbm.transfer_ns(1_000_000)
        )

    def test_implicit_fastest_method(self, spec):
        hbm = HBM(spec.hbm)
        n = 10**9
        assert hbm.transfer_ns(n, "implicit") <= hbm.transfer_ns(n, "grid")
        assert hbm.transfer_ns(n, "implicit") <= hbm.transfer_ns(n, "cub")

    def test_negative_bytes_rejected(self, v100):
        with pytest.raises(ValueError):
            HBM(v100.hbm).transfer_ns(-1)

    def test_one_gb_time_in_expected_range(self, v100):
        # 1 GB at ~865 GB/s is ~1.24 ms.
        t = HBM(v100.hbm).transfer_ns(10**9, "implicit")
        assert 1.1e6 < t < 1.3e6


class TestDeviceBuffer:
    def test_roundtrip(self):
        buf = DeviceBuffer(0, (16,))
        host = np.arange(16, dtype=np.float64)
        buf.copy_from_host(host)
        np.testing.assert_array_equal(buf.to_host(), host)

    def test_to_host_is_a_copy(self):
        buf = DeviceBuffer(0, (4,))
        out = buf.to_host()
        out[:] = 9.0
        assert buf.data.sum() == 0.0

    def test_shape_mismatch_rejected(self):
        buf = DeviceBuffer(0, (4,))
        with pytest.raises(ValueError, match="shape"):
            buf.copy_from_host(np.zeros(5))

    def test_nbytes(self):
        assert DeviceBuffer(0, (100,)).nbytes == 800
