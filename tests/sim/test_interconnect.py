"""Tests for interconnect topologies (DGX-1 cube-mesh, PCIe)."""

from __future__ import annotations

import pytest

from repro.sim.interconnect import (
    DGX1_NVLINK_LINKS,
    build_dgx1_nvlink,
    build_interconnect,
    build_pcie,
)


class TestDGX1Topology:
    def test_eight_gpus(self):
        assert build_dgx1_nvlink().gpu_count == 8

    def test_link_list_matches_hybrid_cube_mesh(self):
        ic = build_dgx1_nvlink()
        for a, b in DGX1_NVLINK_LINKS:
            assert ic.hops(a, b) == 1

    def test_each_gpu_has_four_neighbors(self):
        ic = build_dgx1_nvlink()
        for g in range(8):
            assert len(ic.neighbors(g)) == 4

    def test_quad_membership_one_hop_from_leader(self):
        ic = build_dgx1_nvlink()
        # GPU 0 reaches its quad (1,2,3) and cube partner (4) in one hop.
        for g in (1, 2, 3, 4):
            assert ic.hops(0, g) == 1

    def test_cross_quad_non_partner_is_two_hops(self):
        ic = build_dgx1_nvlink()
        for g in (5, 6, 7):
            assert ic.hops(0, g) == 2

    def test_paper_plateau_structure(self):
        """Sets {0..k} for k<=4 are 1-hop; k>=5 introduces 2-hop members —
        exactly the Fig 8/9 latency plateau boundaries."""
        ic = build_dgx1_nvlink()
        for k in range(1, 5):
            assert ic.max_hops_from(0, list(range(k + 1))) == 1
        for k in range(5, 8):
            assert ic.max_hops_from(0, list(range(k + 1))) == 2

    def test_two_hop_member_counts(self):
        ic = build_dgx1_nvlink()
        assert ic.two_hop_members(0, list(range(6))) == [5]
        assert ic.two_hop_members(0, list(range(8))) == [5, 6, 7]

    def test_hops_symmetric(self):
        ic = build_dgx1_nvlink()
        for a in range(8):
            for b in range(8):
                assert ic.hops(a, b) == ic.hops(b, a)

    def test_self_hops_zero(self):
        ic = build_dgx1_nvlink()
        assert ic.hops(3, 3) == 0


class TestPCIe:
    def test_two_gpu_pcie(self):
        ic = build_pcie(2)
        assert ic.gpu_count == 2
        assert ic.hops(0, 1) == 1

    def test_single_gpu_degenerate(self):
        assert build_pcie(1).gpu_count == 1

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            build_pcie(0)

    def test_pcie_slower_than_nvlink(self):
        p, n = build_pcie(2), build_dgx1_nvlink()
        nbytes = 1_000_000
        assert p.peer_transfer_ns(0, 1, nbytes) > n.peer_transfer_ns(0, 1, nbytes)


class TestFactory:
    def test_builds_subgraph_for_fewer_gpus(self):
        ic = build_interconnect("nvlink-cube-mesh", 4)
        assert ic.gpu_count == 4
        assert ic.max_hops_from(0, [1, 2, 3]) == 1

    def test_rejects_too_many_gpus(self):
        with pytest.raises(ValueError, match="8 GPUs"):
            build_interconnect("nvlink-cube-mesh", 9)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            build_interconnect("infiniband", 2)

    def test_transfer_time_includes_payload(self):
        ic = build_dgx1_nvlink()
        small = ic.peer_transfer_ns(0, 1, 1000)
        large = ic.peer_transfer_ns(0, 1, 1_000_000)
        assert large > small
        assert ic.peer_transfer_ns(0, 0, 10**6) == 0.0
