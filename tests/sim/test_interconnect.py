"""Tests for interconnect topologies (DGX-1 cube-mesh, PCIe)."""

from __future__ import annotations

import pytest

from repro.sim.interconnect import (
    DGX1_NVLINK_LINKS,
    build_dgx1_nvlink,
    build_interconnect,
    build_nvswitch,
    build_pcie,
    build_ring,
)


class TestDGX1Topology:
    def test_eight_gpus(self):
        assert build_dgx1_nvlink().gpu_count == 8

    def test_link_list_matches_hybrid_cube_mesh(self):
        ic = build_dgx1_nvlink()
        for a, b in DGX1_NVLINK_LINKS:
            assert ic.hops(a, b) == 1

    def test_each_gpu_has_four_neighbors(self):
        ic = build_dgx1_nvlink()
        for g in range(8):
            assert len(ic.neighbors(g)) == 4

    def test_quad_membership_one_hop_from_leader(self):
        ic = build_dgx1_nvlink()
        # GPU 0 reaches its quad (1,2,3) and cube partner (4) in one hop.
        for g in (1, 2, 3, 4):
            assert ic.hops(0, g) == 1

    def test_cross_quad_non_partner_is_two_hops(self):
        ic = build_dgx1_nvlink()
        for g in (5, 6, 7):
            assert ic.hops(0, g) == 2

    def test_paper_plateau_structure(self):
        """Sets {0..k} for k<=4 are 1-hop; k>=5 introduces 2-hop members —
        exactly the Fig 8/9 latency plateau boundaries."""
        ic = build_dgx1_nvlink()
        for k in range(1, 5):
            assert ic.max_hops_from(0, list(range(k + 1))) == 1
        for k in range(5, 8):
            assert ic.max_hops_from(0, list(range(k + 1))) == 2

    def test_two_hop_member_counts(self):
        ic = build_dgx1_nvlink()
        assert ic.two_hop_members(0, list(range(6))) == [5]
        assert ic.two_hop_members(0, list(range(8))) == [5, 6, 7]

    def test_hops_symmetric(self):
        ic = build_dgx1_nvlink()
        for a in range(8):
            for b in range(8):
                assert ic.hops(a, b) == ic.hops(b, a)

    def test_self_hops_zero(self):
        ic = build_dgx1_nvlink()
        assert ic.hops(3, 3) == 0


class TestPCIe:
    def test_two_gpu_pcie(self):
        ic = build_pcie(2)
        assert ic.gpu_count == 2
        assert ic.hops(0, 1) == 1

    def test_single_gpu_degenerate(self):
        assert build_pcie(1).gpu_count == 1

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            build_pcie(0)

    def test_pcie_slower_than_nvlink(self):
        p, n = build_pcie(2), build_dgx1_nvlink()
        nbytes = 1_000_000
        assert p.peer_transfer_ns(0, 1, nbytes) > n.peer_transfer_ns(0, 1, nbytes)


class TestNVSwitch:
    """DGX-2-style crossbar: every pair is one hop, at any GPU count."""

    def test_default_sixteen_gpus(self):
        assert build_nvswitch().gpu_count == 16

    @pytest.mark.parametrize("n", [2, 8, 16])
    def test_all_pairs_one_hop(self, n):
        ic = build_nvswitch(n)
        for a in range(n):
            for b in range(n):
                assert ic.hops(a, b) == (0 if a == b else 1)

    def test_no_two_hop_members_ever(self):
        ic = build_nvswitch(16)
        assert ic.two_hop_members(0, list(range(16))) == []

    def test_rejects_out_of_range_counts(self):
        with pytest.raises(ValueError):
            build_nvswitch(0)
        with pytest.raises(ValueError, match="16 GPUs"):
            build_nvswitch(17)

    def test_single_gpu_degenerate(self):
        assert build_nvswitch(1).gpu_count == 1


class TestRing:
    """NCCL-style ring: hop count is ring distance (max n // 2)."""

    def test_neighbors_one_hop(self):
        ic = build_ring(8)
        assert ic.hops(0, 1) == 1
        assert ic.hops(0, 7) == 1  # wraps around

    def test_antipode_is_half_ring(self):
        ic = build_ring(8)
        assert ic.hops(0, 4) == 4
        assert ic.max_hops_from(0, list(range(8))) == 4

    def test_hop_staircase(self):
        ic = build_ring(8)
        assert [ic.hops(0, g) for g in range(8)] == [0, 1, 2, 3, 4, 3, 2, 1]

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_small_rings(self, n):
        ic = build_ring(n)
        assert ic.gpu_count == n
        if n > 1:
            assert ic.hops(0, n - 1) == 1

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            build_ring(0)


class TestPlateauEmergence:
    """Regression: the Fig 8/9 plateau boundaries (2-5 GPUs cheap, 6-8
    expensive) must *emerge* from the DGX-1 graph — and disappear when the
    same node is rebuilt on an NVSwitch crossbar."""

    def _latencies(self, interconnect=None):
        from dataclasses import replace

        from repro.sim.arch import DGX1_V100
        from repro.sim.node import Node
        from repro.sync import MultiGridGroup

        spec = DGX1_V100 if interconnect is None else replace(
            DGX1_V100, interconnect=interconnect
        )
        node = Node(spec)
        return {
            n: MultiGridGroup(node, 1, 32, gpu_ids=range(n))
            .simulate()
            .latency_per_sync_us
            for n in range(2, 9)
        }

    def test_dgx1_two_plateaus_with_jump_at_six(self):
        lat = self._latencies()
        low, high = [lat[n] for n in (2, 3, 4, 5)], [lat[n] for n in (6, 7, 8)]
        # Within each plateau the spread is small...
        assert max(low) - min(low) < 0.25 * min(low)
        assert max(high) - min(high) < 0.25 * min(high)
        # ...and the jump between them dominates both spreads.
        jump = min(high) - max(low)
        assert jump > 4 * (max(low) - min(low))
        assert lat[6] > 1.5 * lat[5]

    def test_plateau_tracks_two_hop_membership(self):
        """The jump happens exactly when {0..n-1} first contains a GPU two
        hops from leader 0 — i.e. it is a property of the graph."""
        ic = build_dgx1_nvlink()
        lat = self._latencies()
        for n in range(3, 9):
            gained_2hop = (
                ic.max_hops_from(0, list(range(n))) >= 2
                and ic.max_hops_from(0, list(range(n - 1))) < 2
            )
            jumped = lat[n] > 1.5 * lat[n - 1]
            assert jumped == gained_2hop, f"n={n}"

    def test_nvswitch_flattens_the_plateau(self):
        lat = self._latencies(interconnect="nvswitch")
        vals = list(lat.values())
        # No two-hop members on a crossbar: no jump anywhere.
        assert max(vals) - min(vals) < 0.25 * min(vals)
        for n in range(3, 9):
            assert lat[n] < 1.5 * lat[n - 1]


class TestFactory:
    def test_builds_subgraph_for_fewer_gpus(self):
        ic = build_interconnect("nvlink-cube-mesh", 4)
        assert ic.gpu_count == 4
        assert ic.max_hops_from(0, [1, 2, 3]) == 1

    def test_rejects_too_many_gpus(self):
        with pytest.raises(ValueError, match="8 GPUs"):
            build_interconnect("nvlink-cube-mesh", 9)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            build_interconnect("infiniband", 2)

    @pytest.mark.parametrize("kind,n", [("nvswitch", 16), ("ring", 6), ("pcie", 2)])
    def test_builds_every_registered_kind(self, kind, n):
        assert build_interconnect(kind, n).gpu_count == n

    def test_transfer_time_includes_payload(self):
        ic = build_dgx1_nvlink()
        small = ic.peer_transfer_ns(0, 1, 1000)
        large = ic.peer_transfer_ns(0, 1, 1_000_000)
        assert large > small
        assert ic.peer_transfer_ns(0, 0, 10**6) == 0.0
