"""Tests for the block-level thread-precise executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cudasim import instructions as ins
from repro.sim.exec_block import BlockExecutor
from repro.sim.sm import block_sync_latency_cycles


class TestConstruction:
    def test_warp_partitioning(self, spec):
        ex = BlockExecutor(spec, nthreads=100)
        assert ex.warp_count == 4
        assert [w.nthreads for w in ex.warps] == [32, 32, 32, 4]

    def test_invalid_thread_count(self, spec):
        with pytest.raises(ValueError):
            BlockExecutor(spec, nthreads=0)
        with pytest.raises(ValueError):
            BlockExecutor(spec, nthreads=2048)


class TestGlobalThreadIds:
    def test_tids_unique_across_warps(self, spec):
        def program(ctx):
            yield ins.Compute(cycles=1.0)
            return ctx.tid

        r = BlockExecutor(spec, nthreads=96).run(program)
        assert sorted(r.returns.values()) == list(range(96))

    def test_lane_is_intra_warp(self, spec):
        def program(ctx):
            yield ins.Compute(cycles=1.0)
            ctx.record("lane", ctx.lane)

        r = BlockExecutor(spec, nthreads=64).run(program)
        assert r.records[33]["lane"] == 1


class TestBlockSync:
    def test_syncthreads_blocks_on_both_architectures(self, spec):
        """Unlike warp barriers, __syncthreads holds threads on Pascal."""

        def program(ctx):
            if ctx.tid == 0:
                yield ins.Compute(cycles=700.0)
            yield ins.BlockSync()
            t = yield ins.ReadClock()
            ctx.record("release", t)

        r = BlockExecutor(spec, nthreads=64).run(program)
        releases = [r.records[t]["release"] for t in range(64)]
        assert min(releases) >= 700.0

    def test_sync_cost_matches_calibration(self, spec):
        def program(ctx):
            yield ins.BlockSync()

        ex = BlockExecutor(spec, nthreads=256)
        r = ex.run(program)
        expected = block_sync_latency_cycles(spec, 8)
        assert r.duration_cycles == pytest.approx(expected, rel=0.02)

    def test_repeated_syncs_use_fresh_rounds(self, spec):
        def program(ctx):
            for _ in range(3):
                yield ins.BlockSync()

        ex = BlockExecutor(spec, nthreads=64)
        ex.run(program)
        assert ex.barrier.rounds_completed == 3

    def test_sync_commits_shared_memory_across_warps(self, v100):
        def program(ctx):
            yield ins.SharedStore(slot=ctx.tid, value=float(ctx.tid + 1))
            yield ins.BlockSync()
            got = yield ins.SharedLoad(slot=(ctx.tid + 32) % 64)
            ctx.record("got", got)

        r = BlockExecutor(v100, nthreads=64).run(program)
        assert not r.shared.race_detected
        assert r.records[0]["got"] == 33.0  # thread 0 reads warp 1's slot

    def test_cross_warp_read_without_sync_races(self, v100):
        def program(ctx):
            yield ins.SharedStore(slot=ctx.tid, value=1.0)
            yield ins.Compute(cycles=50.0)
            got = yield ins.SharedLoad(slot=(ctx.tid + 32) % 64)
            ctx.record("got", got)

        r = BlockExecutor(v100, nthreads=64).run(program)
        assert r.shared.race_detected


class TestWarpLocality:
    def test_warp_syncs_stay_warp_local(self, v100):
        """A tile sync in warp 0 must not wait for warp 1."""

        def program(ctx):
            if ctx.tid >= 32:
                yield ins.Compute(cycles=5000.0)
            else:
                yield ins.WarpSync(kind="tile", group_size=32)
                t = yield ins.ReadClock()
                ctx.record("release", t)

        r = BlockExecutor(v100, nthreads=64).run(program)
        assert r.records[0]["release"] < 100.0

    def test_shuffles_exchange_within_warp_only(self, v100):
        def program(ctx):
            got = yield ins.ShuffleDown(value=float(ctx.tid), delta=1)
            ctx.record("got", got)

        r = BlockExecutor(v100, nthreads=64).run(program)
        # Lane 31 of warp 0 keeps its own value (no cross-warp shuffle).
        assert r.records[31]["got"] == 31.0
        assert r.records[32]["got"] == 33.0


class TestFig12ThreadPrecise:
    """The paper's Fig 12 block_reduce, executed thread-by-thread."""

    def test_block_reduce_program(self, v100):
        rng = np.random.default_rng(12)
        data = rng.uniform(0.0, 1.0, 128)
        nthreads = 128

        def program(ctx):
            # Phase 1: each thread owns one element (stride loop trivial).
            yield ins.SharedStore(slot=ctx.tid, value=float(data[ctx.tid]))
            yield ins.BlockSync()
            # Phase 2: warp 0 accumulates one partial per warp... here each
            # warp reduces itself with shuffles, then warp 0 combines.
            val = yield ins.SharedLoad(slot=ctx.tid)
            for step in (16, 8, 4, 2, 1):
                got = yield ins.ShuffleDown(value=val, delta=step)
                if ctx.lane + step < 32:
                    val = val + got
            if ctx.lane == 0:
                yield ins.SharedStore(slot=ctx.tid, value=val, volatile=True)
            yield ins.BlockSync()
            if ctx.tid == 0:
                total = 0.0
                for w in range(nthreads // 32):
                    p = yield ins.SharedLoad(slot=w * 32)
                    total += p
                ctx.record("sum", total)

        r = BlockExecutor(v100, nthreads=nthreads).run(program)
        assert r.records[0]["sum"] == pytest.approx(data.sum())
        assert not r.shared.race_detected


class TestBlockFastPathEquivalence:
    """Block-level reductions must be bit-identical with the converged-warp
    fast path on and off (the __syncthreads rendezvous always falls back)."""

    def test_block_reduce_identical(self, spec):
        block_threads = 64

        def program(ctx):
            yield ins.SharedStore(slot=ctx.tid, value=float(ctx.tid))
            yield ins.BlockSync()
            stride = block_threads // 2
            while stride >= 1:
                if ctx.tid < stride:
                    a = yield ins.SharedLoad(slot=ctx.tid)
                    b = yield ins.SharedLoad(slot=ctx.tid + stride)
                    yield ins.SharedStore(slot=ctx.tid, value=a + b)
                yield ins.BlockSync()
                stride //= 2
            if ctx.tid == 0:
                total = yield ins.SharedLoad(slot=0)
                return total

        fast = BlockExecutor(spec, nthreads=64, simt_fast_path=True).run(program)
        slow = BlockExecutor(spec, nthreads=64, simt_fast_path=False).run(program)
        assert fast.duration_ns == slow.duration_ns
        assert fast.end_ns == slow.end_ns
        assert fast.returns == slow.returns
        assert fast.returns[0] == sum(range(64))

    def test_compute_prefix_identical_times(self, spec):
        def program(ctx):
            yield ins.FAdd(count=4)
            yield ins.ChainStep(count=2)
            yield ins.BlockSync()
            t = yield ins.ReadClock()
            ctx.record("t", t)

        fast = BlockExecutor(spec, nthreads=96, simt_fast_path=True).run(program)
        slow = BlockExecutor(spec, nthreads=96, simt_fast_path=False).run(program)
        assert fast.records == slow.records
        assert fast.duration_ns == slow.duration_ns


class TestBlockReconvergence:
    """Cross-warp re-convergence: every warp of a block must fuse through
    barrier-delimited phases and re-fuse after its divergent regions, with
    results bit-identical to forced thread-precise execution.  Counters
    aggregate across the block's warps via the shared result."""

    @staticmethod
    def _compare(spec, program, nthreads=128):
        fast = BlockExecutor(spec, nthreads=nthreads, simt_fast_path=True).run(
            program
        )
        slow = BlockExecutor(spec, nthreads=nthreads, simt_fast_path=False).run(
            program
        )
        assert fast.duration_ns == slow.duration_ns
        assert fast.start_ns == slow.start_ns
        assert fast.end_ns == slow.end_ns
        assert fast.returns == slow.returns
        assert fast.records == slow.records
        assert list(fast.shared.committed) == list(slow.shared.committed)
        assert fast.shared.races == slow.shared.races
        return fast

    def test_barrier_loop_never_defuses(self, spec):
        def program(ctx):
            for _ in range(4):
                yield ins.FAdd(count=3)
                yield ins.BlockSync()

        fast = self._compare(spec, program)
        assert fast.fused_rounds > 0
        assert fast.defuse_count == 0

    def test_divergence_then_barrier_refuses_every_warp(self, spec):
        # The Fig-4-shaped divergence-after-barrier workload: each of the
        # block's 4 warps re-fuses at every barrier join, so the refuse
        # counter must reach warps x divergent-phases.
        def program(ctx):
            for r in range(3):
                yield ins.Compute(20.0)
                if r % 2 == 0:
                    yield ins.Diverge(arms=1)
                    yield ins.Compute(2.0 + ctx.lane % 3)
                yield ins.BlockSync()
            t = yield ins.ReadClock()
            ctx.record("t", t)

        fast = self._compare(spec, program)
        assert fast.refuse_count == 4 * 2  # 4 warps x 2 divergent phases
        assert fast.fused_rounds > 0

    def test_mixed_warp_modes_interoperate(self, v100):
        # Warp 0 diverges (thread-precise excursion), warps 1-3 stay
        # converged; all four must still meet at the same block barrier.
        def program(ctx):
            if ctx.tid < 32:
                yield ins.Diverge(arms=1)
                yield ins.Compute(2.0 + ctx.lane % 5)
            else:
                yield ins.Compute(40.0)
            yield ins.BlockSync()
            t = yield ins.ReadClock()
            ctx.record("t", t)

        fast = self._compare(v100, program)
        # Only warp 0 ever left converged mode.
        assert fast.refuse_count == 1
        # All threads resume from the barrier at one timestamp.
        assert len(set(fast.record_series("t"))) == 1


class TestPascalFenceCommitsGlobalTid:
    """Regression: the Pascal warp-sync fence must commit the *global*
    tid's pending writes — a warp at tid_offset != 0 previously fenced
    lane indices 0..31 instead, leaving its stores uncommitted."""

    def test_second_warp_fence_commits_its_writes(self, p100):
        def program(ctx):
            yield ins.SharedStore(slot=ctx.tid, value=float(ctx.tid + 1))
            yield ins.WarpSync(kind="tile")  # Pascal: fence, non-blocking
            warp_base = (ctx.tid // 32) * 32
            neighbor = warp_base + (ctx.lane + 1) % 32
            got = yield ins.SharedLoad(slot=neighbor)
            return got

        ex = BlockExecutor(p100, nthreads=64)
        r = ex.run(program)
        assert not ex.shared.races, ex.shared.races[:4]
        # Thread 33 reads thread 34's committed store, etc.
        assert r.returns[33] == 35.0
        assert r.returns[63] == 33.0
