"""Tests for architecture specs and calibration blocks."""

from __future__ import annotations

import dataclasses

import pytest

from repro.sim.arch import (
    DGX1_V100,
    GPU_REGISTRY,
    NODE_REGISTRY,
    P100,
    P100_PCIE_NODE,
    V100,
    get_gpu_spec,
    get_node_spec,
)


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_gpu_spec("v100") is V100
        assert get_gpu_spec("P100") is P100

    def test_unknown_gpu_raises_with_choices(self):
        with pytest.raises(ValueError, match="V100"):
            get_gpu_spec("K80")

    def test_node_lookup(self):
        assert get_node_spec("DGX1") is DGX1_V100
        assert get_node_spec("p100x2") is P100_PCIE_NODE

    def test_unknown_node_raises(self):
        with pytest.raises(ValueError):
            get_node_spec("dgx9")

    def test_registries_consistent(self):
        assert set(GPU_REGISTRY) == {"V100", "P100"}
        assert set(NODE_REGISTRY) == {"DGX1", "DGX2", "P100x2"}

    def test_dgx2_is_a_one_hop_fabric(self):
        spec = get_node_spec("DGX2")
        assert spec.gpu_count == 16
        assert spec.interconnect == "nvswitch"
        assert spec.cross_gpu.hop2_penalty_ns == 0.0


class TestHardwareLimits:
    def test_v100_structure_matches_whitepaper(self, v100):
        assert v100.sm_count == 80
        assert v100.partitions_per_sm == 4
        assert v100.max_threads_per_sm == 2048
        assert v100.max_warps_per_sm == 64
        assert v100.freq_mhz == 1312.0  # Table VII

    def test_p100_structure_matches_whitepaper(self, p100):
        assert p100.sm_count == 56
        assert p100.partitions_per_sm == 2
        assert p100.freq_mhz == 1189.0  # Table VII

    def test_volta_only_features(self, v100, p100):
        assert v100.has_nanosleep and not p100.has_nanosleep
        assert v100.independent_thread_scheduling
        assert not p100.independent_thread_scheduling
        assert v100.warp_sync.blocking and not p100.warp_sync.blocking

    def test_specs_are_frozen(self, spec):
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.sm_count = 1

    def test_cycle_conversion_roundtrip(self, spec):
        assert spec.ns_to_cycles(spec.cycles_to_ns(321.0)) == pytest.approx(321.0)

    def test_cycle_duration(self, v100, p100):
        assert v100.cycle_ns == pytest.approx(1e3 / 1312.0)
        assert p100.cycle_ns == pytest.approx(1e3 / 1189.0)


class TestLaunchCalib:
    def test_all_launch_types_present(self, spec):
        assert set(spec.launch) == {"traditional", "cooperative", "multi_device"}

    def test_unknown_launch_type_raises(self, spec):
        with pytest.raises(ValueError, match="unknown launch type"):
            spec.launch_calib("graph")

    def test_fusion_identity_matches_table1(self, v100):
        # gap + eps is what the fusion method recovers (Table I overhead).
        for lt, overhead in (
            ("traditional", 1081.0), ("cooperative", 1063.0), ("multi_device", 1258.0)
        ):
            c = v100.launch_calib(lt)
            assert c.gap_ns + c.exec_null_ns == pytest.approx(overhead)

    def test_fig3_identity_matches_table1(self, v100):
        # gap + dispatch is the Fig-3 estimator's value (Table I total).
        for lt, total in (
            ("traditional", 8888.0), ("cooperative", 10248.0), ("multi_device", 10874.0)
        ):
            c = v100.launch_calib(lt)
            assert c.gap_ns + c.dispatch_ns == pytest.approx(total)

    def test_multi_device_gap_grows_quadratically(self, v100):
        c = v100.launch_calib("multi_device")
        g1, g2, g8 = c.gap_for(1), c.gap_for(2), c.gap_for(8)
        assert g1 < g2 < g8
        assert g8 + c.exec_null_ns == pytest.approx(67200.0, rel=0.01)  # Fig 9

    def test_multi_device_dispatch_saturation_threshold(self, v100):
        # ~250 us of kernel needed to saturate the 8-GPU pipeline (IX-B).
        c = v100.launch_calib("multi_device")
        assert 230_000 < c.dispatch_for(8) < 270_000

    def test_single_device_types_have_no_gpu_scaling(self, spec):
        c = spec.launch_calib("traditional")
        assert c.gap_for(4) == c.gap_ns
        assert c.dispatch_for(4) == c.dispatch_ns


class TestDerivedCalib:
    def test_grid_sync_atomic_contention_grows(self, spec):
        gs = spec.grid_sync
        assert gs.atomic_service_ns(32, spec.sm_count) > gs.atomic_service_ns(
            1, spec.sm_count
        )

    def test_multigrid_local_formula_monotone_in_blocks(self, spec):
        mg = spec.multigrid_local
        assert mg.local_ns(2, 4) > mg.local_ns(1, 4)

    def test_multigrid_local_formula_monotone_in_warps(self, spec):
        mg = spec.multigrid_local
        assert mg.local_ns(1, 32) > mg.local_ns(1, 1)

    def test_hbm_method_efficiencies_ordered(self, spec):
        hbm = spec.hbm
        assert hbm.effective_gbps("implicit") >= hbm.effective_gbps("grid")
        assert hbm.effective_gbps("implicit") >= hbm.effective_gbps("cub")
        assert hbm.effective_gbps("implicit") < hbm.theory_gbps

    def test_hbm_unknown_method_raises(self, spec):
        with pytest.raises(ValueError):
            spec.hbm.effective_gbps("nccl")

    def test_cub_pascal_deficit_preserved(self, v100, p100):
        # Table VI: CUB loses ~8% on P100 but ~2% on V100.
        v_ratio = v100.hbm.rel_eff_cub
        p_ratio = p100.hbm.rel_eff_cub
        assert p_ratio < 0.93 < 0.97 < v_ratio


class TestNodeSpec:
    def test_omp_barrier_cost_grows_slowly(self, dgx1):
        costs = [dgx1.omp_barrier_ns(n) for n in (1, 2, 4, 8)]
        assert costs == sorted(costs)
        assert costs[-1] < 2000.0  # flat-ish (Fig 9)

    def test_omp_barrier_invalid_count(self, dgx1):
        with pytest.raises(ValueError):
            dgx1.omp_barrier_ns(0)

    def test_dgx1_is_8_v100s_on_nvlink(self, dgx1):
        assert dgx1.gpu is V100
        assert dgx1.gpu_count == 8
        assert dgx1.interconnect == "nvlink-cube-mesh"

    def test_p100_node_is_dual_pcie(self, p100_node):
        assert p100_node.gpu is P100
        assert p100_node.gpu_count == 2
        assert p100_node.interconnect == "pcie"

    def test_pcie_cross_phase_costlier_than_nvlink(self, dgx1, p100_node):
        assert p100_node.cross_gpu.base_ns > dgx1.cross_gpu.base_ns
        assert p100_node.cross_gpu.release_coef_ns > dgx1.cross_gpu.release_coef_ns
