"""Tests for SM and host clock domains."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.clock import HostClock, SMClock
from repro.sim.engine import Engine


class TestSMClock:
    def test_reads_engine_time_in_cycles(self):
        eng = Engine()
        clk = SMClock(eng, freq_mhz=1000.0)  # 1 cycle per ns
        eng.now = 125.0
        assert clk.read() == 125.0

    def test_quantization_floors(self):
        eng = Engine()
        clk = SMClock(eng, freq_mhz=1312.0)
        eng.now = 10.0  # 13.12 cycles
        assert clk.read() == 13.0

    def test_unquantized_read(self):
        eng = Engine()
        clk = SMClock(eng, freq_mhz=1312.0, quantize=False)
        eng.now = 10.0
        assert clk.read() == pytest.approx(13.12)

    def test_cycle_ns_roundtrip(self):
        clk = SMClock(Engine(), freq_mhz=1189.0)
        assert clk.ns(clk.cycles(777.0)) == pytest.approx(777.0)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            SMClock(Engine(), freq_mhz=0.0)

    def test_v100_p100_frequency_domains_differ(self, v100, p100):
        eng = Engine()
        cv = SMClock(eng, v100.freq_mhz)
        cp = SMClock(eng, p100.freq_mhz)
        eng.now = 1000.0
        assert cv.read() > cp.read()  # V100 runs at 1312 vs 1189 MHz


class TestHostClock:
    def test_zero_jitter_is_exact(self):
        eng = Engine()
        clk = HostClock(eng, jitter_ns=0.0)
        eng.now = 555.0
        assert clk.read() == 555.0

    def test_jitter_is_reproducible_for_same_seed(self):
        e1, e2 = Engine(), Engine()
        c1 = HostClock(e1, jitter_ns=100.0, seed=7)
        c2 = HostClock(e2, jitter_ns=100.0, seed=7)
        e1.now = e2.now = 100.0
        assert c1.read() == c2.read()

    def test_different_seeds_differ(self):
        eng = Engine()
        c1 = HostClock(eng, jitter_ns=100.0, seed=1)
        c2 = HostClock(eng, jitter_ns=100.0, seed=2)
        eng.now = 100.0
        assert c1.read() != c2.read()

    def test_jitter_magnitude_is_calibrated(self):
        eng = Engine()
        clk = HostClock(eng, jitter_ns=120.0, seed=3)
        eng.now = 0.0
        reads = np.array([clk.read() for _ in range(4000)])
        assert abs(reads.mean()) < 10.0
        assert 100.0 < reads.std() < 140.0

    def test_read_exact_ignores_jitter(self):
        eng = Engine()
        clk = HostClock(eng, jitter_ns=500.0, seed=1)
        eng.now = 42.0
        assert clk.read_exact() == 42.0

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            HostClock(Engine(), jitter_ns=-1.0)
