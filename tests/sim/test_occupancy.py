"""Tests for the CUDA occupancy calculator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.arch import P100, V100
from repro.sim.occupancy import (
    active_warps_per_sm,
    blocks_per_sm,
    max_cooperative_blocks,
)


class TestBlocksPerSM:
    def test_small_blocks_limited_by_block_count(self, spec):
        occ = blocks_per_sm(spec, 32)
        assert occ.blocks_per_sm == spec.max_blocks_per_sm
        assert occ.limiting_factor == "blocks"

    def test_1024_thread_blocks_limited_by_threads(self, spec):
        occ = blocks_per_sm(spec, 1024)
        assert occ.blocks_per_sm == 2  # 2048 threads/SM limit
        assert occ.active_warps == 64

    def test_warps_never_exceed_limit(self, spec):
        for t in (32, 64, 96, 128, 256, 512, 777, 1024):
            occ = blocks_per_sm(spec, t)
            assert occ.active_warps <= spec.max_warps_per_sm
            assert occ.blocks_per_sm * t <= spec.max_threads_per_sm or (
                occ.warps_per_block * 32 > t  # rounding up partial warps
            )

    def test_shared_memory_limits(self, v100):
        occ = blocks_per_sm(v100, 128, shared_mem_per_block=48 * 1024)
        assert occ.limiting_factor == "shared_mem"
        assert occ.blocks_per_sm == 2

    def test_partial_warp_rounds_up(self, spec):
        occ = blocks_per_sm(spec, 33)
        assert occ.warps_per_block == 2

    def test_zero_threads_rejected(self, spec):
        with pytest.raises(ValueError):
            blocks_per_sm(spec, 0)

    def test_oversized_block_rejected(self, spec):
        with pytest.raises(ValueError, match="exceeds"):
            blocks_per_sm(spec, 2048)

    def test_oversized_shared_rejected(self, spec):
        with pytest.raises(ValueError, match="shared"):
            blocks_per_sm(spec, 32, shared_mem_per_block=10**9)

    @given(st.integers(min_value=1, max_value=1024))
    @settings(max_examples=80, deadline=None)
    def test_invariants_hold_for_any_block_size(self, threads):
        for spec in (V100, P100):
            occ = blocks_per_sm(spec, threads)
            assert occ.blocks_per_sm >= 1
            assert occ.active_warps <= spec.max_warps_per_sm
            assert occ.blocks_per_sm <= spec.max_blocks_per_sm
            assert occ.active_threads <= spec.max_threads_per_sm + 31  # warp rounding


class TestCooperativeLimit:
    def test_limit_is_occupancy_times_sms(self, spec):
        assert max_cooperative_blocks(spec, 1024) == 2 * spec.sm_count

    def test_fig5_blank_cells_rejected(self, spec):
        # (4 blocks/SM, 1024 threads) exceeds 2048 threads/SM: blank in Fig 5.
        assert max_cooperative_blocks(spec, 1024) < 4 * spec.sm_count

    def test_fig5_populated_cells_accepted(self, spec):
        # Every populated Fig 5 cell satisfies blocks*threads <= 2048.
        from repro.experiments.paper_data import FIG5_GRID_SYNC_US

        for (b, t) in FIG5_GRID_SYNC_US[spec.name]:
            assert b * spec.sm_count <= max_cooperative_blocks(spec, t)


class TestActiveWarps:
    def test_clamped_at_residency(self, spec):
        assert active_warps_per_sm(spec, 1024, resident_blocks=10) == 64

    def test_below_residency_counts_all(self, spec):
        assert active_warps_per_sm(spec, 256, resident_blocks=2) == 16
