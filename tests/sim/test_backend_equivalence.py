"""Analytic-vs-engine equivalence: the backend correctness contract.

The analytic backend promises *bit-identical* results on every workload
it declares itself eligible for — same ``total_ns``, same per-member
per-round release trace, same observable side effects (advanced clock,
counter ops, poll detections, released rounds).  These property tests
drive random uniform workloads across every scope type, strategy and
topology and compare float-for-float, with the event-precise engine as
the oracle.

Ineligible workloads must fall back to the engine: silently under
``auto``, with a single per-(scope, reason) warning under ``analytic``.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scenario import Scenario
from repro.sim.arch import get_gpu_spec
from repro.sim.backends import (
    BACKEND_CHOICES,
    BACKENDS,
    get_backend,
    reset_fallback_warnings,
)
from repro.sim.engine import Engine
from repro.sync.groups import (
    BlockGroup,
    GridGroup,
    HostBarrierGroup,
    MultiGridGroup,
    WarpGroup,
)
from repro.sync.strategies import CooperativeBarrier

V100 = get_gpu_spec("v100")
P100 = get_gpu_spec("p100")
SPECS = {"V100": V100, "P100": P100}


@pytest.fixture(scope="module")
def nodes():
    return {
        "DGX1": Scenario(node="DGX1").build_node(),
        "P100x2": Scenario(node="P100x2").build_node(),
    }


def assert_identical(make_group, n_syncs, members=None):
    """Run the same workload on both backends; everything must match."""
    g_eng = make_group()
    r_eng = g_eng.run_rounds(n_syncs, members=members, backend="engine")
    g_ana = make_group()
    reason = BACKENDS["analytic"].ineligible_reason(
        g_ana, n_syncs, tuple(members) if members is not None else tuple(range(g_ana.size))
    )
    assert reason is None, f"expected eligible, got: {reason}"
    r_ana = g_ana.run_rounds(n_syncs, members=members, backend="analytic")

    assert r_ana.total_ns == r_eng.total_ns  # bit-identical, no tolerance
    assert r_ana.release_ns == r_eng.release_ns
    assert r_ana.members == r_eng.members
    # Observable side effects downstream code reads.
    assert g_ana.engine.now == g_eng.engine.now
    assert g_ana.strategy.rounds_released == g_eng.strategy.rounds_released
    cp_e = getattr(g_eng.strategy, "_counter_port", None)
    cp_a = getattr(g_ana.strategy, "_counter_port", None)
    if cp_e is not None:
        assert cp_a.ops == cp_e.ops
    ch_e = getattr(g_eng.strategy, "channel", None)
    if ch_e is not None:
        assert g_ana.strategy.channel.detections == ch_e.detections
    for r in range(n_syncs):
        rnd_e, rnd_a = g_eng.round_state(r), g_ana.round_state(r)
        assert rnd_a.count == rnd_e.count
        assert rnd_a.release.fired and rnd_e.release.fired
    return r_ana


class TestGridEquivalence:
    """Fig 5 cells: the vectorized port-chain closed form."""

    @given(
        gpu=st.sampled_from(["V100", "P100"]),
        b=st.integers(min_value=1, max_value=8),
        t=st.sampled_from([32, 64, 128, 256]),
        n_syncs=st.integers(min_value=1, max_value=4),
        strategy=st.sampled_from(["cooperative", "atomic", "cpu"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_grid_bit_identical(self, gpu, b, t, n_syncs, strategy):
        spec = SPECS[gpu]
        from repro.sim.occupancy import blocks_per_sm

        if b > blocks_per_sm(spec, t).blocks_per_sm:
            return  # not co-resident: illegal cell
        assert_identical(
            lambda: GridGroup(spec, b, t, strategy=strategy), n_syncs
        )

    @given(
        t=st.sampled_from([32, 128]),
        util=st.floats(min_value=0.0, max_value=0.75),
        n_syncs=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_grid_atomic_contention_knobs(self, t, util, n_syncs):
        knobs = {"workload_util": util, "poll_ns": 150.0}
        assert_identical(
            lambda: GridGroup(
                V100, 2, t, strategy="atomic", strategy_knobs=knobs
            ),
            n_syncs,
        )

    def test_grid_full_heatmap_cell_32x32(self):
        # The heaviest published Fig 5 cell: 2560 blocks.
        run = assert_identical(lambda: GridGroup(V100, 32, 32), 1)
        assert len(run.release_ns) == 2560


class TestFlatScopeEquivalence:
    """Warp / block / host barriers: the scalar uniform recurrence."""

    @given(
        size=st.integers(min_value=1, max_value=32),
        kind=st.sampled_from(["tile", "coalesced"]),
        gpu=st.sampled_from(["V100", "P100"]),
        n_syncs=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_warp(self, size, kind, gpu, n_syncs):
        assert_identical(
            lambda: WarpGroup(SPECS[gpu], size, kind=kind), n_syncs
        )

    @given(
        w=st.integers(min_value=1, max_value=32),
        gpu=st.sampled_from(["V100", "P100"]),
        n_syncs=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_block(self, w, gpu, n_syncs):
        assert_identical(lambda: BlockGroup(SPECS[gpu], w), n_syncs)

    @given(
        n=st.integers(min_value=1, max_value=16),
        cost=st.floats(min_value=0.0, max_value=1e5),
        n_syncs=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_host(self, n, cost, n_syncs):
        assert_identical(lambda: HostBarrierGroup(n, cost), n_syncs)


class TestMultiGridEquivalence:
    """Figs 7/8 and the sync_methods sweep: topology-carrying release."""

    @given(
        node_name=st.sampled_from(["DGX1", "P100x2"]),
        b=st.integers(min_value=1, max_value=4),
        t=st.sampled_from([32, 128, 256]),
        n_gpus=st.integers(min_value=1, max_value=8),
        strategy=st.sampled_from(["cooperative", "atomic", "cpu"]),
        n_syncs=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_multigrid(self, nodes, node_name, b, t, n_gpus, strategy, n_syncs):
        node = nodes[node_name]
        n_gpus = min(n_gpus, node.gpu_count)
        assert_identical(
            lambda: MultiGridGroup(
                node, b, t, gpu_ids=range(n_gpus), strategy=strategy
            ),
            n_syncs,
        )

    @given(util=st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=20, deadline=None)
    def test_multigrid_atomic_under_load(self, nodes, util):
        assert_identical(
            lambda: MultiGridGroup(
                nodes["DGX1"], 1, 32, gpu_ids=range(8),
                strategy="atomic", strategy_knobs={"workload_util": util},
            ),
            2,
        )

    def test_two_hop_topology_subset(self, nodes):
        # GPUs {0, 5} are two NVLink hops apart on the DGX-1 cube-mesh:
        # the detection lag carries the hop distance.
        assert_identical(
            lambda: MultiGridGroup(
                nodes["DGX1"], 1, 32, gpu_ids=(0, 5), strategy="atomic"
            ),
            1,
        )


class TestEligibilityAndFallback:
    def test_custom_strategy_subclass_is_ineligible(self):
        class TweakedBarrier(CooperativeBarrier):
            pass

        g = WarpGroup(V100, 8, strategy=TweakedBarrier(8, 10.0))
        reason = BACKENDS["analytic"].ineligible_reason(g, 1, tuple(range(8)))
        assert reason is not None and "strategy" in reason

    def test_partial_members_are_ineligible(self):
        g = WarpGroup(V100, 8)
        reason = BACKENDS["analytic"].ineligible_reason(g, 1, (0, 1, 2))
        assert reason is not None

    def test_grid_permuted_members_are_ineligible(self):
        g = GridGroup(V100, 1, 32)
        members = tuple(reversed(range(g.total_blocks)))
        assert BACKENDS["analytic"].ineligible_reason(g, 1, members)

    def test_busy_engine_is_ineligible(self):
        eng = Engine()
        eng.process(iter([]), name="other-work")
        g = WarpGroup(V100, 8, engine=eng)
        reason = BACKENDS["analytic"].ineligible_reason(g, 1, tuple(range(8)))
        assert reason is not None and "engine" in reason

    def test_ineligible_falls_back_with_single_warning(self):
        reset_fallback_warnings()

        class TweakedBarrier(CooperativeBarrier):
            pass

        def run_once():
            g = WarpGroup(
                V100, 8, strategy=TweakedBarrier(8, 10.0), backend="analytic"
            )
            return g.run_rounds(1)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            r1 = run_once()
            r2 = run_once()  # same (scope, reason): no second warning
        fallbacks = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(fallbacks) == 1
        assert "falling back" in str(fallbacks[0].message)
        # The fallback result is the engine result.
        ref = WarpGroup(V100, 8, strategy=TweakedBarrier(8, 10.0)).run_rounds(1)
        assert r1.total_ns == ref.total_ns == r2.total_ns
        reset_fallback_warnings()

    def test_auto_falls_back_silently(self):
        reset_fallback_warnings()

        class TweakedBarrier(CooperativeBarrier):
            pass

        g = WarpGroup(V100, 8, strategy=TweakedBarrier(8, 10.0), backend="auto")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            g.run_rounds(1)
        assert not [w for w in caught if issubclass(w.category, RuntimeWarning)]

    def test_unknown_backend_name_fails_listing_choices(self):
        g = WarpGroup(V100, 8)
        with pytest.raises(ValueError, match="engine, analytic, auto"):
            g.run_rounds(1, backend="bogus")
        with pytest.raises(ValueError, match="engine, analytic, auto"):
            get_backend("bogus")

    def test_registry_names(self):
        assert set(BACKENDS) == {"engine", "analytic"}
        assert BACKEND_CHOICES == ("engine", "analytic", "auto")


class TestDriverLevelEquivalence:
    """Whole-report parity: the figures themselves, not just one scope."""

    def test_fig5_reports_identical(self):
        from repro.experiments.exp_sync import run_fig5

        eng = run_fig5(Scenario(gpus=("V100",), backend="engine"))
        ana = run_fig5(Scenario(gpus=("V100",), backend="analytic"))
        assert ana.rows == eng.rows
        assert ana.artifacts == eng.artifacts
        assert ana.notes == eng.notes
        assert eng.backend == "engine" and ana.backend == "analytic"

    def test_sync_methods_reports_identical(self):
        from repro.experiments.exp_sync import run_sync_methods

        eng = run_sync_methods(Scenario(gpus=("V100",), backend="engine"))
        ana = run_sync_methods(Scenario(gpus=("V100",), backend="auto"))
        assert ana.rows == eng.rows
        assert ana.artifacts == eng.artifacts
        assert ana.notes == eng.notes
