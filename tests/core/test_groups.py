"""Tests for the cooperative-groups API."""

from __future__ import annotations

import pytest

from repro.core.groups import (
    VALID_TILE_SIZES,
    KernelEnv,
    coalesced_threads,
    this_grid,
    this_multi_grid,
    this_thread_block,
    tiled_partition,
)
from repro.cudasim.errors import (
    CooperativeLaunchTooLarge,
    CudaError,
    InvalidConfiguration,
)
from repro.sim.node import Node


class TestKernelEnv:
    def test_traditional_env(self, spec):
        env = KernelEnv.traditional(spec, 2, 256)
        assert env.warps_per_block == 8
        assert env.warps_per_sm == 16
        assert env.total_blocks == 2 * spec.sm_count

    def test_cooperative_env_enforces_coresidency(self, spec):
        KernelEnv.cooperative(spec, 2, 1024)  # ok
        with pytest.raises(CooperativeLaunchTooLarge):
            KernelEnv.cooperative(spec, 4, 1024)

    def test_traditional_env_not_occupancy_gated(self, spec):
        # A traditional launch may oversubscribe freely.
        KernelEnv.traditional(spec, 4, 1024)

    def test_unknown_launch_kind(self, spec):
        with pytest.raises(InvalidConfiguration):
            KernelEnv(spec, 1, 32, "graph")

    def test_multi_device_requires_node(self, spec):
        with pytest.raises(InvalidConfiguration):
            KernelEnv(spec, 1, 32, "multi_device")

    def test_multi_device_constructor(self, dgx1):
        env = KernelEnv.multi_device(Node(dgx1, gpu_count=4), 1, 128)
        assert env.gpu_ids == (0, 1, 2, 3)

    def test_oversized_block_rejected(self, spec):
        with pytest.raises(InvalidConfiguration):
            KernelEnv.traditional(spec, 1, 4096)


class TestTileGroups:
    def test_valid_sizes_only(self, spec):
        env = KernelEnv.traditional(spec)
        for size in VALID_TILE_SIZES:
            tiled_partition(env, size)
        for bad in (3, 33, 64, 0):
            with pytest.raises(InvalidConfiguration, match="warp"):
                tiled_partition(env, bad)

    def test_sync_latency_from_table2(self, spec):
        env = KernelEnv.traditional(spec)
        tile = tiled_partition(env, 32)
        assert tile.sync_latency_cycles() == spec.warp_sync.tile_latency

    def test_blocking_flag_tracks_architecture(self, v100, p100):
        assert tiled_partition(KernelEnv.traditional(v100), 32).blocks_all_threads
        assert not tiled_partition(KernelEnv.traditional(p100), 32).blocks_all_threads

    def test_sync_yields_instruction(self, spec):
        tile = tiled_partition(KernelEnv.traditional(spec), 16)
        op = tile.sync()
        assert op.kind == "tile" and op.group_size == 16

    def test_shfl_down_instruction(self, spec):
        tile = tiled_partition(KernelEnv.traditional(spec), 32)
        op = tile.shfl_down(3.5, 8)
        assert op.value == 3.5 and op.delta == 8 and op.kind == "tile"


class TestCoalescedGroups:
    def test_full_vs_partial_latency_on_volta(self, v100):
        env = KernelEnv.traditional(v100)
        assert coalesced_threads(env, 32).sync_latency_cycles() == 14.0
        assert coalesced_threads(env, 16).sync_latency_cycles() == 108.0

    def test_pascal_latency_flat(self, p100):
        env = KernelEnv.traditional(p100)
        assert coalesced_threads(env, 32).sync_latency_cycles() == 1.0
        assert coalesced_threads(env, 7).sync_latency_cycles() == 1.0

    def test_size_bounds(self, spec):
        env = KernelEnv.traditional(spec)
        with pytest.raises(InvalidConfiguration):
            coalesced_threads(env, 0)
        with pytest.raises(InvalidConfiguration):
            coalesced_threads(env, 33)


class TestBlockGroup:
    def test_sync_latency_scales_with_block_width(self, spec):
        small = this_thread_block(KernelEnv.traditional(spec, 1, 64))
        big = this_thread_block(KernelEnv.traditional(spec, 1, 1024))
        assert big.sync_latency_cycles() > small.sync_latency_cycles()
        assert big.size == 1024


class TestGridGroup:
    def test_requires_cooperative_launch(self, spec):
        with pytest.raises(CudaError, match="cudaLaunchCooperativeKernel"):
            this_grid(KernelEnv.traditional(spec))

    def test_latency_matches_cost_model(self, spec):
        from repro.sim.device import grid_sync_latency_ns

        env = KernelEnv.cooperative(spec, 2, 256)
        grid = this_grid(env)
        assert grid.sync_latency_ns() == grid_sync_latency_ns(spec, 2, 256)
        assert grid.size == 2 * spec.sm_count * 256

    def test_simulated_sync_close_to_model(self, spec):
        env = KernelEnv.cooperative(spec, 1, 128)
        grid = this_grid(env)
        sim = grid.sync_simulated().latency_per_sync_ns
        assert sim == pytest.approx(grid.sync_latency_ns(), rel=0.02)

    def test_partial_sync_deadlocks(self, spec):
        from repro.sim.engine import DeadlockError

        env = KernelEnv.cooperative(spec, 1, 128)
        with pytest.raises(DeadlockError):
            this_grid(env).sync_simulated(participating_blocks=3)


class TestMultiGridGroup:
    def test_requires_multi_device_launch(self, spec):
        with pytest.raises(CudaError, match="MultiDevice"):
            this_multi_grid(KernelEnv.cooperative(spec, 1, 64))

    def test_num_grids(self, dgx1):
        env = KernelEnv.multi_device(Node(dgx1, gpu_count=4), 1, 64, gpu_ids=[0, 2])
        assert this_multi_grid(env).num_grids == 2

    def test_latency_includes_cross_phase(self, dgx1):
        node = Node(dgx1, gpu_count=8)
        one = this_multi_grid(
            KernelEnv.multi_device(node, 1, 64, gpu_ids=[0])
        ).sync_latency_ns()
        six = this_multi_grid(
            KernelEnv.multi_device(node, 1, 64, gpu_ids=range(6))
        ).sync_latency_ns()
        assert six - one > 15_000  # 2-hop penalty territory

    def test_simulated_matches_model(self, dgx1):
        env = KernelEnv.multi_device(Node(dgx1, gpu_count=2), 1, 128)
        mg = this_multi_grid(env)
        assert mg.sync_simulated().latency_per_sync_ns == pytest.approx(
            mg.sync_latency_ns(), rel=0.02
        )
