"""Tests for the synchronization advisor (Table VIII as an API)."""

from __future__ import annotations

import pytest

from repro.core.advisor import (
    advise_block,
    advise_device,
    advise_multi_gpu,
    advise_warp,
)
from repro.sim.arch import DGX1_V100, P100_PCIE_NODE


class TestWarpAdvice:
    def test_data_exchange_recommends_shuffle(self, spec):
        adv = advise_warp(spec, exchanging_data=True)
        assert "shfl" in adv.recommendation
        assert adv.estimated_cost_ns > 0

    def test_pascal_gets_fence_warning(self, p100):
        adv = advise_warp(p100)
        assert any("does not block" in c for c in adv.caveats)

    def test_volta_has_no_fence_warning(self, v100):
        adv = advise_warp(v100)
        assert not any("does not block" in c for c in adv.caveats)

    def test_pure_barrier_recommends_tile_sync(self, spec):
        adv = advise_warp(spec, exchanging_data=False)
        assert "tiled_partition" in adv.recommendation

    def test_race_warning_present_for_data_exchange(self, spec):
        adv = advise_warp(spec, exchanging_data=True)
        assert any("stale" in c for c in adv.caveats)


class TestBlockAdvice:
    def test_cost_scales_with_block_width(self, spec):
        small = advise_block(spec, 64)
        big = advise_block(spec, 1024)
        assert big.estimated_cost_ns > small.estimated_cost_ns

    def test_saturation_caveat(self, spec):
        assert any("saturates" in c for c in advise_block(spec).caveats)


class TestDeviceAdvice:
    def test_single_barrier_prefers_implicit(self, spec):
        adv = advise_device(spec, barriers_per_launch=1)
        assert "implicit" in adv.recommendation

    def test_many_barriers_prefer_persistent_kernel(self, spec):
        adv = advise_device(spec, barriers_per_launch=100)
        assert "grid.sync" in adv.recommendation

    def test_data_reuse_forces_persistent(self, spec):
        adv = advise_device(spec, barriers_per_launch=1, reuses_on_chip_state=True)
        assert "grid.sync" in adv.recommendation

    def test_deadlock_caveat_on_persistent(self, spec):
        adv = advise_device(spec, barriers_per_launch=100)
        assert any("deadlock" in c for c in adv.caveats)

    def test_high_occupancy_warning(self, spec):
        adv = advise_device(spec, blocks_per_sm=8, threads_per_block=128,
                            barriers_per_launch=100)
        assert any("blocks/SM" in c for c in adv.caveats)

    def test_invalid_barrier_count(self, spec):
        with pytest.raises(ValueError):
            advise_device(spec, barriers_per_launch=0)


class TestMultiGpuAdvice:
    def test_programmability_prefers_multigrid(self):
        adv = advise_multi_gpu(DGX1_V100, gpu_ids=range(4))
        assert "multi_grid" in adv.recommendation

    def test_pure_speed_prefers_cpu_side(self):
        adv = advise_multi_gpu(
            DGX1_V100, gpu_ids=range(8), values_programmability=False
        )
        assert "CPU-side" in adv.recommendation

    def test_two_hop_members_flagged(self):
        adv = advise_multi_gpu(DGX1_V100, gpu_ids=range(6))
        assert any("two NVLink hops" in c for c in adv.caveats)

    def test_one_hop_set_not_flagged(self):
        adv = advise_multi_gpu(DGX1_V100, gpu_ids=range(4))
        assert not any("two NVLink hops" in c for c in adv.caveats)

    def test_multi_device_launch_discouraged(self):
        adv = advise_multi_gpu(DGX1_V100, gpu_ids=range(8))
        assert any("avoid" in a for a in adv.alternatives)

    def test_pcie_node_supported(self):
        adv = advise_multi_gpu(P100_PCIE_NODE)
        assert adv.estimated_cost_us > 0

    def test_partial_sync_warning_always_present(self):
        adv = advise_multi_gpu(DGX1_V100)
        assert any("deadlock" in c for c in adv.caveats)
