"""Tests for the characterization sweeps (Table II, Figs 4/5/7/8 data)."""

from __future__ import annotations

import pytest

from repro.core.characterize import (
    block_sync_scan,
    grid_sync_heatmap,
    heatmap_cells,
    measure_shuffle_latency,
    measure_warp_sync_latency,
    measure_warp_sync_throughput_best,
    multigrid_sync_heatmap,
    table2_rows,
)
from repro.experiments.paper_data import FIG5_GRID_SYNC_US, TABLE2
from repro.sim.node import Node


class TestWarpLatencies:
    def test_tile_latency(self, spec):
        assert measure_warp_sync_latency(spec, "tile", 32) == pytest.approx(
            TABLE2[spec.name]["tile"]["latency"], abs=1.0
        )

    def test_coalesced_partial_slow_path_on_volta(self, v100):
        full = measure_warp_sync_latency(v100, "coalesced", 32)
        partial = measure_warp_sync_latency(v100, "coalesced", 16)
        assert full == pytest.approx(14.0, abs=1.0)
        assert partial == pytest.approx(108.0, abs=2.0)

    def test_tile_latency_independent_of_group_size(self, spec):
        # Paper: "the size of the group influences neither latency nor
        # throughput" for tile groups.
        lats = {measure_warp_sync_latency(spec, "tile", s) for s in (2, 8, 32)}
        assert max(lats) - min(lats) <= 1.0

    def test_shuffle_latencies(self, spec):
        assert measure_shuffle_latency(spec, "tile") == pytest.approx(
            TABLE2[spec.name]["shuffle_tile"]["latency"], abs=1.5
        )
        assert measure_shuffle_latency(spec, "coalesced") == pytest.approx(
            TABLE2[spec.name]["shuffle_coalesced"]["latency"], abs=1.5
        )


class TestSizeSweep:
    """Section V-A's exhaustive group-size study."""

    def test_tile_size_never_matters(self, spec):
        from repro.core.characterize import warp_sync_size_sweep

        tile = warp_sync_size_sweep(spec)["tile"]
        assert max(tile.values()) - min(tile.values()) <= 1.0

    def test_coalesced_size_matters_only_on_volta(self, v100, p100):
        from repro.core.characterize import warp_sync_size_sweep

        v = warp_sync_size_sweep(v100)["coalesced"]
        p = warp_sync_size_sweep(p100)["coalesced"]
        # V100: sizes 1..31 share the slow path, 32 is fast.
        partials = {s: l for s, l in v.items() if s < 32}
        assert max(partials.values()) - min(partials.values()) <= 1.0
        assert v[32] < min(partials.values()) / 5
        # P100: flat across every size.
        assert max(p.values()) - min(p.values()) <= 1.0

    def test_best_coalesced_config_is_full_warp_on_volta(self, v100):
        from repro.core.characterize import warp_sync_size_sweep

        v = warp_sync_size_sweep(v100)["coalesced"]
        assert min(v, key=v.get) == 32


class TestTable2:
    def test_all_rows_within_tolerance(self, spec):
        rows = table2_rows(spec)
        for name, vals in rows.items():
            paper = TABLE2[spec.name][name]
            assert vals["latency"] == pytest.approx(paper["latency"], rel=0.10, abs=2.0), name
            assert vals["throughput"] == pytest.approx(paper["throughput"], rel=0.05), name

    def test_throughput_best_protocol_saturates(self, spec):
        best = measure_warp_sync_throughput_best(spec, "tile")
        single = measure_warp_sync_throughput_best(spec, "tile", warp_counts=(1,))
        assert best > single


class TestFig4Scan:
    def test_scan_points_shape(self, spec):
        pts = block_sync_scan(spec, warp_counts=(1, 4, 16, 64, 256))
        assert [p.warps_per_sm for p in pts] == [1, 4, 16, 64, 256]

    def test_throughput_saturates_at_residency_limit(self, spec):
        pts = {p.warps_per_sm: p for p in block_sync_scan(spec)}
        sat = pts[spec.max_warps_per_sm].per_warp_throughput
        target = TABLE2[spec.name]["block_per_warp"]["throughput"]
        assert sat == pytest.approx(target, rel=0.05)
        # Oversubscribed points stay on the plateau.
        assert pts[1024].per_warp_throughput == pytest.approx(sat, rel=0.05)

    def test_latency_kinks_upward_past_limit(self, spec):
        pts = {p.warps_per_sm: p for p in block_sync_scan(spec)}
        assert pts[1024].latency_cycles > 4 * pts[64].latency_cycles


class TestHeatmaps:
    def test_cells_match_paper_grid(self, spec):
        assert set(heatmap_cells(spec)) == set(FIG5_GRID_SYNC_US[spec.name])

    def test_grid_heatmap_covers_all_cells(self, spec):
        hm = grid_sync_heatmap(spec)
        assert set(hm) == set(heatmap_cells(spec))
        assert all(v > 0 for v in hm.values())

    def test_multigrid_heatmap_two_gpus_slower_than_one(self, dgx1):
        node = Node(dgx1)
        one = multigrid_sync_heatmap(node, gpu_ids=range(1))
        two = multigrid_sync_heatmap(node, gpu_ids=range(2))
        assert all(two[c] > one[c] for c in one)
