"""Tests for the Section VII-A performance model (Eqs 1-5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.perfmodel import (
    WorkerConfig,
    choose_workers,
    completion_time_cycles,
    little_concurrency,
    scenario_sync_cycles,
    switching_points,
    table3_rows,
    table4_rows,
)
from repro.experiments.paper_data import TABLE3, TABLE4
from repro.sim.arch import P100, V100


class TestLittlesLaw:
    def test_eq1(self):
        assert little_concurrency(13.0, 19.6) == pytest.approx(254.8)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            little_concurrency(0.0, 1.0)
        with pytest.raises(ValueError):
            little_concurrency(1.0, -1.0)

    def test_worker_concurrency_property(self):
        w = WorkerConfig("w", throughput=19.6, latency_cycles=13.0)
        assert w.concurrency == pytest.approx(254.8)

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            WorkerConfig("bad", throughput=0.0, latency_cycles=1.0)


class TestCompletionTime:
    def test_below_concurrency_is_latency_only(self):
        w = WorkerConfig("w", 10.0, 20.0)  # C = 200
        assert completion_time_cycles(w, 100) == 20.0

    def test_above_concurrency_adds_drain(self):
        w = WorkerConfig("w", 10.0, 20.0)
        assert completion_time_cycles(w, 300) == 20.0 + 100 / 10.0

    def test_sync_cost_added(self):
        w = WorkerConfig("w", 10.0, 20.0)
        assert completion_time_cycles(w, 100, sync_cycles=5.0) == 25.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            completion_time_cycles(WorkerConfig("w", 1.0, 1.0), -1)


class TestSwitchingPoints:
    def test_table4_reproduced_from_table3_inputs(self):
        """Feeding the paper's own Table III numbers must give Table IV."""
        for arch in ("V100", "P100"):
            t3 = TABLE3[arch]
            basic = WorkerConfig(
                "thrd", t3["1_thread"]["bandwidth"], t3["1_thread"]["latency"]
            )
            more = WorkerConfig("warp", t3["1_warp"]["bandwidth"], t3["1_warp"]["latency"])
            pts = switching_points(basic, more, TABLE4[arch]["warp"]["sync_latency"])
            assert pts.n_large == pytest.approx(TABLE4[arch]["warp"]["n_large"], rel=0.03)
            assert pts.n_medium == pytest.approx(TABLE4[arch]["warp"]["n_medium"], rel=0.03)

    def test_more_must_be_faster(self):
        a = WorkerConfig("a", 10.0, 5.0)
        b = WorkerConfig("b", 5.0, 5.0)
        with pytest.raises(ValueError):
            switching_points(a, b, 10.0)

    def test_negative_sync_rejected(self):
        a = WorkerConfig("a", 1.0, 5.0)
        b = WorkerConfig("b", 10.0, 5.0)
        with pytest.raises(ValueError):
            switching_points(a, b, -1.0)

    def test_prefer_basic_below_switch(self):
        basic = WorkerConfig("basic", 0.62, 13.0)
        more = WorkerConfig("more", 19.6, 13.0)
        pts = switching_points(basic, more, 110.0)
        assert pts.prefer_basic(8)
        assert not pts.prefer_basic(10_000)

    @given(
        st.floats(0.1, 5.0),     # basic throughput
        st.floats(6.0, 300.0),   # more throughput
        st.floats(1.0, 50.0),    # latency
        st.floats(0.0, 5000.0),  # sync cost
        st.floats(0.0, 1e6),     # size
    )
    @settings(max_examples=120, deadline=None)
    def test_choose_workers_consistent_with_completion_times(
        self, thr_b, thr_m, lat, sync, n
    ):
        basic = WorkerConfig("basic", thr_b, lat)
        more = WorkerConfig("more", thr_m, lat)
        chosen = choose_workers(basic, more, sync, n)
        tb = completion_time_cycles(basic, n)
        tm = completion_time_cycles(more, n, sync)
        assert (chosen is basic) == (tb < tm)

    @given(st.floats(1.0, 100.0), st.floats(0.0, 1000.0))
    @settings(max_examples=60, deadline=None)
    def test_large_inputs_always_prefer_more_workers(self, lat, sync):
        basic = WorkerConfig("basic", 1.0, lat)
        more = WorkerConfig("more", 50.0, lat)
        pts = switching_points(basic, more, sync)
        big = max(pts.n_large, pts.n_medium, more.concurrency) * 10 + 1000
        assert choose_workers(basic, more, sync, big) is more


class TestPaperTables:
    @pytest.mark.parametrize("arch", ["V100", "P100"])
    def test_table3_measured(self, arch):
        spec = V100 if arch == "V100" else P100
        rows = table3_rows(spec)
        for label, vals in rows.items():
            paper = TABLE3[arch][label]
            assert vals["bandwidth"] == pytest.approx(paper["bandwidth"], rel=0.03)
            assert vals["concurrency"] == pytest.approx(paper["concurrency"], rel=0.03)

    @pytest.mark.parametrize("arch", ["V100", "P100"])
    def test_table4_measured(self, arch):
        spec = V100 if arch == "V100" else P100
        rows = table4_rows(spec)
        for scenario, vals in rows.items():
            paper = TABLE4[arch][scenario]
            assert vals["sync_latency"] == pytest.approx(paper["sync_latency"], rel=0.03)
            assert vals["n_large"] == pytest.approx(paper["n_large"], rel=0.03)
            assert vals["n_medium"] == pytest.approx(paper["n_medium"], rel=0.03)

    def test_scenario_sync_cycles(self, spec):
        assert scenario_sync_cycles(spec, "warp") == 5 * spec.warp_sync.shuffle_tile_latency
        with pytest.raises(ValueError):
            scenario_sync_cycles(spec, "grid")

    def test_paper_conclusions_hold(self, spec):
        """'Better to compute 32 points with a warp; no benefit to compute
        1024 points with 1024 threads' (Section VII-B)."""
        rows = table4_rows(spec)
        assert 32 * 8 > rows["warp"]["n_large"]        # 256 B > ~70 B switch
        assert 1024 * 8 < rows["block1024"]["n_large"]  # 8 KB < switch
