"""Tests for the Section VIII pitfall analyses."""

from __future__ import annotations

import pytest

from repro.core.pitfalls import (
    partial_sync_deadlock_matrix,
    shuffle_divergent_works,
    warp_sync_blocking_trace,
)
from repro.sim.arch import DGX1_V100, P100_PCIE_NODE
from repro.sim.node import Node


class TestWarpBlockingTrace:
    def test_volta_blocks_all_threads(self, v100):
        trace = warp_sync_blocking_trace(v100)
        assert trace.blocks_all_threads
        assert trace.end_spread_cycles <= 2.0

    def test_pascal_does_not_block(self, p100):
        trace = warp_sync_blocking_trace(p100)
        assert not trace.blocks_all_threads
        # End timers track start timers (parallel staircases, Fig 18 right).
        assert trace.end_spread_cycles == pytest.approx(
            trace.start_spread_cycles, rel=0.05
        )

    def test_start_staircase_is_monotone(self, spec):
        trace = warp_sync_blocking_trace(spec)
        assert trace.start_cycles == sorted(trace.start_cycles)

    def test_staircase_span_matches_fig18_scale(self, v100, p100):
        assert warp_sync_blocking_trace(v100).start_spread_cycles == pytest.approx(
            14_000, rel=0.1
        )
        assert warp_sync_blocking_trace(p100).start_spread_cycles == pytest.approx(
            9_000, rel=0.1
        )

    def test_coalesced_kind_same_story(self, v100, p100):
        assert warp_sync_blocking_trace(v100, kind="coalesced").blocks_all_threads
        assert not warp_sync_blocking_trace(p100, kind="coalesced").blocks_all_threads

    def test_trace_has_32_threads(self, spec):
        trace = warp_sync_blocking_trace(spec)
        assert len(trace.start_cycles) == len(trace.end_cycles) == 32


class TestDivergentShuffle:
    def test_volta_correct(self, v100):
        assert shuffle_divergent_works(v100)

    def test_pascal_incorrect(self, p100):
        assert not shuffle_divergent_works(p100)


class TestDeadlockMatrix:
    @pytest.fixture(scope="class")
    def v100_matrix(self):
        from repro.sim.arch import V100

        return partial_sync_deadlock_matrix(V100)

    def test_matches_paper_matrix(self, v100_matrix):
        assert v100_matrix.as_dict() == {
            "warp": False,
            "block": False,
            "grid": True,
            "multigrid_blocks": True,
            "multigrid_gpus": True,
        }

    def test_p100_matrix_identical(self, p100):
        m = partial_sync_deadlock_matrix(p100, node=Node(P100_PCIE_NODE))
        assert m.grid_partial and m.multigrid_partial_gpus
        assert not m.warp_partial and not m.block_partial

    def test_explicit_node_accepted(self, v100):
        m = partial_sync_deadlock_matrix(v100, node=Node(DGX1_V100, gpu_count=2))
        assert m.multigrid_partial_gpus
