"""Tests for the CUDA-like runtime facade."""

from __future__ import annotations

import pytest

from repro.cudasim.errors import CooperativeLaunchTooLarge, InvalidDevice
from repro.cudasim.kernel import LaunchConfig, NullKernel, WorkKernel
from repro.cudasim.runtime import CudaRuntime

CFG = LaunchConfig(1, 32)


class TestConstruction:
    def test_single_gpu(self, spec):
        rt = CudaRuntime.single_gpu(spec)
        assert rt.gpu_count == 1
        assert rt.device(0).spec is spec

    def test_for_node(self, dgx1):
        rt = CudaRuntime.for_node(dgx1, gpu_count=4)
        assert rt.gpu_count == 4

    def test_invalid_device_index(self, v100):
        rt = CudaRuntime.single_gpu(v100)
        with pytest.raises(InvalidDevice):
            rt.device(1)


class TestTraditionalLaunch:
    def test_launch_and_sync_roundtrip(self, spec):
        rt = CudaRuntime.single_gpu(spec, host_jitter_ns=0.0)

        def host():
            rec = yield from rt.launch(NullKernel(), CFG)
            yield from rt.device_synchronize()
            return rec, rt.engine.now

        rec, t_end = rt.run_host(host())
        calib = spec.launch_calib("traditional")
        assert rec.start_ns == pytest.approx(calib.api_ns + calib.dispatch_ns)
        assert t_end == pytest.approx(rec.end_ns + calib.sync_return_ns)

    def test_api_cost_charged_to_host_thread(self, v100):
        rt = CudaRuntime.single_gpu(v100)

        def host():
            t0 = rt.engine.now
            yield from rt.launch(NullKernel(), CFG)
            return rt.engine.now - t0

        assert rt.run_host(host()) == v100.launch_calib("traditional").api_ns

    def test_sync_without_pending_work_costs_return_only(self, v100):
        rt = CudaRuntime.single_gpu(v100)

        def host():
            t0 = rt.engine.now
            yield from rt.device_synchronize()
            return rt.engine.now - t0

        assert rt.run_host(host()) == pytest.approx(
            v100.launch_calib("traditional").sync_return_ns
        )

    def test_oversized_block_rejected(self, spec):
        rt = CudaRuntime.single_gpu(spec)

        def host():
            yield from rt.launch(NullKernel(), LaunchConfig(1, 2048))

        with pytest.raises(Exception):
            rt.run_host(host())


class TestCooperativeLaunch:
    def test_coresident_grid_accepted(self, spec):
        rt = CudaRuntime.single_gpu(spec)
        cfg = LaunchConfig(2 * spec.sm_count, 1024)

        def host():
            yield from rt.launch_cooperative(NullKernel("cooperative"), cfg)
            yield from rt.device_synchronize(launch_type="cooperative")

        rt.run_host(host())

    def test_oversized_grid_rejected(self, spec):
        rt = CudaRuntime.single_gpu(spec)
        cfg = LaunchConfig(3 * spec.sm_count, 1024)

        def host():
            yield from rt.launch_cooperative(NullKernel("cooperative"), cfg)

        with pytest.raises(CooperativeLaunchTooLarge):
            rt.run_host(host())

    def test_cooperative_api_cost_higher_than_traditional(self, spec):
        # Host-side occupancy validation (the Fig 15 floor mechanism).
        assert (
            spec.launch_calib("cooperative").api_ns
            > spec.launch_calib("traditional").api_ns
        )


class TestMultiDeviceLaunch:
    def test_kernels_start_together(self, dgx1):
        rt = CudaRuntime.for_node(dgx1, gpu_count=4)

        def host():
            recs = yield from rt.launch_cooperative_multi_device(
                NullKernel("multi_device"), CFG
            )
            yield from rt.synchronize_all()
            return recs

        recs = rt.run_host(host())
        assert len(recs) == 4
        assert len({r.start_ns for r in recs}) == 1

    def test_waits_for_all_prior_stream_work(self, dgx1):
        """Default-flag semantics: the multi-device kernel is an implicit
        barrier over every involved stream."""
        rt = CudaRuntime.for_node(dgx1, gpu_count=2)

        def host():
            # Pre-load device 1 with a long kernel.
            yield from rt.launch(WorkKernel(500_000.0), CFG, device=1)
            recs = yield from rt.launch_cooperative_multi_device(
                NullKernel("multi_device"), CFG
            )
            yield from rt.synchronize_all()
            return recs

        recs = rt.run_host(host())
        busy_end = rt.stream(1).records[0].end_ns
        assert all(r.start_ns >= busy_end for r in recs)

    def test_device_subset(self, dgx1):
        rt = CudaRuntime.for_node(dgx1, gpu_count=4)

        def host():
            recs = yield from rt.launch_cooperative_multi_device(
                NullKernel("multi_device"), CFG, devices=[1, 3]
            )
            yield from rt.synchronize_all()
            return recs

        assert len(rt.run_host(host())) == 2

    def test_empty_device_list_rejected(self, dgx1):
        rt = CudaRuntime.for_node(dgx1, gpu_count=2)

        def host():
            yield from rt.launch_cooperative_multi_device(
                NullKernel("multi_device"), CFG, devices=[]
            )

        with pytest.raises(InvalidDevice):
            rt.run_host(host())

    def test_oversized_grid_rejected_on_any_device(self, dgx1):
        rt = CudaRuntime.for_node(dgx1, gpu_count=2)
        cfg = LaunchConfig(3 * dgx1.gpu.sm_count, 1024)

        def host():
            yield from rt.launch_cooperative_multi_device(
                NullKernel("multi_device"), cfg
            )

        with pytest.raises(CooperativeLaunchTooLarge):
            rt.run_host(host())


class TestHostThreads:
    def test_spawn_host_runs_concurrently(self, v100):
        rt = CudaRuntime.single_gpu(v100)
        order = []

        def worker(name, delay):
            from repro.sim.engine import Timeout

            yield Timeout(delay)
            order.append(name)

        rt.spawn_host(worker("slow", 10.0), name="slow")
        rt.spawn_host(worker("fast", 1.0), name="fast")
        rt.engine.run()
        assert order == ["fast", "slow"]
