"""Tests for CUDA events."""

from __future__ import annotations

import pytest

from repro.cudasim.errors import CudaError
from repro.cudasim.events import EventApi
from repro.cudasim.kernel import LaunchConfig, WorkKernel
from repro.cudasim.runtime import CudaRuntime

CFG = LaunchConfig(1, 32)


def make(spec):
    rt = CudaRuntime.single_gpu(spec, host_jitter_ns=0.0)
    return rt, EventApi(rt)


class TestEvents:
    def test_elapsed_brackets_kernel_execution(self, v100):
        rt, ev = make(v100)

        def host():
            e0 = ev.create()
            e1 = ev.create()
            yield from ev.record(e0)
            yield from rt.launch(WorkKernel(1_000_000.0), CFG)
            yield from ev.record(e1)
            yield from ev.synchronize(e1)
            return ev.elapsed_ms(e0, e1)

        elapsed_ms = rt.run_host(host())
        # 1 ms kernel plus launch machinery, well under 1.1 ms.
        assert 1.0 <= elapsed_ms <= 1.1

    def test_record_on_idle_stream_resolves_immediately(self, v100):
        rt, ev = make(v100)

        def host():
            e = ev.create()
            yield from ev.record(e)
            yield from ev.synchronize(e)
            return e.query

        assert rt.run_host(host())

    def test_synchronize_before_record_raises(self, v100):
        rt, ev = make(v100)

        def host():
            yield from ev.synchronize(ev.create())

        with pytest.raises(CudaError, match="before record"):
            rt.run_host(host())

    def test_elapsed_requires_completion(self, v100):
        rt, ev = make(v100)
        with pytest.raises(CudaError):
            ev.elapsed_ms(ev.create(), ev.create())

    def test_query_false_until_stream_drains(self, v100):
        rt, ev = make(v100)
        state = {}

        def host():
            e = ev.create()
            yield from rt.launch(WorkKernel(100_000.0), CFG)
            yield from ev.record(e)
            state["early"] = e.query
            yield from rt.device_synchronize()
            state["late"] = e.query

        rt.run_host(host())
        assert state == {"early": False, "late": True}

    def test_back_to_back_events_measure_gap_only(self, v100):
        rt, ev = make(v100)

        def host():
            e0, e1 = ev.create(), ev.create()
            yield from rt.launch(WorkKernel(50_000.0), CFG)
            yield from ev.record(e0)
            yield from ev.record(e1)
            yield from rt.device_synchronize()
            return ev.elapsed_ms(e0, e1)

        assert rt.run_host(host()) == pytest.approx(0.0, abs=1e-6)
