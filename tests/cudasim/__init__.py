"""Test package (unique module paths for same-named test files)."""
