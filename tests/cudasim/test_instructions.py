"""Validation tests for the thread-level instruction vocabulary."""

from __future__ import annotations

import pytest

from repro.cudasim import instructions as ins


class TestValidation:
    def test_compute_rejects_negative(self):
        with pytest.raises(ValueError):
            ins.Compute(cycles=-1.0)

    def test_nanosleep_rejects_negative(self):
        with pytest.raises(ValueError):
            ins.Nanosleep(ns=-1.0)

    def test_warp_sync_kind_checked(self):
        with pytest.raises(ValueError):
            ins.WarpSync(kind="block")

    def test_warp_sync_group_size_bounds(self):
        with pytest.raises(ValueError):
            ins.WarpSync(group_size=0)
        with pytest.raises(ValueError):
            ins.WarpSync(group_size=33)

    def test_shuffle_kind_checked(self):
        with pytest.raises(ValueError):
            ins.ShuffleDown(value=1.0, delta=1, kind="warp")

    def test_shuffle_delta_nonnegative(self):
        with pytest.raises(ValueError):
            ins.ShuffleDown(value=1.0, delta=-1)

    def test_method_overhead_floor(self):
        with pytest.raises(ValueError):
            ins.MethodOverhead(cycles=-100.0)
        ins.MethodOverhead(cycles=-2.0)  # small negative fudge allowed


class TestImmutability:
    def test_instructions_are_frozen(self):
        op = ins.WarpSync(kind="tile")
        with pytest.raises(Exception):
            op.kind = "coalesced"

    def test_defaults(self):
        op = ins.WarpSync()
        assert op.kind == "tile" and op.group_size == 32 and op.mask == 0xFFFFFFFF
        sh = ins.ShuffleDown(value=2.0, delta=4)
        assert sh.kind == "tile" and sh.width == 32


class TestInstructionBase:
    def test_all_ops_are_instructions(self):
        for op in (
            ins.Compute(1.0),
            ins.FAdd(),
            ins.DAdd(),
            ins.ChainStep(),
            ins.ReadClock(),
            ins.Nanosleep(1.0),
            ins.Diverge(),
            ins.SharedLoad(0),
            ins.SharedStore(0, 1.0),
            ins.WarpSync(),
            ins.ShuffleDown(value=0.0, delta=1),
            ins.MethodOverhead(1.0),
        ):
            assert isinstance(op, ins.Instruction)
