"""Tests for memory-copy operations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cudasim.errors import CudaError, PeerAccessError
from repro.cudasim.memcpy import HOST_LINK_GBPS, MemcpyApi
from repro.cudasim.runtime import CudaRuntime
from repro.sim.arch import DGX1_V100


def make(n_gpus=2):
    rt = CudaRuntime.for_node(DGX1_V100, gpu_count=n_gpus, host_jitter_ns=0.0)
    return rt, MemcpyApi(rt)


class TestHostDevice:
    def test_h2d_roundtrip(self):
        rt, mc = make(1)
        buf = rt.device(0).alloc((256,))
        src = np.arange(256, dtype=np.float64)

        def host():
            yield from mc.to_device(buf, src)
            yield from rt.device_synchronize()
            rec, out = yield from mc.from_device(buf)
            yield from rt.device_synchronize()
            return out

        out = rt.run_host(host())
        np.testing.assert_array_equal(out, src)

    def test_h2d_size_mismatch(self):
        rt, mc = make(1)
        buf = rt.device(0).alloc((8,))

        def host():
            yield from mc.to_device(buf, np.zeros(16))

        with pytest.raises(CudaError, match="mismatch"):
            rt.run_host(host())

    def test_copy_duration_matches_link_bandwidth(self):
        rt, mc = make(1)
        buf = rt.device(0).alloc((1_000_000,))
        src = np.zeros(1_000_000)

        def host():
            rec = yield from mc.to_device(buf, src)
            yield from rt.device_synchronize()
            return rec

        rec = rt.run_host(host())
        assert rec.exec_ns == pytest.approx(8_000_000 / HOST_LINK_GBPS)

    def test_host_buffer_snapshot_semantics(self):
        """The copy captures the host array at call time, like a real
        synchronous-capture memcpy of pageable memory."""
        rt, mc = make(1)
        buf = rt.device(0).alloc((4,))
        src = np.ones(4)

        def host():
            yield from mc.to_device(buf, src)
            src[:] = 99.0  # mutate after enqueue
            yield from rt.device_synchronize()

        rt.run_host(host())
        np.testing.assert_array_equal(buf.data, np.ones(4))


class TestPeer:
    def test_peer_copy_requires_access(self):
        rt, mc = make(2)
        a = rt.device(0).alloc((8,))
        b = rt.device(1).alloc((8,))

        def host():
            yield from mc.peer(b, a)

        with pytest.raises(PeerAccessError):
            rt.run_host(host())

    def test_peer_copy_moves_data(self):
        rt, mc = make(2)
        rt.node.enable_all_peer_access()
        a = rt.device(0).alloc((8,))
        a.data[:] = 7.0
        b = rt.device(1).alloc((8,))

        def host():
            yield from mc.peer(b, a)
            yield from rt.device_synchronize(device=0)

        rt.run_host(host())
        np.testing.assert_array_equal(b.data, a.data)

    def test_peer_duration_uses_interconnect(self):
        rt, mc = make(2)
        rt.node.enable_all_peer_access()
        a = rt.device(0).alloc((100_000,))
        b = rt.device(1).alloc((100_000,))

        def host():
            rec = yield from mc.peer(b, a)
            yield from rt.device_synchronize(device=0)
            return rec

        rec = rt.run_host(host())
        expected = rt.node.interconnect.peer_transfer_ns(0, 1, 800_000)
        assert rec.exec_ns == pytest.approx(expected)

    def test_peer_size_mismatch(self):
        rt, mc = make(2)
        rt.node.enable_all_peer_access()
        a = rt.device(0).alloc((8,))
        b = rt.device(1).alloc((16,))

        def host():
            yield from mc.peer(b, a)

        with pytest.raises(CudaError, match="mismatch"):
            rt.run_host(host())
