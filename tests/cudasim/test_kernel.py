"""Tests for kernel abstractions and launch configurations."""

from __future__ import annotations

import pytest

from repro.cudasim.errors import InvalidConfiguration
from repro.cudasim.kernel import Kernel, LaunchConfig, NullKernel, SleepKernel, WorkKernel
from repro.sim.device import Device
from repro.sim.exec_thread import UnsupportedInstruction


class TestLaunchConfig:
    def test_valid_config(self):
        cfg = LaunchConfig(grid_blocks=160, threads_per_block=256)
        assert cfg.total_threads == 160 * 256
        assert cfg.warps_per_block == 8

    def test_partial_warp_rounds_up(self):
        assert LaunchConfig(1, 33).warps_per_block == 2

    def test_empty_grid_rejected(self):
        with pytest.raises(InvalidConfiguration):
            LaunchConfig(0, 32)

    def test_empty_block_rejected(self):
        with pytest.raises(InvalidConfiguration):
            LaunchConfig(1, 0)

    def test_negative_shared_rejected(self):
        with pytest.raises(InvalidConfiguration):
            LaunchConfig(1, 32, shared_mem_per_block=-1)

    def test_validate_against_spec(self, spec):
        LaunchConfig(1, spec.max_threads_per_block).validate(spec)
        with pytest.raises(InvalidConfiguration):
            LaunchConfig(1, spec.max_threads_per_block + 1).validate(spec)

    def test_validate_shared_memory(self, spec):
        with pytest.raises(InvalidConfiguration):
            LaunchConfig(1, 32, shared_mem_per_block=10**9).validate(spec)


class TestKernels:
    def test_null_kernel_duration_is_epsilon(self, spec):
        dev = Device(spec)
        k = NullKernel("traditional")
        assert k.duration_ns(dev, LaunchConfig(1, 32)) == spec.launch_calib(
            "traditional"
        ).exec_null_ns

    def test_sleep_kernel_on_volta(self, v100):
        dev = Device(v100)
        k = SleepKernel(units=10, unit_ns=1000.0)
        eps = v100.launch_calib("traditional").exec_null_ns
        assert k.duration_ns(dev, LaunchConfig(1, 32)) == eps + 10_000.0

    def test_sleep_kernel_rejected_on_pascal(self, p100):
        dev = Device(p100)
        k = SleepKernel(units=1)
        with pytest.raises(UnsupportedInstruction, match="Volta"):
            k.duration_ns(dev, LaunchConfig(1, 32))

    def test_sleep_kernel_negative_units(self):
        with pytest.raises(InvalidConfiguration):
            SleepKernel(units=-1)

    def test_work_kernel_fixed_duration(self, v100):
        dev = Device(v100)
        assert WorkKernel(1234.5).duration_ns(dev, LaunchConfig(1, 32)) == 1234.5

    def test_work_kernel_negative_duration_rejected(self):
        with pytest.raises(InvalidConfiguration):
            WorkKernel(-1.0)

    def test_body_runs_on_complete(self, v100):
        dev = Device(v100)
        hits = []
        k = WorkKernel(1.0, body=lambda d, c: hits.append((d.index, c.grid_blocks)))
        k.on_complete(dev, LaunchConfig(7, 32))
        assert hits == [(0, 7)]

    def test_base_kernel_without_duration_model_raises(self, v100):
        with pytest.raises(NotImplementedError):
            Kernel("abstract").duration_ns(Device(v100), LaunchConfig(1, 32))

    def test_duration_fn_wired(self, v100):
        k = Kernel("f", duration_fn=lambda d, c: 10.0 * c.grid_blocks)
        assert k.duration_ns(Device(v100), LaunchConfig(4, 32)) == 40.0
