"""Tests for the stream launch/dispatch pipeline model."""

from __future__ import annotations

import pytest

from repro.cudasim.kernel import LaunchConfig, WorkKernel
from repro.cudasim.stream import Stream
from repro.sim.device import Device
from repro.sim.engine import Engine

CFG = LaunchConfig(1, 32)


def make_stream(spec):
    eng = Engine()
    return eng, Stream(eng, Device(spec), index=0)


class TestPipeline:
    def test_first_kernel_pays_dispatch(self, v100):
        eng, s = make_stream(v100)
        calib = v100.launch_calib("traditional")
        rec = s.enqueue(WorkKernel(1000.0), CFG, calib, enqueue_done_ns=0.0)
        assert rec.start_ns == calib.dispatch_ns
        assert rec.end_ns == calib.dispatch_ns + 1000.0

    def test_long_kernels_hide_dispatch(self, v100):
        """Back-to-back kernels longer than the pipeline pay only the gap."""
        eng, s = make_stream(v100)
        calib = v100.launch_calib("traditional")
        long_ns = calib.dispatch_ns + 5000.0
        r1 = s.enqueue(WorkKernel(long_ns), CFG, calib, 0.0)
        r2 = s.enqueue(WorkKernel(long_ns), CFG, calib, 100.0)
        assert r2.start_ns == pytest.approx(r1.end_ns + calib.gap_ns)

    def test_short_kernels_expose_dispatch(self, v100):
        """Null kernels cost gap + (dispatch - exec) extra — the Table I
        'kernel total latency' mechanism."""
        eng, s = make_stream(v100)
        calib = v100.launch_calib("traditional")
        eps = calib.exec_null_ns
        r1 = s.enqueue(WorkKernel(eps), CFG, calib, 0.0)
        r2 = s.enqueue(WorkKernel(eps), CFG, calib, 100.0)
        gap_total = r2.start_ns - r1.end_ns
        assert gap_total == pytest.approx(calib.gap_ns + calib.dispatch_ns - eps)
        # And the steady-state per-kernel cost equals Table I's 8888 ns.
        assert r2.end_ns - r1.end_ns == pytest.approx(8888.0)

    def test_enqueue_after_idle_pays_dispatch_again(self, v100):
        eng, s = make_stream(v100)
        calib = v100.launch_calib("traditional")
        r1 = s.enqueue(WorkKernel(100.0), CFG, calib, 0.0)
        late = r1.end_ns + 50_000.0
        r2 = s.enqueue(WorkKernel(100.0), CFG, calib, late)
        assert r2.start_ns >= late + calib.dispatch_ns

    def test_start_override_for_multi_device(self, v100):
        eng, s = make_stream(v100)
        calib = v100.launch_calib("multi_device")
        own = s.earliest_start(0.0, calib, n_gpus=2)
        rec = s.enqueue(
            WorkKernel(10.0), CFG, calib, 0.0, n_gpus=2, start_override_ns=own + 500.0
        )
        assert rec.start_ns == own + 500.0

    def test_start_override_cannot_precede_constraint(self, v100):
        eng, s = make_stream(v100)
        calib = v100.launch_calib("traditional")
        with pytest.raises(ValueError):
            s.enqueue(WorkKernel(10.0), CFG, calib, 0.0, start_override_ns=1.0)

    def test_completion_fires_at_end_time(self, v100):
        eng, s = make_stream(v100)
        calib = v100.launch_calib("traditional")
        rec = s.enqueue(WorkKernel(777.0), CFG, calib, 0.0)
        assert not rec.completion.fired
        eng.run()
        assert rec.completion.fired
        assert eng.now == rec.end_ns

    def test_body_applied_at_completion(self, v100):
        eng, s = make_stream(v100)
        calib = v100.launch_calib("traditional")
        hits = []
        s.enqueue(
            WorkKernel(10.0, body=lambda d, c: hits.append(eng.now)), CFG, calib, 0.0
        )
        eng.run()
        assert hits == [eng.now]

    def test_pending_tracks_unfinished(self, v100):
        eng, s = make_stream(v100)
        calib = v100.launch_calib("traditional")
        s.enqueue(WorkKernel(10.0), CFG, calib, 0.0)
        s.enqueue(WorkKernel(10.0), CFG, calib, 0.0)
        assert len(s.pending) == 2
        eng.run()
        assert s.pending == []

    def test_records_accumulate(self, v100):
        eng, s = make_stream(v100)
        calib = v100.launch_calib("traditional")
        for _ in range(3):
            s.enqueue(WorkKernel(10.0), CFG, calib, 0.0)
        assert [r.kernel_name for r in s.records] == ["work"] * 3

    def test_multi_gpu_gap_applies(self, v100):
        eng, s = make_stream(v100)
        calib = v100.launch_calib("multi_device")
        long_ns = calib.dispatch_for(8) + 1000.0
        r1 = s.enqueue(WorkKernel(long_ns), CFG, calib, 0.0, n_gpus=8)
        r2 = s.enqueue(WorkKernel(long_ns), CFG, calib, 1.0, n_gpus=8)
        assert r2.start_ns - r1.end_ns == pytest.approx(calib.gap_for(8))
