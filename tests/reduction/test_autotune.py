"""Tests for the model-driven reduction tuner."""

from __future__ import annotations

import pytest

from repro.reduction.autotune import choose_block_width, choose_warp_or_thread, recommend
from repro.util.units import MB


class TestScenarioChoices:
    def test_tiny_inputs_prefer_single_thread(self, spec):
        assert choose_warp_or_thread(spec, 16) == "thread"

    def test_32_doubles_prefer_warp(self, spec):
        """Table IV: 'it is better to compute 32 data points with a warp'."""
        assert choose_warp_or_thread(spec, 32 * 8) == "warp"

    def test_1024_doubles_prefer_narrow_block(self, spec):
        """Table IV: 'no benefit to compute 1024 data points with 1024
        threads per block'."""
        assert choose_block_width(spec, 1024 * 8) == "block32"

    def test_large_inputs_prefer_wide_block(self, spec):
        assert choose_block_width(spec, 512 * 1024) == "block1024"

    def test_switch_point_between_architectures_differs(self, v100, p100):
        # P100's heavier block sync pushes its switch point ~3.5x higher.
        size = 16 * 1024  # between the V100 (~8.5 KB) and P100 (~33 KB) switches
        assert choose_block_width(v100, size) == "block1024"
        assert choose_block_width(p100, size) == "block32"


class TestRecommend:
    def test_scope_progression_with_size(self, spec):
        # 40 KB sits above both architectures' block1024 switch points
        # (~8.5 KB V100, ~33 KB P100) yet inside both shared memories.
        scopes = [recommend(spec, s).scope for s in (8, 300, 40 * 1024, 4 * MB)]
        assert scopes == ["thread", "warp", "block", "device"]

    def test_device_scope_prefers_implicit(self, spec):
        plan = recommend(spec, 100 * MB)
        assert plan.device_method == "implicit"
        assert "Fig 15" in plan.rationale

    def test_sub_device_scopes_have_no_device_method(self, spec):
        assert recommend(spec, 64).device_method is None

    def test_invalid_size_rejected(self, spec):
        with pytest.raises(ValueError):
            recommend(spec, 0)

    def test_plan_carries_size(self, spec):
        assert recommend(spec, 1234).size_bytes == 1234
