"""Tests for multi-GPU reductions (Fig 16)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reduction.device import make_input
from repro.reduction.multigpu import (
    reduce_cpu_barrier,
    reduce_multigrid,
    throughput_vs_gpu_count,
)
from repro.util.units import GB, MB


class TestCorrectness:
    def test_multigrid_correct_on_real_data(self, dgx1):
        data = make_input(8 * MB, seed=1)
        r = reduce_multigrid(dgx1, data, gpu_count=4)
        assert r.correct
        assert r.value == pytest.approx(float(np.asarray(data).sum()))

    def test_cpu_barrier_correct_on_real_data(self, dgx1):
        data = make_input(8 * MB, seed=2)
        r = reduce_cpu_barrier(dgx1, data, gpu_count=4)
        assert r.correct

    def test_single_gpu_degenerates_cleanly(self, dgx1):
        data = make_input(4 * MB, seed=3)
        assert reduce_multigrid(dgx1, data, gpu_count=1).correct
        assert reduce_cpu_barrier(dgx1, data, gpu_count=1).correct


class TestThroughputScaling:
    @pytest.fixture(scope="class")
    def fig16(self, ):
        from repro.sim.arch import DGX1_V100

        return throughput_vs_gpu_count(DGX1_V100, size_bytes=8 * GB)

    def test_near_linear_scaling(self, fig16):
        for series in fig16.values():
            assert series[8] > 6.5 * series[1]

    def test_single_gpu_near_table6_bandwidth(self, fig16, v100):
        assert fig16["cpu_barrier"][1] == pytest.approx(
            v100.hbm.effective_gbps("implicit"), rel=0.05
        )

    def test_cpu_barrier_slightly_ahead(self, fig16):
        """Paper: 'an implicit barrier is always slightly better than the
        multi-grid synchronization method' — though hard to notice."""
        for n in fig16["mgrid"]:
            assert fig16["cpu_barrier"][n] >= fig16["mgrid"][n] * 0.995
            assert fig16["mgrid"][n] >= fig16["cpu_barrier"][n] * 0.90

    def test_throughput_monotone_in_gpus(self, fig16):
        for series in fig16.values():
            vals = [series[n] for n in sorted(series)]
            assert vals == sorted(vals)

    def test_eight_gpu_throughput_in_paper_range(self, fig16):
        # Fig 16 tops out between ~6 and ~7.5 TB/s.
        assert 5500 < fig16["mgrid"][8] < 7500
        assert 5500 < fig16["cpu_barrier"][8] < 7500


class TestPcieNode:
    def test_two_p100_scaling(self, p100_node):
        data = make_input(2 * GB)
        one = reduce_multigrid(p100_node, data, gpu_count=1)
        two = reduce_multigrid(p100_node, data, gpu_count=2)
        assert two.throughput_gbps > 1.6 * one.throughput_gbps
