"""Tests for the warp-level reduction variants (Table V)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.paper_data import TABLE5_CYCLES
from repro.reduction.warp import (
    WARP_REDUCE_METHODS,
    table5_rows,
    warp_reduce_latency_cycles,
    warp_reduce_value,
)

CORRECT_METHODS = tuple(m for m in WARP_REDUCE_METHODS if m != "nosync")

values_strategy = st.lists(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
    min_size=32,
    max_size=32,
)


class TestSemantics:
    @pytest.mark.parametrize("method", CORRECT_METHODS)
    def test_correct_methods_sum_exactly(self, method):
        rng = np.random.default_rng(3)
        vals = rng.uniform(-5, 5, 32)
        out = warp_reduce_value(vals, method)
        assert out.correct
        assert out.value == pytest.approx(vals.sum())

    def test_nosync_is_wrong_and_flagged(self):
        rng = np.random.default_rng(4)
        vals = rng.uniform(1.0, 2.0, 32)
        out = warp_reduce_value(vals, "nosync")
        assert out.race_detected
        assert not out.correct
        assert out.value != pytest.approx(vals.sum())

    def test_nosync_reads_stale_initials(self):
        """The stale-read tree sums exactly the slots {0,16,8,4,2,1} of the
        original array — the classic missing-barrier failure."""
        vals = np.arange(32, dtype=float)
        out = warp_reduce_value(vals, "nosync")
        assert out.value == pytest.approx(sum(vals[i] for i in (0, 16, 8, 4, 2, 1)))

    def test_all_zeros_makes_nosync_accidentally_right(self):
        out = warp_reduce_value(np.zeros(32), "nosync")
        # The race exists even when the numbers happen to agree.
        assert out.race_detected

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            warp_reduce_value(np.zeros(16), "tile")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            warp_reduce_value(np.zeros(32), "magic")

    @given(values_strategy)
    @settings(max_examples=60, deadline=None)
    def test_synced_variants_agree_with_numpy_sum(self, vals):
        arr = np.array(vals)
        for method in ("tile", "volatile", "tile_shuffle"):
            out = warp_reduce_value(arr, method)
            assert np.isclose(out.value, arr.sum(), rtol=1e-9, atol=1e-9)

    @given(values_strategy)
    @settings(max_examples=40, deadline=None)
    def test_shuffle_and_shared_trees_agree(self, vals):
        arr = np.array(vals)
        a = warp_reduce_value(arr, "tile").value
        b = warp_reduce_value(arr, "coalesced_shuffle").value
        assert np.isclose(a, b, rtol=1e-9, atol=1e-9)


class TestTiming:
    @pytest.mark.parametrize("method", WARP_REDUCE_METHODS)
    def test_latency_matches_table5(self, spec, method):
        paper = TABLE5_CYCLES[spec.name][method]
        measured = warp_reduce_latency_cycles(spec, method)
        assert measured == pytest.approx(paper, rel=0.04), method

    def test_nosync_fastest(self, spec):
        lats = {m: warp_reduce_latency_cycles(spec, m) for m in WARP_REDUCE_METHODS}
        assert min(lats, key=lats.get) == "nosync"

    def test_tile_shuffle_fastest_correct_parallel_variant(self, spec):
        lats = {m: warp_reduce_latency_cycles(spec, m) for m in CORRECT_METHODS}
        parallel = {m: v for m, v in lats.items() if m != "serial"}
        assert min(parallel, key=parallel.get) == "tile_shuffle"

    def test_coalesced_shuffle_most_expensive(self, spec):
        lats = {m: warp_reduce_latency_cycles(spec, m) for m in WARP_REDUCE_METHODS}
        assert max(lats, key=lats.get) == "coalesced_shuffle"

    def test_unknown_method_rejected(self, spec):
        with pytest.raises(ValueError):
            warp_reduce_latency_cycles(spec, "magic")


class TestTable5Rows:
    def test_rows_complete_and_flagged(self, spec):
        rows = table5_rows(spec)
        assert set(rows) == set(WARP_REDUCE_METHODS)
        assert not rows["nosync"]["correct"]
        for m in CORRECT_METHODS:
            assert rows[m]["correct"], m
