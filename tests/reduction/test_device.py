"""Tests for single-GPU device-wide reductions (Figs 13-15, Table VI)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.paper_data import TABLE6_GBPS
from repro.reduction.baselines import reduce_cub, reduce_cuda_sample
from repro.reduction.device import (
    VirtualData,
    bandwidth_table,
    latency_vs_size,
    make_input,
    reduce_grid_sync,
    reduce_implicit,
)
from repro.util.units import GB, MB


class TestVirtualData:
    def test_expected_sum_matches_materialized(self):
        vd = VirtualData(n_elements=1000)
        chunk = vd.chunk(0, 1000)
        assert vd.expected_sum == pytest.approx(chunk.sum())

    @given(st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=60, deadline=None)
    def test_closed_form_for_any_size(self, n):
        vd = VirtualData(n_elements=n)
        assert vd.expected_sum == pytest.approx(vd.chunk(0, n).sum())

    def test_chunk_windows_consistent(self):
        vd = VirtualData(n_elements=500)
        full = vd.chunk(0, 500)
        part = np.concatenate([vd.chunk(0, 200), vd.chunk(200, 300)])
        np.testing.assert_array_equal(full, part)

    def test_nbytes(self):
        assert VirtualData(n_elements=100).nbytes == 800

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VirtualData(n_elements=0)


class TestMakeInput:
    def test_small_sizes_materialize(self):
        data = make_input(1 * MB)
        assert isinstance(data, np.ndarray)

    def test_large_sizes_virtual(self):
        data = make_input(1 * GB)
        assert isinstance(data, VirtualData)

    def test_seed_reproducible(self):
        a, b = make_input(1024, seed=1), make_input(1024, seed=1)
        np.testing.assert_array_equal(a, b)


class TestImplicitReduction:
    def test_correct_on_real_data(self, spec):
        data = make_input(4 * MB, seed=2)
        r = reduce_implicit(spec, data)
        assert r.correct
        assert r.value == pytest.approx(float(np.asarray(data).sum()))

    def test_correct_on_virtual_data(self, spec):
        r = reduce_implicit(spec, VirtualData(n_elements=10**8))
        assert r.correct

    def test_bandwidth_approaches_calibrated_at_large_sizes(self, spec):
        r = reduce_implicit(spec, make_input(4 * GB))
        assert r.bandwidth_gbps == pytest.approx(
            spec.hbm.effective_gbps("implicit"), rel=0.02
        )

    def test_latency_floor_at_tiny_sizes(self, spec):
        r = reduce_implicit(spec, make_input(1024))
        # Two launches and a sync: floor in the tens of microseconds.
        assert 10.0 < r.latency_us < 30.0

    @given(st.integers(min_value=8, max_value=100_000))
    @settings(max_examples=20, deadline=None)
    def test_correct_for_any_small_size(self, nbytes):
        from repro.sim.arch import P100, V100

        for spec in (V100, P100):
            r = reduce_implicit(spec, make_input(nbytes, seed=nbytes))
            assert r.correct


class TestGridSyncReduction:
    def test_correct(self, spec):
        data = make_input(4 * MB, seed=5)
        r = reduce_grid_sync(spec, data)
        assert r.correct

    def test_rejects_non_coresident_config(self, spec):
        with pytest.raises(ValueError):
            reduce_grid_sync(spec, make_input(1 * MB), threads_per_block=1024,
                             blocks_per_sm=4)

    def test_implicit_beats_grid_at_all_sizes(self, spec):
        """Fig 15's headline: implicit always outperforms grid sync."""
        for size in (int(0.1 * MB), 10 * MB, 1 * GB):
            data = make_input(size)
            impl = reduce_implicit(spec, data)
            grid = reduce_grid_sync(spec, data)
            assert impl.total_ns <= grid.total_ns * 1.005, size

    def test_gap_is_not_decisive(self, spec):
        """...but 'the performance difference is not so decisive'."""
        data = make_input(1 * GB)
        impl = reduce_implicit(spec, data)
        grid = reduce_grid_sync(spec, data)
        assert grid.total_ns < impl.total_ns * 1.10


class TestBaselines:
    def test_cub_correct(self, spec):
        r = reduce_cub(spec, make_input(2 * MB, seed=7))
        assert r.correct and r.method == "cub"

    def test_sample_correct(self, spec):
        r = reduce_cuda_sample(spec, make_input(2 * MB, seed=8))
        assert r.correct and r.method == "cuda_sample"

    def test_cub_pascal_bandwidth_deficit(self, p100, v100):
        data = make_input(1 * GB)
        for spec, lo, hi in ((p100, 0.89, 0.95), (v100, 0.96, 1.0)):
            cub = reduce_cub(spec, data)
            impl = reduce_implicit(spec, data)
            ratio = cub.bandwidth_gbps / impl.bandwidth_gbps
            assert lo < ratio < hi


class TestTableVI:
    def test_bandwidths_match_paper(self, spec):
        rows = bandwidth_table(spec)
        for method, measured in rows.items():
            paper = TABLE6_GBPS[spec.name][method]
            assert measured == pytest.approx(paper, rel=0.03), method

    def test_ordering_matches_paper(self, spec):
        rows = bandwidth_table(spec)
        assert rows["implicit"] >= rows["grid"] >= rows["cub"]
        assert rows["implicit"] < rows["theory"]


class TestFig15Sweep:
    def test_latency_monotone_in_size(self, v100):
        res = latency_vs_size(v100, methods=("implicit",), sizes=(MB, 16 * MB, GB))
        lats = [r.total_ns for r in res["implicit"]]
        assert lats == sorted(lats)

    def test_all_methods_all_sizes_correct(self, v100):
        res = latency_vs_size(v100, sizes=(MB, 64 * MB))
        assert all(r.correct for series in res.values() for r in series)
