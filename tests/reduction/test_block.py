"""Tests for the block-level reduction (Fig 12)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reduction.block import block_reduce_cycles, block_reduce_value


class TestFunctional:
    def test_exact_sum_small(self):
        vals = np.arange(100, dtype=float)
        assert block_reduce_value(vals, threads=64) == pytest.approx(vals.sum())

    def test_exact_sum_fewer_elements_than_threads(self):
        vals = np.array([1.0, 2.0, 3.0])
        assert block_reduce_value(vals, threads=1024) == pytest.approx(6.0)

    def test_minimum_one_warp(self):
        with pytest.raises(ValueError):
            block_reduce_value(np.ones(4), threads=16)

    @given(
        st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=400),
        st.sampled_from([32, 128, 256, 1024]),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy_for_any_input(self, vals, threads):
        arr = np.array(vals)
        assert np.isclose(
            block_reduce_value(arr, threads=threads), arr.sum(), rtol=1e-9, atol=1e-6
        )


class TestCostModel:
    def test_cost_components_positive(self, spec):
        cost = block_reduce_cycles(spec, 2048, threads=1024)
        assert cost.stride_cycles > 0
        assert cost.sync_cycles > 0
        assert cost.warp_phase_cycles > 0
        assert cost.total_cycles == pytest.approx(
            cost.stride_cycles + cost.sync_cycles + cost.warp_phase_cycles
        )

    def test_cost_grows_with_elements(self, spec):
        small = block_reduce_cycles(spec, 1024, 1024).total_cycles
        large = block_reduce_cycles(spec, 64 * 1024, 1024).total_cycles
        assert large > small

    def test_port_bound_at_large_sizes(self, spec):
        n = 1_000_000
        cost = block_reduce_cycles(spec, n, 1024)
        port_cycles = n * 8 / spec.shared_mem.sm_cap_bytes_per_cycle
        assert cost.stride_cycles == pytest.approx(port_cycles, rel=0.01)

    def test_sync_term_uses_block_width(self, spec):
        narrow = block_reduce_cycles(spec, 4096, threads=64)
        wide = block_reduce_cycles(spec, 4096, threads=1024)
        assert wide.sync_cycles > narrow.sync_cycles

    def test_invalid_arguments(self, spec):
        with pytest.raises(ValueError):
            block_reduce_cycles(spec, 0)
        with pytest.raises(ValueError):
            block_reduce_cycles(spec, 100, threads=16)
        with pytest.raises(ValueError):
            block_reduce_cycles(spec, 100, threads=2048)
