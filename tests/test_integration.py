"""End-to-end integration scenarios across the whole stack.

Each test is a miniature application: host threads choreographing kernels,
events, copies and barriers on the simulated machines — the way a real
user of the library composes the pieces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cudasim import (
    CudaRuntime,
    EventApi,
    LaunchConfig,
    MemcpyApi,
    NullKernel,
    WorkKernel,
)
from repro.host.openmp import OmpTeam
from repro.sim.arch import DGX1_V100, V100


class TestEventTimedReduction:
    """Time a reduction with CUDA events instead of the host clock."""

    def test_event_timing_matches_host_timing(self):
        from repro.reduction.device import _partials, make_input

        rt = CudaRuntime.single_gpu(V100, host_jitter_ns=0.0)
        ev = EventApi(rt)
        data = make_input(8 * 1024 * 1024, seed=9)
        n_blocks = 160
        dev = rt.device(0)
        eps = V100.launch_calib("traditional").exec_null_ns
        k1 = WorkKernel(eps + dev.hbm.transfer_ns(data.nbytes), name="sum")
        k2 = WorkKernel(eps + 1000.0, name="final")
        cfg = LaunchConfig(n_blocks, 256)

        def host():
            yield from rt.launch(NullKernel(), LaunchConfig(1, 32))
            yield from rt.device_synchronize()
            e0, e1 = ev.create(), ev.create()
            yield from ev.record(e0)
            yield from rt.launch(k1, cfg)
            yield from rt.launch(k2, LaunchConfig(1, 1024))
            yield from ev.record(e1)
            yield from rt.device_synchronize()
            return ev.elapsed_ms(e0, e1)

        elapsed_ms = rt.run_host(host())
        # Device-side window excludes api/sync costs but includes both
        # kernels and the inter-kernel machinery: ~bandwidth time + ~10 us.
        bw_ms = dev.hbm.transfer_ns(data.nbytes) / 1e6
        assert bw_ms < elapsed_ms < bw_ms + 0.05


class TestMultiGpuGatherWithCopies:
    """Fig 14's gather loop, driven through the real MemcpyApi."""

    def test_four_gpu_tree_gather(self):
        n = 4
        rt = CudaRuntime.for_node(DGX1_V100, gpu_count=n, host_jitter_ns=0.0)
        rt.node.enable_all_peer_access()
        mc = MemcpyApi(rt)
        team = OmpTeam(rt, n_threads=n)

        rng = np.random.default_rng(4)
        shards = [rng.uniform(size=64) for _ in range(n)]
        partial_bufs = [rt.device(i).alloc((1,), name=f"p{i}") for i in range(n)]
        scratch = [rt.device(i).alloc((1,), name=f"s{i}") for i in range(n)]

        def worker(tid):
            # Local sum lands in partial_bufs[tid] at kernel completion.
            def body(device, config, tid=tid):
                partial_bufs[tid].data[0] = shards[tid].sum()

            k = WorkKernel(5000.0, name=f"sum{tid}", body=body)
            yield from rt.launch(k, LaunchConfig(2, 128), device=tid)
            yield from rt.device_synchronize(device=tid)
            yield from team.barrier(tid)

            # Gather step 1: 2,3 -> 0,1 ; step 2: 1 -> 0.
            active = n
            while active > 1:
                half = active // 2
                if half <= tid < active:
                    yield from mc.peer(scratch[tid - half], partial_bufs[tid])
                yield from rt.device_synchronize(device=tid)
                yield from team.barrier(tid)
                if tid < half:
                    partial_bufs[tid].data[0] += scratch[tid].data[0]
                yield from team.barrier(tid)
                active = half

        team.run(worker)
        expected = sum(s.sum() for s in shards)
        assert partial_bufs[0].data[0] == pytest.approx(expected)


class TestAdvisorDrivenWorkflow:
    """Use the advisor to pick a mechanism, then execute its suggestion."""

    def test_device_advice_is_executable(self):
        from repro.core import KernelEnv, advise_device, this_grid

        adv = advise_device(V100, blocks_per_sm=2, threads_per_block=256,
                            barriers_per_launch=50)
        assert "grid.sync" in adv.recommendation
        env = KernelEnv.cooperative(V100, 2, 256)
        sim = this_grid(env).sync_simulated(n_syncs=3)
        # The advisor's per-barrier estimate matches the simulated barrier.
        assert sim.latency_per_sync_ns * 50 == pytest.approx(
            adv.estimated_cost_ns, rel=0.10
        )

    def test_multi_gpu_advice_matches_simulation(self):
        from repro.core import advise_multi_gpu
        from repro.sim.node import Node
        from repro.sync import MultiGridGroup

        adv = advise_multi_gpu(DGX1_V100, gpu_ids=range(6), blocks_per_sm=1,
                               threads_per_block=256)
        sim = MultiGridGroup(Node(DGX1_V100), 1, 256, gpu_ids=range(6)).simulate()
        assert adv.estimated_cost_ns == pytest.approx(sim.latency_per_sync_ns, rel=0.02)


class TestMethodologyConsistency:
    """The three timing methods agree where their domains overlap."""

    def test_wong_and_inter_sm_agree_on_chain(self, spec):
        from repro.microbench import (
            measure_instruction_latency_inter_sm,
            measure_instruction_latency_wong,
        )

        wong = measure_instruction_latency_wong(spec, "chain")
        inter = measure_instruction_latency_inter_sm(spec, "chain", r1=4096, r2=512)
        assert inter.latency_cycles(spec.freq_mhz) == pytest.approx(wong, rel=0.10)

    def test_cost_model_and_des_agree_on_grid_sync(self, spec):
        from repro.sim.device import grid_sync_latency_ns
        from repro.sync import GridGroup

        for b, t in ((1, 64), (4, 128)):
            group = GridGroup(spec, b, t)
            assert group.simulate().latency_per_sync_ns == pytest.approx(
                group.latency_model(), rel=0.02
            )
            assert group.latency_model() == grid_sync_latency_ns(spec, b, t)

    def test_reduction_autotuner_consistent_with_measured_crossover(self, v100):
        """The Eq 5 switching point really is where measured times cross."""
        from repro.core.perfmodel import WorkerConfig, completion_time_cycles, switching_points
        from repro.microbench import measure_shared_bandwidth

        b = measure_shared_bandwidth(v100, 1)
        m = measure_shared_bandwidth(v100, 32)
        basic = WorkerConfig("t", b.bandwidth_bytes_per_cycle, b.chain_latency_cycles)
        more = WorkerConfig("w", m.bandwidth_bytes_per_cycle, m.chain_latency_cycles)
        pts = switching_points(basic, more, 110.0)
        n = pts.n_large
        below = completion_time_cycles(basic, n * 0.8) < completion_time_cycles(
            more, n * 0.8, 110.0
        )
        above = completion_time_cycles(basic, n * 1.3) > completion_time_cycles(
            more, n * 1.3, 110.0
        )
        assert below and above
