"""Tests for units and RNG utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import derive_seed, make_rng
from repro.util.units import (
    GB,
    KB,
    MB,
    cycles_to_ns,
    ns_to_cycles,
    ns_to_s,
    ns_to_us,
    s_to_ns,
    us_to_ns,
)


class TestUnits:
    def test_byte_constants(self):
        assert KB == 1024 and MB == 1024**2 and GB == 1024**3

    def test_us_roundtrip(self):
        assert ns_to_us(us_to_ns(3.7)) == pytest.approx(3.7)

    def test_s_roundtrip(self):
        assert ns_to_s(s_to_ns(0.25)) == pytest.approx(0.25)

    @given(st.floats(0.0, 1e9), st.floats(1.0, 5000.0))
    @settings(max_examples=60, deadline=None)
    def test_cycle_roundtrip_any_frequency(self, cycles, freq):
        assert ns_to_cycles(cycles_to_ns(cycles, freq), freq) == pytest.approx(
            cycles, rel=1e-9, abs=1e-6
        )

    def test_known_conversion(self):
        # 1312 MHz: one cycle is ~0.762 ns.
        assert cycles_to_ns(1.0, 1312.0) == pytest.approx(0.7622, rel=1e-3)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            cycles_to_ns(1.0, 0.0)
        with pytest.raises(ValueError):
            ns_to_cycles(1.0, -5.0)


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_derive_seed_distinguishes_tags(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_derive_seed_distinguishes_roots(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_make_rng_reproducible(self):
        a = make_rng(7, "x").normal(size=5)
        b = make_rng(7, "x").normal(size=5)
        assert (a == b).all()

    def test_seed_fits_63_bits(self):
        for tag in ("a", "bb", "ccc"):
            assert 0 <= derive_seed(123, tag) < 2**63
