"""Host-side substrate: OpenMP-style thread teams for multi-GPU control."""

from repro.host.openmp import OmpTeam

__all__ = ["OmpTeam"]
