"""OpenMP-style host thread team (the Fig 6 multi-GPU pattern).

The paper's CPU-side multi-GPU barrier uses one OpenMP thread per device::

    #pragma omp parallel num_threads(GPU_count)
    { cudaSetDevice(omp_get_thread_num()); ...
      kernel<<<...>>>(); cudaDeviceSynchronize();
      #pragma omp barrier ... }

:class:`OmpTeam` reproduces this: each member is a host process on the
runtime's engine, and ``barrier()`` is the CPU-side barrier scope of the
unified sync API (:class:`repro.sync.HostBarrierGroup` with its
:class:`~repro.sync.strategies.CpuBarrier` strategy) — a rendezvous whose
cost follows the node's calibrated OpenMP-barrier model (flat-ish in GPU
count — the reason the CPU-side series in Fig 9 is nearly horizontal).
Threads are treated as pinned (the paper pins them; we model no
migration penalty).
"""

from __future__ import annotations

from typing import Callable, Generator, List

from repro.cudasim.runtime import CudaRuntime
from repro.sync import HostBarrierGroup

__all__ = ["OmpTeam"]


class OmpTeam:
    """A fixed-size team of host threads with an OpenMP-style barrier."""

    def __init__(self, rt: CudaRuntime, n_threads: int):
        self.rt = rt
        self.n_threads = n_threads
        self._group = HostBarrierGroup(
            n_threads,
            rt.node.spec.omp_barrier_ns(n_threads),
            engine=rt.engine,
        )
        self.barrier_cost_ns = self._group.cost_ns

    @property
    def group(self) -> HostBarrierGroup:
        """The underlying CPU-side barrier scope (``repro.sync``)."""
        return self._group

    @property
    def barriers_passed(self) -> int:
        return self._group.rounds_released

    def barrier(self, tid: int) -> Generator:
        """``#pragma omp barrier`` for thread ``tid`` (one rendezvous round).

        Threads must call barriers the same number of times — mismatched
        calls deadlock, as in real OpenMP.
        """
        yield from self._group.barrier(tid)

    def run(self, worker: Callable[[int], Generator]) -> List:
        """Run ``worker(tid)`` on every team thread; returns their results."""
        procs = [
            self.rt.engine.process(worker(tid), name=f"omp{tid}")
            for tid in range(self.n_threads)
        ]
        self.rt.engine.run()
        return [p.result for p in procs]
