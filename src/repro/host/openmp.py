"""OpenMP-style host thread team (the Fig 6 multi-GPU pattern).

The paper's CPU-side multi-GPU barrier uses one OpenMP thread per device::

    #pragma omp parallel num_threads(GPU_count)
    { cudaSetDevice(omp_get_thread_num()); ...
      kernel<<<...>>>(); cudaDeviceSynchronize();
      #pragma omp barrier ... }

:class:`OmpTeam` reproduces this: each member is a host process on the
runtime's engine, ``barrier()`` is a rendezvous whose cost follows the
node's calibrated OpenMP-barrier model (flat-ish in GPU count — the reason
the CPU-side series in Fig 9 is nearly horizontal).  Threads are treated as
pinned (the paper pins them; we model no migration penalty).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List

from repro.cudasim.runtime import CudaRuntime
from repro.sim.engine import Signal, Timeout

__all__ = ["OmpTeam"]


class OmpTeam:
    """A fixed-size team of host threads with an OpenMP-style barrier."""

    def __init__(self, rt: CudaRuntime, n_threads: int):
        if n_threads < 1:
            raise ValueError("team needs at least one thread")
        self.rt = rt
        self.n_threads = n_threads
        self.barrier_cost_ns = rt.node.spec.omp_barrier_ns(n_threads)
        self._rounds: Dict[int, dict] = {}
        self._counters: Dict[int, int] = {}
        self.barriers_passed = 0

    def _round(self, idx: int) -> dict:
        rnd = self._rounds.get(idx)
        if rnd is None:
            rnd = {
                "arrived": 0,
                "release": Signal(self.rt.engine, name=f"omp-barrier-{idx}"),
            }
            self._rounds[idx] = rnd
        return rnd

    def barrier(self, tid: int) -> Generator:
        """``#pragma omp barrier`` for thread ``tid`` (one rendezvous round).

        Threads must call barriers the same number of times — mismatched
        calls deadlock, as in real OpenMP.
        """
        if not (0 <= tid < self.n_threads):
            raise ValueError(f"tid {tid} out of range [0,{self.n_threads})")
        idx = self._counters.get(tid, 0)
        self._counters[tid] = idx + 1
        rnd = self._round(idx)
        rnd["arrived"] += 1
        if rnd["arrived"] == self.n_threads:
            self.rt.engine.schedule_fire(self.barrier_cost_ns, rnd["release"])
            self.barriers_passed += 1
        yield rnd["release"]

    def run(self, worker: Callable[[int], Generator]) -> List:
        """Run ``worker(tid)`` on every team thread; returns their results."""
        procs = [
            self.rt.engine.process(worker(tid), name=f"omp{tid}")
            for tid in range(self.n_threads)
        ]
        self.rt.engine.run()
        return [p.result for p in procs]
