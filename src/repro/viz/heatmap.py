"""ASCII heat-maps in the layout of the paper's Figures 5/7/8."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

__all__ = ["render_heatmap", "render_heatmap_pair"]

_DEFAULT_BLOCKS = (1, 2, 4, 8, 16, 32)
_DEFAULT_THREADS = (32, 64, 128, 256, 512, 1024)


def render_heatmap(
    cells: Dict[Tuple[int, int], float],
    title: str = "",
    blocks: Sequence[int] = _DEFAULT_BLOCKS,
    threads: Sequence[int] = _DEFAULT_THREADS,
    width: int = 7,
) -> str:
    """Render ``{(blocks/SM, threads/block): value}`` like the paper's
    tables: rows = blocks/SM, columns = threads/block, blanks where the
    configuration cannot co-reside."""
    out = []
    if title:
        out.append(title)
    header = "b\\t".rjust(5) + "".join(str(t).rjust(width) for t in threads)
    out.append(header)
    for b in blocks:
        row = [str(b).rjust(5)]
        for t in threads:
            v = cells.get((b, t))
            row.append(("" if v is None else f"{v:.2f}").rjust(width))
        out.append("".join(row))
    return "\n".join(out)


def render_heatmap_pair(
    measured: Dict[Tuple[int, int], float],
    paper: Dict[Tuple[int, int], float],
    title: str = "",
) -> str:
    """Measured and published heat-maps side by side with error summary."""
    errs = [
        abs(measured[c] - paper[c]) / paper[c]
        for c in paper
        if c in measured and paper[c] > 0
    ]
    parts = [
        render_heatmap(measured, f"{title} - measured (us)"),
        "",
        render_heatmap(paper, f"{title} - paper (us)"),
    ]
    if errs:
        parts.append(
            f"relative error: mean {sum(errs)/len(errs):.1%}, max {max(errs):.1%}"
        )
    return "\n".join(parts)
