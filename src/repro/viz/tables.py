"""Fixed-width ASCII table rendering for experiment reports."""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["render_table", "format_value"]


def format_value(v, precision: int = 2) -> str:
    """Human-friendly cell formatting (numbers trimmed, bools as marks)."""
    if v is None:
        return "-"
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 10000:
            return f"{v:,.0f}"
        if abs(v) >= 100:
            return f"{v:.1f}"
        return f"{v:.{precision}f}"
    return str(v)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render rows as a boxed fixed-width table."""
    cells = [[format_value(c, precision) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]

    def line(ch: str = "-", joint: str = "+") -> str:
        return joint + joint.join(ch * (w + 2) for w in widths) + joint

    def fmt_row(row: Sequence[str]) -> str:
        return "| " + " | ".join(str(c).rjust(w) for c, w in zip(row, widths)) + " |"

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line())
    out.append(fmt_row([str(h) for h in headers]))
    out.append(line("="))
    for row in cells:
        out.append(fmt_row(row))
    out.append(line())
    return "\n".join(out)
