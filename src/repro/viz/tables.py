"""ASCII and markdown table rendering for experiment reports.

Both renderers consume the same JSON-able row structures the experiment
pipeline produces (:meth:`ExperimentReport.to_dict` rows), so the CLI's
ASCII output, ``--json`` output and EXPERIMENTS.md are three views of one
data shape.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["render_table", "render_markdown_table", "format_value"]


def format_value(v, precision: int = 2) -> str:
    """Human-friendly cell formatting (numbers trimmed, bools as marks)."""
    if v is None:
        return "-"
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 10000:
            return f"{v:,.0f}"
        if abs(v) >= 100:
            return f"{v:.1f}"
        return f"{v:.{precision}f}"
    return str(v)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render rows as a boxed fixed-width table."""
    cells = [[format_value(c, precision) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]

    def line(ch: str = "-", joint: str = "+") -> str:
        return joint + joint.join(ch * (w + 2) for w in widths) + joint

    def fmt_row(row: Sequence[str]) -> str:
        return "| " + " | ".join(str(c).rjust(w) for c, w in zip(row, widths)) + " |"

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line())
    out.append(fmt_row([str(h) for h in headers]))
    out.append(line("="))
    for row in cells:
        out.append(fmt_row(row))
    out.append(line())
    return "\n".join(out)


def render_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    align: Optional[Sequence[str]] = None,
) -> str:
    """GitHub-flavoured markdown table from preformatted cells.

    ``align`` entries are ``"left"`` or ``"right"`` per column (default
    left).  Cells are used verbatim — callers format numbers themselves so
    markdown and ASCII views can share one formatting policy.
    """
    aligns = list(align) if align is not None else ["left"] * len(headers)
    if len(aligns) != len(headers):
        raise ValueError("align must have one entry per header")
    sep = ["---:" if a == "right" else "---" for a in aligns]
    out = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join(sep) + "|",
    ]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)
