"""ASCII rendering of experiment artifacts (tables and heat-maps)."""

from repro.viz.heatmap import render_heatmap, render_heatmap_pair
from repro.viz.tables import format_value, render_table

__all__ = ["render_table", "format_value", "render_heatmap", "render_heatmap_pair"]
