"""Reduction-operator case study (Section VII of the paper)."""

from repro.reduction.autotune import (
    ReductionPlan,
    choose_block_width,
    choose_warp_or_thread,
    recommend,
)
from repro.reduction.baselines import reduce_cub, reduce_cuda_sample
from repro.reduction.block import BlockReduceCost, block_reduce_cycles, block_reduce_value
from repro.reduction.device import (
    FIG15_SIZES_P100,
    FIG15_SIZES_V100,
    REDUCTION_METHODS,
    ReductionResult,
    VirtualData,
    bandwidth_table,
    latency_vs_size,
    make_input,
    reduce_grid_sync,
    reduce_implicit,
)
from repro.reduction.multigpu import (
    MultiGpuReductionResult,
    reduce_cpu_barrier,
    reduce_multigrid,
    throughput_vs_gpu_count,
)
from repro.reduction.warp import (
    WARP_REDUCE_METHODS,
    WarpReduceOutcome,
    table5_rows,
    warp_reduce_latency_cycles,
    warp_reduce_value,
)

__all__ = [
    "WARP_REDUCE_METHODS",
    "WarpReduceOutcome",
    "warp_reduce_value",
    "warp_reduce_latency_cycles",
    "table5_rows",
    "BlockReduceCost",
    "block_reduce_value",
    "block_reduce_cycles",
    "ReductionResult",
    "VirtualData",
    "make_input",
    "reduce_implicit",
    "reduce_grid_sync",
    "reduce_cub",
    "reduce_cuda_sample",
    "latency_vs_size",
    "bandwidth_table",
    "REDUCTION_METHODS",
    "FIG15_SIZES_V100",
    "FIG15_SIZES_P100",
    "MultiGpuReductionResult",
    "reduce_multigrid",
    "reduce_cpu_barrier",
    "throughput_vs_gpu_count",
    "ReductionPlan",
    "choose_warp_or_thread",
    "choose_block_width",
    "recommend",
]
