"""Block-level reduction (the paper's Fig 12 ``block_reduce``).

Structure (exactly the listing): every thread strides over the input
accumulating a private sum, writes it to shared memory, one ``block.sync()``,
then warp 0 accumulates the per-thread partials and finishes with the
shuffle-based warp reduction.

Used two ways:

* functionally (numpy) for the final stage of every device-wide reduction;
* as a cost model for the tail latency those reductions pay after the
  bandwidth-bound phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sim.arch import GPUSpec
from repro.sim.sm import block_sync_latency_cycles

__all__ = ["BlockReduceCost", "block_reduce_value", "block_reduce_cycles"]


def block_reduce_value(values: np.ndarray, threads: int = 1024) -> float:
    """Functional block reduction (stride loop + tree), numpy-evaluated.

    Mirrors Fig 12: thread ``t`` accumulates ``values[t::threads]``; the
    partials are then tree-reduced.  Result is exact for the same reasons
    the CUDA version is (all adds performed, order differs from ``sum``).
    """
    if threads < 32:
        raise ValueError("block reduce needs at least one warp")
    arr = np.asarray(values, dtype=np.float64)
    partials = np.zeros(threads, dtype=np.float64)
    n = len(arr)
    for t in range(min(threads, n)):
        partials[t] = arr[t::threads].sum()
    return float(partials.sum())


@dataclass(frozen=True)
class BlockReduceCost:
    """Latency decomposition of one block reduction."""

    stride_cycles: float
    sync_cycles: float
    warp_phase_cycles: float

    @property
    def total_cycles(self) -> float:
        return self.stride_cycles + self.sync_cycles + self.warp_phase_cycles


def block_reduce_cycles(
    spec: GPUSpec, n_elements: int, threads: int = 1024
) -> BlockReduceCost:
    """Cost model for reducing ``n_elements`` shared-memory residents.

    * stride phase: each thread consumes ``ceil(n/threads)`` elements of the
      dependent chain, bandwidth-capped at the SM port;
    * one block sync over the block's warps;
    * warp 0 reads ``threads/32`` partials and runs the shuffle reduction
      (Table V's fastest correct variant).
    """
    if n_elements < 1:
        raise ValueError("n_elements must be >= 1")
    if not (32 <= threads <= spec.max_threads_per_block):
        raise ValueError(f"threads must be in [32, {spec.max_threads_per_block}]")

    sm = spec.shared_mem
    iters = math.ceil(n_elements / threads)
    latency_bound = iters * sm.chain_latency_cycles
    bytes_total = n_elements * sm.element_bytes
    port_bound = bytes_total / sm.sm_cap_bytes_per_cycle
    stride = max(latency_bound, port_bound)

    warps = math.ceil(threads / spec.warp_size)
    sync = block_sync_latency_cycles(spec, warps)

    from repro.reduction.warp import warp_reduce_latency_cycles

    warp_loads = math.ceil(warps / 1)  # warp 0 reads one partial per warp
    warp_phase = (
        warp_loads * spec.instructions.dadd
        + warp_reduce_latency_cycles(spec, "tile_shuffle")
    )
    return BlockReduceCost(
        stride_cycles=stride, sync_cycles=sync, warp_phase_cycles=warp_phase
    )
