"""Warp-level reduction variants (Section VII-C, Table V, Fig 11).

Seven implementations of "sum 32 doubles within a warp", differing only in
how (or whether) they synchronize between tree steps:

========  ==========================================================
serial    one thread loops over all 32 values (no parallelism)
nosync    parallel tree, **no** barrier — races; result incorrect
volatile  parallel tree over ``volatile`` shared memory, no barrier
tile      tree with ``tiled_partition<32>().sync()`` between steps
coalesced tree with ``coalesced_threads().sync()`` between steps
tile_shuffle       tree over ``shfl_down`` via the tile group
coalesced_shuffle  tree over ``shfl_down`` via a coalesced group
========  ==========================================================

Each variant has two faces, deliberately separate:

* **Semantics** — :func:`warp_reduce_value` evaluates the variant under the
  CUDA visibility model (plain stores invisible to other threads until a
  sync/fence; ``volatile`` bypasses; own writes always visible).  The
  no-sync variant reads stale partials and produces an *actually wrong*
  number, as the paper's Table V footnote reports.
* **Timing** — :func:`warp_reduce_latency_cycles` runs the variant's
  instruction sequence on the thread-precise executor.  Per-step cost is
  composed from the architecture's instruction latencies plus the
  calibrated per-method issue overhead (extra SASS the method emits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Tuple

import numpy as np

from repro.cudasim import instructions as ins
from repro.sim.arch import GPUSpec
from repro.sim.exec_thread import ThreadCtx, WarpExecutor

__all__ = [
    "WARP_REDUCE_METHODS",
    "WarpReduceOutcome",
    "warp_reduce_value",
    "warp_reduce_latency_cycles",
    "table5_rows",
]

WARP_REDUCE_METHODS: Tuple[str, ...] = (
    "serial",
    "nosync",
    "volatile",
    "tile",
    "coalesced",
    "tile_shuffle",
    "coalesced_shuffle",
)

_TREE_STEPS = (16, 8, 4, 2, 1)


@dataclass(frozen=True)
class WarpReduceOutcome:
    """Result + correctness of one warp-reduce evaluation."""

    method: str
    value: float
    expected: float
    race_detected: bool

    @property
    def correct(self) -> bool:
        return not self.race_detected and np.isclose(self.value, self.expected)


# ---------------------------------------------------------------------------
# Semantics
# ---------------------------------------------------------------------------


def _tree_reduce_semantic(values: np.ndarray, synced: bool) -> Tuple[float, bool]:
    """Step-synchronous evaluation of the shared-memory tree.

    ``synced=False`` models the no-barrier variant: other threads' updates
    from *previous tree steps* are never committed (registers, per the
    visibility model), so reads take the original values — the classic
    stale-partial bug.
    """
    committed = values.astype(np.float64).copy()  # initial population store
    own = committed.copy()  # each thread's privately-visible view of its slot
    updated = np.zeros(32, dtype=bool)  # slots holding uncommitted writes
    race = False
    for step in _TREE_STEPS:
        new_own = own.copy()
        for tid in range(32):
            if tid + step < 32:
                if synced:
                    addend = own[tid + step]
                else:
                    # Reads another thread's slot: only the committed
                    # (initial) value is visible.  Structurally a race as
                    # soon as the producer has an uncommitted update,
                    # whether or not the numbers happen to coincide.
                    addend = committed[tid + step]
                    if updated[tid + step]:
                        race = True
                new_own[tid] = own[tid] + addend
        if not synced:
            lanes = np.arange(32)
            updated |= lanes + step < 32
        own = new_own
        if synced:
            committed = own.copy()
    return float(own[0]), race


def _shuffle_reduce_semantic(values: np.ndarray) -> Tuple[float, bool]:
    """Register tree over shfl_down — no shared memory, no races."""
    regs = values.astype(np.float64).copy()
    for step in _TREE_STEPS:
        received = np.empty_like(regs)
        for lane in range(32):
            src = lane + step
            received[lane] = regs[src] if src < 32 else regs[lane]
        lanes = np.arange(32)
        regs = np.where(lanes + step < 32, regs + received, regs)
    return float(regs[0]), False


def warp_reduce_value(values, method: str) -> WarpReduceOutcome:
    """Evaluate one variant's *numeric result* under the visibility model."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.shape != (32,):
        raise ValueError(f"warp reduce needs exactly 32 values, got {arr.shape}")
    expected = float(arr.sum())

    if method == "serial":
        value, race = expected, False
    elif method == "nosync":
        value, race = _tree_reduce_semantic(arr, synced=False)
    elif method in ("volatile", "tile", "coalesced"):
        # volatile commits every store immediately; tile/coalesced commit at
        # each barrier — identical step-synchronous visibility.
        value, race = _tree_reduce_semantic(arr, synced=True)
    elif method in ("tile_shuffle", "coalesced_shuffle"):
        value, race = _shuffle_reduce_semantic(arr)
    else:
        raise ValueError(f"unknown warp reduce method {method!r}")

    return WarpReduceOutcome(
        method=method, value=value, expected=expected, race_detected=race
    )


# ---------------------------------------------------------------------------
# Timing
# ---------------------------------------------------------------------------


def _step_cost_cycles(spec: GPUSpec, method: str) -> float:
    """Non-sync portion of one tree step (memory path + add + method SASS)."""
    ic, wr, sm = spec.instructions, spec.warp_reduce, spec.shared_mem
    if method == "nosync":
        # Store-to-load forwarded chain (no visibility ordering).
        return sm.chain_latency_cycles + wr.nosync_step_extra
    if method == "volatile":
        return ic.shared_ld + ic.dadd + wr.volatile_step_extra
    if method == "tile":
        return ic.shared_ld + ic.dadd + wr.tile_step_extra
    if method == "coalesced":
        return ic.shared_ld + ic.dadd + wr.coa_step_extra
    if method == "tile_shuffle":
        return ic.dadd + wr.tile_shuffle_step_extra
    if method == "coalesced_shuffle":
        return ic.dadd + wr.coa_shuffle_create
    raise ValueError(f"unknown method {method!r}")


def _timing_program(spec: GPUSpec, method: str):
    """Build the thread program whose critical path is the Table V latency."""
    wr = spec.warp_reduce

    if method == "serial":

        def program(ctx: ThreadCtx) -> Generator:
            if ctx.tid != 0:
                return
            yield ins.MethodOverhead(cycles=wr.serial_base_cycles)
            yield ins.DAdd(count=31)  # dependent accumulation chain

        return program

    step_cycles = _step_cost_cycles(spec, method)

    def program(ctx: ThreadCtx) -> Generator:
        yield ins.MethodOverhead(cycles=wr.loop_base_cycles)
        for step in _TREE_STEPS:
            if method in ("tile_shuffle", "coalesced_shuffle"):
                kind = "tile" if method == "tile_shuffle" else "coalesced"
                yield ins.ShuffleDown(value=float(ctx.tid), delta=step, kind=kind)
                yield ins.Compute(cycles=step_cycles)
            else:
                yield ins.Compute(cycles=step_cycles)
                if method == "tile":
                    yield ins.WarpSync(kind="tile", group_size=32)
                elif method == "coalesced":
                    yield ins.WarpSync(kind="coalesced", group_size=32)
                # nosync / volatile: no barrier instruction at all

    return program


def warp_reduce_latency_cycles(spec: GPUSpec, method: str) -> float:
    """Measured latency (cycles) to sum 32 doubles with one variant."""
    if method not in WARP_REDUCE_METHODS:
        raise ValueError(
            f"unknown method {method!r}; expected one of {WARP_REDUCE_METHODS}"
        )
    run = WarpExecutor(spec, nthreads=32).run(_timing_program(spec, method))
    return run.duration_cycles


def table5_rows(spec: GPUSpec, seed: int = 7) -> Dict[str, Dict[str, float]]:
    """Reproduce Table V: latency and correctness per variant."""
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.5, 1.5, size=32)
    rows: Dict[str, Dict[str, float]] = {}
    for method in WARP_REDUCE_METHODS:
        outcome = warp_reduce_value(values, method)
        rows[method] = {
            "latency_cycles": warp_reduce_latency_cycles(spec, method),
            "correct": outcome.correct,
        }
    return rows
