"""Baseline reductions the paper compares against (Section VII-D).

* **CUB** ``DeviceReduce::Sum`` — a two-pass reduction with a temp-storage
  setup step.  Its bandwidth efficiency is excellent on Volta but notably
  poor on Pascal (Table VI: 543.96 GB/s vs the implicit variant's 592.40),
  which our calibration preserves.
* **CUDA SDK sample** (``reduction`` sample, final kernel) — also two
  passes, bandwidth within a percent of the implicit variant on both
  architectures.

Both reuse the implicit two-kernel pipeline with their own calibrated
bandwidth efficiency and setup overhead, mirroring how the real libraries
sit on the same stream machinery.
"""

from __future__ import annotations

from repro.reduction.device import InputData, ReductionResult, reduce_implicit
from repro.sim.arch import GPUSpec

__all__ = ["reduce_cub", "reduce_cuda_sample", "CUB_SETUP_NS", "SAMPLE_SETUP_NS"]

# Host-side temp-storage sizing pass + kernel specialization.
CUB_SETUP_NS = 2000.0
# The SDK sample's extra host logic is lighter.
SAMPLE_SETUP_NS = 800.0


def reduce_cub(
    spec: GPUSpec, data: InputData, seed: int = 0
) -> ReductionResult:
    """CUB ``DeviceReduce::Sum`` equivalent."""
    return reduce_implicit(
        spec,
        data,
        threads_per_block=256,
        blocks_per_sm=2,
        seed=seed,
        bw_method="cub",
        extra_setup_ns=CUB_SETUP_NS,
        method_name="cub",
    )


def reduce_cuda_sample(
    spec: GPUSpec, data: InputData, seed: int = 0
) -> ReductionResult:
    """CUDA SDK ``reduction`` sample equivalent (final multi-pass kernel)."""
    return reduce_implicit(
        spec,
        data,
        threads_per_block=256,
        blocks_per_sm=2,
        seed=seed,
        bw_method="cuda_sample",
        extra_setup_ns=SAMPLE_SETUP_NS,
        method_name="cuda_sample",
    )
