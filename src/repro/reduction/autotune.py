"""Model-driven reduction tuning — the paper's "how to use this knowledge".

Section VII-B's punchline: with the measured proxy characteristics and the
Eq 4/5 switching points, you can *decide* per input size whether to use a
single thread, a warp, a full block, or the whole device — without running
the alternatives.  This module packages that decision:

* :func:`choose_warp_or_thread` / :func:`choose_block_width` — the two
  scenarios of Table IV;
* :func:`recommend` — end-to-end recommendation for an input size,
  including whether a device-wide reduction should use the implicit
  two-kernel scheme or the persistent grid-sync kernel (Fig 15's answer:
  implicit, slightly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.perfmodel import WorkerConfig, choose_workers, scenario_sync_cycles
from repro.microbench.intra_sm import measure_shared_bandwidth
from repro.sim.arch import GPUSpec
from repro.util.units import KB

__all__ = ["ReductionPlan", "choose_warp_or_thread", "choose_block_width", "recommend"]


def _worker(spec: GPUSpec, n_threads: int, name: str) -> WorkerConfig:
    bw = measure_shared_bandwidth(spec, n_threads)
    return WorkerConfig(
        name=name,
        throughput=bw.bandwidth_bytes_per_cycle,
        latency_cycles=bw.chain_latency_cycles,
    )


def choose_warp_or_thread(spec: GPUSpec, n_bytes: int) -> str:
    """Scenario 1: single thread vs single warp (sync = 5 shuffles).

    Table IV predicts the switch near 70-76 B — i.e. use the warp once the
    input exceeds ~9 doubles; "it is better to compute 32 data points with
    a warp".
    """
    basic = _worker(spec, 1, "thread")
    more = _worker(spec, 32, "warp")
    sync = scenario_sync_cycles(spec, "warp")
    return choose_workers(basic, more, sync, n_bytes).name


def choose_block_width(spec: GPUSpec, n_bytes: int) -> str:
    """Scenario 2: 32 threads vs 1024 threads (sync = 5 block syncs).

    Table IV predicts ~8.5-9 KB on V100 (~30 KB on P100): below that,
    "there would be no benefit to compute 1024 data points with 1024
    threads per block".
    """
    basic = _worker(spec, 32, "block32")
    more = _worker(spec, 1024, "block1024")
    sync = scenario_sync_cycles(spec, "block1024")
    return choose_workers(basic, more, sync, n_bytes).name


@dataclass(frozen=True)
class ReductionPlan:
    """Recommended implementation for one input size."""

    size_bytes: int
    scope: str          # "thread" | "warp" | "block" | "device"
    block_width: int
    device_method: Optional[str]  # "implicit" | "grid" | None
    rationale: str


def recommend(spec: GPUSpec, size_bytes: int) -> ReductionPlan:
    """End-to-end recommendation for reducing ``size_bytes`` of float64."""
    if size_bytes <= 0:
        raise ValueError("size_bytes must be positive")

    warp_choice = choose_warp_or_thread(spec, size_bytes)
    if warp_choice == "thread":
        return ReductionPlan(
            size_bytes=size_bytes,
            scope="thread",
            block_width=1,
            device_method=None,
            rationale=(
                "input below the warp switching point (Table IV): the "
                "5-shuffle sync cost outweighs warp parallelism"
            ),
        )

    block_choice = choose_block_width(spec, size_bytes)
    if block_choice == "block32":
        return ReductionPlan(
            size_bytes=size_bytes,
            scope="warp",
            block_width=32,
            device_method=None,
            rationale=(
                "input below the 1024-thread switching point (Table IV): "
                "block syncs would dominate"
            ),
        )

    # Device-wide territory once the input exceeds one block's shared
    # memory working set.
    if size_bytes <= spec.shared_mem_per_block:
        return ReductionPlan(
            size_bytes=size_bytes,
            scope="block",
            block_width=1024,
            device_method=None,
            rationale="fits one block's shared memory; 1024-thread block reduce",
        )
    return ReductionPlan(
        size_bytes=size_bytes,
        scope="device",
        block_width=1024,
        device_method="implicit",
        rationale=(
            "device-wide: the implicit two-kernel scheme edges out the "
            "grid-sync persistent kernel at every size (Fig 15), though "
            "not decisively"
        ),
    )
