"""Single-GPU device-wide reductions (Section VII-D, Figs 13-15, Table VI).

Two first-party implementations:

* **implicit** (Fig 14): ``Kernel1`` grid-strides the input into per-block
  partials, the stream's implicit barrier orders it before ``Kernel2``,
  which block-reduces the partials.  Two traditional launches.
* **grid sync** (Fig 13): one *persistent* cooperative kernel — the same
  summing phase, then ``grid.sync()``, then block 0 reduces the partials.
  One cooperative launch, no second kernel.

plus the two published baselines in :mod:`repro.reduction.baselines`
(CUB ``DeviceReduce`` and the CUDA-SDK sample), all measured with the same
host-clock protocol so Fig 15 and Table VI come from one code path.

Functional results are real numpy sums when given an ndarray.  For the
multi-gigabyte points of Fig 15 a :class:`VirtualData` descriptor carries
an analytically-known sum instead (10 GB of float64 does not fit this
harness); timing is unaffected since the phase is bandwidth-modeled
either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Union

import numpy as np

from repro.cudasim.kernel import LaunchConfig, NullKernel, WorkKernel
from repro.cudasim.runtime import CudaRuntime
from repro.reduction.block import block_reduce_cycles
from repro.sim.arch import GPUSpec
from repro.sim.device import grid_sync_latency_ns
from repro.sim.occupancy import blocks_per_sm as occ_blocks_per_sm
from repro.util.units import GB, MB

__all__ = [
    "VirtualData",
    "make_input",
    "ReductionResult",
    "reduce_implicit",
    "reduce_grid_sync",
    "latency_vs_size",
    "bandwidth_table",
    "REDUCTION_METHODS",
]

# Past this size, inputs are virtual (timing identical, sum analytic).
MATERIALIZE_LIMIT_BYTES = 64 * MB


@dataclass(frozen=True)
class VirtualData:
    """A reduction input described by size and analytically-known sum.

    The generator pattern is ``values[i] = (i % 97) * 0.25`` so any chunk
    can be materialized for spot checks.
    """

    n_elements: int
    dtype: str = "float64"

    def __post_init__(self):
        if self.n_elements < 1:
            raise ValueError("VirtualData needs at least one element")

    @property
    def nbytes(self) -> int:
        return self.n_elements * np.dtype(self.dtype).itemsize

    @property
    def expected_sum(self) -> float:
        """Closed form of sum((i % 97) * 0.25 for i in range(n))."""
        full, rem = divmod(self.n_elements, 97)
        s_full = full * (96 * 97 // 2)
        s_rem = rem * (rem - 1) // 2
        return 0.25 * (s_full + s_rem)

    def chunk(self, start: int, count: int) -> np.ndarray:
        idx = np.arange(start, min(start + count, self.n_elements))
        return (idx % 97) * 0.25


InputData = Union[np.ndarray, VirtualData]


def make_input(size_bytes: int, seed: int = 0) -> InputData:
    """Build a reduction input of ``size_bytes`` (float64 elements).

    Small inputs are real arrays (functional path fully exercised); large
    ones are virtual.
    """
    n = max(1, size_bytes // 8)
    if size_bytes <= MATERIALIZE_LIMIT_BYTES:
        rng = np.random.default_rng(seed)
        return rng.uniform(0.0, 1.0, size=n)
    return VirtualData(n_elements=n)


def _expected_sum(data: InputData) -> float:
    if isinstance(data, VirtualData):
        return data.expected_sum
    return float(np.asarray(data, dtype=np.float64).sum())


def _nbytes(data: InputData) -> int:
    if isinstance(data, VirtualData):
        return data.nbytes
    return int(np.asarray(data).nbytes)


def _partials(data: InputData, n_blocks: int) -> np.ndarray:
    """Per-block partial sums (the functional effect of Kernel1)."""
    if isinstance(data, VirtualData):
        # Analytic total split into one representative partial per block.
        total = data.expected_sum
        out = np.zeros(n_blocks)
        out[0] = total
        return out
    arr = np.asarray(data, dtype=np.float64)
    if len(arr) == 0:
        return np.zeros(n_blocks)
    return np.array([chunk.sum() for chunk in np.array_split(arr, n_blocks)])


@dataclass(frozen=True)
class ReductionResult:
    """Outcome of one measured device-wide reduction."""

    method: str
    size_bytes: int
    value: float
    expected: float
    total_ns: float

    @property
    def correct(self) -> bool:
        return bool(np.isclose(self.value, self.expected, rtol=1e-9))

    @property
    def latency_us(self) -> float:
        return self.total_ns / 1e3

    @property
    def bandwidth_gbps(self) -> float:
        """Sustained bandwidth (decimal GB/s, as Table VI reports)."""
        return self.size_bytes / self.total_ns if self.total_ns > 0 else 0.0


def _tail_ns(spec: GPUSpec, n_partials: int) -> float:
    """Final block-reduction of the per-block partials."""
    cost = block_reduce_cycles(spec, max(n_partials, 1), threads=1024)
    return spec.cycles_to_ns(cost.total_cycles)


def _measure(rt: CudaRuntime, host_builder) -> float:
    out: dict = {}

    def host() -> Generator:
        # Warm-up kernel, untimed (Section IX-B protocol).
        yield from rt.launch(NullKernel(), LaunchConfig(1, 32))
        yield from rt.device_synchronize()
        t1 = rt.host_clock.read()
        yield from host_builder()
        t2 = rt.host_clock.read()
        out["v"] = t2 - t1

    rt.run_host(host())
    return out["v"]


def reduce_implicit(
    spec: GPUSpec,
    data: InputData,
    threads_per_block: int = 256,
    blocks_per_sm: int = 2,
    seed: int = 0,
    bw_method: str = "implicit",
    extra_setup_ns: float = 0.0,
    method_name: str = "implicit",
) -> ReductionResult:
    """Two-kernel reduction ordered by the stream's implicit barrier.

    ``bw_method``/``extra_setup_ns`` let the baselines reuse this exact
    pipeline with their own bandwidth efficiency and setup cost.
    """
    rt = CudaRuntime.single_gpu(spec, seed=seed)
    dev = rt.device(0)
    nbytes = _nbytes(data)
    n_blocks = blocks_per_sm * spec.sm_count
    expected = _expected_sum(data)
    state: dict = {}

    def k1_body(device, config):
        state["partials"] = _partials(data, n_blocks)

    def k2_body(device, config):
        state["value"] = float(state["partials"].sum())

    eps = spec.launch_calib("traditional").exec_null_ns
    k1 = WorkKernel(
        eps + extra_setup_ns + dev.hbm.transfer_ns(nbytes, bw_method),
        name=f"{method_name}-sum",
        body=k1_body,
    )
    k2 = WorkKernel(
        eps + _tail_ns(spec, n_blocks), name=f"{method_name}-final", body=k2_body
    )
    cfg1 = LaunchConfig(n_blocks, threads_per_block)
    cfg2 = LaunchConfig(1, 1024)

    def host() -> Generator:
        yield from rt.launch(k1, cfg1)
        yield from rt.launch(k2, cfg2)
        yield from rt.device_synchronize()

    total = _measure(rt, lambda: host())
    return ReductionResult(
        method=method_name,
        size_bytes=nbytes,
        value=state["value"],
        expected=expected,
        total_ns=total,
    )


def reduce_grid_sync(
    spec: GPUSpec,
    data: InputData,
    threads_per_block: int = 512,
    blocks_per_sm: int = 2,
    seed: int = 0,
) -> ReductionResult:
    """Persistent-kernel reduction with one explicit ``grid.sync()``."""
    occ = occ_blocks_per_sm(spec, threads_per_block)
    if blocks_per_sm > occ.blocks_per_sm:
        raise ValueError(
            f"grid-sync reduction config {blocks_per_sm}x{threads_per_block} "
            f"is not co-resident on {spec.name}"
        )
    rt = CudaRuntime.single_gpu(spec, seed=seed)
    dev = rt.device(0)
    nbytes = _nbytes(data)
    n_blocks = blocks_per_sm * spec.sm_count
    expected = _expected_sum(data)
    state: dict = {}

    def body(device, config):
        partials = _partials(data, n_blocks)
        state["value"] = float(partials.sum())

    eps = spec.launch_calib("cooperative").exec_null_ns
    duration = (
        eps
        + dev.hbm.transfer_ns(nbytes, "grid")
        + grid_sync_latency_ns(spec, blocks_per_sm, threads_per_block)
        + _tail_ns(spec, n_blocks)
    )
    kernel = WorkKernel(duration, name="grid-sync-reduce", body=body)
    cfg = LaunchConfig(n_blocks, threads_per_block)

    def host() -> Generator:
        yield from rt.launch_cooperative(kernel, cfg)
        yield from rt.device_synchronize(launch_type="cooperative")

    total = _measure(rt, lambda: host())
    return ReductionResult(
        method="grid",
        size_bytes=nbytes,
        value=state["value"],
        expected=expected,
        total_ns=total,
    )


def _dispatch(spec: GPUSpec, method: str, data: InputData, seed: int) -> ReductionResult:
    from repro.reduction.baselines import reduce_cub, reduce_cuda_sample

    if method == "implicit":
        return reduce_implicit(spec, data, seed=seed)
    if method == "grid":
        return reduce_grid_sync(spec, data, seed=seed)
    if method == "cub":
        return reduce_cub(spec, data, seed=seed)
    if method == "cuda_sample":
        return reduce_cuda_sample(spec, data, seed=seed)
    raise ValueError(f"unknown reduction method {method!r}")


REDUCTION_METHODS = ("implicit", "grid", "cub", "cuda_sample")

# Fig 15's x-axis: 0.1 MB .. 10 GB (V100) / 1 GB (P100).
FIG15_SIZES_V100 = tuple(
    int(s * MB) for s in (0.1, 0.4, 1, 4, 16, 64, 256, 1024, 4096, 10240)
)
FIG15_SIZES_P100 = tuple(int(s * MB) for s in (0.1, 0.4, 1, 4, 16, 64, 256, 1024))


def latency_vs_size(
    spec: GPUSpec,
    methods: Sequence[str] = REDUCTION_METHODS,
    sizes: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> Dict[str, List[ReductionResult]]:
    """Fig 15: latency of each method across input sizes."""
    if sizes is None:
        sizes = FIG15_SIZES_V100 if spec.name == "V100" else FIG15_SIZES_P100
    # One input per size, shared by every method: the methods only read the
    # data, and regenerating 8M-element arrays per method dominated the
    # sweep's wall-clock.
    inputs = [make_input(s, seed) for s in sizes]
    out: Dict[str, List[ReductionResult]] = {}
    for method in methods:
        out[method] = [_dispatch(spec, method, data, seed) for data in inputs]
    return out


def bandwidth_table(
    spec: GPUSpec, size_bytes: int = GB, seed: int = 0
) -> Dict[str, float]:
    """Table VI: sustained bandwidth (GB/s) of each method at 1 GB."""
    data = make_input(size_bytes, seed)
    rows = {
        m: _dispatch(spec, m, data, seed).bandwidth_gbps for m in REDUCTION_METHODS
    }
    rows["theory"] = spec.hbm.theory_gbps
    return rows
