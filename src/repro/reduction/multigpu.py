"""Multi-GPU reductions (Section VII-E, Figs 13/14/16).

Two implementations over a DGX-style node:

* **multi-grid** (Fig 13): one multi-device cooperative launch; every GPU
  grid-strides its shard, peer-writes its partials toward GPU 0 in
  ``ceil(log2(n))`` gather steps with a ``multi_grid.sync()`` between
  steps, and GPU 0's block 0 finishes.  A single persistent kernel — the
  programmability argument of Section VII-E.
* **CPU-side barrier** (Fig 14): one OpenMP thread per GPU, traditional
  kernels, ``cudaDeviceSynchronize`` + ``#pragma omp barrier`` between
  gather steps, final kernel on GPU 0.

Throughput is reported in steady state (persistent kernel resident /
pipeline warm), matching the paper's Fig 16 protocol where launch cost is
amortized over iterations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence

import numpy as np

from repro.cudasim.kernel import LaunchConfig, WorkKernel
from repro.cudasim.runtime import CudaRuntime
from repro.host.openmp import OmpTeam
from repro.reduction.block import block_reduce_cycles
from repro.reduction.device import InputData, VirtualData, _expected_sum, _nbytes
from repro.sim.arch import NodeSpec
from repro.sim.node import Node
from repro.sync import MultiGridGroup
from repro.util.units import GB

__all__ = [
    "MultiGpuReductionResult",
    "reduce_multigrid",
    "reduce_cpu_barrier",
    "throughput_vs_gpu_count",
]


@dataclass(frozen=True)
class MultiGpuReductionResult:
    """Outcome of one multi-GPU reduction."""

    method: str
    gpu_count: int
    size_bytes: int
    value: float
    expected: float
    total_ns: float

    @property
    def correct(self) -> bool:
        return bool(np.isclose(self.value, self.expected, rtol=1e-9))

    @property
    def throughput_gbps(self) -> float:
        return self.size_bytes / self.total_ns if self.total_ns > 0 else 0.0


def _gather_steps(n_gpus: int) -> int:
    return max(0, math.ceil(math.log2(n_gpus))) if n_gpus > 1 else 0


def _shard_sums(data: InputData, n_gpus: int) -> List[float]:
    if isinstance(data, VirtualData):
        total = data.expected_sum
        return [total] + [0.0] * (n_gpus - 1)
    arr = np.asarray(data, dtype=np.float64)
    return [float(c.sum()) for c in np.array_split(arr, n_gpus)]


def _partials_nbytes(node: Node, blocks_per_sm: int, threads: int) -> int:
    # One float64 partial per block.
    return blocks_per_sm * node.spec.gpu.sm_count * 8


def reduce_multigrid(
    node_spec: NodeSpec,
    data: InputData,
    gpu_count: Optional[int] = None,
    blocks_per_sm: int = 2,
    threads_per_block: int = 512,
    seed: int = 0,
) -> MultiGpuReductionResult:
    """Fig 13: persistent multi-device kernel with multi-grid barriers."""
    n = gpu_count if gpu_count is not None else node_spec.gpu_count
    node = Node(node_spec, gpu_count=n)
    node.enable_all_peer_access()
    gpu = node_spec.gpu
    nbytes = _nbytes(data)
    expected = _expected_sum(data)
    shards = _shard_sums(data, n)

    steps = _gather_steps(n)
    # The persistent kernel's barrier cost: the multi-grid scope's closed
    # form (local phase + topology-dependent cross phase).
    mgrid_sync_ns = MultiGridGroup(
        node, blocks_per_sm, threads_per_block, gpu_ids=range(n)
    ).latency_model()
    partial_bytes = _partials_nbytes(node, blocks_per_sm, threads_per_block)
    transfer_ns = (
        node.interconnect.peer_transfer_ns(1, 0, partial_bytes) if n > 1 else 0.0
    )
    tail_ns = gpu.cycles_to_ns(
        block_reduce_cycles(gpu, blocks_per_sm * gpu.sm_count, 1024).total_cycles
    )

    # Steady-state iteration time of the persistent kernel: local streaming
    # (largest shard bounds), then per gather step a partial transfer and a
    # multi-grid barrier, then the final block reduce on GPU 0.
    shard_bytes = math.ceil(nbytes / n)
    stream_ns = shard_bytes / gpu.hbm.effective_gbps("grid")
    total_ns = stream_ns + steps * (transfer_ns + mgrid_sync_ns) + tail_ns

    value = float(sum(shards))
    return MultiGpuReductionResult(
        method="mgrid",
        gpu_count=n,
        size_bytes=nbytes,
        value=value,
        expected=expected,
        total_ns=total_ns,
    )


def reduce_cpu_barrier(
    node_spec: NodeSpec,
    data: InputData,
    gpu_count: Optional[int] = None,
    blocks_per_sm: int = 2,
    threads_per_block: int = 512,
    seed: int = 0,
) -> MultiGpuReductionResult:
    """Fig 14: OpenMP thread per GPU, implicit barriers + omp barriers.

    Runs the full host choreography on the engine (launches, device syncs,
    barriers, peer copies) and reports the steady-state iteration time.
    """
    n = gpu_count if gpu_count is not None else node_spec.gpu_count
    rt = CudaRuntime.for_node(node_spec, gpu_count=n, seed=seed)
    rt.node.enable_all_peer_access()
    gpu = node_spec.gpu
    nbytes = _nbytes(data)
    expected = _expected_sum(data)
    shards = _shard_sums(data, n)
    steps = _gather_steps(n)
    team = OmpTeam(rt, n_threads=n)

    shard_bytes = math.ceil(nbytes / n)
    stream_ns = shard_bytes / gpu.hbm.effective_gbps("implicit")
    partial_bytes = _partials_nbytes(rt.node, blocks_per_sm, threads_per_block)
    tail_ns = gpu.cycles_to_ns(
        block_reduce_cycles(gpu, blocks_per_sm * gpu.sm_count, 1024).total_cycles
    )
    eps = gpu.launch_calib("traditional").exec_null_ns
    n_blocks = blocks_per_sm * gpu.sm_count
    cfg = LaunchConfig(n_blocks, threads_per_block)

    state: dict = {"t0": 0.0, "t1": 0.0, "value": 0.0}

    def worker(tid: int) -> Generator:
        k1 = WorkKernel(eps + stream_ns, name=f"sum-gpu{tid}")
        if tid == 0:
            state["t0"] = rt.host_clock.read_exact()
        yield from rt.launch(k1, cfg, device=tid)
        yield from rt.device_synchronize(device=tid)
        yield from team.barrier(tid)
        # Gather tree: in step s, the upper half of the active GPUs push
        # their partials one level down, then everyone re-synchronizes.
        active = n
        for _ in range(steps):
            half = (active + 1) // 2
            if half <= tid < active:
                dst = tid - half
                copy_ns = rt.node.interconnect.peer_transfer_ns(
                    tid, dst, partial_bytes
                )
                k_copy = WorkKernel(eps + copy_ns, name=f"copy{tid}->{dst}")
                yield from rt.launch(k_copy, LaunchConfig(1, 256), device=tid)
            yield from rt.device_synchronize(device=tid)
            yield from team.barrier(tid)
            active = half
        if tid == 0:
            k2 = WorkKernel(eps + tail_ns, name="final")
            yield from rt.launch(k2, LaunchConfig(1, 1024), device=0)
            yield from rt.device_synchronize(device=0)
            state["value"] = float(sum(shards))
            state["t1"] = rt.host_clock.read_exact()

    team.run(worker)
    # Steady state: exclude the first kernel's dispatch pipeline fill, which
    # repeated iterations hide (the multi-grid variant is likewise measured
    # with its persistent kernel already resident).
    pipeline_fill = gpu.launch_calib("traditional").dispatch_ns
    total_ns = max(state["t1"] - state["t0"] - pipeline_fill, 1.0)
    return MultiGpuReductionResult(
        method="cpu_barrier",
        gpu_count=n,
        size_bytes=nbytes,
        value=state["value"],
        expected=expected,
        total_ns=total_ns,
    )


def throughput_vs_gpu_count(
    node_spec: NodeSpec,
    size_bytes: int = 8 * GB,
    gpu_counts: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> Dict[str, Dict[int, float]]:
    """Fig 16: reduction throughput (GB/s) for both methods vs GPU count."""
    counts = (
        list(gpu_counts)
        if gpu_counts is not None
        else list(range(1, node_spec.gpu_count + 1))
    )
    from repro.reduction.device import make_input

    data = make_input(size_bytes, seed)
    out: Dict[str, Dict[int, float]] = {"mgrid": {}, "cpu_barrier": {}}
    for n in counts:
        out["mgrid"][n] = reduce_multigrid(
            node_spec, data, gpu_count=n, seed=seed
        ).throughput_gbps
        out["cpu_barrier"][n] = reduce_cpu_barrier(
            node_spec, data, gpu_count=n, seed=seed
        ).throughput_gbps
    return out
