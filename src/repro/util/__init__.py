"""Small shared utilities: units, formatting, deterministic RNG plumbing."""

from repro.util.rng import derive_seed, make_rng
from repro.util.units import (
    GB,
    KB,
    MB,
    bytes_per_ns_to_gbps,
    cycles_to_ns,
    gbps_to_bytes_per_ns,
    ns_to_cycles,
    ns_to_s,
    ns_to_us,
    s_to_ns,
    us_to_ns,
)

__all__ = [
    "KB",
    "MB",
    "GB",
    "ns_to_us",
    "us_to_ns",
    "ns_to_s",
    "s_to_ns",
    "cycles_to_ns",
    "ns_to_cycles",
    "gbps_to_bytes_per_ns",
    "bytes_per_ns_to_gbps",
    "make_rng",
    "derive_seed",
]
