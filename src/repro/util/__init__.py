"""Small shared utilities: units, formatting, deterministic RNG plumbing."""

from repro.util.units import (
    KB,
    MB,
    GB,
    ns_to_us,
    us_to_ns,
    ns_to_s,
    s_to_ns,
    cycles_to_ns,
    ns_to_cycles,
    gbps_to_bytes_per_ns,
    bytes_per_ns_to_gbps,
)
from repro.util.rng import make_rng, derive_seed

__all__ = [
    "KB",
    "MB",
    "GB",
    "ns_to_us",
    "us_to_ns",
    "ns_to_s",
    "s_to_ns",
    "cycles_to_ns",
    "ns_to_cycles",
    "gbps_to_bytes_per_ns",
    "bytes_per_ns_to_gbps",
    "make_rng",
    "derive_seed",
]
