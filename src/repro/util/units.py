"""Unit conversions used throughout the simulator.

Simulated time is always a float in **nanoseconds** inside the engine.
Device-facing code usually thinks in **cycles**; conversion requires the
device frequency (MHz), so the helpers take it explicitly rather than baking
one frequency in — the multi-GPU experiments put a 1312 MHz V100 timeline and
a host nanosecond clock on the same heap.
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * 1024
GB: int = 1024 * 1024 * 1024


def ns_to_us(ns: float) -> float:
    """Nanoseconds to microseconds."""
    return ns / 1e3


def us_to_ns(us: float) -> float:
    """Microseconds to nanoseconds."""
    return us * 1e3


def ns_to_s(ns: float) -> float:
    """Nanoseconds to seconds."""
    return ns / 1e9


def s_to_ns(s: float) -> float:
    """Seconds to nanoseconds."""
    return s * 1e9


def cycles_to_ns(cycles: float, freq_mhz: float) -> float:
    """Convert device cycles to nanoseconds at ``freq_mhz``."""
    if freq_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_mhz}")
    return cycles * 1e3 / freq_mhz


def ns_to_cycles(ns: float, freq_mhz: float) -> float:
    """Convert nanoseconds to device cycles at ``freq_mhz``."""
    if freq_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_mhz}")
    return ns * freq_mhz / 1e3


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """GB/s (decimal GB, as in vendor specs) to bytes per nanosecond."""
    return gbps


def bytes_per_ns_to_gbps(bpn: float) -> float:
    """Bytes per nanosecond to GB/s (decimal GB, as in vendor specs)."""
    return bpn
