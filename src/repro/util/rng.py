"""Deterministic random-number plumbing.

Measurement noise (host-clock jitter, GPU clock-read quantization) must be
reproducible so the test suite is stable, yet independent between
experiments so statistics behave honestly.  Every consumer derives its own
:class:`numpy.random.Generator` from a root seed plus a string tag.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 0x5CA1AB1E


def derive_seed(root: int, tag: str) -> int:
    """Derive a stable 63-bit child seed from ``root`` and a string tag."""
    digest = hashlib.sha256(f"{root}:{tag}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def make_rng(root: int = DEFAULT_SEED, tag: str = "") -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for the given root/tag."""
    return np.random.default_rng(derive_seed(root, tag))
