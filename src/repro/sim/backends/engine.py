"""The event-precise engine as a :class:`SimBackend`.

This is the pre-backend execution path, unchanged: it delegates to the
scope's generic DES driver (one process per member on the shared
engine), so every event, every FIFO tie-break and every float is exactly
what :meth:`BarrierScope.run_rounds` has always produced.  It is the
default backend, the universal fallback, and the oracle the analytic
backend's equivalence suite is written against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from repro.sim.backends.base import register_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sync.scope import BarrierScope, ScopeRun

__all__ = ["EngineBackend"]


class EngineBackend:
    """Discrete-event execution: exact, universal, the oracle."""

    name = "engine"

    def ineligible_reason(
        self, scope: "BarrierScope", n_syncs: int, members: Sequence[int]
    ) -> Optional[str]:
        return None  # the engine runs everything

    def run_rounds(
        self,
        scope: "BarrierScope",
        n_syncs: int,
        members: Tuple[int, ...],
        collect_trace: bool = True,
    ) -> "ScopeRun":
        # collect_trace is accepted for interface symmetry; the engine's
        # member processes record the trace as a side effect of running,
        # so skipping it would save nothing.
        return scope._run_rounds_engine(n_syncs, members)


register_backend(EngineBackend())
