"""Closed-form vectorized execution of uniform barrier ladders.

The engine's barrier workloads are *uniform*: every member runs the same
``sync()`` ladder with no data-dependent control flow, so the full
discrete-event schedule collapses to per-member virtual clocks advanced
by closed forms — broadcast adds for fixed-delay phases, a serialized
max-chain for the arrival counter, a max-reduce (last arrival) for the
release, the :class:`~repro.sim.memory.MemoryChannel` contention closed
form for spin-poll detection, and per-SM cumulative-sum chains for the
grid release ports.

Bit-identity, not approximation.  Every formula below performs the *same
IEEE-754 additions in the same order* as the engine's event walk (the
derivations are spelled out in ``docs/backends.md``), so an eligible
workload produces a :class:`~repro.sync.scope.ScopeRun` whose every
float equals the engine's — the property the equivalence suite
(``tests/sim/test_backend_equivalence.py``) pins down.  Workloads the
closed forms cannot reproduce exactly report an
:meth:`~AnalyticBackend.ineligible_reason` and the dispatcher falls back
to the engine.

Key engine facts the forms rely on (proved against ``sim/engine.py`` /
``sync/`` sources, and re-checked by the equivalence suite):

* FIFO-at-equal-time everywhere (shared seq counter), so ties resolve
  in member-creation order and the counter/port service order equals the
  member index order in every round.
* ``Resource`` release hands the slot to the oldest waiter, so ``b``
  blocks sharing one release port are served round-robin — member rank
  ``i``'s last warp grant is slot ``(wpb - 1) * b + i`` of that port's
  grant chain.
* ``numpy.cumsum`` over float64 is the same sequential left-fold of
  additions the engine performs (verified property), so the port chains
  vectorize without changing a single bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.sim.backends.base import register_backend
from repro.sync.strategies import (
    BarrierStrategy,
    CooperativeBarrier,
    CpuBarrier,
    SoftwareAtomicBarrier,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sync.scope import BarrierScope, ScopeRun

__all__ = ["AnalyticBackend"]

#: Strategy classes whose counting/release protocol has an exact closed
#: form.  Exact types only — a subclass may override arrive/wait.
_EXACT_STRATEGIES = (CooperativeBarrier, SoftwareAtomicBarrier, CpuBarrier)


def _uniform_release(
    strategy: BarrierStrategy, arrive_ns: float, n: int
) -> Tuple[float, Optional[float]]:
    """Release time of one round whose ``n`` arrivals all land at
    ``arrive_ns``, plus the per-waiter detection lag (``None`` when the
    strategy has no post-release cost).

    The serialized counter chain over equal arrivals is the left fold
    ``C_k = C_{k-1} + svc`` starting from the first grant at
    ``arrive_ns`` — performed add-by-add to match the engine's floats.
    """
    cls = strategy.__class__
    if cls is CooperativeBarrier:
        port = strategy._counter_port
        if port is None:
            return arrive_ns + strategy.release_delay_ns, None
        c = arrive_ns
        svc = port.service_ns
        for _ in range(n):
            c = c + svc
        return c + strategy.release_delay_ns, None
    if cls is SoftwareAtomicBarrier:
        svc = strategy._counter_port.service_ns
        c = arrive_ns
        for _ in range(n + 1):  # n arrivals + the releaser's flag RMW
            c = c + svc
        return c, strategy.detection_lag_ns()
    # CpuBarrier: the last arrival pays the calibrated barrier cost.
    return arrive_ns + strategy.cost_ns, None


def _staggered_release(
    strategy: BarrierStrategy, arrivals: Sequence[float]
) -> Tuple[float, Optional[float]]:
    """Release time for one round with staggered (nondecreasing, in
    counter-service order) arrivals — the grid's rounds after the first.

    Counter chain: ``C_k = max(a_k, C_{k-1}) + svc`` — a busy port makes
    the next grant start at the previous completion, an idle port grants
    at the arrival instant; both cases are the engine's exact float.
    """
    cls = strategy.__class__
    if cls is CpuBarrier:
        return float(arrivals[-1]) + strategy.cost_ns, None
    if cls is CooperativeBarrier and strategy._counter_port is None:
        return float(arrivals[-1]) + strategy.release_delay_ns, None
    port = strategy._counter_port
    svc = port.service_ns
    c = float(arrivals[0])
    for a in arrivals:
        a = float(a)
        if a > c:
            c = a
        c = c + svc
    if cls is CooperativeBarrier:
        return c + strategy.release_delay_ns, None
    # SoftwareAtomicBarrier: the last-serviced member is the releaser and
    # pays a second serialized RMW for the flag write.
    return c + svc, strategy.detection_lag_ns()


class AnalyticBackend:
    """Numpy/closed-form execution of eligible barrier workloads."""

    name = "analytic"

    # -- eligibility ------------------------------------------------------

    def ineligible_reason(
        self, scope: "BarrierScope", n_syncs: int, members: Sequence[int]
    ) -> Optional[str]:
        # Imported here (not module top) to keep backends importable
        # without dragging every scope in at package-import time.
        from repro.sync.groups import (
            BlockGroup,
            GridGroup,
            HostBarrierGroup,
            MultiGridGroup,
            WarpGroup,
        )

        # Exact types only: a subclass may override the yield ladders the
        # closed forms were derived from.
        if type(scope) not in (
            WarpGroup,
            BlockGroup,
            GridGroup,
            MultiGridGroup,
            HostBarrierGroup,
        ):
            return f"unsupported scope type {type(scope).__name__}"
        strategy = scope.strategy
        if strategy.__class__ not in _EXACT_STRATEGIES:
            return f"unsupported strategy type {type(strategy).__name__}"
        if strategy.expected != scope.size:
            return (
                f"strategy expects {strategy.expected} arrivals but the "
                f"scope has {scope.size} members"
            )
        if strategy.rounds_released != 0:
            return "strategy has already released rounds"
        ids = tuple(members)
        if len(set(ids)) != len(ids):
            return "duplicate members"
        if len(ids) != scope.size:
            return (
                f"{len(ids)} participants of {scope.size} — a partial "
                "group deadlocks (engine raises DeadlockError)"
            )
        if type(scope) is GridGroup:
            if ids != tuple(range(scope.total_blocks)):
                return "grid members must be 0..total_blocks-1 in order"
        elif type(scope) is MultiGridGroup:
            # Member ids are trace labels only — the cross/local latencies
            # were baked from gpu_ids at construction — so any full-width
            # distinct id set is exact.
            if not scope.full_local_participation:
                return "partial local participation hangs the barrier"
        engine = scope.engine
        if engine._live or engine._ready or engine._heap:
            return "engine has other pending work (non-uniform schedule)"
        return None

    # -- execution --------------------------------------------------------

    def run_rounds(
        self,
        scope: "BarrierScope",
        n_syncs: int,
        members: Tuple[int, ...],
        collect_trace: bool = True,
    ) -> "ScopeRun":
        from repro.sync.groups import GridGroup, MultiGridGroup
        from repro.sync.scope import ScopeRun

        ids = tuple(members)
        t0 = scope.engine.now
        trace: Dict[Tuple[int, int], float] = {}
        if type(scope) is GridGroup:
            final = self._run_grid(scope, n_syncs, ids, collect_trace, trace)
        elif type(scope) is MultiGridGroup:
            final = self._run_flat(
                scope,
                n_syncs,
                ids,
                collect_trace,
                trace,
                pre_ns=scope._t_arrive.delay,
                post_ns=scope._t_release_local.delay,
            )
        else:
            final = self._run_flat(scope, n_syncs, ids, collect_trace, trace)
        self._commit(scope, n_syncs, len(ids), final)
        return ScopeRun(
            members=ids, n_syncs=n_syncs, total_ns=final - t0, release_ns=trace
        )

    def _run_flat(
        self,
        scope: "BarrierScope",
        n_syncs: int,
        ids: Tuple[int, ...],
        collect_trace: bool,
        trace: Dict[Tuple[int, int], float],
        pre_ns: Optional[float] = None,
        post_ns: Optional[float] = None,
    ) -> float:
        """Warp/Block/Host/MultiGrid ladders: every round is uniform
        (all members arrive together, all finish together), so the whole
        run is a scalar recurrence.  ``pre_ns``/``post_ns`` are the
        multi-grid local-phase timeouts (``None`` = scope has none)."""
        strategy = scope.strategy
        n = len(ids)
        t = scope.engine.now
        for r in range(n_syncs):
            a = t + pre_ns if pre_ns is not None else t
            release, lag = _uniform_release(strategy, a, n)
            f = release + lag if lag is not None else release
            if post_ns is not None:
                f = f + post_ns
            if collect_trace:
                for m in ids:
                    trace[(m, r)] = f
            t = f
        return t

    def _run_grid(
        self,
        scope: "GridGroup",
        n_syncs: int,
        ids: Tuple[int, ...],
        collect_trace: bool,
        trace: Dict[Tuple[int, int], float],
    ) -> float:
        """Grid ladder: uniform arrivals in round 0, then per-SM release
        port chains stagger the members into ``blocks_per_sm`` waves that
        persist through later rounds.

        Per round: arrivals (member order, nondecreasing) -> counter
        chain -> release at ``R`` (+ detection lag) -> every port serves
        its ``b`` members round-robin for ``wpb`` warp grants each.  All
        ports carry identical grant chains, so one ``np.cumsum`` prices
        them all; member ``m`` (rank ``m // sm_count``) finishes at slot
        ``(wpb - 1) * b + rank`` — chain index ``+1`` past the start.
        """
        strategy = scope.strategy
        sm = scope.sm_count
        b = scope.blocks_per_sm
        wpb = scope.warps_per_block
        n = scope.total_blocks
        arrive_ns = scope._t_arrive.delay
        release_ns = scope._t_release.delay
        slots = wpb * b

        ranks = np.arange(n, dtype=np.intp) // sm
        step = np.empty(slots + 1, dtype=np.float64)
        step[1:] = release_ns
        finish: Optional[np.ndarray] = None
        final = scope.engine.now
        for r in range(n_syncs):
            if finish is None:
                arrive = scope.engine.now + arrive_ns
                release, lag = _uniform_release(strategy, arrive, n)
            else:
                # Broadcast add == the same scalar add per member.
                arrivals = finish + arrive_ns
                release, lag = _staggered_release(strategy, arrivals)
            step[0] = release + lag if lag is not None else release
            chain = np.cumsum(step)
            finish = chain[1 + (wpb - 1) * b + ranks]
            final = float(chain[-1])
            if collect_trace:
                for m, f in zip(ids, finish.tolist()):
                    trace[(m, r)] = f
        return final

    def _commit(
        self,
        scope: "BarrierScope",
        n_syncs: int,
        n_members: int,
        final_ns: float,
    ) -> None:
        """Leave the scope/strategy/engine in the exact observable state
        the engine-backed run produces: advanced clock, released rounds,
        counter op counts, poll detections, fired release signals."""
        strategy = scope.strategy
        strategy.rounds_released += n_syncs
        cls = strategy.__class__
        if cls is CooperativeBarrier:
            if strategy._counter_port is not None:
                strategy._counter_port.ops += n_members * n_syncs
        elif cls is SoftwareAtomicBarrier:
            strategy._counter_port.ops += (n_members + 1) * n_syncs
            if strategy.channel is not None:
                strategy.channel.detections += n_members * n_syncs
        for r in range(n_syncs):
            rnd = scope.round_state(r)
            rnd.count = strategy.expected
            rnd.release.fired = True
        scope.engine.now = final_ns


register_backend(AnalyticBackend())
