"""Simulation execution backends behind one dispatcher.

A :class:`~repro.sim.backends.base.SimBackend` turns a barrier scope and
a round count into a :class:`~repro.sync.scope.ScopeRun`.  Two
implementations ship:

* ``engine`` — the event-precise discrete-event engine (the default;
  byte-identical to the pre-backend pipeline), and
* ``analytic`` — numpy-vectorized closed forms for uniform barrier
  ladders, bit-identical to the engine wherever it is eligible.

Dispatch rules, the eligibility matrix and the closed-form derivations
are documented in ``docs/backends.md``.
"""

from repro.sim.backends.analytic import AnalyticBackend
from repro.sim.backends.base import (
    BACKEND_CHOICES,
    BACKEND_KINDS,
    BACKENDS,
    SimBackend,
    dispatch,
    get_backend,
    register_backend,
    reset_fallback_warnings,
)
from repro.sim.backends.engine import EngineBackend

__all__ = [
    "BACKEND_CHOICES",
    "BACKEND_KINDS",
    "BACKENDS",
    "SimBackend",
    "EngineBackend",
    "AnalyticBackend",
    "dispatch",
    "get_backend",
    "register_backend",
    "reset_fallback_warnings",
]
