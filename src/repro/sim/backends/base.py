"""The ``SimBackend`` protocol, registry, and the per-run dispatcher.

A backend executes barrier rounds for a scope.  The contract mirrors
:meth:`repro.sync.scope.BarrierScope.run_rounds`: given a scope, a round
count and the member ids, produce the :class:`~repro.sync.scope.ScopeRun`
trace *and* leave the scope in the same observable state the engine
would (advanced clock, counter op counts, released rounds) — so code
downstream of a simulation cannot tell which backend produced it.

Dispatch is by name:

* ``"engine"`` — always run the discrete-event engine.
* ``"analytic"`` — run the closed forms when the workload is eligible
  (see :meth:`SimBackend.ineligible_reason`); ineligible workloads fall
  back to the engine with a single warning per (scope type, reason).
* ``"auto"`` — analytic when eligible, engine otherwise, silently.

Unknown names raise, listing the valid set — the same loud-failure
contract as scenario overrides.
"""

from __future__ import annotations

import warnings
from typing import (
    TYPE_CHECKING,
    Dict,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sync.scope import BarrierScope, ScopeRun

__all__ = [
    "BACKEND_KINDS",
    "BACKEND_CHOICES",
    "BACKENDS",
    "SimBackend",
    "dispatch",
    "get_backend",
    "register_backend",
    "reset_fallback_warnings",
]

#: Concrete backend implementations, in preference order.
BACKEND_KINDS: Tuple[str, ...] = ("engine", "analytic")

#: Names the ``backend`` knob accepts (``auto`` = analytic when eligible).
BACKEND_CHOICES: Tuple[str, ...] = ("engine", "analytic", "auto")


@runtime_checkable
class SimBackend(Protocol):
    """Structural interface of one execution backend."""

    #: Registry name (``"engine"``, ``"analytic"``, ...).
    name: str

    def ineligible_reason(
        self, scope: "BarrierScope", n_syncs: int, members: Sequence[int]
    ) -> Optional[str]:
        """``None`` when this backend can run the workload exactly;
        otherwise a human-readable reason for the dispatcher's fallback."""
        ...

    def run_rounds(
        self,
        scope: "BarrierScope",
        n_syncs: int,
        members: Tuple[int, ...],
        collect_trace: bool = True,
    ) -> "ScopeRun":
        ...


BACKENDS: Dict[str, SimBackend] = {}


def register_backend(backend: SimBackend) -> SimBackend:
    """Add a backend to the registry (last registration of a name wins)."""
    BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> SimBackend:
    """Look up a concrete backend by name; unknown names fail loudly."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(BACKEND_CHOICES)}"
        ) from None


# One fallback warning per (scope type, reason) per process: a heat-map
# sweep that is ineligible for one structural reason should say so once,
# not once per cell.  Tests reset this via reset_fallback_warnings().
_FALLBACK_WARNED: Set[Tuple[str, str]] = set()


def reset_fallback_warnings() -> None:
    """Forget which fallback warnings were already emitted (test hook)."""
    _FALLBACK_WARNED.clear()


def dispatch(
    scope: "BarrierScope",
    n_syncs: int,
    members: Tuple[int, ...],
    choice: str,
    collect_trace: bool = True,
) -> "ScopeRun":
    """Resolve a backend choice for one run and execute it.

    ``choice`` is a name from :data:`BACKEND_CHOICES` or a ready-made
    :class:`SimBackend` instance (runs unconditionally, no fallback).
    """
    if not isinstance(choice, str):
        return choice.run_rounds(scope, n_syncs, members, collect_trace)
    if choice == "engine":
        return BACKENDS["engine"].run_rounds(scope, n_syncs, members, collect_trace)
    if choice not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown backend {choice!r}; available: "
            f"{', '.join(BACKEND_CHOICES)}"
        )
    analytic = BACKENDS["analytic"]
    reason = analytic.ineligible_reason(scope, n_syncs, members)
    if reason is None:
        return analytic.run_rounds(scope, n_syncs, members, collect_trace)
    if choice == "analytic":
        key = (type(scope).__name__, reason)
        if key not in _FALLBACK_WARNED:
            _FALLBACK_WARNED.add(key)
            warnings.warn(
                f"analytic backend cannot run {type(scope).__name__} "
                f"({reason}); falling back to the event-precise engine",
                RuntimeWarning,
                stacklevel=3,
            )
    return BACKENDS["engine"].run_rounds(scope, n_syncs, members, collect_trace)
