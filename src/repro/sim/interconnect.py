"""Multi-GPU interconnect topologies.

The paper attributes its multi-grid synchronization plateaus (2–5 GPUs vs
6–8 GPUs, Fig 8/9) to "the internal NVLink network structure of DGX-1".
We encode the actual DGX-1 (V100) NVLink hybrid cube-mesh as a
:mod:`networkx` graph and derive hop counts from it, so the plateau
structure *emerges from the topology* rather than being tabulated.

DGX-1 NVLink link list (Nvidia DGX-1 system architecture whitepaper)::

    quad 0: 0-1 0-2 0-3  1-2 1-3  2-3   (plus intra-quad double links)
    quad 1: 4-5 4-6 4-7  5-6 5-7  6-7
    cross : 0-4  1-5  2-6  3-7

GPU *i* therefore reaches its own quad and its cube partner in one hop, and
the remaining three GPUs of the other quad in two hops.  With GPU 0 as the
barrier leader: sets {0..k} for k<=4 are all 1-hop; adding GPU 5, 6 or 7
introduces 2-hop members — exactly where the paper's latency jumps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import networkx as nx

__all__ = [
    "Interconnect",
    "build_dgx1_nvlink",
    "build_nvswitch",
    "build_ring",
    "build_pcie",
    "build_interconnect",
    "DGX1_NVLINK_LINKS",
    "INTERCONNECT_KINDS",
]

# Hybrid cube-mesh of the V100 DGX-1 (single-link edges; the doubled links
# inside a quad affect bandwidth, not barrier hop count, so they are
# represented by an edge attribute instead of parallel edges).
DGX1_NVLINK_LINKS: Tuple[Tuple[int, int], ...] = (
    (0, 1), (0, 2), (0, 3), (0, 4),
    (1, 2), (1, 3), (1, 5),
    (2, 3), (2, 6),
    (3, 7),
    (4, 5), (4, 6), (4, 7),
    (5, 6), (5, 7),
    (6, 7),
)


@dataclass(frozen=True)
class LinkSpec:
    """Per-link characteristics used by the peer-transfer model."""

    latency_ns: float
    bandwidth_gbps: float


class Interconnect:
    """A GPU-to-GPU network with hop and bandwidth queries."""

    def __init__(self, name: str, graph: nx.Graph, link: LinkSpec):
        if graph.number_of_nodes() == 0:
            raise ValueError("interconnect graph must not be empty")
        self.name = name
        self.graph = graph
        self.link = link
        self._hops = dict(nx.all_pairs_shortest_path_length(graph))

    @property
    def gpu_count(self) -> int:
        return self.graph.number_of_nodes()

    def hops(self, src: int, dst: int) -> int:
        """Shortest hop count between two GPUs (0 for src == dst)."""
        try:
            return self._hops[src][dst]
        except KeyError:
            raise ValueError(f"no path {src} -> {dst} in {self.name}") from None

    def max_hops_from(self, leader: int, members: Sequence[int]) -> int:
        """Maximum hop distance from ``leader`` to any member GPU."""
        if leader not in self.graph:
            raise ValueError(f"GPU {leader} not in {self.name}")
        return max((self.hops(leader, m) for m in members), default=0)

    def two_hop_members(self, leader: int, members: Sequence[int]) -> List[int]:
        """Member GPUs at distance >= 2 from the leader."""
        return [m for m in members if self.hops(leader, m) >= 2]

    def neighbors(self, gpu: int) -> List[int]:
        return sorted(self.graph.neighbors(gpu))

    def peer_transfer_ns(self, src: int, dst: int, nbytes: int) -> float:
        """Time to move ``nbytes`` from ``src`` to ``dst`` (store-and-forward
        per hop for the latency part, bottleneck link bandwidth for the
        payload part)."""
        if src == dst:
            return 0.0
        h = self.hops(src, dst)
        return h * self.link.latency_ns + nbytes / self.link.bandwidth_gbps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interconnect({self.name!r}, gpus={self.gpu_count})"


def build_dgx1_nvlink() -> Interconnect:
    """The 8-GPU DGX-1 NVLink hybrid cube-mesh.

    NVLink 2.0: ~25 GB/s per direction per link; intra-quad GPU pairs with
    doubled links get a ``double`` edge attribute.  One-hop latency ~1.3 us
    for a flag round-trip under barrier conditions (folded into the
    cross-GPU calibration; the LinkSpec latency is the raw write latency).
    """
    g = nx.Graph()
    g.add_nodes_from(range(8))
    for a, b in DGX1_NVLINK_LINKS:
        g.add_edge(a, b, double=(a // 4 == b // 4))
    return Interconnect("dgx1-nvlink", g, LinkSpec(latency_ns=700.0, bandwidth_gbps=25.0))


def build_nvswitch(gpu_count: int = 16) -> Interconnect:
    """DGX-2-style NVSwitch fabric: a non-blocking crossbar.

    Every GPU pair is exactly one switch traversal apart regardless of
    count, so scenario sweeps over an NVSwitch node show *no* two-hop
    plateau — the structural contrast to the DGX-1 cube-mesh.  Modeled as
    a complete graph (the switch ASICs are transparent to hop counting);
    NVLink 2.0 per-link bandwidth, slightly higher latency than a direct
    NVLink hop for the switch traversal.
    """
    if gpu_count < 1:
        raise ValueError("gpu_count must be >= 1")
    if gpu_count > 16:
        raise ValueError(f"NVSwitch backplane tops out at 16 GPUs, requested {gpu_count}")
    g: nx.Graph = nx.complete_graph(gpu_count)  # n nodes even when n == 1
    return Interconnect("nvswitch", g, LinkSpec(latency_ns=900.0, bandwidth_gbps=25.0))


def build_ring(gpu_count: int = 8) -> Interconnect:
    """Unidirectional-bandwidth ring (NCCL-style allreduce topology).

    Hop counts grow linearly with ring distance (max ``n // 2``), the
    opposite extreme to the NVSwitch crossbar: barrier sweeps over a ring
    show a latency *staircase* instead of the DGX-1's single plateau jump.
    """
    if gpu_count < 1:
        raise ValueError("gpu_count must be >= 1")
    g = nx.Graph()
    g.add_nodes_from(range(gpu_count))
    if gpu_count == 2:
        g.add_edge(0, 1)
    elif gpu_count > 2:
        for i in range(gpu_count):
            g.add_edge(i, (i + 1) % gpu_count)
    return Interconnect("ring", g, LinkSpec(latency_ns=700.0, bandwidth_gbps=25.0))


def build_pcie(gpu_count: int = 2) -> Interconnect:
    """PCIe tree: every GPU pair communicates through the host root complex.

    Modeled as a star around a virtual switch — here simply a complete graph
    with uniformly slow links, since every peer path crosses the same
    root complex (the paper's dual-P100 box).
    """
    if gpu_count < 1:
        raise ValueError("gpu_count must be >= 1")
    g = nx.complete_graph(gpu_count) if gpu_count > 1 else nx.Graph([(0, 0)])
    if gpu_count == 1:
        g = nx.Graph()
        g.add_node(0)
    return Interconnect("pcie", g, LinkSpec(latency_ns=1900.0, bandwidth_gbps=11.0))


# Topology kinds accepted by :func:`build_interconnect` (and therefore by
# ``Scenario.interconnect`` overrides on the experiment CLI).
INTERCONNECT_KINDS = ("nvlink-cube-mesh", "nvswitch", "ring", "pcie")


def build_interconnect(kind: str, gpu_count: int) -> Interconnect:
    """Factory used by :class:`repro.sim.node.Node`."""
    if kind == "nvlink-cube-mesh":
        ic = build_dgx1_nvlink()
        if gpu_count > ic.gpu_count:
            raise ValueError(f"DGX-1 has 8 GPUs, requested {gpu_count}")
        if gpu_count < ic.gpu_count:
            sub = ic.graph.subgraph(range(gpu_count)).copy()
            return Interconnect("dgx1-nvlink", sub, ic.link)
        return ic
    if kind == "nvswitch":
        return build_nvswitch(gpu_count)
    if kind == "ring":
        return build_ring(gpu_count)
    if kind == "pcie":
        return build_pcie(gpu_count)
    raise ValueError(
        f"unknown interconnect kind {kind!r}; available: {', '.join(INTERCONNECT_KINDS)}"
    )
