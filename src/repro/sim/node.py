"""Multi-GPU node model: devices + interconnect + multi-grid barrier.

The multi-grid barrier (``multi_grid.sync()``) has two phases:

* a **local phase** per GPU — structurally the grid barrier but with
  system-scope fences, making every per-block and per-warp cost heavier
  (the :class:`~repro.sim.arch.MultiGridLocalCalib` block, fit to the
  1-GPU columns of Figs 7/8);
* a **cross-GPU phase** — leader GPUs exchange arrival/release flags over
  the interconnect.  Its cost depends on the *topology*: on the DGX-1
  cube-mesh, every GPU reachable in one NVLink hop from the leader adds a
  small increment, while any two-hop member forces the flag traffic
  through an intermediate GPU and adds the large penalty that creates the
  paper's 2–5 GPU vs 6–8 GPU plateaus (Figs 8/9).

Partial participation — whether a missing GPU or a missing block inside
one GPU — hangs the barrier (Section VIII-B): the simulation raises
:class:`~repro.sim.engine.DeadlockError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence

from repro.sim.arch import NodeSpec
from repro.sim.device import Device
from repro.sim.engine import AllOf, Engine, Signal, Timeout
from repro.sim.interconnect import Interconnect, build_interconnect
from repro.sim.occupancy import blocks_per_sm as occ_blocks_per_sm

__all__ = [
    "Node",
    "MultiGridSyncResult",
    "multigrid_local_latency_ns",
    "cross_gpu_latency_ns",
    "simulate_multigrid_sync",
]


@dataclass(frozen=True)
class MultiGridSyncResult:
    """Outcome of a multi-grid sync micro-benchmark."""

    gpu_ids: tuple
    blocks_per_sm: int
    threads_per_block: int
    n_syncs: int
    total_ns: float
    local_ns: float
    cross_ns: float

    @property
    def latency_per_sync_ns(self) -> float:
        return self.total_ns / self.n_syncs

    @property
    def latency_per_sync_us(self) -> float:
        return self.latency_per_sync_ns / 1e3


class Node:
    """A multi-GPU server: devices, interconnect, peer-access matrix."""

    def __init__(self, spec: NodeSpec, gpu_count: Optional[int] = None):
        n = gpu_count if gpu_count is not None else spec.gpu_count
        if not (1 <= n <= spec.gpu_count):
            raise ValueError(
                f"gpu_count must be in [1, {spec.gpu_count}] for {spec.name}"
            )
        self.spec = spec
        self.devices: List[Device] = [Device(spec.gpu, i) for i in range(n)]
        self.interconnect: Interconnect = build_interconnect(spec.interconnect, n)

    @property
    def gpu_count(self) -> int:
        return len(self.devices)

    def device(self, index: int) -> Device:
        try:
            return self.devices[index]
        except IndexError:
            raise ValueError(
                f"GPU {index} out of range [0,{self.gpu_count})"
            ) from None

    def enable_all_peer_access(self) -> None:
        """Enable peer access between every device pair (DGX-style)."""
        for a in self.devices:
            for b in self.devices:
                a.enable_peer_access(b.index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.spec.name!r}, gpus={self.gpu_count})"


def multigrid_local_latency_ns(
    spec: NodeSpec, blocks_per_sm: int, threads_per_block: int
) -> float:
    """Single-GPU component of one multi-grid sync.

    ``T = base + pb*b + pw*w + pbw*b*w + pw2*w^2`` with ``b`` = blocks/SM
    and ``w`` = warps/SM (relative LSQ fit to the 1-GPU panels of Figs 7/8;
    DESIGN.md §5).
    """
    gpu = spec.gpu
    occ = occ_blocks_per_sm(gpu, threads_per_block)
    if blocks_per_sm > occ.blocks_per_sm:
        raise ValueError(
            f"{blocks_per_sm} blocks/SM x {threads_per_block} thr/blk "
            f"not co-resident on {gpu.name}"
        )
    return gpu.multigrid_local.local_ns(
        blocks_per_sm, blocks_per_sm * occ.warps_per_block
    )


def cross_gpu_latency_ns(
    spec: NodeSpec,
    interconnect: Interconnect,
    gpu_ids: Sequence[int],
    blocks_per_sm: int,
) -> float:
    """Cross-GPU phase of one multi-grid sync over ``gpu_ids``.

    ``T = base + per_gpu*(n-1) + hop2_penalty*[max_hop>=2]
          + per_2hop*n_2hop + release_coef*(b^1.5 - 1)``

    Hop counts come from the interconnect graph with the lowest-numbered
    participant as leader (CUDA uses the first device of the launch).
    """
    n = len(gpu_ids)
    if n <= 1:
        return 0.0
    cg = spec.cross_gpu
    leader = min(gpu_ids)
    max_hop = interconnect.max_hops_from(leader, list(gpu_ids))
    n_2hop = len(interconnect.two_hop_members(leader, list(gpu_ids)))
    t = cg.base_ns + cg.per_gpu_ns * (n - 1)
    if max_hop >= 2:
        t += cg.hop2_penalty_ns + cg.per_2hop_gpu_ns * n_2hop
    t += cg.release_coef_ns * (blocks_per_sm**cg.release_exponent - 1.0)
    return t


def simulate_multigrid_sync(
    node: Node,
    blocks_per_sm: int,
    threads_per_block: int,
    gpu_ids: Optional[Sequence[int]] = None,
    n_syncs: int = 1,
    participating_gpus: Optional[Sequence[int]] = None,
    full_local_participation: bool = True,
    engine: Optional[Engine] = None,
) -> MultiGridSyncResult:
    """Simulate ``n_syncs`` multi-grid barriers across ``gpu_ids``.

    Parameters
    ----------
    participating_gpus:
        GPUs that actually call ``sync()``.  A strict subset of
        ``gpu_ids`` deadlocks (Section VIII-B).
    full_local_participation:
        When false, one GPU's grid only partially arrives — also a
        deadlock, covering the "parts of blocks in a multi-grid group"
        case of the paper's pitfall matrix.
    """
    if n_syncs < 1:
        raise ValueError("n_syncs must be >= 1")
    ids = tuple(gpu_ids) if gpu_ids is not None else tuple(range(node.gpu_count))
    if not ids:
        raise ValueError("gpu_ids must not be empty")
    for g in ids:
        node.device(g)  # validates range
    arrivals_expected = set(ids)
    callers = set(participating_gpus) if participating_gpus is not None else set(ids)
    if not callers <= arrivals_expected:
        raise ValueError("participating_gpus must be a subset of gpu_ids")

    local_ns = multigrid_local_latency_ns(node.spec, blocks_per_sm, threads_per_block)
    cross_ns = cross_gpu_latency_ns(node.spec, node.interconnect, ids, blocks_per_sm)
    arrive_ns = 0.5 * local_ns
    release_local_ns = local_ns - arrive_ns

    eng = engine or Engine()
    rounds: List[Dict] = [
        {"count": 0, "release": Signal(eng, name=f"mgrid-release-{r}")}
        for r in range(n_syncs)
    ]

    t_arrive = Timeout(arrive_ns)
    t_release_local = Timeout(release_local_ns)

    def gpu_proc(gid: int) -> Generator:
        for r in range(n_syncs):
            rnd = rounds[r]
            yield t_arrive
            if not full_local_participation:
                # A block inside this GPU never arrived: the local grid
                # phase can never finish, so this GPU never reports.
                yield Signal(eng, name=f"gpu{gid}-stuck-local")
            rnd["count"] += 1
            if rnd["count"] == len(ids):
                eng.schedule_fire(cross_ns, rnd["release"])
            yield rnd["release"]
            yield t_release_local

    t0 = eng.now
    for gid in sorted(callers):
        eng.process(gpu_proc(gid), name=f"mgrid-gpu{gid}")
    eng.run()  # DeadlockError when callers < gpu_ids or local grids hang

    return MultiGridSyncResult(
        gpu_ids=ids,
        blocks_per_sm=blocks_per_sm,
        threads_per_block=threads_per_block,
        n_syncs=n_syncs,
        total_ns=eng.now - t0,
        local_ns=local_ns,
        cross_ns=cross_ns,
    )
