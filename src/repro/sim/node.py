"""Multi-GPU node model: devices + interconnect + multi-grid cost model.

The multi-grid barrier (``multi_grid.sync()``) has two phases — a
per-GPU **local phase** (grid barrier with system-scope fences) and a
topology-dependent **cross-GPU phase** (leader flag exchange over the
interconnect; the DGX-1 cube-mesh's two-hop members create the paper's
2–5 vs 6–8 GPU plateaus, Figs 8/9).  The DES protocol now lives in
:class:`repro.sync.MultiGridGroup`; :func:`simulate_multigrid_sync`
remains as a deprecated shim delegating there.  The closed-form phase
models (:func:`multigrid_local_latency_ns`, :func:`cross_gpu_latency_ns`)
stay here — they are the Figs 7/8 fits, not protocols.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence

from repro.sim.arch import NodeSpec
from repro.sim.device import Device
from repro.sim.engine import Engine
from repro.sim.interconnect import Interconnect, build_interconnect
from repro.sim.occupancy import blocks_per_sm as occ_blocks_per_sm

__all__ = [
    "Node",
    "MultiGridSyncResult",
    "multigrid_local_latency_ns",
    "cross_gpu_latency_ns",
    "simulate_multigrid_sync",
]


@dataclass(frozen=True)
class MultiGridSyncResult:
    """Outcome of a multi-grid sync micro-benchmark."""

    gpu_ids: tuple
    blocks_per_sm: int
    threads_per_block: int
    n_syncs: int
    total_ns: float
    local_ns: float
    cross_ns: float

    @property
    def latency_per_sync_ns(self) -> float:
        return self.total_ns / self.n_syncs

    @property
    def latency_per_sync_us(self) -> float:
        return self.latency_per_sync_ns / 1e3


class Node:
    """A multi-GPU server: devices, interconnect, peer-access matrix."""

    def __init__(self, spec: NodeSpec, gpu_count: Optional[int] = None):
        n = gpu_count if gpu_count is not None else spec.gpu_count
        if not (1 <= n <= spec.gpu_count):
            raise ValueError(
                f"gpu_count must be in [1, {spec.gpu_count}] for {spec.name}"
            )
        self.spec = spec
        self.devices: List[Device] = [Device(spec.gpu, i) for i in range(n)]
        self.interconnect: Interconnect = build_interconnect(spec.interconnect, n)

    @property
    def gpu_count(self) -> int:
        return len(self.devices)

    def device(self, index: int) -> Device:
        try:
            return self.devices[index]
        except IndexError:
            raise ValueError(
                f"GPU {index} out of range [0,{self.gpu_count})"
            ) from None

    def enable_all_peer_access(self) -> None:
        """Enable peer access between every device pair (DGX-style)."""
        for a in self.devices:
            for b in self.devices:
                a.enable_peer_access(b.index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.spec.name!r}, gpus={self.gpu_count})"


@lru_cache(maxsize=4096)
def multigrid_local_latency_ns(
    spec: NodeSpec, blocks_per_sm: int, threads_per_block: int
) -> float:
    """Single-GPU component of one multi-grid sync.

    ``T = base + pb*b + pw*w + pbw*b*w + pw2*w^2`` with ``b`` = blocks/SM
    and ``w`` = warps/SM (relative LSQ fit to the 1-GPU panels of Figs 7/8;
    DESIGN.md §5).
    """
    gpu = spec.gpu
    occ = occ_blocks_per_sm(gpu, threads_per_block)
    if blocks_per_sm > occ.blocks_per_sm:
        raise ValueError(
            f"{blocks_per_sm} blocks/SM x {threads_per_block} thr/blk "
            f"not co-resident on {gpu.name}"
        )
    return gpu.multigrid_local.local_ns(
        blocks_per_sm, blocks_per_sm * occ.warps_per_block
    )


def cross_gpu_latency_ns(
    spec: NodeSpec,
    interconnect: Interconnect,
    gpu_ids: Sequence[int],
    blocks_per_sm: int,
) -> float:
    """Cross-GPU phase of one multi-grid sync over ``gpu_ids``.

    ``T = base + per_gpu*(n-1) + hop2_penalty*[max_hop>=2]
          + per_2hop*n_2hop + release_coef*(b^1.5 - 1)``

    Hop counts come from the interconnect graph with the lowest-numbered
    participant as leader (CUDA uses the first device of the launch).
    """
    return _cross_gpu_latency_cached(
        spec, interconnect, tuple(gpu_ids), blocks_per_sm
    )


@lru_cache(maxsize=4096)
def _cross_gpu_latency_cached(
    spec: NodeSpec,
    interconnect: Interconnect,
    gpu_ids: tuple,
    blocks_per_sm: int,
) -> float:
    # Interconnect hashes by identity, which is the memoization we want:
    # a Node builds its graph once and every group shares it.
    n = len(gpu_ids)
    if n <= 1:
        return 0.0
    cg = spec.cross_gpu
    leader = min(gpu_ids)
    max_hop = interconnect.max_hops_from(leader, list(gpu_ids))
    n_2hop = len(interconnect.two_hop_members(leader, list(gpu_ids)))
    t = cg.base_ns + cg.per_gpu_ns * (n - 1)
    if max_hop >= 2:
        t += cg.hop2_penalty_ns + cg.per_2hop_gpu_ns * n_2hop
    t += cg.release_coef_ns * (blocks_per_sm**cg.release_exponent - 1.0)
    return t


def simulate_multigrid_sync(
    node: Node,
    blocks_per_sm: int,
    threads_per_block: int,
    gpu_ids: Optional[Sequence[int]] = None,
    n_syncs: int = 1,
    participating_gpus: Optional[Sequence[int]] = None,
    full_local_participation: bool = True,
    engine: Optional[Engine] = None,
    strategy=None,
    strategy_knobs=None,
    backend=None,
) -> MultiGridSyncResult:
    """Deprecated shim over :class:`repro.sync.MultiGridGroup`.

    The two-phase multi-grid protocol (and its pluggable strategy
    variants) lives in :mod:`repro.sync`; this wrapper reproduces the
    historical one-shot signature, event-for-event.

    .. deprecated::
        Use ``MultiGridGroup(node, ...).simulate()`` or
        ``CudaRuntime.this_multi_grid(...)`` instead.
    """
    warnings.warn(
        "simulate_multigrid_sync is deprecated; use repro.sync.MultiGridGroup "
        "(or CudaRuntime.this_multi_grid) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.sync import MultiGridGroup

    group = MultiGridGroup(
        node,
        blocks_per_sm,
        threads_per_block,
        gpu_ids=gpu_ids,
        engine=engine,
        strategy=strategy,
        strategy_knobs=strategy_knobs,
        full_local_participation=full_local_participation,
        backend=backend,
    )
    return group.simulate(n_syncs=n_syncs, participating_gpus=participating_gpus)
