"""Discrete-event simulation engine.

The engine is the foundation of the GPU model: every hardware agent (host
thread, stream dispatcher, SM scheduler, warp, barrier unit) is a *process* —
a Python generator driven by the engine.  Processes advance simulated time by
yielding *yieldables*:

``Timeout(delay)``
    Resume after ``delay`` simulated nanoseconds.
``Signal``
    A one-shot broadcast event; resume when somebody calls ``fire()``.
``Process``
    Resume when the target process finishes; receives its return value.
    If the target *failed*, its exception is re-raised inside the waiter.
``AllOf([...])``
    Resume when every child yieldable has completed.
``Acquire`` (from :meth:`Resource.acquire`)
    Resume when a slot of the resource has been granted.

Time is a float measured in **nanoseconds**.  Conversion between device
cycles and nanoseconds lives in :mod:`repro.sim.clock` so that V100 and P100
frequency domains can coexist on one timeline (needed for the multi-GPU
experiments where the host clock spans devices).

Scheduling fast path
--------------------
The event loop is the hot path of the entire reproduction, so the engine
keeps two queues:

* a **ready deque** of ``(seq, target, payload)`` records for zero-delay
  events (process resumes, immediate callbacks) — amortized O(1) per event,
  no ``heapq`` traffic and no closure allocation;
* a **binary heap** of ``(time, seq, target, payload)`` records for events
  in the future.

Both share one monotonically increasing sequence counter, and the run loop
merges them by ``(time, seq)``, so FIFO ordering at equal timestamps is
*exactly* the ordering a single heap would produce.  ``docs/engine.md``
documents the invariants.

Deadlock detection
------------------
Section VIII-B of the paper observes real deadlocks when a *subset* of a grid
or multi-grid group calls ``sync()``.  We reproduce those experiments by
running them on the simulator and detecting quiescence: if the event queues
drain while processes are still blocked on signals, the engine raises
:class:`DeadlockError` naming every blocked process.  This is the simulated
analogue of the kernel hanging on real hardware.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from heapq import heappush as _heappush
from typing import Any, Callable, Generator, Iterable, NamedTuple, Optional

from repro.sanitize import events as _sanitize

__all__ = [
    "Engine",
    "Process",
    "Signal",
    "Timeout",
    "WakeAt",
    "AllOf",
    "Resource",
    "BlockedWaiter",
    "DeadlockError",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation engine."""


class BlockedWaiter(NamedTuple):
    """One blocked process at the moment the simulation quiesced.

    ``target`` is the actual yieldable the process was suspended on (a
    :class:`Signal`, :class:`Process`, acquire record, ...), so callers —
    the sanitizer's blame graph, partial-participation experiments — can
    group waiters by the object they hang on instead of parsing strings.
    """

    process: str
    wait_kind: str
    target_name: str
    target: Any

    def describe(self) -> str:
        return f"{self.process} blocked on {self.wait_kind} {self.target_name!r}"


class DeadlockError(SimulationError):
    """Raised when the event queues drain while processes remain blocked.

    Attributes
    ----------
    blocked:
        Names of the processes that were still waiting when the simulation
        quiesced.  The paper's partial-group sync experiments assert on this.
    waiters:
        Structured :class:`BlockedWaiter` records for the same processes
        (empty when the raiser had no live-process context, e.g. the
        ``run_process`` never-completed path).
    """

    def __init__(
        self,
        blocked: list[str],
        waiters: Optional[list["BlockedWaiter"]] = None,
    ):
        self.blocked = list(blocked)
        self.waiters: list[BlockedWaiter] = list(waiters) if waiters else []
        preview = ", ".join(self.blocked[:8])
        if len(self.blocked) > 8:
            preview += f", ... ({len(self.blocked)} total)"
        super().__init__(f"simulation deadlocked; blocked processes: [{preview}]")


class _Failure:
    """Wrapper that carries a failed process's exception to its waiters.

    When a resume record's payload is a ``_Failure`` the exception is
    *thrown into* the waiting generator instead of being sent, so a sibling
    yielding a crashed process sees the real error rather than hanging and
    being misreported as a deadlock.
    """

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


class Timeout:
    """Yieldable that resumes the process after ``delay`` nanoseconds.

    ``value`` is delivered back to the generator (defaults to ``None``).
    Negative delays are rejected: simulated hardware cannot travel back in
    time, and silently clamping hides cost-model bugs.

    Instances are immutable, so hot loops may allocate one ``Timeout`` and
    yield it repeatedly.
    """

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative Timeout delay: {delay!r}")
        self.delay = delay if delay.__class__ is float else float(delay)
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class WakeAt:
    """Yieldable that resumes the process at an *absolute* engine time.

    ``time`` must not lie in the past.  Needed where a process has
    accumulated a future timestamp lane-locally (the SIMT fast path's
    staggered divergence regions sum ``t = t + delay`` per lane) and must
    land on it *bit-exactly*: a relative ``Timeout(t - now)`` cannot
    guarantee ``now + (t - now) == t`` in floats, and a one-ulp slip on a
    rendezvous timestamp would break the fast path's bit-identical
    equivalence contract.
    """

    __slots__ = ("time", "value")

    def __init__(self, time: float, value: Any = None):
        self.time = time if time.__class__ is float else float(time)
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WakeAt({self.time!r})"


class _WaiterBatch:
    """One ready-queue record standing in for a whole waiter list.

    Firing a signal with thousands of waiters (a barrier release wavefront)
    used to enqueue one ``(seq, proc, value)`` record per waiter.  Instead,
    large waiter lists are enqueued as a *single* record whose target is a
    ``_WaiterBatch``; the run loop dispatches it like a signal (via
    ``fire``), which steps every waiter in subscription order.  Ordering is
    unchanged: the batched waiters held consecutive positions in the ready
    deque anyway, and any event a resumed waiter schedules lands *after*
    the batch record — exactly where it would have landed after that
    waiter's individual record.  The one per-waiter mechanism that must not
    see the emptier ready deque is the zero-delay trampoline (it would run
    a member's *continuation* before later members wake), so member steps
    run with ``engine._batch_depth`` raised and the trampoline disabled.
    """

    __slots__ = ("engine", "procs")

    def __init__(self, engine: "Engine", procs: list["Process"]):
        self.engine = engine
        self.procs = procs

    def fire(self, value: Any) -> None:
        engine = self.engine
        procs = self.procs
        stepped = 0
        engine._batch_depth += 1
        try:
            for proc in procs:
                stepped += 1
                proc._step(value)
        except BaseException:
            # A member with an unobserved failure re-raises out of _step.
            # The unstepped members must not vanish with this record — in
            # unbatched mode their resume records would still sit at the
            # front of the ready deque, resumable by a later run().
            rest = procs[stepped:]
            if rest:
                engine._ready.appendleft(
                    (next(engine._seq), _WaiterBatch(engine, rest), value)
                )
            raise
        finally:
            engine._batch_depth -= 1
            # The run loop counts this record once; account for the other
            # members actually stepped so events/s matches unbatched runs.
            engine.event_count += stepped - 1


# Waiter lists at least this long are resumed through a _WaiterBatch.
# Short lists keep the per-waiter records: the batch object costs one
# allocation, which only pays off once it replaces several tuples.
_BATCH_FIRE_THRESHOLD = 8


class Signal:
    """One-shot broadcast event.

    Any number of processes may wait on a signal; ``fire(value)`` wakes all of
    them with ``value``.  Firing twice is an error (one-shot semantics keep
    barrier protocols honest).  A signal may be fired before anyone waits; a
    later wait completes immediately.
    """

    __slots__ = ("engine", "name", "fired", "value", "_waiters", "callbacks")

    def __init__(self, engine: "Engine", name: str = "signal"):
        self.engine = engine
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: list[Process] = []
        self.callbacks: list[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        """Fire the signal, waking every waiter at the current time."""
        if self.fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        if _sanitize.MONITOR is not None:
            _sanitize.MONITOR.on_signal_fire(self, self.engine.now)
        self.fired = True
        self.value = value
        for cb in self.callbacks:
            cb(value)
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            engine = self.engine
            if len(waiters) >= _BATCH_FIRE_THRESHOLD:
                engine._ready.append(
                    (next(engine._seq), _WaiterBatch(engine, waiters), value)
                )
            else:
                ready = engine._ready
                seq = engine._seq
                for proc in waiters:
                    ready.append((next(seq), proc, value))

    def reset(self, name: Optional[str] = None) -> "Signal":
        """Re-arm a fired signal for another round (reusable-signal pattern).

        Only legal once every waiter has been woken.  Callbacks are cleared
        too — they already ran for the previous round, and refiring them on
        the next round would replay stale side effects.
        """
        if self._waiters:
            raise SimulationError(
                f"cannot reset signal {self.name!r} with waiters pending"
            )
        self.fired = False
        self.value = None
        self.callbacks.clear()
        if name is not None:
            self.name = name
        return self

    def _subscribe(self, proc: "Process") -> bool:
        """Register ``proc`` as a waiter.

        Returns ``True`` if the signal already fired (the caller should
        resume immediately instead of blocking).
        """
        if self.fired:
            return True
        self._waiters.append(proc)
        return False

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else f"{len(self._waiters)} waiting"
        return f"Signal({self.name!r}, {state})"


class AllOf:
    """Yieldable that completes when every child completes.

    Children may be :class:`Signal`, :class:`Process` or :class:`Timeout`
    instances.  The delivered value is the list of child values in order.
    A failed child process re-raises its exception inside the waiter.
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Any]):
        self.children = list(children)


class _Acquire:
    """Yieldable produced by :meth:`Resource.acquire`.

    One immutable instance per resource: the grant decision happens when the
    yieldable is dispatched, so ``yield resource.acquire()`` allocates
    nothing on the hot path.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.resource = resource


class Resource:
    """Counted FIFO resource (e.g. an SM barrier unit or an atomic port).

    ``capacity`` slots are granted in request order.  A holder releases with
    :meth:`release`.  The common pattern inside a process::

        grant = yield resource.acquire()
        yield Timeout(service_time)
        resource.release()

    Waiters queue on a :class:`collections.deque` of process records, so
    both grant and release are O(1) (the seed implementation popped a
    Python list and allocated a fresh signal per acquire).
    """

    __slots__ = ("engine", "capacity", "name", "_in_use", "_waiters", "_acquire")

    def __init__(self, engine: "Engine", capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError("Resource capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Process] = deque()
        self._acquire = _Acquire(self)

    def acquire(self) -> _Acquire:
        """Return a yieldable that completes when a slot is granted."""
        return self._acquire

    def release(self) -> None:
        """Release one slot, granting it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot straight to the next waiter: _in_use unchanged.
            self.engine._schedule_resume(self._waiters.popleft(), None)
        else:
            self._in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    @property
    def in_use(self) -> int:
        return self._in_use


class Process:
    """A simulated agent: a generator driven by the engine.

    The generator's ``return`` value becomes the process result, retrievable
    by other processes that yield this process, or via :attr:`result` after
    :meth:`Engine.run` completes.  If the generator raises, the exception is
    delivered to every waiter (thrown into their generators); with no
    waiters it propagates out of :meth:`Engine.run` as before.
    """

    __slots__ = (
        "engine",
        "name",
        "gen",
        "done",
        "result",
        "error",
        "_completion",
        "_waiting_on",
    )

    def __init__(self, engine: "Engine", gen: Generator, name: str = "proc"):
        self.engine = engine
        self.name = name
        self.gen = gen
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._completion = Signal(engine, name=f"{name}.done")
        self._waiting_on: Any = None

    # -- driving ---------------------------------------------------------

    def _step(self, send_value: Any) -> None:
        """Advance the generator by one yield, interpreting the yieldable."""
        engine = self.engine
        gen = self.gen
        while True:
            try:
                if send_value.__class__ is _Failure:
                    yielded = gen.throw(send_value.exc)
                else:
                    yielded = gen.send(send_value)
            except StopIteration as stop:
                self._finish(stop.value)
                return
            except BaseException as exc:  # propagate to waiters or run loop
                if not self._fail(exc):
                    raise
                return
            # Timeout is by far the hottest yieldable: inline it.  A pending
            # timeout can never appear in a deadlock report (the queues are
            # not empty), so _waiting_on is not updated on this path.
            if yielded.__class__ is Timeout:
                delay = yielded.delay
                if delay == 0.0:
                    ready = engine._ready
                    heap = engine._heap
                    # The batch-depth guard: while a _WaiterBatch is mid-
                    # dispatch, its unstepped members are runnable even
                    # though the queues look empty — the trampoline would
                    # run this member's continuation ahead of them.
                    if (
                        not ready
                        and not engine._batch_depth
                        and (not heap or heap[0][0] > engine.now)
                    ):
                        # Sole runnable event: the queued resume would be
                        # dispatched immediately anyway, so step inline
                        # (trampoline) and skip the queue round-trip.
                        engine.event_count += 1
                        if engine.trace:
                            engine.trace_log.append(
                                (engine.now, f"resume {self.name}")
                            )
                        send_value = yielded.value
                        continue
                    ready.append((next(engine._seq), self, yielded.value))
                else:
                    _heappush(
                        engine._heap,
                        (engine.now + delay, next(engine._seq), self, yielded.value),
                    )
                return
            self._dispatch(yielded)
            return

    def _dispatch(self, yielded: Any) -> None:
        engine = self.engine
        self._waiting_on = yielded
        cls = yielded.__class__
        if cls is Signal:
            if yielded._subscribe(self):
                engine._schedule_resume(self, yielded.value)
        elif cls is Process:
            if yielded.done:
                if yielded.error is not None:
                    engine._schedule_resume(self, _Failure(yielded.error))
                else:
                    engine._schedule_resume(self, yielded.result)
            else:
                yielded._completion._waiters.append(self)
        elif cls is _Acquire:
            res = yielded.resource
            if res._in_use < res.capacity:
                res._in_use += 1
                engine._schedule_resume(self, None)
            else:
                res._waiters.append(self)
        elif cls is AllOf:
            self._wait_all(yielded)
        elif cls is WakeAt:
            if yielded.time < engine.now:
                raise SimulationError(
                    f"process {self.name!r} yielded WakeAt({yielded.time!r}) "
                    f"in the past (now={engine.now!r})"
                )
            _heappush(
                engine._heap,
                (yielded.time, next(engine._seq), self, yielded.value),
            )
        elif isinstance(yielded, (Timeout, Signal, Process, _Acquire, AllOf)):
            # Subclass of a yieldable: take the generic (isinstance) path.
            self._dispatch_slow(yielded)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported object {yielded!r}"
            )

    def _dispatch_slow(self, yielded: Any) -> None:
        """Generic dispatch for yieldable *subclasses* (rare)."""
        engine = self.engine
        if isinstance(yielded, Timeout):
            engine._schedule_proc(yielded.delay, self, yielded.value)
        elif isinstance(yielded, Signal):
            if yielded._subscribe(self):
                engine._schedule_resume(self, yielded.value)
        elif isinstance(yielded, Process):
            if yielded.done:
                if yielded.error is not None:
                    engine._schedule_resume(self, _Failure(yielded.error))
                else:
                    engine._schedule_resume(self, yielded.result)
            else:
                yielded._completion._waiters.append(self)
        elif isinstance(yielded, _Acquire):
            res = yielded.resource
            if res._in_use < res.capacity:
                res._in_use += 1
                engine._schedule_resume(self, None)
            else:
                res._waiters.append(self)
        else:  # AllOf subclass
            self._wait_all(yielded)

    def _wait_all(self, allof: AllOf) -> None:
        engine = self.engine
        children = allof.children
        if not children:
            engine._schedule_resume(self, [])
            return
        values: list[Any] = [None] * len(children)
        remaining = len(children)

        def make_cb(i: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                nonlocal remaining
                if remaining <= 0:
                    return
                if value.__class__ is _Failure:
                    remaining = -1  # first failure wins; ignore the rest
                    engine._schedule_resume(self, value)
                    return
                values[i] = value
                remaining -= 1
                if remaining == 0:
                    engine._schedule_resume(self, values)

            return cb

        for i, child in enumerate(children):
            cb = make_cb(i)
            if isinstance(child, Signal):
                if child.fired:
                    cb(child.value)
                else:
                    child.callbacks.append(cb)
            elif isinstance(child, Process):
                if child.done:
                    if child.error is not None:
                        cb(_Failure(child.error))
                    else:
                        cb(child.result)
                else:
                    child._completion.callbacks.append(cb)
            elif isinstance(child, Timeout):
                engine.schedule(child.delay, lambda cb=cb, c=child: cb(c.value))
            else:
                raise SimulationError(f"AllOf child unsupported: {child!r}")

    def _finish(self, value: Any) -> None:
        self.done = True
        self.result = value
        self._waiting_on = None
        self.engine._live.discard(self)
        self._completion.fire(value)

    def _fail(self, exc: BaseException) -> bool:
        """Record failure and notify observers.

        Returns ``True`` when at least one waiter or callback received the
        error; with no observers the caller re-raises so unobserved failures
        still abort :meth:`Engine.run` (the seed behaviour).
        """
        self.error = exc
        self.done = True
        self._waiting_on = None
        self.engine._live.discard(self)
        comp = self._completion
        failure = _Failure(exc)
        # Mark completion as resolved-with-failure so late subscribers (via
        # _dispatch's done-process path) see the error too.
        comp.fired = True
        comp.value = failure
        notified = False
        for cb in comp.callbacks:
            cb(failure)
            notified = True
        if comp._waiters:
            waiters, comp._waiters = comp._waiters, []
            for proc in waiters:
                self.engine._schedule_resume(proc, failure)
            notified = True
        return notified

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else _describe_wait(self._waiting_on)
        return f"Process({self.name!r}, {state})"


def _describe_wait(waiting_on: Any) -> str:
    """Human-readable description of what a process is blocked on.

    The hot path stores the yieldable object itself (no f-string per
    dispatch); this formats it lazily for deadlock reports and ``repr``.
    """
    if waiting_on is None:
        return "ready"
    if isinstance(waiting_on, Timeout):
        return f"timeout({waiting_on.delay})"
    if isinstance(waiting_on, Signal):
        return f"signal({waiting_on.name})"
    if isinstance(waiting_on, Process):
        return f"process({waiting_on.name})"
    if isinstance(waiting_on, _Acquire):
        return f"acquire({waiting_on.resource.name})"
    if isinstance(waiting_on, AllOf):
        return f"allof({len(waiting_on.children)})"
    return repr(waiting_on)


def _wait_kind(waiting_on: Any) -> tuple[str, str]:
    """(kind, target-name) pair for structured deadlock reports."""
    if waiting_on is None:
        return "ready", ""
    if isinstance(waiting_on, Signal):
        return "signal", waiting_on.name
    if isinstance(waiting_on, Process):
        return "process", waiting_on.name
    if isinstance(waiting_on, _Acquire):
        return "acquire", waiting_on.resource.name
    if isinstance(waiting_on, AllOf):
        return "allof", f"{len(waiting_on.children)} children"
    if isinstance(waiting_on, (Timeout, WakeAt)):
        return "timeout", repr(waiting_on)
    return "other", repr(waiting_on)


def _describe_event(target: Any, payload: Any) -> str:
    """Trace-log description of one event record."""
    if target is None:
        return getattr(payload, "__qualname__", repr(payload))
    if isinstance(target, Process):
        return f"resume {target.name}"
    if isinstance(target, _WaiterBatch):
        return f"resume batch of {len(target.procs)}"
    return f"fire {target.name}"


class Engine:
    """Ready-queue + heap scheduled discrete-event simulator.

    Zero-delay events (the dominant class: every process resume) go on a
    FIFO deque; future events go on a binary heap.  A shared sequence
    counter lets the run loop merge both queues with exact FIFO-at-equal-
    time semantics.  Events are ``(target, payload)`` records — a
    :class:`Process` to resume, a :class:`Signal` to fire, or a bare
    callable — so the loop allocates no closures.

    Parameters
    ----------
    trace:
        When true, every event execution is appended to :attr:`trace_log` as
        ``(time, description)`` — used by a few methodology tests and handy
        when debugging barrier protocols.
    """

    def __init__(self, trace: bool = False):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Any, Any]] = []
        self._ready: deque[tuple[int, Any, Any]] = deque()
        self._seq = itertools.count()
        self._live: set[Process] = set()
        self._batch_depth = 0  # >0 while a _WaiterBatch steps its members
        self.trace = trace
        self.trace_log: list[tuple[float, str]] = []
        self.event_count = 0

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay`` ns (FIFO-ordered at equal times)."""
        if delay < 0:
            raise ValueError(f"negative schedule delay: {delay!r}")
        if delay == 0.0:
            self._ready.append((next(self._seq), None, fn))
        else:
            heapq.heappush(
                self._heap, (self.now + delay, next(self._seq), None, fn)
            )

    def schedule_fire(self, delay: float, signal: Signal, value: Any = None) -> None:
        """Fire ``signal(value)`` after ``delay`` ns without a closure.

        Replaces the ``schedule(d, lambda: sig.fire())`` pattern used by
        barrier protocols; the record is dispatched straight from the run
        loop.
        """
        if delay < 0:
            raise ValueError(f"negative schedule delay: {delay!r}")
        if delay == 0.0:
            self._ready.append((next(self._seq), signal, value))
        else:
            heapq.heappush(
                self._heap, (self.now + delay, next(self._seq), signal, value)
            )

    def _schedule_proc(self, delay: float, proc: Process, value: Any) -> None:
        if delay == 0.0:
            self._ready.append((next(self._seq), proc, value))
        else:
            heapq.heappush(
                self._heap, (self.now + delay, next(self._seq), proc, value)
            )

    def _schedule_resume(self, proc: Process, value: Any) -> None:
        self._ready.append((next(self._seq), proc, value))

    def signal(self, name: str = "signal") -> Signal:
        """Create a new :class:`Signal` bound to this engine."""
        return Signal(self, name=name)

    def resource(self, capacity: int = 1, name: str = "resource") -> Resource:
        """Create a new :class:`Resource` bound to this engine."""
        return Resource(self, capacity=capacity, name=name)

    def process(self, gen: Generator, name: str = "proc") -> Process:
        """Register ``gen`` as a process and schedule its first step now."""
        proc = Process(self, gen, name=name)
        self._live.add(proc)
        self._ready.append((next(self._seq), proc, None))
        return proc

    # -- execution -------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        detect_deadlock: bool = True,
    ) -> float:
        """Drain the event queues.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this bound (the pending
            event is left on the heap).  ``None`` runs to quiescence.
        detect_deadlock:
            When the queues drain with live processes still blocked, raise
            :class:`DeadlockError` (the Section VIII-B behaviour).  Disable
            for open-ended servers that legitimately idle.

        Returns
        -------
        float
            Simulated time when the run stopped.
        """
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        trace = self.trace
        now = self.now
        count = 0
        try:
            while True:
                # Merge the two queues by (time, seq): a heap event belongs
                # before the ready head only if it is at the *current* time
                # and was scheduled earlier.
                if ready:
                    if heap:
                        head = heap[0]
                        use_heap = head[0] <= now and head[1] < ready[0][0]
                    else:
                        use_heap = False
                elif heap:
                    use_heap = True
                else:
                    break
                if use_heap:
                    if until is not None and heap[0][0] > until:
                        self.now = until
                        return self.now
                    now, _seq, target, payload = heappop(heap)
                    self.now = now
                else:
                    _seq, target, payload = ready.popleft()
                count += 1
                if trace:
                    self.trace_log.append((now, _describe_event(target, payload)))
                if target.__class__ is Process:
                    target._step(payload)
                elif target is None:
                    payload()
                else:
                    target.fire(payload)
        finally:
            self.event_count += count
        if detect_deadlock and self._live:
            if _sanitize.MONITOR is not None:
                _sanitize.MONITOR.on_deadlock(self, self._live)
            blocked = sorted(
                f"{p.name} waiting on {_describe_wait(p._waiting_on)}"
                for p in self._live
            )
            waiters = sorted(
                (
                    BlockedWaiter(p.name, *_wait_kind(p._waiting_on), p._waiting_on)
                    for p in self._live
                ),
                key=lambda w: (w.process, w.wait_kind, w.target_name),
            )
            raise DeadlockError(blocked, waiters=waiters)
        return self.now

    def run_process(self, gen: Generator, name: str = "main") -> Any:
        """Convenience: register ``gen``, run to quiescence, return result.

        Raises the process's own exception if it failed, or
        :class:`DeadlockError` if the system hung before it finished.
        """
        proc = self.process(gen, name=name)
        self.run()
        if proc.error is not None:  # pragma: no cover - re-raise path
            raise proc.error
        if not proc.done:
            raise DeadlockError([f"{name} never completed"])
        return proc.result

    @property
    def pending_count(self) -> int:
        """Events waiting in either queue (ready deque + heap)."""
        return len(self._ready) + len(self._heap)

    @property
    def live_processes(self) -> list[Process]:
        """Processes that have been started but not yet finished."""
        return list(self._live)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Engine(now={self.now:.1f}ns, pending={self.pending_count}, "
            f"live={len(self._live)})"
        )
