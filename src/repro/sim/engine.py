"""Discrete-event simulation engine.

The engine is the foundation of the GPU model: every hardware agent (host
thread, stream dispatcher, SM scheduler, warp, barrier unit) is a *process* —
a Python generator driven by the engine.  Processes advance simulated time by
yielding *yieldables*:

``Timeout(delay)``
    Resume after ``delay`` simulated nanoseconds.
``Signal``
    A one-shot broadcast event; resume when somebody calls ``fire()``.
``Process``
    Resume when the target process finishes; receives its return value.
``AllOf([...])``
    Resume when every child yieldable has completed.
``Acquire`` (from :meth:`Resource.acquire`)
    Resume when a slot of the resource has been granted.

Time is a float measured in **nanoseconds**.  Conversion between device
cycles and nanoseconds lives in :mod:`repro.sim.clock` so that V100 and P100
frequency domains can coexist on one timeline (needed for the multi-GPU
experiments where the host clock spans devices).

Deadlock detection
------------------
Section VIII-B of the paper observes real deadlocks when a *subset* of a grid
or multi-grid group calls ``sync()``.  We reproduce those experiments by
running them on the simulator and detecting quiescence: if the event heap
drains while processes are still blocked on signals, the engine raises
:class:`DeadlockError` naming every blocked process.  This is the simulated
analogue of the kernel hanging on real hardware.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Engine",
    "Process",
    "Signal",
    "Timeout",
    "AllOf",
    "Resource",
    "DeadlockError",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation engine."""


class DeadlockError(SimulationError):
    """Raised when the event heap drains while processes remain blocked.

    Attributes
    ----------
    blocked:
        Names of the processes that were still waiting when the simulation
        quiesced.  The paper's partial-group sync experiments assert on this.
    """

    def __init__(self, blocked: list[str]):
        self.blocked = list(blocked)
        preview = ", ".join(self.blocked[:8])
        if len(self.blocked) > 8:
            preview += f", ... ({len(self.blocked)} total)"
        super().__init__(f"simulation deadlocked; blocked processes: [{preview}]")


class Timeout:
    """Yieldable that resumes the process after ``delay`` nanoseconds.

    ``value`` is delivered back to the generator (defaults to ``None``).
    Negative delays are rejected: simulated hardware cannot travel back in
    time, and silently clamping hides cost-model bugs.
    """

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative Timeout delay: {delay!r}")
        self.delay = float(delay)
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class Signal:
    """One-shot broadcast event.

    Any number of processes may wait on a signal; ``fire(value)`` wakes all of
    them with ``value``.  Firing twice is an error (one-shot semantics keep
    barrier protocols honest).  A signal may be fired before anyone waits; a
    later wait completes immediately.
    """

    __slots__ = ("engine", "name", "fired", "value", "_waiters", "callbacks")

    def __init__(self, engine: "Engine", name: str = "signal"):
        self.engine = engine
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: list[Process] = []
        self.callbacks: list[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        """Fire the signal, waking every waiter at the current time."""
        if self.fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for cb in self.callbacks:
            cb(value)
        for proc in waiters:
            self.engine._schedule_resume(proc, value)

    def _subscribe(self, proc: "Process") -> bool:
        """Register ``proc`` as a waiter.

        Returns ``True`` if the signal already fired (the caller should
        resume immediately instead of blocking).
        """
        if self.fired:
            return True
        self._waiters.append(proc)
        return False

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else f"{len(self._waiters)} waiting"
        return f"Signal({self.name!r}, {state})"


class AllOf:
    """Yieldable that completes when every child completes.

    Children may be :class:`Signal`, :class:`Process` or :class:`Timeout`
    instances.  The delivered value is the list of child values in order.
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Any]):
        self.children = list(children)


@dataclass
class _Acquire:
    """Internal yieldable produced by :meth:`Resource.acquire`."""

    resource: "Resource"
    signal: Signal


class Resource:
    """Counted FIFO resource (e.g. an SM barrier unit or an atomic port).

    ``capacity`` slots are granted in request order.  A holder releases with
    :meth:`release`.  The common pattern inside a process::

        grant = yield resource.acquire()
        yield Timeout(service_time)
        resource.release()
    """

    def __init__(self, engine: "Engine", capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError("Resource capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: list[Signal] = []

    def acquire(self) -> _Acquire:
        """Return a yieldable that completes when a slot is granted."""
        sig = Signal(self.engine, name=f"{self.name}.acquire")
        if self._in_use < self.capacity:
            self._in_use += 1
            sig.fire()
        else:
            self._queue.append(sig)
        return _Acquire(self, sig)

    def release(self) -> None:
        """Release one slot, granting it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            nxt = self._queue.pop(0)
            nxt.fire()
        else:
            self._in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def in_use(self) -> int:
        return self._in_use


class Process:
    """A simulated agent: a generator driven by the engine.

    The generator's ``return`` value becomes the process result, retrievable
    by other processes that yield this process, or via :attr:`result` after
    :meth:`Engine.run` completes.
    """

    __slots__ = (
        "engine",
        "name",
        "gen",
        "done",
        "result",
        "error",
        "_completion",
        "_waiting_on",
    )

    def __init__(self, engine: "Engine", gen: Generator, name: str = "proc"):
        self.engine = engine
        self.name = name
        self.gen = gen
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._completion = Signal(engine, name=f"{name}.done")
        self._waiting_on: Optional[str] = None

    # -- driving ---------------------------------------------------------

    def _step(self, send_value: Any) -> None:
        """Advance the generator by one yield, interpreting the yieldable."""
        engine = self.engine
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:  # propagate through engine
            self.error = exc
            self.done = True
            engine._live.discard(self)
            raise
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        engine = self.engine
        if isinstance(yielded, Timeout):
            self._waiting_on = f"timeout({yielded.delay})"
            engine.schedule(yielded.delay, lambda: self._step(yielded.value))
        elif isinstance(yielded, Signal):
            self._waiting_on = f"signal({yielded.name})"
            if yielded._subscribe(self):
                engine._schedule_resume(self, yielded.value)
        elif isinstance(yielded, Process):
            self._waiting_on = f"process({yielded.name})"
            if yielded.done:
                engine._schedule_resume(self, yielded.result)
            elif yielded._completion._subscribe(self):
                engine._schedule_resume(self, yielded._completion.value)
        elif isinstance(yielded, _Acquire):
            self._waiting_on = f"acquire({yielded.resource.name})"
            if yielded.signal._subscribe(self):
                engine._schedule_resume(self, None)
        elif isinstance(yielded, AllOf):
            self._wait_all(yielded)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported object {yielded!r}"
            )

    def _wait_all(self, allof: AllOf) -> None:
        engine = self.engine
        children = allof.children
        if not children:
            engine._schedule_resume(self, [])
            return
        values: list[Any] = [None] * len(children)
        remaining = len(children)

        def make_cb(i: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                nonlocal remaining
                values[i] = value
                remaining -= 1
                if remaining == 0:
                    engine._schedule_resume(self, values)

            return cb

        self._waiting_on = f"allof({len(children)})"
        for i, child in enumerate(children):
            cb = make_cb(i)
            if isinstance(child, Signal):
                if child.fired:
                    cb(child.value)
                else:
                    child.callbacks.append(cb)
            elif isinstance(child, Process):
                if child.done:
                    cb(child.result)
                else:
                    child._completion.callbacks.append(cb)
            elif isinstance(child, Timeout):
                engine.schedule(child.delay, lambda cb=cb, c=child: cb(c.value))
            else:
                raise SimulationError(f"AllOf child unsupported: {child!r}")

    def _finish(self, value: Any) -> None:
        self.done = True
        self.result = value
        self._waiting_on = None
        self.engine._live.discard(self)
        self._completion.fire(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else (self._waiting_on or "ready")
        return f"Process({self.name!r}, {state})"


class Engine:
    """Heap-scheduled discrete-event simulator.

    Parameters
    ----------
    trace:
        When true, every event execution is appended to :attr:`trace_log` as
        ``(time, description)`` — used by a few methodology tests and handy
        when debugging barrier protocols.
    """

    def __init__(self, trace: bool = False):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._live: set[Process] = set()
        self.trace = trace
        self.trace_log: list[tuple[float, str]] = []
        self.event_count = 0

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay`` ns (FIFO-ordered at equal times)."""
        if delay < 0:
            raise ValueError(f"negative schedule delay: {delay!r}")
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), fn))

    def _schedule_resume(self, proc: Process, value: Any) -> None:
        self.schedule(0.0, lambda: proc._step(value))

    def signal(self, name: str = "signal") -> Signal:
        """Create a new :class:`Signal` bound to this engine."""
        return Signal(self, name=name)

    def resource(self, capacity: int = 1, name: str = "resource") -> Resource:
        """Create a new :class:`Resource` bound to this engine."""
        return Resource(self, capacity=capacity, name=name)

    def process(self, gen: Generator, name: str = "proc") -> Process:
        """Register ``gen`` as a process and schedule its first step now."""
        proc = Process(self, gen, name=name)
        self._live.add(proc)
        self.schedule(0.0, lambda: proc._step(None))
        return proc

    # -- execution -------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        detect_deadlock: bool = True,
    ) -> float:
        """Drain the event heap.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this bound (the pending
            event is left on the heap).  ``None`` runs to quiescence.
        detect_deadlock:
            When the heap drains with live processes still blocked, raise
            :class:`DeadlockError` (the Section VIII-B behaviour).  Disable
            for open-ended servers that legitimately idle.

        Returns
        -------
        float
            Simulated time when the run stopped.
        """
        heap = self._heap
        while heap:
            time, _seq, fn = heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(heap)
            self.now = time
            self.event_count += 1
            if self.trace:
                self.trace_log.append((time, getattr(fn, "__qualname__", repr(fn))))
            fn()
        if detect_deadlock and self._live:
            blocked = sorted(
                f"{p.name} waiting on {p._waiting_on}" for p in self._live
            )
            raise DeadlockError(blocked)
        return self.now

    def run_process(self, gen: Generator, name: str = "main") -> Any:
        """Convenience: register ``gen``, run to quiescence, return result.

        Raises the process's own exception if it failed, or
        :class:`DeadlockError` if the system hung before it finished.
        """
        proc = self.process(gen, name=name)
        self.run()
        if proc.error is not None:  # pragma: no cover - re-raise path
            raise proc.error
        if not proc.done:
            raise DeadlockError([f"{name} never completed"])
        return proc.result

    @property
    def live_processes(self) -> list[Process]:
        """Processes that have been started but not yet finished."""
        return list(self._live)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Engine(now={self.now:.1f}ns, pending={len(self._heap)}, "
            f"live={len(self._live)})"
        )
