"""Thread-precise warp executor.

Simulates the 32 threads of a single warp individually, which is required
wherever the paper's observations depend on *intra-warp* behaviour:

* Table II warp-sync latencies (tile / coalesced / shuffle),
* Table V warp-level reduction timing,
* Figure 18 — whether a warp barrier actually blocks threads
  (Volta: yes, per-thread program counters; Pascal: no — Section VIII-A).

Each thread is an engine process executing a generator *program* that
yields :mod:`repro.cudasim.instructions` objects.  Issue is serialized
through a per-warp port (SIMT front-end); latencies overlap across threads.
Divergent branch arms (:class:`~repro.cudasim.instructions.Diverge`) hold
the issue port for the architecture's full arm cost, producing the paper's
staircase timing.

Warp barriers and shuffles are implemented as *round-keyed rendezvous*
objects so that a program can sync in a loop: each thread's n-th arrival at
a group joins round n.  On Pascal the rendezvous is bypassed entirely — the
instruction costs one cycle, commits the thread's pending shared-memory
writes (a fence, per Section VII-C) and does not wait.

Converged-warp fast path and re-convergence
-------------------------------------------
Real SIMT hardware issues one instruction for all 32 lanes of a converged
warp; simulating 32 engine processes for that case multiplies every event
by the warp width for no modelling benefit.  When ``simt_fast_path`` is on
(the default) the executor drives the whole warp as *one* engine process —
a mode-switching warp scheduler — that steps every thread's program
generator in lockstep.  As long as each round's instructions are uniform
(same instruction class, identical analytic latency) the round costs a
single ``Timeout`` and the per-thread effects (shared-memory traffic,
clock reads) are applied in tid order at the same engine time the
thread-precise simulation would use.

Rendezvous instructions no longer end the fast path.  A round where every
live lane executes the *same* barrier — ``__syncthreads``, a blocking
(Volta) warp sync whose groups are fully covered by the live lanes, or a
shuffle — is executed converged: all arrivals are performed in tid order
now, the scheduler waits on the release once, and the per-lane resume
values are delivered at the release time the thread-precise simulation
would use.  Only a genuinely *non-uniform* round (a :class:`Diverge`
staircase, per-lane latencies, mixed instruction classes) drops the warp
to thread-precise mode: each lane becomes its own engine process, pending
instruction included, so rendezvous arrival order, issue-port
serialization and Pascal shuffle staleness stay bit-identical.  The
lanes then *re-fuse* at the next reconvergence rendezvous — the join
that follows a divergent region — as soon as every live lane is blocked
on one release signal and therefore resumes at one common timestamp
(see ``docs/engine.md`` for the protocol and
``tests/sim/test_exec_thread.py`` for the equivalence property tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple


from repro.cudasim import instructions as ins
from repro.sim.arch import GPUSpec
from repro.sim.clock import SMClock
from repro.sim.engine import Engine, Resource, Signal, SimulationError, Timeout, WakeAt
from repro.sim.memory import SharedMemory

__all__ = ["ThreadCtx", "WarpExecutor", "WarpRunResult", "UnsupportedInstruction"]

#: Sentinel marking a lane whose program generator finished inside a
#: staggered (virtual) divergence region.
_RETIRED = object()


class UnsupportedInstruction(SimulationError):
    """Raised when a program uses an instruction the GPU lacks
    (e.g. ``nanosleep`` on Pascal)."""


@dataclass
class _Round:
    """State of one rendezvous round for a sync/shuffle group."""

    expected: int
    arrived: int = 0
    release: Optional[Signal] = None
    posted: Dict[int, float] = field(default_factory=dict)
    last_arrival_ns: float = 0.0


class _GroupBoard:
    """Round-keyed rendezvous board for one (kind, member-set) group."""

    def __init__(self, engine: Engine, members: Tuple[int, ...], name: str):
        self.engine = engine
        self.members = members
        self.name = name
        self.rounds: Dict[int, _Round] = {}
        # Lane -> latest value it has ever posted (stale reads on Pascal).
        self.history: Dict[int, float] = {}

    def round(self, idx: int) -> _Round:
        rnd = self.rounds.get(idx)
        if rnd is None:
            rnd = _Round(expected=len(self.members))
            rnd.release = Signal(self.engine, name=f"{self.name}.r{idx}")
            self.rounds[idx] = rnd
        return rnd


class _TPRegion:
    """Bookkeeping for one thread-precise excursion of a warp.

    Created by the warp scheduler when it de-fuses; shared by the region's
    lane processes.  Tracks which lanes are still live, which are blocked
    on a rendezvous release, and which have *parked* — completed a
    rendezvous and handed their generator back to the scheduler.  The
    region ends by firing :attr:`signal` exactly once, with ``"refuse"``
    (every surviving lane parked on one release — the scheduler re-fuses
    them at the common resume timestamp) or ``"done"`` (every lane
    retired).  The invariant that makes parking safe: a lane parks only
    when every other live lane is blocked on (or already parked at) the
    *same* release signal, so all of them provably resume at one engine
    timestamp and the converged lockstep can restart bit-identically.

    All state is plain dict/set bookkeeping inside the lanes' existing
    events — no extra engine events beyond the single region signal, per
    the allocation discipline in ``docs/engine.md``.
    """

    __slots__ = ("live", "waiting", "parked", "signal")

    def __init__(self, executor: "WarpExecutor", lanes: List[int]):
        self.live = set(lanes)
        self.waiting: Dict[int, Signal] = {}
        self.parked: Dict[int, Tuple[Any, Any]] = {}
        self.signal = Signal(
            executor.engine, name=f"warp@{executor.tid_offset}.refuse"
        )

    def can_park(self, lane: int, release: Signal) -> bool:
        """Whether ``lane``, just woken by ``release``, may park there."""
        waiting = self.waiting
        parked = self.parked
        for j in self.live:
            if j == lane or j in parked:
                # Parked lanes are on this same release: the first parker
                # required every live lane to be waiting on it.
                continue
            if waiting.get(j) is not release:
                return False
        return True

    def park(self, lane: int, op: Any, value: Any) -> None:
        self.parked[lane] = (op, value)
        del self.waiting[lane]
        if len(self.parked) == len(self.live):
            self.signal.fire("refuse")

    def retire(self, lane: int) -> None:
        self.live.discard(lane)
        self.waiting.pop(lane, None)
        if not self.live:
            self.signal.fire("done")


@dataclass
class WarpRunResult:
    """Outcome of one warp-level simulation run.

    The three mode counters describe the SIMT fast path's behaviour (all
    zero when the fast path is disabled; summed across warps when several
    warps share one result under a
    :class:`~repro.sim.exec_block.BlockExecutor`):

    ``fused_rounds``
        Rounds executed in converged mode — one ``Timeout`` (or one
        rendezvous wait) standing in for every live lane.
    ``defuse_count``
        Transitions from converged to thread-precise mode (one per
        non-uniform region entered).
    ``refuse_count``
        Re-convergence transitions: thread-precise lanes re-fused into a
        converged warp at a rendezvous release.
    """

    duration_ns: float
    duration_cycles: float
    start_ns: Dict[int, float]
    end_ns: Dict[int, float]
    records: Dict[int, Dict[str, Any]]
    returns: Dict[int, Any]
    shared: SharedMemory
    shuffle_incorrect: bool
    fused_rounds: int = 0
    defuse_count: int = 0
    refuse_count: int = 0

    def record_series(self, key: str) -> List[Any]:
        """Collect ``records[tid][key]`` across threads, ordered by tid."""
        return [self.records[tid].get(key) for tid in sorted(self.records)]


class ThreadCtx:
    """Per-thread view handed to kernel programs.

    ``tid`` is the block-global thread id (offset applied when the warp is
    part of a :class:`~repro.sim.exec_block.BlockExecutor`); ``lane`` is
    the intra-warp index.
    """

    def __init__(self, executor: "WarpExecutor", tid_local: int):
        self.executor = executor
        self.tid = executor.tid_offset + tid_local
        self.lane = tid_local % executor.spec.warp_size
        self.records: Dict[str, Any] = {}

    @property
    def nthreads(self) -> int:
        return self.executor.nthreads

    @property
    def spec(self) -> GPUSpec:
        return self.executor.spec

    @property
    def shared(self) -> SharedMemory:
        return self.executor.shared

    def record(self, key: str, value: Any) -> None:
        """Stash a per-thread observation (timers, sums, ...)."""
        self.records[key] = value


class WarpExecutor:
    """Runs one warp's threads precisely on a fresh engine.

    Parameters
    ----------
    spec:
        GPU architecture (controls every latency and the blocking
        semantics of warp barriers).
    nthreads:
        Number of live threads (1..32); the paper's latency protocol uses
        a full warp.
    shared_slots:
        Size of the block's shared memory in 8-byte slots.
    """

    def __init__(
        self,
        spec: GPUSpec,
        nthreads: int = 32,
        shared_slots: int = 64,
        engine: Optional[Engine] = None,
        shared: Optional[SharedMemory] = None,
        tid_offset: int = 0,
        block_barrier: Optional["BlockBarrier"] = None,
        simt_fast_path: bool = True,
    ):
        if not (1 <= nthreads <= spec.warp_size):
            raise ValueError(
                f"nthreads must be in [1, {spec.warp_size}], got {nthreads}"
            )
        self.spec = spec
        self.nthreads = nthreads
        self.engine = engine or Engine()
        self.clock = SMClock(self.engine, spec.freq_mhz)
        self.shared = shared if shared is not None else SharedMemory(shared_slots)
        self.tid_offset = tid_offset
        self.block_barrier = block_barrier
        self.simt_fast_path = simt_fast_path
        self.issue_port = Resource(self.engine, capacity=1, name="warp-issue")
        self._boards: Dict[Tuple, _GroupBoard] = {}
        self._round_counters: Dict[Tuple[int, Tuple], int] = {}
        self._members_memo: Dict[Tuple, Tuple[int, ...]] = {}
        self.shuffle_incorrect = False

    # -- group management --------------------------------------------------

    def _group_members(
        self,
        tid: int,
        kind: str,
        group_size: int,
        mask: int = 0xFFFFFFFF,
    ) -> Tuple[int, ...]:
        """Lanes participating in ``tid``'s group of the given kind/size.

        ``mask`` narrows membership the way ``__syncwarp(mask)`` does —
        a correct program only syncs lanes that will actually arrive, which
        is why partial *warp* syncs do not deadlock in the paper's
        Section VIII-B matrix (unlike partial grid/multi-grid syncs).

        Memoized per ``(tid, kind, group_size, mask)``: membership is pure
        in those and in the executor's fixed ``nthreads``, and sync-loop
        programs resolve the same groups every round.
        """
        key = (tid, kind, group_size, mask)
        members = self._members_memo.get(key)
        if members is not None:
            return members
        if kind == "tile":
            base = (tid // group_size) * group_size
            lanes = range(base, base + group_size)
        else:  # coalesced: all mask-selected live threads form one group
            lanes = range(self.nthreads)
        members = tuple(
            l for l in lanes if l < self.nthreads and (mask >> l) & 1
        )
        self._members_memo[key] = members
        return members

    def _board(self, key: Tuple, members: Tuple[int, ...]) -> _GroupBoard:
        board = self._boards.get(key)
        if board is None:
            board = _GroupBoard(self.engine, members, name=str(key))
            self._boards[key] = board
        return board

    def _next_round(self, tid: int, key: Tuple) -> int:
        ctr_key = (tid, key)
        idx = self._round_counters.get(ctr_key, 0)
        self._round_counters[ctr_key] = idx + 1
        return idx

    # -- latencies ----------------------------------------------------------

    def _sync_latency_cycles(self, kind: str, group_size: int) -> float:
        ws = self.spec.warp_sync
        if kind == "tile":
            return ws.tile_latency
        if group_size >= self.spec.warp_size:
            return ws.coalesced_full_latency
        return ws.coalesced_partial_latency

    def _shuffle_latency_cycles(self, kind: str) -> float:
        ws = self.spec.warp_sync
        return ws.shuffle_tile_latency if kind == "tile" else ws.shuffle_coalesced_latency

    # -- instruction interpreters --------------------------------------------

    def _issue(self, hold_cycles: float) -> Generator:
        """Serialize through the warp issue port for ``hold_cycles``.

        Only *divergent* execution pays this: in converged SIMT code one
        issue covers all 32 lanes, so ordinary instructions do not
        serialize across threads.
        """
        yield self.issue_port.acquire()
        yield Timeout(self.spec.cycles_to_ns(hold_cycles))
        self.issue_port.release()

    def _exec_simple(self, latency_cycles: float) -> Generator:
        """Converged instruction: pure latency, no cross-thread serialization."""
        if latency_cycles > 0:
            yield Timeout(self.spec.cycles_to_ns(latency_cycles))

    def _warp_sync_arrive(self, tid: int, op: ins.WarpSync) -> Signal:
        """Arrival half of a blocking (Volta) warp sync.

        Performs the round's bookkeeping now — the last member commits
        shared memory and schedules the release — and returns the release
        signal the caller must wait on.  Split from the blocking yield so
        both a thread-precise lane and the converged warp scheduler run
        the exact same arrival sequence.
        """
        members = self._group_members(tid, op.kind, op.group_size, op.mask)
        latency = self._sync_latency_cycles(op.kind, len(members))
        key = ("sync", op.kind, members)
        board = self._board(key, members)
        rnd = board.round(self._next_round(tid, key))
        rnd.arrived += 1
        rnd.last_arrival_ns = self.engine.now
        if rnd.arrived == rnd.expected:
            self.shared.commit()
            self.engine.schedule_fire(self.spec.cycles_to_ns(latency), rnd.release)
        return rnd.release

    def _exec_warp_sync(self, tid: int, op: ins.WarpSync) -> Generator:
        if not self.spec.warp_sync.blocking:
            # Pascal: fence semantics only (Section VIII-A / VII-C).
            # Pending writes are keyed by the block-global tid.
            members = self._group_members(tid, op.kind, op.group_size, op.mask)
            latency = self._sync_latency_cycles(op.kind, len(members))
            self.shared.commit_thread(self.tid_offset + tid)
            yield from self._exec_simple(latency)
            return
        yield self._warp_sync_arrive(tid, op)

    def _shuffle_arrive(
        self, tid: int, op: ins.ShuffleDown
    ) -> Tuple[Optional[Signal], Callable[[], Any]]:
        """Arrival half of a shuffle: post the value, count the arrival.

        Returns ``(release, finish)``: on Volta ``release`` is the group's
        rendezvous signal (the last arrival schedules its fire); on Pascal
        it is ``None`` and the caller pays the non-blocking latency
        itself.  ``finish()`` performs the post-latency read — including
        the Pascal stale-read semantics when the partner has not posted
        this round.
        """
        members = self._group_members(tid, op.kind, op.width)
        latency = self._shuffle_latency_cycles(op.kind)
        key = ("shfl", op.kind, members)
        board = self._board(key, members)
        rnd = board.round(self._next_round(tid, key))
        rnd.posted[tid] = op.value
        board.history[tid] = op.value
        rnd.arrived += 1
        src = tid + op.delta

        def finish() -> Any:
            if src not in members:
                return op.value
            if src in rnd.posted:
                return rnd.posted[src]
            self.shuffle_incorrect = True
            return board.history.get(src, 0.0)

        if self.spec.warp_sync.blocking:
            # Volta: shuffle implies synchronization of the group.
            if rnd.arrived == rnd.expected:
                self.engine.schedule_fire(
                    self.spec.cycles_to_ns(latency), rnd.release
                )
            return rnd.release, finish
        return None, finish

    def _pascal_shuffle_latency_ns(self, op: ins.ShuffleDown) -> float:
        latency = self._shuffle_latency_cycles(op.kind)
        return self.spec.cycles_to_ns(max(0.0, latency - 1))

    def _exec_shuffle(self, tid: int, op: ins.ShuffleDown) -> Generator:
        release, finish = self._shuffle_arrive(tid, op)
        if release is not None:
            yield release
            return finish()
        # Pascal: no blocking.  In converged code lanes post in lockstep so
        # the partner's value is already on the board; in divergent code the
        # read goes stale — the paper's "shuffle does not work correctly".
        yield Timeout(self._pascal_shuffle_latency_ns(op))
        return finish()

    def _block_sync_arrive(self, tid: int) -> Signal:
        """Arrival half of ``__syncthreads``; returns the round's release."""
        if self.block_barrier is not None:
            return self.block_barrier.arrive_nowait(self.tid_offset + tid)
        from repro.sim.sm import block_sync_latency_cycles

        members = tuple(range(self.nthreads))
        latency = block_sync_latency_cycles(self.spec, warps=1)
        key = ("blocksync", members)
        board = self._board(key, members)
        rnd = board.round(self._next_round(tid, key))
        rnd.arrived += 1
        if rnd.arrived == rnd.expected:
            self.shared.commit()
            self.engine.schedule_fire(self.spec.cycles_to_ns(latency), rnd.release)
        return rnd.release

    def _exec_block_sync(self, tid: int) -> Generator:
        """``__syncthreads``: cross-warp when block-attached, warp-wide
        otherwise.  Blocks on every architecture (unlike warp syncs)."""
        yield self._block_sync_arrive(tid)

    def _interpret(self, tid: int, op: ins.Instruction) -> Generator:
        """Dispatch one instruction; yields engine yieldables, returns value."""
        spec = self.spec
        ic = spec.instructions
        if isinstance(op, ins.Compute):
            yield from self._exec_simple(op.cycles)
        elif isinstance(op, ins.FAdd):
            yield from self._exec_simple(ic.fadd * op.count)
        elif isinstance(op, ins.DAdd):
            yield from self._exec_simple(ic.dadd * op.count)
        elif isinstance(op, ins.ChainStep):
            yield from self._exec_simple(
                spec.shared_mem.chain_latency_cycles * op.count
            )
        elif isinstance(op, ins.MethodOverhead):
            yield from self._exec_simple(op.cycles)
        elif isinstance(op, ins.ReadClock):
            yield from self._exec_simple(ic.timer_read)
            return self.clock.read()
        elif isinstance(op, ins.Nanosleep):
            if not spec.has_nanosleep:
                raise UnsupportedInstruction(
                    f"nanosleep is not available on {spec.name} "
                    "(Volta-only instruction, Section IX-B)"
                )
            yield Timeout(op.ns)
        elif isinstance(op, ins.Diverge):
            # Serialized divergent arm: hold the issue port for the full
            # arm cost so later arms (higher tids) start later.
            yield from self._issue(ic.divergent_arm_cycles * op.arms)
        elif isinstance(op, ins.SharedLoad):
            yield from self._exec_simple(ic.shared_ld)
            return self.shared.load(
                self.tid_offset + tid, op.slot, volatile=op.volatile
            )
        elif isinstance(op, ins.SharedStore):
            yield from self._exec_simple(ic.shared_st)
            self.shared.store(
                self.tid_offset + tid, op.slot, op.value, volatile=op.volatile
            )
        elif isinstance(op, ins.WarpSync):
            yield from self._exec_warp_sync(tid, op)
        elif isinstance(op, ins.BlockSync):
            yield from self._exec_block_sync(tid)
        elif isinstance(op, ins.ShuffleDown):
            value = yield from self._exec_shuffle(tid, op)
            return value
        else:
            raise SimulationError(f"unknown instruction {op!r}")
        return None

    # -- converged-warp fast path ---------------------------------------------

    def _fast_latency_ns(self, tid: int, op: ins.Instruction) -> Optional[float]:
        """Analytic latency of ``op`` if it is fast-path eligible, else None.

        Eligible instructions are exactly those the thread-precise
        interpreter handles with a pure ``Timeout`` (no cross-thread
        serialization): the ``_exec_simple`` family, ``nanosleep`` and the
        non-blocking Pascal warp sync.  ``Diverge``, blocking (Volta) warp
        barriers, shuffles and ``__syncthreads`` return None and force the
        fallback to thread-precise simulation.
        """
        spec = self.spec
        ic = spec.instructions
        cls = op.__class__
        if cls is ins.Compute:
            cycles = op.cycles
        elif cls is ins.FAdd:
            cycles = ic.fadd * op.count
        elif cls is ins.DAdd:
            cycles = ic.dadd * op.count
        elif cls is ins.ChainStep:
            cycles = spec.shared_mem.chain_latency_cycles * op.count
        elif cls is ins.MethodOverhead:
            cycles = op.cycles
        elif cls is ins.ReadClock:
            cycles = ic.timer_read
        elif cls is ins.SharedLoad:
            cycles = ic.shared_ld
        elif cls is ins.SharedStore:
            cycles = ic.shared_st
        elif cls is ins.Nanosleep:
            if not spec.has_nanosleep:
                raise UnsupportedInstruction(
                    f"nanosleep is not available on {spec.name} "
                    "(Volta-only instruction, Section IX-B)"
                )
            return op.ns
        elif cls is ins.WarpSync:
            if spec.warp_sync.blocking:
                return None  # Volta barrier: rendezvous required
            members = self._group_members(tid, op.kind, op.group_size, op.mask)
            cycles = self._sync_latency_cycles(op.kind, len(members))
        else:
            return None
        return spec.cycles_to_ns(cycles)

    def _retire_fast(
        self, ctx: ThreadCtx, value: Any, result: WarpRunResult
    ) -> None:
        gtid = ctx.tid
        result.returns[gtid] = value
        result.end_ns[gtid] = self.engine.now
        result.records[gtid] = ctx.records

    # -- converged rendezvous rounds -------------------------------------------

    #: Fields that make two rendezvous instructions "the same barrier";
    #: shared by the converged-round and virtual-terminator uniformity
    #: checks so the two modes can never drift apart.
    _RENDEZVOUS_FIELDS = {
        ins.BlockSync: (),
        ins.WarpSync: ("kind", "group_size", "mask"),
        ins.ShuffleDown: ("kind", "width", "delta"),
    }

    @classmethod
    def _ops_uniform(cls, live: List[int], ops) -> bool:
        """Whether every live lane's next op is the same rendezvous
        instruction (same class, same identity fields; per-lane payloads
        like a shuffle's ``value`` may differ)."""
        op0 = ops[live[0]]
        fields = cls._RENDEZVOUS_FIELDS.get(op0.__class__)
        if fields is None:
            return False
        for i in live[1:]:
            op = ops[i]
            if op.__class__ is not op0.__class__:
                return False
            for f in fields:
                if getattr(op, f) != getattr(op0, f):
                    return False
        return True

    def _try_converged_rendezvous(
        self, live: List[int], ops: List[Any]
    ) -> Optional[Tuple[Any, Optional[Dict[int, Callable[[], Any]]]]]:
        """Execute a uniform rendezvous round without leaving converged mode.

        When every live lane's next instruction is the *same* rendezvous —
        ``__syncthreads``, a blocking (Volta) warp sync whose groups are
        fully covered by the live lanes, or a shuffle — all arrivals are
        performed now, in tid order (exactly the sequence thread-precise
        lanes dispatched at this timestamp would produce), and the round
        reduces to one wait.  Returns ``(waitable, finishes)`` — the
        scheduler yields ``waitable`` and then calls ``finishes[i]()`` for
        each lane's resume value — or ``None`` when the round is not a
        convergable rendezvous (the scheduler then de-fuses).
        """
        if not self._ops_uniform(live, ops):
            return None
        op0 = ops[live[0]]
        cls = op0.__class__
        if cls is ins.BlockSync:
            release = None
            for i in live:
                release = self._block_sync_arrive(i)
            return release, None
        blocking = self.spec.warp_sync.blocking
        if cls is ins.WarpSync and blocking:
            # Every group must be completed by this round's arrivals —
            # a mask selecting absent (retired or straggling) lanes, or a
            # lane excluded from its own group, cannot release now and
            # takes the thread-precise path instead.
            live_set = set(live)
            for i in live:
                members = self._group_members(i, op0.kind, op0.group_size, op0.mask)
                if i not in members or not set(members) <= live_set:
                    return None
            release = None
            for i in live:
                sig = self._warp_sync_arrive(i, ops[i])
                if release is None:
                    release = sig
            # Tile partitions release as separate signals, but every group
            # schedules the same (size-independent tile) latency from the
            # same timestamp, so one wait stands in for all of them.
            return release, None
        if cls is ins.ShuffleDown:
            live_set = set(live)
            for i in live:
                members = self._group_members(i, op0.kind, op0.width)
                if i not in members or not set(members) <= live_set:
                    return None
            release = None
            finishes: Dict[int, Callable[[], Any]] = {}
            for i in live:
                sig, finishes[i] = self._shuffle_arrive(i, ops[i])
                if release is None:
                    release = sig
            if release is None:  # Pascal: non-blocking, pure latency
                release = Timeout(self._pascal_shuffle_latency_ns(op0))
            return release, finishes
        return None

    # -- staggered (virtual) divergence regions --------------------------------

    def _virtual_latency_ns(self, op: Any) -> Optional[float]:
        """Latency of ``op`` if it is *pure* — a Timeout with no engine-
        visible effect at any per-lane timestamp — else ``None``.

        Stricter than :meth:`_fast_latency_ns`: clock reads, shared-memory
        accesses and the Pascal warp-sync fence all act at the lane's own
        (staggered) time and therefore need a real engine event.
        """
        spec = self.spec
        ic = spec.instructions
        cls = op.__class__
        if cls is ins.Compute:
            cycles = op.cycles
        elif cls is ins.FAdd:
            cycles = ic.fadd * op.count
        elif cls is ins.DAdd:
            cycles = ic.dadd * op.count
        elif cls is ins.ChainStep:
            cycles = spec.shared_mem.chain_latency_cycles * op.count
        elif cls is ins.MethodOverhead:
            cycles = op.cycles
        elif cls is ins.Nanosleep:
            if not spec.has_nanosleep:
                raise UnsupportedInstruction(
                    f"nanosleep is not available on {spec.name} "
                    "(Volta-only instruction, Section IX-B)"
                )
            return op.ns
        else:
            return None
        return spec.cycles_to_ns(cycles)

    def _replay(self, log: List[Tuple[str, float]]) -> Generator:
        """Re-materialize a lane's virtually-consumed ops as real events.

        Produces exactly the yield sequence the thread-precise interpreter
        would have produced for the logged ops — issue-port serialization
        included — so an aborted virtual region costs what thread-precise
        execution always cost, and timing stays bit-identical.  Log
        entries carry their unit in the tag: ``("issue_cycles", hold)``
        replays a divergent-arm issue-port hold (cycles, what
        :meth:`_issue` takes), ``("timeout_ns", lat)`` a pure latency.
        """
        for kind, amount in log:
            if kind == "issue_cycles":
                yield from self._issue(amount)
            elif amount > 0.0:
                yield Timeout(amount)

    def _replay_retire(
        self,
        lane: int,
        prelude: Generator,
        ctx: ThreadCtx,
        value: Any,
        result: WarpRunResult,
        region: "_TPRegion",
    ) -> Generator:
        """Replay a lane whose program already ended, then retire it."""
        yield from prelude
        self._retire_fast(ctx, value, result)
        region.retire(lane)
        return value

    def _virtual_divergence(
        self,
        live: List[int],
        ops: List[Any],
        gens: List[Generator],
        ctxs: List[ThreadCtx],
        result: WarpRunResult,
    ) -> Generator:
        """Run a uniform-``Diverge`` region analytically, re-fusing at the join.

        Entered when every live lane's next instruction is a
        :class:`~repro.cudasim.instructions.Diverge`.  The serialized
        staircase is computed lane-locally (the issue port is free and the
        live lanes are its only contenders, so grants happen in lockstep
        order and exit times accumulate ``t = t + hold`` — the same float
        additions the per-event simulation performs).  Each lane then runs
        ahead through *pure-latency* instructions, accumulating its own
        virtual clock with zero engine events, until it reaches a
        reconvergence rendezvous.  If every lane lands on the same
        rendezvous round, the scheduler wakes at the last lane's
        (bit-exact, via :class:`~repro.sim.engine.WakeAt`) arrival time,
        performs the arrivals in arrival-time order, waits on the release
        once, and returns ``("fused", order, pending, values)`` — the warp
        is converged again.  Anything else — a value-producing or
        memory-touching instruction, a retiring lane, mismatched
        rendezvous, nested divergence, or an exact arrival-time tie whose
        thread-precise ordering depends on event sequence numbers — aborts
        into ``("defused", region)``: every lane is spawned as a process
        whose prelude *replays* the consumed ops event-for-event, so abort
        costs thread-precise speed but never correctness.
        """
        engine = self.engine
        spec = self.spec
        arm_cycles = spec.instructions.divergent_arm_cycles
        t: Dict[int, float] = {}
        logs: Dict[int, List[Tuple[str, float]]] = {}
        port_time = engine.now
        for i in live:
            hold_cycles = arm_cycles * ops[i].arms
            logs[i] = [("issue_cycles", hold_cycles)]
            port_time = port_time + spec.cycles_to_ns(hold_cycles)
            t[i] = port_time
        pend: Dict[int, Any] = {}
        retired_vals: Dict[int, Any] = {}
        for i in live:
            ti = t[i]
            gen = gens[i]
            log = logs[i]
            while True:
                try:
                    nxt = gen.send(None)
                except StopIteration as stop:
                    pend[i] = _RETIRED
                    retired_vals[i] = stop.value
                    break
                lat = self._virtual_latency_ns(nxt)
                if lat is None:
                    pend[i] = nxt
                    break
                log.append(("timeout_ns", lat))
                ti = ti + lat
            t[i] = ti

        plan = self._virtual_terminator(live, pend, t)
        if plan is None:
            region = _TPRegion(self, live)
            off = self.tid_offset
            for i in live:
                prelude = self._replay(logs[i])
                if pend[i] is _RETIRED:
                    proc = self._replay_retire(
                        i, prelude, ctxs[i], retired_vals[i], result, region
                    )
                else:
                    proc = self._lane_proc(
                        i, gens[i], pend[i], None, ctxs[i], result, region,
                        prelude=prelude,
                    )
                engine.process(proc, name=f"t{off + i}")
            return ("defused", region)

        # Re-fuse at the join: land on the last arrival's exact timestamp,
        # arrive in arrival-time order, wait out the release once.
        order = plan
        max_t = t[order[-1]]
        if max_t > engine.now:
            yield WakeAt(max_t)
        op0 = pend[order[0]]
        cls = op0.__class__
        finishes: Optional[Dict[int, Callable[[], Any]]] = None
        release: Any = None
        if cls is ins.BlockSync:
            for i in order:
                release = self._block_sync_arrive(i)
        elif cls is ins.WarpSync:
            for i in order:
                sig = self._warp_sync_arrive(i, pend[i])
                if release is None:
                    release = sig
        else:  # ShuffleDown
            finishes = {}
            for i in order:
                sig, finishes[i] = self._shuffle_arrive(i, pend[i])
                if release is None:
                    release = sig
        yield release
        vals = {
            i: (finishes[i]() if finishes is not None else None) for i in order
        }
        return ("fused", order, pend, vals)

    def _virtual_terminator(
        self,
        live: List[int],
        pend: Dict[int, Any],
        t: Dict[int, float],
    ) -> Optional[List[int]]:
        """Validate a virtual region's ending and return the arrival order.

        Returns the live lanes sorted by arrival time when every lane
        pends on the *same* rendezvous round releasing through one signal
        (``__syncthreads``; a blocking full-single-group warp sync or
        shuffle), with all arrival times distinct — or ``None`` to force
        the replay abort.
        """
        op0 = pend[live[0]]
        if op0 is _RETIRED or any(pend[i] is _RETIRED for i in live):
            return None
        if not self._ops_uniform(live, pend):
            return None
        cls = op0.__class__
        if cls is ins.BlockSync:
            if self.block_barrier is not None:
                off = self.tid_offset
                counters = self.block_barrier._counters
                idx0 = counters.get(off + live[0], 0)
                if any(counters.get(off + i, 0) != idx0 for i in live[1:]):
                    return None
            else:
                key = ("blocksync", tuple(range(self.nthreads)))
                idx0 = self._round_counters.get((live[0], key), 0)
                if any(
                    self._round_counters.get((i, key), 0) != idx0
                    for i in live[1:]
                ):
                    return None
        elif cls is ins.WarpSync and self.spec.warp_sync.blocking:
            members = self._group_members(
                live[0], op0.kind, op0.group_size, op0.mask
            )
            if set(members) != set(live):
                return None
            key = ("sync", op0.kind, members)
            idx0 = self._round_counters.get((live[0], key), 0)
            if any(
                self._round_counters.get((i, key), 0) != idx0 for i in live[1:]
            ):
                return None
        elif cls is ins.ShuffleDown and self.spec.warp_sync.blocking:
            members = self._group_members(live[0], op0.kind, op0.width)
            if set(members) != set(live):
                return None
            key = ("shfl", op0.kind, members)
            idx0 = self._round_counters.get((live[0], key), 0)
            if any(
                self._round_counters.get((i, key), 0) != idx0 for i in live[1:]
            ):
                return None
        else:
            return None
        # Arrival-time order; exact ties would need event-sequence-number
        # ordering the virtual clocks cannot reconstruct, so ties abort.
        order = sorted(live, key=t.__getitem__)
        for a, b in zip(order, order[1:]):
            if t[a] == t[b]:
                return None
        return order

    def _fast_warp_proc(
        self,
        program: Callable[[ThreadCtx], Generator],
        result: WarpRunResult,
    ) -> Generator:
        """Mode-switching warp scheduler: converged rounds, thread-precise
        excursions, re-convergence at rendezvous releases.

        Each converged round replays, per live thread *in tid order*,
        exactly what a thread-precise step event does at this timestamp:
        apply the post-latency effect of the instruction that just
        completed (clock read, shared-memory access), advance the program
        generator, and apply the next instruction's dispatch-time effect
        (the Pascal warp-sync fence commit).  If every live thread's next
        instruction is analytic with one common latency, the round costs a
        single ``Timeout`` instead of ``nthreads`` heap events; a uniform
        rendezvous round costs the arrivals plus one wait
        (:meth:`_try_converged_rendezvous`).  A non-uniform round spawns
        one engine process per lane (pending instruction included) and the
        scheduler blocks on the region's signal until the lanes either all
        retire or all park at one rendezvous release — at which point they
        are re-fused into the converged loop with their pending resume
        values.
        """
        engine = self.engine
        shared = self.shared
        off = self.tid_offset
        n = self.nthreads
        now = engine.now
        ctxs = [ThreadCtx(self, i) for i in range(n)]
        gens: List[Generator] = []
        for ctx in ctxs:
            result.start_ns[ctx.tid] = now
            gens.append(program(ctx))
        ops: List[Any] = [None] * n
        vals: List[Any] = [None] * n
        has_val: List[bool] = [False] * n
        lat_ns: List[Optional[float]] = [0.0] * n
        pre_done: List[bool] = [False] * n
        live = list(range(n))
        while live:
            survivors = []
            for i in live:
                # Post-latency effect of the instruction completed last
                # round (the thread-precise interpreter applies it after
                # its Timeout, inside the same step event that fetches and
                # dispatches the next instruction).  Rendezvous rounds and
                # re-fused lanes deliver a precomputed value instead.
                if has_val[i]:
                    value: Any = vals[i]
                    has_val[i] = False
                    vals[i] = None
                else:
                    op = ops[i]
                    if op is None:
                        value = None
                    else:
                        cls = op.__class__
                        if cls is ins.ReadClock:
                            value = self.clock.read()
                        elif cls is ins.SharedLoad:
                            value = shared.load(off + i, op.slot, volatile=op.volatile)
                        elif cls is ins.SharedStore:
                            shared.store(off + i, op.slot, op.value, volatile=op.volatile)
                            value = None
                        else:
                            value = None
                try:
                    nxt = gens[i].send(value)
                except StopIteration as stop:
                    self._retire_fast(ctxs[i], stop.value, result)
                    continue
                survivors.append(i)
                ops[i] = nxt
                lat_ns[i] = lat = self._fast_latency_ns(i, nxt)
                # Dispatch-time effect: the non-blocking (Pascal) warp sync
                # commits this thread's pending writes *now*, before later
                # threads' effects at this timestamp — bit-identical to the
                # precise interpreter.
                if nxt.__class__ is ins.WarpSync and lat is not None:
                    shared.commit_thread(off + i)
                    pre_done[i] = True
                else:
                    pre_done[i] = False
            live = survivors
            if not live:
                return
            latency = lat_ns[live[0]]
            uniform = latency is not None
            if uniform:
                for i in live[1:]:
                    if lat_ns[i] != latency:
                        uniform = False
                        break
            if uniform:
                result.fused_rounds += 1
                if latency > 0.0:
                    yield Timeout(latency)
                continue
            plan = self._try_converged_rendezvous(live, ops)
            if plan is not None:
                waitable, finishes = plan
                result.fused_rounds += 1
                yield waitable
                for i in live:
                    vals[i] = finishes[i]() if finishes is not None else None
                    has_val[i] = True
                continue
            if all(ops[i].__class__ is ins.Diverge for i in live):
                # Uniform divergence ladder: run the region on per-lane
                # virtual clocks and re-fuse at the join when possible.
                res = yield from self._virtual_divergence(
                    live, ops, gens, ctxs, result
                )
                if res[0] == "fused":
                    _, order, pendmap, valmap = res
                    result.fused_rounds += 1
                    result.refuse_count += 1
                    live = order
                    for i in live:
                        ops[i] = pendmap[i]
                        vals[i] = valmap[i]
                        has_val[i] = True
                        pre_done[i] = False
                    continue
                region = res[1]
                result.defuse_count += 1
            else:
                # Genuinely non-uniform: hand every thread to its own
                # process, in lockstep order so rendezvous arrivals and
                # issue-port grants match thread-precise mode.
                result.defuse_count += 1
                region = _TPRegion(self, live)
                for i in live:
                    op = ops[i]
                    if pre_done[i]:
                        # Fence already committed above; only the latency
                        # of the sync remains.
                        members = self._group_members(
                            i, op.kind, op.group_size, op.mask
                        )
                        first = self._exec_simple(
                            self._sync_latency_cycles(op.kind, len(members))
                        )
                    else:
                        first = None
                    engine.process(
                        self._lane_proc(
                            i, gens[i], op, first, ctxs[i], result, region
                        ),
                        name=f"t{off + i}",
                    )
            outcome = yield region.signal
            if outcome == "done":
                return
            # Re-fuse: every surviving lane parked at one rendezvous
            # release, so they all resume here, at one common timestamp,
            # with their pending values.  The lockstep order from now on
            # is the *park* order — the order the release woke the lanes
            # (their barrier-arrival order), which is exactly the order
            # thread-precise processes would keep resuming in at every
            # subsequent equal-time instant (FIFO-at-equal-time), so
            # issue-port grants and shared-memory effect order stay
            # bit-identical after re-convergence.
            result.refuse_count += 1
            live = list(region.parked)
            for i in live:
                ops[i], vals[i] = region.parked[i]
                has_val[i] = True
                pre_done[i] = False

    def _rendezvous_arrive(
        self, tid: int, op: Any
    ) -> Optional[Tuple[Signal, Optional[Callable[[], Any]]]]:
        """Split arrival for a *blocking* rendezvous instruction.

        Returns ``(release, finish)`` for instructions whose wait is a
        plain release-signal yield (``__syncthreads`` everywhere; warp
        syncs and shuffles on blocking architectures), or ``None`` when
        ``op`` is not such an instruction.  Thread-precise lanes route
        rendezvous waits through this so the warp scheduler can observe
        who is blocked where and re-fuse the warp at the release.
        """
        cls = op.__class__
        if cls is ins.BlockSync:
            return self._block_sync_arrive(tid), None
        if not self.spec.warp_sync.blocking:
            return None
        if cls is ins.WarpSync:
            return self._warp_sync_arrive(tid, op), None
        if cls is ins.ShuffleDown:
            release, finish = self._shuffle_arrive(tid, op)
            return release, finish
        return None

    def _lane_proc(
        self,
        tid_local: int,
        gen: Generator,
        op: Any,
        first_interp: Optional[Generator],
        ctx: ThreadCtx,
        result: WarpRunResult,
        region: "_TPRegion",
        prelude: Optional[Generator] = None,
    ) -> Generator:
        """Thread-precise excursion of one lane after a de-fuse.

        Executes instructions exactly as :meth:`_thread_proc` does, but
        rendezvous waits go through the split arrive/wait path so the lane
        can *park* — hand its generator back to the warp scheduler — when
        every live lane of the region is blocked on the same release and
        will therefore resume at the same timestamp.  ``first_interp``
        carries the partially-applied interpretation of a pending Pascal
        warp sync whose fence the converged round already committed;
        ``prelude`` replays an aborted virtual region's consumed ops
        before ``op`` runs.
        """
        gtid = ctx.tid
        try:
            if prelude is not None:
                yield from prelude
            while True:
                if first_interp is not None:
                    value = yield from first_interp
                    first_interp = None
                else:
                    arrive = self._rendezvous_arrive(tid_local, op)
                    if arrive is None:
                        value = yield from self._interpret(tid_local, op)
                    else:
                        release, finish = arrive
                        region.waiting[tid_local] = release
                        yield release
                        value = finish() if finish is not None else None
                        if region.can_park(tid_local, release):
                            region.park(tid_local, op, value)
                            return
                        del region.waiting[tid_local]
                op = gen.send(value)
        except StopIteration as stop:
            result.returns[gtid] = stop.value
        result.end_ns[gtid] = self.engine.now
        result.records[gtid] = ctx.records
        region.retire(tid_local)
        return result.returns.get(gtid)

    # -- running --------------------------------------------------------------

    def _thread_proc(
        self,
        tid_local: int,
        program: Callable[[ThreadCtx], Generator],
        result: WarpRunResult,
    ) -> Generator:
        ctx = ThreadCtx(self, tid_local)
        gtid = ctx.tid
        result.start_ns[gtid] = self.engine.now
        gen = program(ctx)
        value: Any = None
        try:
            while True:
                op = gen.send(value)
                value = yield from self._interpret(tid_local, op)
        except StopIteration as stop:
            result.returns[gtid] = stop.value
        result.end_ns[gtid] = self.engine.now
        result.records[gtid] = ctx.records
        return result.returns.get(gtid)

    def start(
        self,
        program: Callable[[ThreadCtx], Generator],
        result: Optional[WarpRunResult] = None,
    ) -> WarpRunResult:
        """Spawn the warp's processes without driving the engine.

        Used by :class:`~repro.sim.exec_block.BlockExecutor`, which owns
        the engine and starts several warps before running.  With the SIMT
        fast path enabled this spawns a single lockstep warp process;
        otherwise one process per thread.
        """
        if result is None:
            result = WarpRunResult(
                duration_ns=0.0,
                duration_cycles=0.0,
                start_ns={},
                end_ns={},
                records={},
                returns={},
                shared=self.shared,
                shuffle_incorrect=False,
            )
        if self.simt_fast_path:
            self.engine.process(
                self._fast_warp_proc(program, result),
                name=f"warp@{self.tid_offset}",
            )
            return result
        for tid_local in range(self.nthreads):
            self.engine.process(
                self._thread_proc(tid_local, program, result),
                name=f"t{self.tid_offset + tid_local}",
            )
        return result

    def run(self, program: Callable[[ThreadCtx], Generator]) -> WarpRunResult:
        """Execute ``program`` on every thread; return timing and records."""
        t0 = self.engine.now
        result = self.start(program)
        self.engine.run()
        result.duration_ns = self.engine.now - t0
        result.duration_cycles = self.spec.ns_to_cycles(result.duration_ns)
        result.shuffle_incorrect = self.shuffle_incorrect
        return result
