"""Thread-precise warp executor.

Simulates the 32 threads of a single warp individually, which is required
wherever the paper's observations depend on *intra-warp* behaviour:

* Table II warp-sync latencies (tile / coalesced / shuffle),
* Table V warp-level reduction timing,
* Figure 18 — whether a warp barrier actually blocks threads
  (Volta: yes, per-thread program counters; Pascal: no — Section VIII-A).

Each thread is an engine process executing a generator *program* that
yields :mod:`repro.cudasim.instructions` objects.  Issue is serialized
through a per-warp port (SIMT front-end); latencies overlap across threads.
Divergent branch arms (:class:`~repro.cudasim.instructions.Diverge`) hold
the issue port for the architecture's full arm cost, producing the paper's
staircase timing.

Warp barriers and shuffles are implemented as *round-keyed rendezvous*
objects so that a program can sync in a loop: each thread's n-th arrival at
a group joins round n.  On Pascal the rendezvous is bypassed entirely — the
instruction costs one cycle, commits the thread's pending shared-memory
writes (a fence, per Section VII-C) and does not wait.

Converged-warp fast path
------------------------
Real SIMT hardware issues one instruction for all 32 lanes of a converged
warp; simulating 32 engine processes for that case multiplies every event
by the warp width for no modelling benefit.  When ``simt_fast_path`` is on
(the default) the executor drives the whole warp as *one* engine process
that steps every thread's program generator in lockstep.  As long as each
round's instructions are uniform (same instruction class, identical
analytic latency) the round costs a single ``Timeout`` and the per-thread
effects (shared-memory traffic, clock reads) are applied in tid order at
the same engine time the thread-precise simulation would use.  The first
round that is *not* uniform-analytic — a :class:`Diverge`, a blocking
(Volta) warp barrier, a shuffle, or ``__syncthreads`` — permanently hands
each thread over to its own engine process, pending instruction included,
so rendezvous arrival order, issue-port serialization and Pascal shuffle
staleness are bit-identical to thread-precise mode (see
``tests/sim/test_exec_thread.py``'s property test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.cudasim import instructions as ins
from repro.sim.arch import GPUSpec
from repro.sim.clock import SMClock
from repro.sim.engine import Engine, Resource, Signal, SimulationError, Timeout
from repro.sim.memory import SharedMemory

__all__ = ["ThreadCtx", "WarpExecutor", "WarpRunResult", "UnsupportedInstruction"]


class UnsupportedInstruction(SimulationError):
    """Raised when a program uses an instruction the GPU lacks
    (e.g. ``nanosleep`` on Pascal)."""


@dataclass
class _Round:
    """State of one rendezvous round for a sync/shuffle group."""

    expected: int
    arrived: int = 0
    release: Optional[Signal] = None
    posted: Dict[int, float] = field(default_factory=dict)
    last_arrival_ns: float = 0.0


class _GroupBoard:
    """Round-keyed rendezvous board for one (kind, member-set) group."""

    def __init__(self, engine: Engine, members: Tuple[int, ...], name: str):
        self.engine = engine
        self.members = members
        self.name = name
        self.rounds: Dict[int, _Round] = {}
        # Lane -> latest value it has ever posted (stale reads on Pascal).
        self.history: Dict[int, float] = {}

    def round(self, idx: int) -> _Round:
        rnd = self.rounds.get(idx)
        if rnd is None:
            rnd = _Round(expected=len(self.members))
            rnd.release = Signal(self.engine, name=f"{self.name}.r{idx}")
            self.rounds[idx] = rnd
        return rnd


@dataclass
class WarpRunResult:
    """Outcome of one warp-level simulation run."""

    duration_ns: float
    duration_cycles: float
    start_ns: Dict[int, float]
    end_ns: Dict[int, float]
    records: Dict[int, Dict[str, Any]]
    returns: Dict[int, Any]
    shared: SharedMemory
    shuffle_incorrect: bool

    def record_series(self, key: str) -> List[Any]:
        """Collect ``records[tid][key]`` across threads, ordered by tid."""
        return [self.records[tid].get(key) for tid in sorted(self.records)]


class ThreadCtx:
    """Per-thread view handed to kernel programs.

    ``tid`` is the block-global thread id (offset applied when the warp is
    part of a :class:`~repro.sim.exec_block.BlockExecutor`); ``lane`` is
    the intra-warp index.
    """

    def __init__(self, executor: "WarpExecutor", tid_local: int):
        self.executor = executor
        self.tid = executor.tid_offset + tid_local
        self.lane = tid_local % executor.spec.warp_size
        self.records: Dict[str, Any] = {}

    @property
    def nthreads(self) -> int:
        return self.executor.nthreads

    @property
    def spec(self) -> GPUSpec:
        return self.executor.spec

    @property
    def shared(self) -> SharedMemory:
        return self.executor.shared

    def record(self, key: str, value: Any) -> None:
        """Stash a per-thread observation (timers, sums, ...)."""
        self.records[key] = value


class WarpExecutor:
    """Runs one warp's threads precisely on a fresh engine.

    Parameters
    ----------
    spec:
        GPU architecture (controls every latency and the blocking
        semantics of warp barriers).
    nthreads:
        Number of live threads (1..32); the paper's latency protocol uses
        a full warp.
    shared_slots:
        Size of the block's shared memory in 8-byte slots.
    """

    def __init__(
        self,
        spec: GPUSpec,
        nthreads: int = 32,
        shared_slots: int = 64,
        engine: Optional[Engine] = None,
        shared: Optional[SharedMemory] = None,
        tid_offset: int = 0,
        block_barrier: Optional["BlockBarrier"] = None,
        simt_fast_path: bool = True,
    ):
        if not (1 <= nthreads <= spec.warp_size):
            raise ValueError(
                f"nthreads must be in [1, {spec.warp_size}], got {nthreads}"
            )
        self.spec = spec
        self.nthreads = nthreads
        self.engine = engine or Engine()
        self.clock = SMClock(self.engine, spec.freq_mhz)
        self.shared = shared if shared is not None else SharedMemory(shared_slots)
        self.tid_offset = tid_offset
        self.block_barrier = block_barrier
        self.simt_fast_path = simt_fast_path
        self.issue_port = Resource(self.engine, capacity=1, name="warp-issue")
        self._boards: Dict[Tuple, _GroupBoard] = {}
        self._round_counters: Dict[Tuple[int, Tuple], int] = {}
        self.shuffle_incorrect = False

    # -- group management --------------------------------------------------

    def _group_members(
        self,
        tid: int,
        kind: str,
        group_size: int,
        mask: int = 0xFFFFFFFF,
    ) -> Tuple[int, ...]:
        """Lanes participating in ``tid``'s group of the given kind/size.

        ``mask`` narrows membership the way ``__syncwarp(mask)`` does —
        a correct program only syncs lanes that will actually arrive, which
        is why partial *warp* syncs do not deadlock in the paper's
        Section VIII-B matrix (unlike partial grid/multi-grid syncs).
        """
        if kind == "tile":
            base = (tid // group_size) * group_size
            lanes = range(base, base + group_size)
        else:  # coalesced: all mask-selected live threads form one group
            lanes = range(self.nthreads)
        return tuple(
            l for l in lanes if l < self.nthreads and (mask >> l) & 1
        )

    def _board(self, key: Tuple, members: Tuple[int, ...]) -> _GroupBoard:
        board = self._boards.get(key)
        if board is None:
            board = _GroupBoard(self.engine, members, name=str(key))
            self._boards[key] = board
        return board

    def _next_round(self, tid: int, key: Tuple) -> int:
        ctr_key = (tid, key)
        idx = self._round_counters.get(ctr_key, 0)
        self._round_counters[ctr_key] = idx + 1
        return idx

    # -- latencies ----------------------------------------------------------

    def _sync_latency_cycles(self, kind: str, group_size: int) -> float:
        ws = self.spec.warp_sync
        if kind == "tile":
            return ws.tile_latency
        if group_size >= self.spec.warp_size:
            return ws.coalesced_full_latency
        return ws.coalesced_partial_latency

    def _shuffle_latency_cycles(self, kind: str) -> float:
        ws = self.spec.warp_sync
        return ws.shuffle_tile_latency if kind == "tile" else ws.shuffle_coalesced_latency

    # -- instruction interpreters --------------------------------------------

    def _issue(self, hold_cycles: float) -> Generator:
        """Serialize through the warp issue port for ``hold_cycles``.

        Only *divergent* execution pays this: in converged SIMT code one
        issue covers all 32 lanes, so ordinary instructions do not
        serialize across threads.
        """
        yield self.issue_port.acquire()
        yield Timeout(self.spec.cycles_to_ns(hold_cycles))
        self.issue_port.release()

    def _exec_simple(self, latency_cycles: float) -> Generator:
        """Converged instruction: pure latency, no cross-thread serialization."""
        if latency_cycles > 0:
            yield Timeout(self.spec.cycles_to_ns(latency_cycles))

    def _exec_warp_sync(self, tid: int, op: ins.WarpSync) -> Generator:
        members = self._group_members(tid, op.kind, op.group_size, op.mask)
        latency = self._sync_latency_cycles(op.kind, len(members))
        if not self.spec.warp_sync.blocking:
            # Pascal: fence semantics only (Section VIII-A / VII-C).
            # Pending writes are keyed by the block-global tid.
            self.shared.commit_thread(self.tid_offset + tid)
            yield from self._exec_simple(latency)
            return
        key = ("sync", op.kind, members)
        board = self._board(key, members)
        rnd = board.round(self._next_round(tid, key))
        rnd.arrived += 1
        rnd.last_arrival_ns = self.engine.now
        if rnd.arrived == rnd.expected:
            self.shared.commit()
            self.engine.schedule_fire(self.spec.cycles_to_ns(latency), rnd.release)
        yield rnd.release

    def _exec_shuffle(self, tid: int, op: ins.ShuffleDown) -> Generator:
        members = self._group_members(tid, op.kind, op.width)
        latency = self._shuffle_latency_cycles(op.kind)
        key = ("shfl", op.kind, members)
        board = self._board(key, members)
        idx = self._next_round(tid, key)
        rnd = board.round(idx)
        rnd.posted[tid] = op.value
        board.history[tid] = op.value
        rnd.arrived += 1

        src = tid + op.delta
        in_range = src in members

        if self.spec.warp_sync.blocking:
            # Volta: shuffle implies synchronization of the group.
            if rnd.arrived == rnd.expected:
                self.engine.schedule_fire(
                    self.spec.cycles_to_ns(latency), rnd.release
                )
            yield rnd.release
            value = rnd.posted[src] if in_range else op.value
            return value

        # Pascal: no blocking.  In converged code lanes post in lockstep so
        # the partner's value is already on the board; in divergent code the
        # read goes stale — the paper's "shuffle does not work correctly".
        yield Timeout(self.spec.cycles_to_ns(max(0.0, latency - 1)))
        if not in_range:
            return op.value
        if src in rnd.posted:
            return rnd.posted[src]
        self.shuffle_incorrect = True
        return board.history.get(src, 0.0)

    def _exec_block_sync(self, tid: int) -> Generator:
        """``__syncthreads``: cross-warp when block-attached, warp-wide
        otherwise.  Blocks on every architecture (unlike warp syncs)."""
        if self.block_barrier is not None:
            yield from self.block_barrier.arrive(self.tid_offset + tid)
            return
        from repro.sim.sm import block_sync_latency_cycles

        members = tuple(range(self.nthreads))
        latency = block_sync_latency_cycles(self.spec, warps=1)
        key = ("blocksync", members)
        board = self._board(key, members)
        rnd = board.round(self._next_round(tid, key))
        rnd.arrived += 1
        if rnd.arrived == rnd.expected:
            self.shared.commit()
            self.engine.schedule_fire(self.spec.cycles_to_ns(latency), rnd.release)
        yield rnd.release

    def _interpret(self, tid: int, op: ins.Instruction) -> Generator:
        """Dispatch one instruction; yields engine yieldables, returns value."""
        spec = self.spec
        ic = spec.instructions
        if isinstance(op, ins.Compute):
            yield from self._exec_simple(op.cycles)
        elif isinstance(op, ins.FAdd):
            yield from self._exec_simple(ic.fadd * op.count)
        elif isinstance(op, ins.DAdd):
            yield from self._exec_simple(ic.dadd * op.count)
        elif isinstance(op, ins.ChainStep):
            yield from self._exec_simple(
                spec.shared_mem.chain_latency_cycles * op.count
            )
        elif isinstance(op, ins.MethodOverhead):
            yield from self._exec_simple(op.cycles)
        elif isinstance(op, ins.ReadClock):
            yield from self._exec_simple(ic.timer_read)
            return self.clock.read()
        elif isinstance(op, ins.Nanosleep):
            if not spec.has_nanosleep:
                raise UnsupportedInstruction(
                    f"nanosleep is not available on {spec.name} "
                    "(Volta-only instruction, Section IX-B)"
                )
            yield Timeout(op.ns)
        elif isinstance(op, ins.Diverge):
            # Serialized divergent arm: hold the issue port for the full
            # arm cost so later arms (higher tids) start later.
            yield from self._issue(ic.divergent_arm_cycles * op.arms)
        elif isinstance(op, ins.SharedLoad):
            yield from self._exec_simple(ic.shared_ld)
            return self.shared.load(
                self.tid_offset + tid, op.slot, volatile=op.volatile
            )
        elif isinstance(op, ins.SharedStore):
            yield from self._exec_simple(ic.shared_st)
            self.shared.store(
                self.tid_offset + tid, op.slot, op.value, volatile=op.volatile
            )
        elif isinstance(op, ins.WarpSync):
            yield from self._exec_warp_sync(tid, op)
        elif isinstance(op, ins.BlockSync):
            yield from self._exec_block_sync(tid)
        elif isinstance(op, ins.ShuffleDown):
            value = yield from self._exec_shuffle(tid, op)
            return value
        else:
            raise SimulationError(f"unknown instruction {op!r}")
        return None

    # -- converged-warp fast path ---------------------------------------------

    def _fast_latency_ns(self, tid: int, op: ins.Instruction) -> Optional[float]:
        """Analytic latency of ``op`` if it is fast-path eligible, else None.

        Eligible instructions are exactly those the thread-precise
        interpreter handles with a pure ``Timeout`` (no cross-thread
        serialization): the ``_exec_simple`` family, ``nanosleep`` and the
        non-blocking Pascal warp sync.  ``Diverge``, blocking (Volta) warp
        barriers, shuffles and ``__syncthreads`` return None and force the
        fallback to thread-precise simulation.
        """
        spec = self.spec
        ic = spec.instructions
        cls = op.__class__
        if cls is ins.Compute:
            cycles = op.cycles
        elif cls is ins.FAdd:
            cycles = ic.fadd * op.count
        elif cls is ins.DAdd:
            cycles = ic.dadd * op.count
        elif cls is ins.ChainStep:
            cycles = spec.shared_mem.chain_latency_cycles * op.count
        elif cls is ins.MethodOverhead:
            cycles = op.cycles
        elif cls is ins.ReadClock:
            cycles = ic.timer_read
        elif cls is ins.SharedLoad:
            cycles = ic.shared_ld
        elif cls is ins.SharedStore:
            cycles = ic.shared_st
        elif cls is ins.Nanosleep:
            if not spec.has_nanosleep:
                raise UnsupportedInstruction(
                    f"nanosleep is not available on {spec.name} "
                    "(Volta-only instruction, Section IX-B)"
                )
            return op.ns
        elif cls is ins.WarpSync:
            if spec.warp_sync.blocking:
                return None  # Volta barrier: rendezvous required
            members = self._group_members(tid, op.kind, op.group_size, op.mask)
            cycles = self._sync_latency_cycles(op.kind, len(members))
        else:
            return None
        return spec.cycles_to_ns(cycles)

    def _retire_fast(
        self, ctx: ThreadCtx, value: Any, result: WarpRunResult
    ) -> None:
        gtid = ctx.tid
        result.returns[gtid] = value
        result.end_ns[gtid] = self.engine.now
        result.records[gtid] = ctx.records

    def _fast_warp_proc(
        self,
        program: Callable[[ThreadCtx], Generator],
        result: WarpRunResult,
    ) -> Generator:
        """Drive the whole warp as one process while it stays converged.

        Each round replays, per live thread *in tid order*, exactly what a
        thread-precise step event does at this timestamp: apply the
        post-latency effect of the instruction that just completed (clock
        read, shared-memory access), advance the program generator, and
        apply the next instruction's dispatch-time effect (the Pascal
        warp-sync fence commit).  If every live thread's next instruction
        is analytic with one common latency, the round then costs a single
        ``Timeout`` instead of ``nthreads`` heap events.  The first round
        that is not uniform-analytic spawns one engine process per thread
        (pending instruction included) and the warp continues
        thread-precise forever.
        """
        engine = self.engine
        shared = self.shared
        off = self.tid_offset
        n = self.nthreads
        now = engine.now
        ctxs = [ThreadCtx(self, i) for i in range(n)]
        gens: List[Generator] = []
        for ctx in ctxs:
            result.start_ns[ctx.tid] = now
            gens.append(program(ctx))
        ops: List[Any] = [None] * n
        lat_ns: List[Optional[float]] = [0.0] * n
        pre_done: List[bool] = [False] * n
        live = list(range(n))
        while live:
            survivors = []
            for i in live:
                op = ops[i]
                # Post-latency effect of the instruction completed last
                # round (the thread-precise interpreter applies it after
                # its Timeout, inside the same step event that fetches and
                # dispatches the next instruction).
                if op is None:
                    value: Any = None
                else:
                    cls = op.__class__
                    if cls is ins.ReadClock:
                        value = self.clock.read()
                    elif cls is ins.SharedLoad:
                        value = shared.load(off + i, op.slot, volatile=op.volatile)
                    elif cls is ins.SharedStore:
                        shared.store(off + i, op.slot, op.value, volatile=op.volatile)
                        value = None
                    else:
                        value = None
                try:
                    nxt = gens[i].send(value)
                except StopIteration as stop:
                    self._retire_fast(ctxs[i], stop.value, result)
                    continue
                survivors.append(i)
                ops[i] = nxt
                lat_ns[i] = lat = self._fast_latency_ns(i, nxt)
                # Dispatch-time effect: the non-blocking (Pascal) warp sync
                # commits this thread's pending writes *now*, before later
                # threads' effects at this timestamp — bit-identical to the
                # precise interpreter.
                if nxt.__class__ is ins.WarpSync and lat is not None:
                    shared.commit_thread(off + i)
                    pre_done[i] = True
                else:
                    pre_done[i] = False
            live = survivors
            if not live:
                return
            latency = lat_ns[live[0]]
            uniform = latency is not None
            if uniform:
                for i in live[1:]:
                    if lat_ns[i] != latency:
                        uniform = False
                        break
            if not uniform:
                # Divergence (or a rendezvous instruction): hand every
                # thread to its own process, in tid order so rendezvous
                # arrivals and issue-port grants match thread-precise mode.
                for i in live:
                    op = ops[i]
                    if pre_done[i]:
                        # Fence already committed above; only the latency
                        # of the sync remains.
                        members = self._group_members(
                            i, op.kind, op.group_size, op.mask
                        )
                        first = self._exec_simple(
                            self._sync_latency_cycles(op.kind, len(members))
                        )
                    else:
                        first = self._interpret(i, op)
                    engine.process(
                        self._resume_thread(i, gens[i], first, ctxs[i], result),
                        name=f"t{off + i}",
                    )
                return
            if latency > 0.0:
                yield Timeout(latency)

    def _resume_thread(
        self,
        tid_local: int,
        gen: Generator,
        first_interp: Generator,
        ctx: ThreadCtx,
        result: WarpRunResult,
    ) -> Generator:
        """Thread-precise continuation of one lane after fast-path fallback.

        ``first_interp`` is the (possibly partially applied) interpretation
        of the instruction that triggered the fallback.
        """
        gtid = ctx.tid
        try:
            value = yield from first_interp
            while True:
                op = gen.send(value)
                value = yield from self._interpret(tid_local, op)
        except StopIteration as stop:
            result.returns[gtid] = stop.value
        result.end_ns[gtid] = self.engine.now
        result.records[gtid] = ctx.records
        return result.returns.get(gtid)

    # -- running --------------------------------------------------------------

    def _thread_proc(
        self,
        tid_local: int,
        program: Callable[[ThreadCtx], Generator],
        result: WarpRunResult,
    ) -> Generator:
        ctx = ThreadCtx(self, tid_local)
        gtid = ctx.tid
        result.start_ns[gtid] = self.engine.now
        gen = program(ctx)
        value: Any = None
        try:
            while True:
                op = gen.send(value)
                value = yield from self._interpret(tid_local, op)
        except StopIteration as stop:
            result.returns[gtid] = stop.value
        result.end_ns[gtid] = self.engine.now
        result.records[gtid] = ctx.records
        return result.returns.get(gtid)

    def start(
        self,
        program: Callable[[ThreadCtx], Generator],
        result: Optional[WarpRunResult] = None,
    ) -> WarpRunResult:
        """Spawn the warp's processes without driving the engine.

        Used by :class:`~repro.sim.exec_block.BlockExecutor`, which owns
        the engine and starts several warps before running.  With the SIMT
        fast path enabled this spawns a single lockstep warp process;
        otherwise one process per thread.
        """
        if result is None:
            result = WarpRunResult(
                duration_ns=0.0,
                duration_cycles=0.0,
                start_ns={},
                end_ns={},
                records={},
                returns={},
                shared=self.shared,
                shuffle_incorrect=False,
            )
        if self.simt_fast_path:
            self.engine.process(
                self._fast_warp_proc(program, result),
                name=f"warp@{self.tid_offset}",
            )
            return result
        for tid_local in range(self.nthreads):
            self.engine.process(
                self._thread_proc(tid_local, program, result),
                name=f"t{self.tid_offset + tid_local}",
            )
        return result

    def run(self, program: Callable[[ThreadCtx], Generator]) -> WarpRunResult:
        """Execute ``program`` on every thread; return timing and records."""
        t0 = self.engine.now
        result = self.start(program)
        self.engine.run()
        result.duration_ns = self.engine.now - t0
        result.duration_cycles = self.spec.ns_to_cycles(result.duration_ns)
        result.shuffle_incorrect = self.shuffle_incorrect
        return result
