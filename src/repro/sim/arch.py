"""Architecture specifications and calibration tables.

Every number that shapes simulated timing lives here, grouped into
calibration blocks, each annotated with its source:

* ``[T1]`` .. ``[T8]``  — Tables I–VIII of Zhang et al. 2020.
* ``[F4]`` .. ``[F18]`` — Figures of the paper (values fit by least squares
  against the published heat-maps; the fits are derived in DESIGN.md §5).
* ``[V100-WP]`` / ``[P100-WP]`` — Nvidia whitepapers (SM counts, occupancy
  limits, theoretical bandwidth).

The micro-benchmarks never read these tables; they measure the simulated
machine through the paper's own protocols.  Tests close the loop by checking
the measurements against the published values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = [
    "WarpSyncCalib",
    "BlockSyncCalib",
    "GridSyncCalib",
    "MultiGridLocalCalib",
    "CrossGpuCalib",
    "LaunchCalib",
    "SharedMemCalib",
    "HBMCalib",
    "InstructionCalib",
    "WarpReduceCalib",
    "GPUSpec",
    "NodeSpec",
    "V100",
    "P100",
    "DGX1_V100",
    "DGX2_V100",
    "P100_PCIE_NODE",
    "get_gpu_spec",
    "get_node_spec",
    "GPU_REGISTRY",
    "NODE_REGISTRY",
]


# ---------------------------------------------------------------------------
# Calibration blocks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WarpSyncCalib:
    """Warp-level synchronization latency/throughput.  Source: [T2].

    Latencies are in SM cycles; throughputs in operations per cycle per SM
    (the paper's best-over-all-configurations measurement).  ``coalesced``
    distinguishes the partial-warp case (group size 1–31) from the
    full-warp case (32), which V100 executes on a faster path.
    """

    tile_latency: float
    tile_throughput: float
    shuffle_tile_latency: float
    shuffle_tile_throughput: float
    coalesced_partial_latency: float
    coalesced_partial_throughput: float
    coalesced_full_latency: float
    coalesced_full_throughput: float
    shuffle_coalesced_latency: float
    shuffle_coalesced_throughput: float
    # Whether warp-level sync actually blocks threads until all arrive.
    # Volta: yes (per-thread program counters).  Pascal: no — Section VIII-A
    # shows P100 does not hold threads at the barrier, which is also why its
    # "latency" is ~1 cycle. [F18]
    blocking: bool = True


@dataclass(frozen=True)
class BlockSyncCalib:
    """Block-level (``__syncthreads``) barrier model.  Sources: [T2],[F4],[T4].

    * ``base_latency_cycles`` — single-warp sync latency ([T2] Block row).
    * ``per_warp_latency_cycles`` — marginal latency per extra warp in one
      sync (single-shot; fit so that 5 syncs of a 1024-thread block land on
      [T4]'s "sync ltc": V100 420 cy, P100 2135 cy).
    * ``per_warp_service_cycles`` — steady-state barrier-unit service
      interval per warp arrival; its inverse is the saturated per-warp
      throughput of [T2]/[F4] (V100 0.475, P100 0.091 warp-sync/cycle).
    """

    base_latency_cycles: float
    per_warp_latency_cycles: float
    per_warp_service_cycles: float


@dataclass(frozen=True)
class GridSyncCalib:
    """Grid-level barrier (cooperative groups ``grid.sync()``).  Source: [F5].

    The simulated protocol is: intra-block arrive, one leader warp per block
    performs an L2 atomic (serialized), the last arrival broadcasts a release
    flag (``base_ns`` covers the flag round-trips plus intra-block
    arrive/release), and warp release re-dispatch costs
    ``per_warp_release_ns`` per resident warp per SM.

    The atomic service time degrades linearly with the number of
    outstanding blocks (L2 contention), giving the quadratic block term the
    heat-maps show at 32 blocks/SM.  Relative least-squares fit over every
    populated [F5] cell (b = blocks/SM, w = warps/SM; DESIGN.md §5):

    V100: T(us) = 0.904 + 0.4174*b + 0.00494*b^2 + 0.0265*w   (mean err 4.4%)
    P100: T(us) = 1.032 + 0.5376*b + 0.01118*b^2 + 0.0212*w   (mean err 5.1%)
    """

    base_ns: float
    per_blockpersm_ns: float       # c1: ns per (blocks/SM)
    per_blockpersm2_ns: float      # contention: ns per (blocks/SM)^2
    per_warp_release_ns: float     # c2: ns per (warps/SM)

    def atomic_service_ns(self, blocks_per_sm: int, sm_count: int) -> float:
        """Per-block L2 atomic service time under ``blocks_per_sm`` load."""
        return (
            self.per_blockpersm_ns + self.per_blockpersm2_ns * blocks_per_sm
        ) / sm_count


@dataclass(frozen=True)
class MultiGridLocalCalib:
    """Single-GPU component of multi-grid sync.  Sources: [F7],[F8].

    Multi-grid sync is grid sync plus system-scope memory fences; the
    release wavefront's flag traffic contends quadratically in the warp
    count, which dominates the V100 panel.  Relative least-squares fit over
    the 1-GPU panels (b = blocks/SM, w = warps/SM; DESIGN.md §5):

    V100: T(us) = 0.859 + 0.4363*b + 0.0576*w + 0.00323*w^2      (mean 3.6%)
    P100: T(us) = 0.847 + 0.4636*b + 0.0209*w + 0.00296*b*w
                  + 0.00026*w^2                                   (mean 4.7%)
    """

    base_ns: float
    per_block_ns: float        # ns per (blocks/SM)
    per_warp_ns: float         # ns per (warps/SM)
    per_block_warp_ns: float   # ns per (blocks/SM * warps/SM)
    per_warp2_ns: float        # ns per (warps/SM)^2

    def local_ns(self, blocks_per_sm: int, warps_per_sm: int) -> float:
        """Single-GPU multi-grid barrier latency."""
        b, w = blocks_per_sm, warps_per_sm
        return (
            self.base_ns
            + self.per_block_ns * b
            + self.per_warp_ns * w
            + self.per_block_warp_ns * b * w
            + self.per_warp2_ns * w * w
        )


@dataclass(frozen=True)
class CrossGpuCalib:
    """Inter-GPU phase of multi-grid sync.  Sources: [F7],[F8],[F9].

    ``T_cross(us) = base + per_gpu*(n-1) + hop2_penalty*[max_hop>=2]
                    + per_2hop_gpu*n_2hop + release_coef*(b^1.5 - 1)``

    where hop counts come from the interconnect graph (DGX-1 NVLink hybrid
    cube-mesh / PCIe tree) and ``b`` is blocks per SM.  The two-hop penalty
    is what produces the paper's 2–5 GPU vs 6–8 GPU plateaus.
    """

    base_ns: float
    per_gpu_ns: float
    hop2_penalty_ns: float
    per_2hop_gpu_ns: float
    release_coef_ns: float
    release_exponent: float = 1.5


@dataclass(frozen=True)
class LaunchCalib:
    """Stream/launch pipeline for one launch function.  Sources: [T1],[F9].

    Pipeline model (see cudasim/stream.py)::

        enqueue_k   = host API call, ``api_ns`` on the calling thread
        start_k     = max(enqueue_end_k + dispatch_ns,
                          end_{k-1} + gap_ns + max(0, dispatch_ns - exec_{k-1}))
        end_k       = start_k + exec_k
        sync return = end_last + sync_return_ns

    The kernel-fusion method then measures ``gap_ns`` (the paper's "launch
    overhead") and the Fig-3 estimator measures ``gap_ns + dispatch_ns``
    (the paper's "kernel total latency" for a null kernel):
    traditional 1081/8888 ns, cooperative 1063/10248 ns,
    multi-device 1258/10874 ns. [T1]

    Multi-device launches coordinate n streams: ``gap`` grows ~quadratically
    in GPU count (anchors 1.26 us @ 1 GPU, 67.2 us @ 8 GPUs [F9]) and the
    dispatch pipeline deepens ~linearly (the paper's ~250 us saturation
    threshold for 8 GPUs, Section IX-B).
    """

    api_ns: float
    dispatch_ns: float
    gap_ns: float
    sync_return_ns: float
    exec_null_ns: float
    # Multi-device scaling (zero for single-device launch types).
    gap_quad_ns_per_gpu2: float = 0.0
    dispatch_ns_per_extra_gpu: float = 0.0

    def gap_for(self, n_gpus: int) -> float:
        """Inter-kernel gap for an ``n_gpus``-wide launch."""
        return self.gap_ns + self.gap_quad_ns_per_gpu2 * (n_gpus**2 - 1)

    def dispatch_for(self, n_gpus: int) -> float:
        """Dispatch pipeline depth for an ``n_gpus``-wide launch."""
        return self.dispatch_ns + self.dispatch_ns_per_extra_gpu * (n_gpus - 1)


@dataclass(frozen=True)
class SharedMemCalib:
    """Shared-memory proxy-kernel model.  Source: [T3].

    The paper's reduction proxy (Fig 10) is a dependent load+add chain.
    ``chain_latency_cycles`` is its iteration latency ([T3]: 13.0 / 18.5
    cycles); per-thread streaming bandwidth is ``8 B / chain_latency`` and
    scales with thread count until the SM-level cap ``sm_cap_bytes_per_cycle``
    ([T3]: 215 / 141 B/cycle measured with 1024 threads).
    """

    chain_latency_cycles: float
    sm_cap_bytes_per_cycle: float
    element_bytes: int = 8  # double precision, as in the paper


@dataclass(frozen=True)
class HBMCalib:
    """Device-memory bandwidth model.  Sources: [T6],[F15].

    ``theory_gbps`` is the vendor figure the paper quotes in [T6].
    ``eff_streaming`` is the grid-stride streaming efficiency of the
    *implicit* (multi-kernel) reduction; the per-method relative factors
    capture the small persistent-kernel / library losses visible in [T6].
    """

    theory_gbps: float
    eff_streaming: float
    rel_eff_grid_persistent: float
    rel_eff_cub: float
    rel_eff_cuda_sample: float

    def effective_gbps(self, method: str = "implicit") -> float:
        """Effective bandwidth in GB/s for a reduction ``method``."""
        base = self.theory_gbps * self.eff_streaming
        rel = {
            "implicit": 1.0,
            "grid": self.rel_eff_grid_persistent,
            "cub": self.rel_eff_cub,
            "cuda_sample": self.rel_eff_cuda_sample,
        }
        try:
            return base * rel[method]
        except KeyError:
            raise ValueError(f"unknown reduction method {method!r}") from None


@dataclass(frozen=True)
class InstructionCalib:
    """Scalar instruction latencies (cycles).  Sources: Section IX-D, [T5].

    ``fadd`` is the paper's cross-validation instruction (4 cy V100,
    6 cy P100, matching Jia et al.).  ``dadd`` and the shared-memory
    latencies are fit from the [T5] reduction latencies.
    """

    fadd: float
    dadd: float
    shared_ld: float
    shared_st: float
    timer_read: float = 2.0
    branch: float = 2.0
    issue_cycles: float = 1.0
    # Serialized cost of one arm of a fully divergent 32-way branch ladder
    # (the Fig 17 protocol).  Fit so the Fig 18 start-timer staircase spans
    # the published range (~14k cycles on V100, ~9k on P100 across 32 arms).
    divergent_arm_cycles: float = 430.0


@dataclass(frozen=True)
class WarpReduceCalib:
    """Per-method issue overheads for the warp reduction study.  Source: [T5].

    Each 5-step tree reduction has per-step cost =
    (memory path) + dadd + (sync/shuffle op) + method-specific issue
    overhead.  The overheads below are the calibrated residuals — in real
    SASS they correspond to extra MOV/LOP/BSYNC instructions emitted per
    method (coalesced-group creation is notoriously expensive, hence the
    large ``coa_shuffle_create`` term).
    """

    loop_base_cycles: float        # loop setup + drain around the 5 steps
    serial_base_cycles: float      # setup of the 31-iteration serial loop
    nosync_step_extra: float       # pipelined unsafe step residual
    volatile_step_extra: float     # volatile ld/st path residual
    tile_step_extra: float
    coa_step_extra: float
    tile_shuffle_step_extra: float
    coa_shuffle_create: float      # per-step coalesced group materialization


# ---------------------------------------------------------------------------
# GPU specification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GPUSpec:
    """Full description of one GPU model (hardware limits + calibration)."""

    name: str
    compute_capability: Tuple[int, int]
    sm_count: int
    partitions_per_sm: int
    warp_size: int
    max_threads_per_sm: int
    max_warps_per_sm: int
    max_blocks_per_sm: int
    max_threads_per_block: int
    shared_mem_per_sm: int
    shared_mem_per_block: int
    registers_per_sm: int
    freq_mhz: float
    has_nanosleep: bool
    independent_thread_scheduling: bool
    warp_sync: WarpSyncCalib
    block_sync: BlockSyncCalib
    grid_sync: GridSyncCalib
    multigrid_local: MultiGridLocalCalib
    shared_mem: SharedMemCalib
    hbm: HBMCalib
    instructions: InstructionCalib
    warp_reduce: WarpReduceCalib
    # hash=False keeps the frozen spec hashable (dicts are not); equality
    # still compares the launch table.  Hashability lets the occupancy
    # and latency closed forms memoize per spec.
    launch: Dict[str, LaunchCalib] = field(hash=False)

    # -- convenience -----------------------------------------------------

    @property
    def cycle_ns(self) -> float:
        """Duration of one SM cycle in nanoseconds."""
        return 1e3 / self.freq_mhz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.cycle_ns

    def ns_to_cycles(self, ns: float) -> float:
        return ns / self.cycle_ns

    def launch_calib(self, launch_type: str) -> LaunchCalib:
        try:
            return self.launch[launch_type]
        except KeyError:
            raise ValueError(
                f"unknown launch type {launch_type!r}; "
                f"expected one of {sorted(self.launch)}"
            ) from None


@dataclass(frozen=True)
class NodeSpec:
    """A multi-GPU node: GPU model, count, interconnect, cross-GPU calib."""

    name: str
    gpu: GPUSpec
    gpu_count: int
    interconnect: str  # "nvlink-cube-mesh" | "pcie"
    cross_gpu: CrossGpuCalib
    # Host-side model: OpenMP barrier cost = base + per_log2_gpu * log2(n).
    # Fit to [F9]'s CPU-side barrier curve (9.3 us @ 1 GPU, 10.6 us @ 8
    # GPUs); the per-iteration kernel cost api+dispatch+eps+sync covers the
    # rest — "relatively close to the kernel total latency of a null
    # kernel", as the paper notes.
    omp_barrier_base_ns: float = 200.0
    omp_barrier_log2_ns: float = 330.0
    host_clock_jitter_ns: float = 120.0

    def omp_barrier_ns(self, n_threads: int) -> float:
        """Cost of one OpenMP barrier across ``n_threads`` pinned threads."""
        import math

        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if n_threads == 1:
            return self.omp_barrier_base_ns
        return self.omp_barrier_base_ns + self.omp_barrier_log2_ns * math.log2(n_threads)


# ---------------------------------------------------------------------------
# Volta V100 (DGX-1 member)  [V100-WP], Table VII
# ---------------------------------------------------------------------------

V100 = GPUSpec(
    name="V100",
    compute_capability=(7, 0),
    sm_count=80,
    partitions_per_sm=4,
    warp_size=32,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    max_threads_per_block=1024,
    shared_mem_per_sm=96 * 1024,
    shared_mem_per_block=96 * 1024,
    registers_per_sm=65536,
    freq_mhz=1312.0,  # [T7] default application frequency
    has_nanosleep=True,  # Volta introduced nanosleep (Section IX-B)
    independent_thread_scheduling=True,  # per-thread PCs (Section VIII-A)
    warp_sync=WarpSyncCalib(
        tile_latency=14.0,  # [T2]
        tile_throughput=0.812,
        shuffle_tile_latency=22.0,
        shuffle_tile_throughput=0.928,
        coalesced_partial_latency=108.0,
        coalesced_partial_throughput=0.167,
        coalesced_full_latency=14.0,
        coalesced_full_throughput=1.306,
        shuffle_coalesced_latency=77.0,
        shuffle_coalesced_throughput=0.121,
        blocking=True,
    ),
    block_sync=BlockSyncCalib(
        base_latency_cycles=22.0,  # [T2]
        per_warp_latency_cycles=1.94,  # [T4]: 5*(22+1.94*32) = 420 cy
        per_warp_service_cycles=1.0 / 0.475,  # [T2]/[F4] saturated throughput
    ),
    grid_sync=GridSyncCalib(
        base_ns=904.0,  # [F5] relative LSQ fit
        per_blockpersm_ns=417.4,
        per_blockpersm2_ns=4.94,
        per_warp_release_ns=26.5,
    ),
    multigrid_local=MultiGridLocalCalib(
        base_ns=859.0,  # [F8] 1-GPU panel, relative LSQ fit
        per_block_ns=436.3,
        per_warp_ns=57.6,
        per_block_warp_ns=0.0,
        per_warp2_ns=3.23,
    ),
    shared_mem=SharedMemCalib(
        chain_latency_cycles=13.0,  # [T3]
        sm_cap_bytes_per_cycle=215.0,  # [T3] 1024-thread measurement
    ),
    hbm=HBMCalib(
        theory_gbps=898.05,  # [T6]
        eff_streaming=865.40 / 898.05,  # [T6] implicit
        rel_eff_grid_persistent=855.59 / 865.40,  # [T6]
        rel_eff_cub=849.39 / 865.40,  # [T6]
        rel_eff_cuda_sample=852.98 / 865.40,  # [T6]
    ),
    instructions=InstructionCalib(
        fadd=4.0,  # Section IX-D validation (matches Jia et al.)
        dadd=8.0,
        shared_ld=19.0,
        shared_st=6.0,
        divergent_arm_cycles=430.0,  # [F18] V100 staircase ~14k cy / 32 arms
    ),
    warp_reduce=WarpReduceCalib(
        loop_base_cycles=24.0,
        serial_base_cycles=51.0,  # [T5] serial: 51 + 31*dadd = 299
        nosync_step_extra=0.0,  # [T5] nosync: 24 + 5*chain(13) = 89
        volatile_step_extra=15.6,  # [T5] volatile: 24 + 5*(19+8+15.6) = 237
        tile_step_extra=1.6,  # [T5] tile: 24 + 5*(19+8+14+1.6) = 237
        coa_step_extra=1.6,  # [T5] coa(32): same path as tile on V100
        tile_shuffle_step_extra=-2.0,  # [T5]: 24 + 5*(22+8-2) = 164
        coa_shuffle_create=162.4,  # [T5]: 24 + 5*(77+8+162.4) = 1261
    ),
    launch={
        # [T1] traditional <<<>>>.  The fusion method measures gap + eps
        # (eps = exec_null_ns, the empty kernel's drain time), so
        # gap = 1081 - eps; the Fig-3 estimator measures
        # eps + gap + (dispatch - eps) = gap + dispatch = 8888 - ... with
        # eps folded: dispatch = 8888 - 1081 + eps.
        "traditional": LaunchCalib(
            api_ns=400.0,
            dispatch_ns=8888.0 - 1081.0 + 300.0,
            gap_ns=1081.0 - 300.0,
            sync_return_ns=400.0,
            exec_null_ns=300.0,
        ),
        # [T1] cudaLaunchCooperativeKernel: fusion overhead 1063, Fig-3
        # total 10248.  The large api_ns is host-side occupancy validation;
        # it is hidden behind execution once the pipeline is busy, so the
        # fusion method still recovers gap + eps.
        "cooperative": LaunchCalib(
            api_ns=7500.0,
            dispatch_ns=10248.0 - 1063.0 + 300.0,
            gap_ns=1063.0 - 300.0,
            sync_return_ns=400.0,
            exec_null_ns=300.0,
        ),
        # [T1]/[F9] cudaLaunchCooperativeKernelMultiDevice:
        # fusion overhead(n) = 1258 + 1046.7*(n^2-1) ns
        # (anchors 1.26 us @ 1 GPU, 67.2 us @ 8 GPUs in Fig 9); the
        # dispatch pipeline deepens ~34 us per extra GPU, reproducing the
        # paper's ~250 us saturation threshold at 8 GPUs (Section IX-B).
        "multi_device": LaunchCalib(
            api_ns=8000.0,
            dispatch_ns=10874.0 - 1258.0 + 300.0,
            gap_ns=1258.0 - 300.0,
            sync_return_ns=400.0,
            exec_null_ns=300.0,
            gap_quad_ns_per_gpu2=(67200.0 - 1258.0) / 63.0,
            dispatch_ns_per_extra_gpu=34000.0,
        ),
    },
)


# ---------------------------------------------------------------------------
# Pascal P100  [P100-WP], Table VII
# ---------------------------------------------------------------------------

P100 = GPUSpec(
    name="P100",
    compute_capability=(6, 0),
    sm_count=56,
    partitions_per_sm=2,
    warp_size=32,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    max_threads_per_block=1024,
    shared_mem_per_sm=64 * 1024,
    shared_mem_per_block=48 * 1024,
    registers_per_sm=65536,
    freq_mhz=1189.0,  # [T7]
    has_nanosleep=False,  # sleep instruction is Volta-only (Section IX-B)
    independent_thread_scheduling=False,  # lockstep warps (Section VIII-A)
    warp_sync=WarpSyncCalib(
        tile_latency=1.0,  # [T2] — effectively a no-op on Pascal
        tile_throughput=1.774,
        shuffle_tile_latency=31.0,
        shuffle_tile_throughput=0.642,
        coalesced_partial_latency=1.0,
        coalesced_partial_throughput=1.791,
        coalesced_full_latency=1.0,
        coalesced_full_throughput=1.821,
        shuffle_coalesced_latency=50.0,
        shuffle_coalesced_throughput=0.166,
        blocking=False,  # Section VIII-A: P100 does not block at warp barriers
    ),
    block_sync=BlockSyncCalib(
        base_latency_cycles=218.0,  # [T2]
        per_warp_latency_cycles=6.53,  # [T4]: 5*(218+6.53*32) = 2135 cy
        per_warp_service_cycles=1.0 / 0.091,  # [T2]/[F4]
    ),
    grid_sync=GridSyncCalib(
        base_ns=1032.0,  # [F5] relative LSQ fit
        per_blockpersm_ns=537.6,
        per_blockpersm2_ns=11.18,
        per_warp_release_ns=21.2,
    ),
    multigrid_local=MultiGridLocalCalib(
        base_ns=847.0,  # [F7] 1-GPU panel, relative LSQ fit
        per_block_ns=463.6,
        per_warp_ns=20.9,
        per_block_warp_ns=2.96,
        per_warp2_ns=0.26,
    ),
    shared_mem=SharedMemCalib(
        chain_latency_cycles=18.5,  # [T3]
        sm_cap_bytes_per_cycle=141.0,  # [T3]
    ),
    hbm=HBMCalib(
        theory_gbps=732.16,  # [T6]
        eff_streaming=592.40 / 732.16,
        rel_eff_grid_persistent=590.85 / 592.40,
        rel_eff_cub=543.96 / 592.40,
        rel_eff_cuda_sample=590.65 / 592.40,
    ),
    instructions=InstructionCalib(
        fadd=6.0,  # Section IX-D validation
        dadd=10.0,
        shared_ld=25.0,
        shared_st=8.0,
        divergent_arm_cycles=280.0,  # [F18] P100 staircase ~9k cy / 32 arms
    ),
    warp_reduce=WarpReduceCalib(
        loop_base_cycles=24.0,
        serial_base_cycles=73.0,  # [T5] serial: 73 + 31*dadd = 383
        nosync_step_extra=-0.9,  # [T5] nosync: 24 + 5*(18.5-0.9) = 112
        volatile_step_extra=16.6,  # [T5] volatile: 24 + 5*(25+10+16.6) = 282
        tile_step_extra=15.4,  # [T5] tile: 24 + 5*(25+10+1+15.4) = 281
        coa_step_extra=9.4,  # [T5] coa: 24 + 5*(25+10+1+9.4) = 251
        tile_shuffle_step_extra=-3.4,  # [T5]: 24 + 5*(31+10-3.4) = 212
        coa_shuffle_create=219.8,  # [T5]: 24 + 5*(50+10+219.8) = 1423
    ),
    launch={
        # The paper only publishes Table I for V100 (nanosleep is needed for
        # the fusion measurement and is Volta-only).  P100 launch constants
        # follow the same structure, scaled for the PCIe-attached host and
        # chosen to reproduce the [F15]/[F16] small-size floors.
        "traditional": LaunchCalib(
            api_ns=500.0,
            dispatch_ns=8500.0,
            gap_ns=850.0,
            sync_return_ns=450.0,
            exec_null_ns=350.0,
        ),
        "cooperative": LaunchCalib(
            api_ns=7800.0,
            dispatch_ns=9800.0,
            gap_ns=820.0,
            sync_return_ns=450.0,
            exec_null_ns=350.0,
        ),
        "multi_device": LaunchCalib(
            api_ns=8500.0,
            dispatch_ns=10200.0,
            gap_ns=1050.0,
            sync_return_ns=450.0,
            exec_null_ns=350.0,
            gap_quad_ns_per_gpu2=1100.0,
            dispatch_ns_per_extra_gpu=36000.0,
        ),
    },
)


# ---------------------------------------------------------------------------
# Nodes
# ---------------------------------------------------------------------------

# DGX-1 with 8 V100s over the NVLink hybrid cube-mesh. [F8],[F9]
DGX1_V100 = NodeSpec(
    name="DGX-1 (8x V100, NVLink)",
    gpu=V100,
    gpu_count=8,
    interconnect="nvlink-cube-mesh",
    cross_gpu=CrossGpuCalib(
        base_ns=4830.0,  # [F8] fit (DESIGN.md §5)
        per_gpu_ns=193.0,
        hop2_penalty_ns=10490.0,
        per_2hop_gpu_ns=960.0,
        release_coef_ns=110.0,
    ),
)

# DGX-2-style box: 16 V100s on an NVSwitch crossbar.  Not a paper platform —
# it exists for scenario sweeps beyond the DGX-1 cube-mesh.  Every pair of
# GPUs is one switch traversal apart, so the calibration drops the two-hop
# penalty entirely and charges a slightly higher per-GPU increment for the
# switch traversal; the 1-hop base matches the DGX-1 fit so that the 2-GPU
# configurations of both boxes coincide.
DGX2_V100 = NodeSpec(
    name="DGX-2 (16x V100, NVSwitch)",
    gpu=V100,
    gpu_count=16,
    interconnect="nvswitch",
    cross_gpu=CrossGpuCalib(
        base_ns=4830.0,
        per_gpu_ns=240.0,
        hop2_penalty_ns=0.0,
        per_2hop_gpu_ns=0.0,
        release_coef_ns=110.0,
    ),
)

# Dual-P100 server over PCIe. [F7]
P100_PCIE_NODE = NodeSpec(
    name="2x P100 (PCIe)",
    gpu=P100,
    gpu_count=2,
    interconnect="pcie",
    cross_gpu=CrossGpuCalib(
        base_ns=5840.0,  # [F7] fit: 7.29 us - 1.45 us at (1 blk/SM, 32 thr)
        per_gpu_ns=200.0,
        hop2_penalty_ns=0.0,
        per_2hop_gpu_ns=0.0,
        release_coef_ns=199.0,
    ),
)


GPU_REGISTRY: Dict[str, GPUSpec] = {"V100": V100, "P100": P100}
NODE_REGISTRY: Dict[str, NodeSpec] = {
    "DGX1": DGX1_V100,
    "DGX2": DGX2_V100,
    "P100x2": P100_PCIE_NODE,
}


def get_gpu_spec(name: str) -> GPUSpec:
    """Look up a GPU spec by name (case-insensitive)."""
    try:
        return GPU_REGISTRY[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown GPU {name!r}; available: {sorted(GPU_REGISTRY)}"
        ) from None


def get_node_spec(name: str) -> NodeSpec:
    """Look up a node spec by name."""
    for key, spec in NODE_REGISTRY.items():
        if key.lower() == name.lower():
            return spec
    raise ValueError(f"unknown node {name!r}; available: {sorted(NODE_REGISTRY)}")
