"""Memory system models: shared memory, L2 atomics, HBM, device buffers.

Three distinct concerns live here:

* **Functional state** — :class:`SharedMemory` and :class:`DeviceBuffer`
  hold real numpy data so the reduction case study computes *actual sums*
  and the no-sync race produces *actually wrong* answers.
* **Visibility semantics** — :class:`SharedMemory` implements the
  pending/committed model the paper's Table V hinges on: a plain store is
  not visible to *other* threads until a synchronization (or the program
  declared the buffer ``volatile``); reading another thread's uncommitted
  slot yields the stale committed value and records a race.
* **Timing** — :class:`L2AtomicUnit` (serialized atomic port used by the
  grid barrier protocol), :class:`HBM` (streaming bandwidth model used
  by the reduction experiments) and :class:`MemoryChannel` (shared
  bandwidth carrying spin-poll flag reads *and* workload traffic, the
  contention behind the software barrier's detection lag) turn byte
  counts into nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

import numpy as np

from repro.sanitize import events as _sanitize
from repro.sim.arch import HBMCalib
from repro.sim.engine import Engine, Resource, Timeout

__all__ = [
    "SharedMemory",
    "L2AtomicUnit",
    "HBM",
    "DeviceBuffer",
    "MemoryChannel",
    "MAX_WORKLOAD_UTIL",
    "RaceRecord",
]

#: Capacity floor of a :class:`MemoryChannel`: workload traffic may consume
#: at most this fraction of the channel, leaving ``1 - MAX_WORKLOAD_UTIL``
#: of residual capacity for the spin-poll flag reads.  The detection-lag
#: model scales as ``1 / (1 - workload_util)``, so utilizations approaching
#: 1 produce arbitrarily large, physically meaningless lags (a channel
#: 99.9% busy with workload traffic is not a barrier-contention regime —
#: it is a saturated link the analytic M/D/1-style aggregate no longer
#: describes).  Rather than silently returning absurd numbers, utilization
#: above the floor is rejected loudly at injection time.
MAX_WORKLOAD_UTIL = 0.95


@dataclass(frozen=True)
class RaceRecord:
    """One detected read of a not-yet-visible shared-memory slot."""

    reader: int
    writer: int
    slot: int
    step: Optional[int] = None


class SharedMemory:
    """Shared memory of one block with CUDA visibility semantics.

    The model distinguishes a *committed* array (what other threads see)
    from *pending* writes (visible only to the writing thread).  A barrier
    or fence commits all pending writes; ``volatile`` accesses bypass the
    pending buffer entirely — exactly the mechanism by which the paper's
    ``volatile``-qualified reduction is correct without explicit sync while
    the plain no-sync variant is not (Table V).
    """

    def __init__(self, slots: int, dtype=np.float64):
        if slots <= 0:
            raise ValueError("shared memory must have at least one slot")
        self.slots = slots
        self.committed = np.zeros(slots, dtype=dtype)
        self.pending = np.zeros(slots, dtype=dtype)
        self.pending_owner = np.full(slots, -1, dtype=np.int64)
        self.races: List[RaceRecord] = []

    # -- stores ----------------------------------------------------------

    def store(self, thread: int, slot: int, value: float, volatile: bool = False) -> None:
        """Write ``value``; plain writes stay pending for other threads."""
        self._check_slot(slot)
        mon = _sanitize.MONITOR
        if mon is not None and mon.capture_memory:
            mon.on_mem_access(self, thread, slot, is_store=True, volatile=volatile)
        if volatile:
            self.committed[slot] = value
            self.pending_owner[slot] = -1
        else:
            self.pending[slot] = value
            self.pending_owner[slot] = thread

    # -- loads -----------------------------------------------------------

    def load(
        self,
        thread: int,
        slot: int,
        volatile: bool = False,
        step: Optional[int] = None,
    ) -> float:
        """Read a slot under the visibility rules.

        A plain read of another thread's pending write returns the stale
        committed value and records a :class:`RaceRecord` — the simulated
        analogue of the compiler/hardware keeping the value in a register.
        """
        self._check_slot(slot)
        mon = _sanitize.MONITOR
        if mon is not None and mon.capture_memory:
            mon.on_mem_access(self, thread, slot, is_store=False, volatile=volatile)
        owner = int(self.pending_owner[slot])
        if owner == -1:
            return float(self.committed[slot])
        if owner == thread or volatile:
            # Own writes are always visible to self; volatile reads snoop
            # the latest value regardless of commit state.
            return float(self.pending[slot])
        self.races.append(RaceRecord(reader=thread, writer=owner, slot=slot, step=step))
        return float(self.committed[slot])

    # -- synchronization -------------------------------------------------

    def commit(self) -> int:
        """Commit all pending writes (the effect of any barrier/fence).

        Returns the number of slots committed.
        """
        mon = _sanitize.MONITOR
        if mon is not None and mon.capture_memory:
            mon.on_mem_commit(self)
        mask = self.pending_owner >= 0
        n = int(mask.sum())
        if n:
            self.committed[mask] = self.pending[mask]
            self.pending_owner[mask] = -1
        return n

    def commit_thread(self, thread: int) -> int:
        """Commit only one thread's pending writes (per-thread fence)."""
        mon = _sanitize.MONITOR
        if mon is not None and mon.capture_memory:
            mon.on_mem_commit(self, thread=thread)
        mask = self.pending_owner == thread
        n = int(mask.sum())
        if n:
            self.committed[mask] = self.pending[mask]
            self.pending_owner[mask] = -1
        return n

    @property
    def race_detected(self) -> bool:
        return bool(self.races)

    def _check_slot(self, slot: int) -> None:
        if not (0 <= slot < self.slots):
            raise IndexError(f"shared memory slot {slot} out of range [0,{self.slots})")


class L2AtomicUnit:
    """Serialized atomic port at the L2 cache.

    The grid barrier's per-block ``atomicAdd`` on the arrival counter is
    serviced here; serialization across all arriving blocks is what makes
    grid-sync latency scale with *total block count* (paper Fig 5 — latency
    tracks blocks/SM, weakly threads/block).
    """

    def __init__(self, engine: Engine, service_ns: float, name: str = "l2-atomic"):
        if service_ns < 0:
            raise ValueError("service_ns must be non-negative")
        self.engine = engine
        self.service_ns = float(service_ns)
        self.port = Resource(engine, capacity=1, name=name)
        self._service = Timeout(self.service_ns)
        self.ops = 0

    def atomic(self):
        """Process helper: perform one serialized atomic op.

        Usage inside a process::

            yield from l2.atomic()
        """
        yield self.port.acquire()
        yield self._service
        self.ops += 1
        self.port.release()


class MemoryChannel:
    """Shared memory channel carrying spin-poll flag reads plus workload traffic.

    The software atomic barrier's waiters spin-read a release flag; those
    reads are not free — they occupy the same memory channel (L2 port for a
    grid, interconnect link for a multi-grid) as the workload's own traffic,
    which is the contention effect Stuart & Owens measure for GPU
    synchronization primitives.  The channel is an *analytic* aggregate, not
    a DES resource: each of ``n_pollers`` spinners issues one flag read
    every ``poll_ns`` that occupies the channel for ``read_ns``, and a
    fraction ``workload_util`` of the channel is already busy with workload
    traffic.  Once the offered poll traffic exceeds what the residual
    capacity can carry, the effective poll period is service-bound::

        effective_poll_ns = max(poll_ns, n_pollers * read_ns / (1 - workload_util))

    and every individual read is stretched by the workload share
    (``read_ns / (1 - workload_util)``).  Both terms are deterministic and
    monotone in ``n_pollers`` and ``workload_util``, so detection lag grows
    with participant count and with injected workload traffic — the physics
    the fixed ``poll_ns / 2`` constant ignored.
    """

    def __init__(self, read_ns: float, workload_util: float = 0.0, name: str = "mem-channel"):
        if read_ns < 0:
            raise ValueError("read_ns must be non-negative")
        self.name = name
        self.read_ns = float(read_ns)
        self.workload_util = 0.0
        self.inject_workload(workload_util)
        #: Detection-lag computations served (one per waiter-round).
        self.detections = 0

    def inject_workload(self, util: float) -> None:
        """Set the fraction of channel capacity consumed by workload traffic.

        Utilization is capped at :data:`MAX_WORKLOAD_UTIL`: the lag model
        diverges as ``util -> 1``, so near-saturation values produce
        nonsense (``0.999`` would stretch every flag read 1000x).  Both
        violations raise ``ValueError`` naming the knob and the bound.
        """
        if not (0.0 <= util <= MAX_WORKLOAD_UTIL):
            raise ValueError(
                f"workload_util must be in [0, {MAX_WORKLOAD_UTIL}], got "
                f"{util!r}: above the channel capacity floor the contention "
                f"model's 1/(1-util) detection-lag stretch is physically "
                f"meaningless (saturated link, not a barrier-contention "
                f"regime) — lower the injected workload traffic (e.g. the "
                f"extra.workload_util scenario knob) to "
                f"{MAX_WORKLOAD_UTIL} or below"
            )
        self.workload_util = float(util)

    def effective_poll_ns(self, n_pollers: int, poll_ns: float) -> float:
        """Realized poll period once the pollers share the residual capacity."""
        if n_pollers < 0:
            raise ValueError("n_pollers must be non-negative")
        if poll_ns <= 0:
            raise ValueError("poll_ns must be positive")
        capacity = 1.0 - self.workload_util
        return max(float(poll_ns), n_pollers * self.read_ns / capacity)

    def stretched_read_ns(self, extra_ns: float = 0.0) -> float:
        """One flag read (plus ``extra_ns`` of propagation) under contention."""
        return (self.read_ns + extra_ns) / (1.0 - self.workload_util)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryChannel({self.name!r}, read_ns={self.read_ns}, "
            f"workload_util={self.workload_util})"
        )


class HBM:
    """Device-memory streaming model.

    Timing is analytic — ``bytes / effective_bandwidth`` — because the
    reduction workloads stream gigabytes and the paper itself models them
    as bandwidth-bound (Section VII-B).  Method-specific efficiencies come
    from the :class:`~repro.sim.arch.HBMCalib` block (Table VI).
    """

    def __init__(self, calib: HBMCalib):
        self.calib = calib

    def transfer_ns(self, nbytes: int, method: str = "implicit") -> float:
        """Time to stream ``nbytes`` under ``method``'s access pattern."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        gbps = self.calib.effective_gbps(method)
        return nbytes / gbps  # GB/s == bytes/ns

    def effective_gbps(self, method: str = "implicit") -> float:
        return self.calib.effective_gbps(method)

    @property
    def theory_gbps(self) -> float:
        return self.calib.theory_gbps


class DeviceBuffer:
    """A global-memory allocation on one device (numpy-backed)."""

    _next_id = 0

    def __init__(self, device_index: int, shape, dtype=np.float64, name: str = ""):
        self.device_index = device_index
        self.data = np.zeros(shape, dtype=dtype)
        DeviceBuffer._next_id += 1
        self.name = name or f"buf{DeviceBuffer._next_id}"

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def copy_from_host(self, array: np.ndarray) -> None:
        if array.shape != self.data.shape:
            raise ValueError(
                f"shape mismatch: buffer {self.data.shape} vs host {array.shape}"
            )
        self.data[...] = array

    def to_host(self) -> np.ndarray:
        return self.data.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceBuffer({self.name!r}, dev={self.device_index}, "
            f"shape={self.data.shape}, dtype={self.data.dtype})"
        )
