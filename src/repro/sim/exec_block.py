"""Thread-precise *block* executor: multiple warps, one shared memory,
``__syncthreads`` rendezvous.

Extends the warp executor to whole thread blocks so that block-scope
listings (the paper's Fig 12 ``block_reduce``) can run with exact CUDA
semantics: per-warp shuffle/sync boards stay warp-local, shared memory is
block-visible under the pending/committed model, and
:class:`~repro.cudasim.instructions.BlockSync` is a cross-warp barrier that
commits shared memory and costs the calibrated block-sync latency — on
*both* architectures (unlike warp barriers, ``__syncthreads`` blocks on
Pascal too).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Generator

from repro.sim.arch import GPUSpec
from repro.sim.engine import Engine, Signal
from repro.sim.exec_thread import ThreadCtx, WarpExecutor, WarpRunResult
from repro.sim.memory import SharedMemory
from repro.sim.sm import block_sync_latency_cycles

__all__ = ["BlockBarrier", "BlockExecutor"]


class BlockBarrier:
    """Round-keyed ``__syncthreads`` rendezvous across a block's threads."""

    def __init__(self, engine: Engine, spec: GPUSpec, nthreads: int,
                 shared: SharedMemory):
        self.engine = engine
        self.spec = spec
        self.nthreads = nthreads
        self.shared = shared
        self.warps = math.ceil(nthreads / spec.warp_size)
        self.latency_ns = spec.cycles_to_ns(
            block_sync_latency_cycles(spec, self.warps)
        )
        self._rounds: Dict[int, dict] = {}
        self._counters: Dict[int, int] = {}
        self.rounds_completed = 0

    def _round(self, idx: int) -> dict:
        rnd = self._rounds.get(idx)
        if rnd is None:
            rnd = {
                "arrived": 0,
                "release": Signal(self.engine, name=f"syncthreads-{idx}"),
            }
            self._rounds[idx] = rnd
        return rnd

    def arrive_nowait(self, gtid: int) -> Signal:
        """Count one arrival now; return the round's release signal.

        The split form of :meth:`arrive` — the warp executor's SIMT fast
        path arrives a whole converged warp (or parks a thread-precise
        lane for re-convergence) without one generator frame per thread,
        and all paths share this bookkeeping so arrival counting is
        identical everywhere.
        """
        idx = self._counters.get(gtid, 0)
        self._counters[gtid] = idx + 1
        rnd = self._round(idx)
        rnd["arrived"] += 1
        if rnd["arrived"] == self.nthreads:
            self.shared.commit()
            self.engine.schedule_fire(self.latency_ns, rnd["release"])
            self.rounds_completed += 1
        return rnd["release"]

    def arrive(self, gtid: int) -> Generator:
        """One thread's barrier arrival; resumes when the block releases."""
        yield self.arrive_nowait(gtid)


class BlockExecutor:
    """Runs one thread block precisely (up to 1024 threads / 32 warps)."""

    def __init__(
        self,
        spec: GPUSpec,
        nthreads: int = 128,
        shared_slots: int = 1024,
        simt_fast_path: bool = True,
    ):
        if not (1 <= nthreads <= spec.max_threads_per_block):
            raise ValueError(
                f"nthreads must be in [1, {spec.max_threads_per_block}]"
            )
        self.spec = spec
        self.nthreads = nthreads
        self.engine = Engine()
        self.shared = SharedMemory(shared_slots)
        self.barrier = BlockBarrier(self.engine, spec, nthreads, self.shared)
        self.warps = []
        for offset in range(0, nthreads, spec.warp_size):
            lanes = min(spec.warp_size, nthreads - offset)
            self.warps.append(
                WarpExecutor(
                    spec,
                    nthreads=lanes,
                    engine=self.engine,
                    shared=self.shared,
                    tid_offset=offset,
                    block_barrier=self.barrier,
                    simt_fast_path=simt_fast_path,
                )
            )

    @property
    def warp_count(self) -> int:
        return len(self.warps)

    def run(self, program: Callable[[ThreadCtx], Generator]) -> WarpRunResult:
        """Execute ``program`` on every thread of the block."""
        result = WarpRunResult(
            duration_ns=0.0,
            duration_cycles=0.0,
            start_ns={},
            end_ns={},
            records={},
            returns={},
            shared=self.shared,
            shuffle_incorrect=False,
        )
        t0 = self.engine.now
        for warp in self.warps:
            warp.start(program, result)
        self.engine.run()
        result.duration_ns = self.engine.now - t0
        result.duration_cycles = self.spec.ns_to_cycles(result.duration_ns)
        result.shuffle_incorrect = any(w.shuffle_incorrect for w in self.warps)
        return result
