"""Whole-GPU device model: grid barrier protocol and device state.

The grid barrier (cooperative groups ``grid.sync()``) is simulated as the
software protocol CUDA actually uses:

1. every block synchronizes internally (arrive),
2. one leader warp per block performs a serialized atomic increment on an
   arrival counter in L2,
3. the last arrival writes a release flag,
4. every SM re-dispatches its resident warps.

Step 2's serialization over *all* blocks is why grid-sync latency tracks
blocks/SM much more strongly than threads/block (Fig 5); step 4 contributes
the weaker per-warp term.  Partial participation (a subset of blocks calling
``sync()``) leaves the counter short of the grid size and the simulation
deadlocks — the Section VIII-B observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.sim.arch import GPUSpec
from repro.sim.engine import Engine, Resource, Signal, Timeout
from repro.sim.memory import DeviceBuffer, HBM, L2AtomicUnit
from repro.sim.occupancy import blocks_per_sm as occ_blocks_per_sm

__all__ = ["Device", "GridSyncResult", "simulate_grid_sync", "grid_sync_latency_ns"]

# How the calibrated fixed cost splits between arrive and release phases.
# The split does not affect totals; it shapes intermediate event times.
_ARRIVE_FRACTION = 0.4


@dataclass(frozen=True)
class GridSyncResult:
    """Outcome of a grid-sync micro-benchmark."""

    blocks_per_sm: int
    threads_per_block: int
    total_blocks: int
    warps_per_sm: int
    n_syncs: int
    total_ns: float

    @property
    def latency_per_sync_ns(self) -> float:
        return self.total_ns / self.n_syncs

    @property
    def latency_per_sync_us(self) -> float:
        return self.latency_per_sync_ns / 1e3


def grid_sync_latency_ns(
    spec: GPUSpec, blocks_per_sm: int, threads_per_block: int
) -> float:
    """Closed-form expected latency of one grid sync (for cross-checks).

    ``T = base + total_blocks * atomic_service(b) + warps_per_sm * release``
    — the relative least-squares fit to the Fig 5 heat-maps, where the L2
    atomic service time degrades linearly in the outstanding block count.
    The DES protocol in :func:`simulate_grid_sync` reproduces this
    structurally.
    """
    gs = spec.grid_sync
    occ = occ_blocks_per_sm(spec, threads_per_block)
    if blocks_per_sm > occ.blocks_per_sm:
        raise ValueError(
            f"{blocks_per_sm} blocks/SM x {threads_per_block} thr/blk "
            f"not co-resident on {spec.name} (limit {occ.blocks_per_sm})"
        )
    total_blocks = blocks_per_sm * spec.sm_count
    warps_per_sm = blocks_per_sm * occ.warps_per_block
    return (
        gs.base_ns
        + total_blocks * gs.atomic_service_ns(blocks_per_sm, spec.sm_count)
        + warps_per_sm * gs.per_warp_release_ns
    )


def simulate_grid_sync(
    spec: GPUSpec,
    blocks_per_sm: int,
    threads_per_block: int,
    n_syncs: int = 1,
    participating_blocks: Optional[int] = None,
    engine: Optional[Engine] = None,
    sm_count: Optional[int] = None,
) -> GridSyncResult:
    """Simulate ``n_syncs`` grid barriers with the four-step protocol.

    Parameters
    ----------
    participating_blocks:
        If fewer than the grid size, the barrier can never complete and the
        run raises :class:`~repro.sim.engine.DeadlockError` — the paper's
        partial-group pitfall (Section VIII-B).
    sm_count:
        Override the SM count (used by the multi-GPU model to build
        smaller logical devices for tests).
    """
    if blocks_per_sm < 1:
        raise ValueError("blocks_per_sm must be >= 1")
    if n_syncs < 1:
        raise ValueError("n_syncs must be >= 1")
    occ = occ_blocks_per_sm(spec, threads_per_block)
    if blocks_per_sm > occ.blocks_per_sm:
        raise ValueError(
            f"cooperative grid of {blocks_per_sm} blocks/SM x "
            f"{threads_per_block} threads/block cannot co-reside on {spec.name}"
        )

    sms = sm_count if sm_count is not None else spec.sm_count
    total_blocks = blocks_per_sm * sms
    participants = (
        total_blocks if participating_blocks is None else participating_blocks
    )
    if not (0 < participants <= total_blocks):
        raise ValueError("participating_blocks must be in (0, total_blocks]")

    gs = spec.grid_sync
    eng = engine or Engine()
    l2 = L2AtomicUnit(eng, gs.atomic_service_ns(blocks_per_sm, sms))
    release_ports = [
        Resource(eng, capacity=1, name=f"sm{j}-release") for j in range(sms)
    ]

    arrive_ns = gs.base_ns * _ARRIVE_FRACTION
    flag_ns = gs.base_ns * (1.0 - _ARRIVE_FRACTION)
    wpb = occ.warps_per_block

    # Per-round shared state.
    rounds: List[Dict] = [
        {"count": 0, "release": Signal(eng, name=f"grid-release-{r}")}
        for r in range(n_syncs)
    ]

    # Timeouts are immutable: allocate once, yield per round (hot loop).
    t_arrive = Timeout(arrive_ns)
    t_release = Timeout(gs.per_warp_release_ns)

    def block_proc(block_id: int) -> Generator:
        sm_id = block_id % sms
        for r in range(n_syncs):
            rnd = rounds[r]
            # 1. intra-block arrive + flag write round-trip.
            yield t_arrive
            # 2. serialized atomic increment at L2.
            yield from l2.atomic()
            rnd["count"] += 1
            if rnd["count"] == total_blocks:
                # 3. last arrival broadcasts the release flag.
                eng.schedule_fire(flag_ns, rnd["release"])
            yield rnd["release"]
            # 4. warp re-dispatch, serialized per SM.
            port = release_ports[sm_id]
            for _ in range(wpb):
                yield port.acquire()
                yield t_release
                port.release()

    t0 = eng.now
    for b in range(participants):
        eng.process(block_proc(b), name=f"grid-block{b}")
    eng.run()  # raises DeadlockError when participants < total_blocks

    return GridSyncResult(
        blocks_per_sm=blocks_per_sm,
        threads_per_block=threads_per_block,
        total_blocks=total_blocks,
        warps_per_sm=blocks_per_sm * wpb,
        n_syncs=n_syncs,
        total_ns=eng.now - t0,
    )


class Device:
    """One simulated GPU: spec + memory system + allocation table.

    The runtime (:mod:`repro.cudasim`) owns streams and launches; the
    device owns state that persists across kernels — global memory buffers
    and the bandwidth model used by the reduction workloads.
    """

    def __init__(self, spec: GPUSpec, index: int = 0):
        self.spec = spec
        self.index = index
        self.hbm = HBM(spec.hbm)
        self.buffers: Dict[str, DeviceBuffer] = {}
        self.peer_accessible: set[int] = {index}

    def alloc(self, shape, dtype=None, name: str = "") -> DeviceBuffer:
        """Allocate a device buffer (numpy-backed)."""
        import numpy as np

        buf = DeviceBuffer(self.index, shape, dtype or np.float64, name)
        self.buffers[buf.name] = buf
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        self.buffers.pop(buf.name, None)

    def enable_peer_access(self, other_index: int) -> None:
        """Allow kernels on this device to address ``other_index``'s memory
        (GPUDirect peer access — the mechanism the multi-GPU reduction's
        explicit variant relies on, Section VII-E)."""
        self.peer_accessible.add(other_index)

    def can_access(self, buf: DeviceBuffer) -> bool:
        return buf.device_index in self.peer_accessible

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Device({self.spec.name}, index={self.index})"
