"""Whole-GPU device model: device state and the grid-sync cost model.

The grid barrier's DES protocol now lives in
:class:`repro.sync.GridGroup` (the cooperative-groups-style API);
:func:`simulate_grid_sync` remains as a deprecated shim delegating there.
The closed-form latency model :func:`grid_sync_latency_ns` stays here —
it is the Fig 5 fit, not a protocol.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.arch import GPUSpec
from repro.sim.engine import Engine
from repro.sim.memory import DeviceBuffer, HBM
from repro.sim.occupancy import blocks_per_sm as occ_blocks_per_sm

__all__ = ["Device", "GridSyncResult", "simulate_grid_sync", "grid_sync_latency_ns"]


@dataclass(frozen=True)
class GridSyncResult:
    """Outcome of a grid-sync micro-benchmark."""

    blocks_per_sm: int
    threads_per_block: int
    total_blocks: int
    warps_per_sm: int
    n_syncs: int
    total_ns: float

    @property
    def latency_per_sync_ns(self) -> float:
        return self.total_ns / self.n_syncs

    @property
    def latency_per_sync_us(self) -> float:
        return self.latency_per_sync_ns / 1e3


def grid_sync_latency_ns(
    spec: GPUSpec, blocks_per_sm: int, threads_per_block: int
) -> float:
    """Closed-form expected latency of one grid sync (for cross-checks).

    ``T = base + total_blocks * atomic_service(b) + warps_per_sm * release``
    — the relative least-squares fit to the Fig 5 heat-maps, where the L2
    atomic service time degrades linearly in the outstanding block count.
    The DES protocol in :func:`simulate_grid_sync` reproduces this
    structurally.
    """
    gs = spec.grid_sync
    occ = occ_blocks_per_sm(spec, threads_per_block)
    if blocks_per_sm > occ.blocks_per_sm:
        raise ValueError(
            f"{blocks_per_sm} blocks/SM x {threads_per_block} thr/blk "
            f"not co-resident on {spec.name} (limit {occ.blocks_per_sm})"
        )
    total_blocks = blocks_per_sm * spec.sm_count
    warps_per_sm = blocks_per_sm * occ.warps_per_block
    return (
        gs.base_ns
        + total_blocks * gs.atomic_service_ns(blocks_per_sm, spec.sm_count)
        + warps_per_sm * gs.per_warp_release_ns
    )


def simulate_grid_sync(
    spec: GPUSpec,
    blocks_per_sm: int,
    threads_per_block: int,
    n_syncs: int = 1,
    participating_blocks: Optional[int] = None,
    engine: Optional[Engine] = None,
    sm_count: Optional[int] = None,
    strategy=None,
    strategy_knobs=None,
    backend=None,
) -> GridSyncResult:
    """Deprecated shim over :class:`repro.sync.GridGroup`.

    The four-step grid-barrier protocol (and its pluggable strategy
    variants) lives in :mod:`repro.sync`; this wrapper reproduces the
    historical one-shot signature, event-for-event.

    .. deprecated::
        Use ``GridGroup(spec, blocks_per_sm, threads_per_block).simulate()``
        or ``CudaRuntime.this_grid(...)`` instead.
    """
    warnings.warn(
        "simulate_grid_sync is deprecated; use repro.sync.GridGroup "
        "(or CudaRuntime.this_grid) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.sync import GridGroup

    if n_syncs < 1:
        raise ValueError("n_syncs must be >= 1")
    group = GridGroup(
        spec, blocks_per_sm, threads_per_block, engine=engine, sm_count=sm_count,
        strategy=strategy, strategy_knobs=strategy_knobs, backend=backend,
    )
    return group.simulate(
        n_syncs=n_syncs, participating_blocks=participating_blocks
    )


class Device:
    """One simulated GPU: spec + memory system + allocation table.

    The runtime (:mod:`repro.cudasim`) owns streams and launches; the
    device owns state that persists across kernels — global memory buffers
    and the bandwidth model used by the reduction workloads.
    """

    def __init__(self, spec: GPUSpec, index: int = 0):
        self.spec = spec
        self.index = index
        self.hbm = HBM(spec.hbm)
        self.buffers: Dict[str, DeviceBuffer] = {}
        self.peer_accessible: set[int] = {index}

    def alloc(self, shape, dtype=None, name: str = "") -> DeviceBuffer:
        """Allocate a device buffer (numpy-backed)."""
        import numpy as np

        buf = DeviceBuffer(self.index, shape, dtype or np.float64, name)
        self.buffers[buf.name] = buf
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        self.buffers.pop(buf.name, None)

    def enable_peer_access(self, other_index: int) -> None:
        """Allow kernels on this device to address ``other_index``'s memory
        (GPUDirect peer access — the mechanism the multi-GPU reduction's
        explicit variant relies on, Section VII-E)."""
        self.peer_accessible.add(other_index)

    def can_access(self, buf: DeviceBuffer) -> bool:
        return buf.device_index in self.peer_accessible

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Device({self.spec.name}, index={self.index})"
