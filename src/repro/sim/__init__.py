"""GPU simulator substrate: engine, clocks, architectures, devices, nodes."""

from repro.sim.arch import (
    DGX1_V100,
    GPU_REGISTRY,
    NODE_REGISTRY,
    P100,
    P100_PCIE_NODE,
    V100,
    GPUSpec,
    NodeSpec,
    get_gpu_spec,
    get_node_spec,
)
from repro.sim.clock import HostClock, SMClock
from repro.sim.device import Device, GridSyncResult, grid_sync_latency_ns, simulate_grid_sync
from repro.sim.engine import (
    AllOf,
    DeadlockError,
    Engine,
    Process,
    Resource,
    Signal,
    SimulationError,
    Timeout,
)
from repro.sim.exec_block import BlockBarrier, BlockExecutor
from repro.sim.exec_thread import (
    ThreadCtx,
    UnsupportedInstruction,
    WarpExecutor,
    WarpRunResult,
)
from repro.sim.interconnect import (
    Interconnect,
    build_dgx1_nvlink,
    build_interconnect,
    build_pcie,
)
from repro.sim.memory import HBM, DeviceBuffer, L2AtomicUnit, RaceRecord, SharedMemory
from repro.sim.node import (
    MultiGridSyncResult,
    Node,
    cross_gpu_latency_ns,
    multigrid_local_latency_ns,
    simulate_multigrid_sync,
)
from repro.sim.occupancy import (
    OccupancyResult,
    active_warps_per_sm,
    blocks_per_sm,
    max_cooperative_blocks,
)
from repro.sim.sm import (
    BlockSyncResult,
    WarpSyncThroughputResult,
    block_sync_latency_cycles,
    simulate_block_sync,
    simulate_warp_sync_throughput,
)

__all__ = [
    # engine
    "Engine",
    "Process",
    "Signal",
    "Timeout",
    "AllOf",
    "Resource",
    "DeadlockError",
    "SimulationError",
    # clocks
    "SMClock",
    "HostClock",
    # arch
    "GPUSpec",
    "NodeSpec",
    "V100",
    "P100",
    "DGX1_V100",
    "P100_PCIE_NODE",
    "GPU_REGISTRY",
    "NODE_REGISTRY",
    "get_gpu_spec",
    "get_node_spec",
    # occupancy
    "OccupancyResult",
    "blocks_per_sm",
    "max_cooperative_blocks",
    "active_warps_per_sm",
    # memory
    "SharedMemory",
    "L2AtomicUnit",
    "HBM",
    "DeviceBuffer",
    "RaceRecord",
    # executors & SM
    "WarpExecutor",
    "WarpRunResult",
    "BlockExecutor",
    "BlockBarrier",
    "ThreadCtx",
    "UnsupportedInstruction",
    "BlockSyncResult",
    "WarpSyncThroughputResult",
    "block_sync_latency_cycles",
    "simulate_block_sync",
    "simulate_warp_sync_throughput",
    # device / node
    "Device",
    "GridSyncResult",
    "grid_sync_latency_ns",
    "simulate_grid_sync",
    "Node",
    "MultiGridSyncResult",
    "multigrid_local_latency_ns",
    "cross_gpu_latency_ns",
    "simulate_multigrid_sync",
    # interconnect
    "Interconnect",
    "build_dgx1_nvlink",
    "build_pcie",
    "build_interconnect",
]
