"""Streaming-multiprocessor level models.

Two SM-scoped mechanisms drive the paper's single-GPU results:

* **Block barriers** (``__syncthreads``): one synchronization of a
  ``w``-warp block costs ``base + per_warp_latency * w`` cycles (fits
  Tables II/IV).  Per-warp throughput ``w / L(w)`` then *rises* with the
  active warp count and saturates near the occupancy limit — exactly the
  Fig 4 curves; beyond residency, blocks time-share the SM and the
  apparent latency grows linearly again (Fig 4, upper panel).
* **Warp-sync pipelines**: warp-level sync/shuffle ops retire through a
  per-SM pipeline with an initiation interval; sustained throughput
  saturates at ``1/II`` once enough warps are in flight (the Table II
  throughput protocol: best over all thread/block configurations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.sim.arch import GPUSpec
from repro.sim.engine import Engine, Resource, Timeout
from repro.sim.occupancy import blocks_per_sm as occ_blocks_per_sm

__all__ = [
    "BlockSyncResult",
    "block_sync_latency_cycles",
    "simulate_block_sync",
    "WarpSyncThroughputResult",
    "simulate_warp_sync_throughput",
]


def block_sync_latency_cycles(spec: GPUSpec, warps: int) -> float:
    """Single-shot latency (cycles) of one block sync over ``warps`` warps.

    ``L(w) = base + per_warp_latency * w`` — the model behind Table IV's
    "sync ltc" row (5 syncs of a 1024-thread block: 420 cy V100 / 2135 cy
    P100).
    """
    if warps < 1:
        raise ValueError("a block has at least one warp")
    bs = spec.block_sync
    return bs.base_latency_cycles + bs.per_warp_latency_cycles * warps


@dataclass(frozen=True)
class BlockSyncResult:
    """Outcome of a block-sync micro-benchmark on one SM."""

    warps_per_block: int
    n_blocks: int
    repeats: int
    resident_blocks: int
    active_warps: int
    total_warps: int
    total_ns: float
    total_cycles: float

    @property
    def latency_per_sync_cycles(self) -> float:
        """Apparent per-sync latency from the launch perspective.

        With oversubscription the queued blocks extend the wall time, so
        this grows past the saturation point (Fig 4, upper panel).
        """
        return self.total_cycles / self.repeats

    @property
    def per_warp_throughput(self) -> float:
        """Warp-syncs retired per cycle (Fig 4, lower panel)."""
        total_ops = self.total_warps * self.repeats
        return total_ops / self.total_cycles if self.total_cycles else 0.0


def simulate_block_sync(
    spec: GPUSpec,
    warps_per_block: int,
    n_blocks: int,
    repeats: int = 8,
    engine: Optional[Engine] = None,
) -> BlockSyncResult:
    """Run ``n_blocks`` blocks of ``warps_per_block`` warps, each executing
    ``repeats`` back-to-back block syncs, on a single SM with residency
    scheduling.

    Blocks beyond the occupancy limit queue and start as residents retire —
    the time-sharing regime of Fig 4's oversubscribed right-hand side.
    """
    if warps_per_block < 1 or warps_per_block * spec.warp_size > spec.max_threads_per_block:
        raise ValueError(f"invalid warps_per_block={warps_per_block} for {spec.name}")
    if n_blocks < 1:
        raise ValueError("n_blocks must be >= 1")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")

    eng = engine or Engine()
    occ = occ_blocks_per_sm(spec, warps_per_block * spec.warp_size)
    resident_cap = max(1, occ.blocks_per_sm)
    slots = Resource(eng, capacity=resident_cap, name="sm-block-slots")
    # All resident blocks share the SM's barrier unit: arrivals drain at one
    # service interval each, so per-warp throughput saturates at
    # 1/per_warp_service_cycles no matter how blocks partition the warps
    # (the Fig 4 plateau).  A lone block is latency-bound instead.
    barrier_unit = Resource(eng, capacity=1, name="sm-barrier-unit")

    service_ns = spec.cycles_to_ns(spec.block_sync.per_warp_service_cycles)
    latency_ns = spec.cycles_to_ns(block_sync_latency_cycles(spec, warps_per_block))
    t_service = Timeout(service_ns)  # immutable: reused across every yield

    def block_proc() -> Generator:
        yield slots.acquire()
        for _ in range(repeats):
            round_start = eng.now
            for _ in range(warps_per_block):
                yield barrier_unit.acquire()
                yield t_service
                barrier_unit.release()
            remaining = latency_ns - (eng.now - round_start)
            if remaining > 0:
                yield Timeout(remaining)
        slots.release()

    t0 = eng.now
    for b in range(n_blocks):
        eng.process(block_proc(), name=f"block{b}")
    eng.run()

    resident = min(n_blocks, resident_cap)
    return BlockSyncResult(
        warps_per_block=warps_per_block,
        n_blocks=n_blocks,
        repeats=repeats,
        resident_blocks=resident,
        active_warps=resident * warps_per_block,
        total_warps=n_blocks * warps_per_block,
        total_ns=eng.now - t0,
        total_cycles=spec.ns_to_cycles(eng.now - t0),
    )


@dataclass(frozen=True)
class WarpSyncThroughputResult:
    """Outcome of a warp-sync throughput micro-benchmark."""

    kind: str
    group_size: int
    n_warps: int
    repeats: int
    total_cycles: float
    total_ops: int

    @property
    def throughput_ops_per_cycle(self) -> float:
        return self.total_ops / self.total_cycles if self.total_cycles else 0.0


def _warp_sync_params(spec: GPUSpec, kind: str, group_size: int) -> tuple[float, float]:
    """(latency, initiation interval) in cycles for a warp-sync op kind."""
    ws = spec.warp_sync
    if kind == "tile":
        return ws.tile_latency, 1.0 / ws.tile_throughput
    if kind == "coalesced":
        if group_size >= spec.warp_size:
            return ws.coalesced_full_latency, 1.0 / ws.coalesced_full_throughput
        return ws.coalesced_partial_latency, 1.0 / ws.coalesced_partial_throughput
    if kind == "shuffle_tile":
        return ws.shuffle_tile_latency, 1.0 / ws.shuffle_tile_throughput
    if kind == "shuffle_coalesced":
        return ws.shuffle_coalesced_latency, 1.0 / ws.shuffle_coalesced_throughput
    raise ValueError(f"unknown warp sync kind {kind!r}")


def simulate_warp_sync_throughput(
    spec: GPUSpec,
    kind: str,
    group_size: int = 32,
    n_warps: int = 64,
    repeats: int = 64,
    engine: Optional[Engine] = None,
) -> WarpSyncThroughputResult:
    """Drive ``n_warps`` warps through ``repeats`` dependent sync ops each.

    Each op occupies the SM's sync pipeline for one initiation interval;
    a warp issues its next op one latency after the previous.  Sustained
    throughput therefore approaches ``min(n_warps/latency, 1/II)`` — the
    paper's "highest result" protocol reaches the ``1/II`` plateau.
    """
    if n_warps < 1 or repeats < 1:
        raise ValueError("n_warps and repeats must be >= 1")
    latency_cy, ii_cy = _warp_sync_params(spec, kind, group_size)
    eng = engine or Engine()
    pipe = Resource(eng, capacity=1, name="warp-sync-pipe")
    ii_ns = spec.cycles_to_ns(ii_cy)
    tail_ns = spec.cycles_to_ns(max(0.0, latency_cy - ii_cy))
    t_ii = Timeout(ii_ns)
    t_tail = Timeout(tail_ns) if tail_ns else None

    def warp_proc() -> Generator:
        for _ in range(repeats):
            yield pipe.acquire()
            yield t_ii
            pipe.release()
            if t_tail is not None:
                yield t_tail

    t0 = eng.now
    for w in range(n_warps):
        eng.process(warp_proc(), name=f"warp{w}")
    eng.run()

    return WarpSyncThroughputResult(
        kind=kind,
        group_size=group_size,
        n_warps=n_warps,
        repeats=repeats,
        total_cycles=spec.ns_to_cycles(eng.now - t0),
        total_ops=n_warps * repeats,
    )
