"""CUDA occupancy calculator.

Determines how many blocks of a given shape can be co-resident on one SM,
bounded by the four classic limits: warps, threads, blocks, and shared
memory.  Two consumers:

* Cooperative launches must fit the *whole grid* co-resident
  (``cudaLaunchCooperativeKernel`` fails otherwise) — this produces the
  blank cells of the paper's Figures 5, 7 and 8 (every populated cell obeys
  ``blocks/SM x threads/block <= 2048``).
* The block-sync experiments (Fig 4) need the active-warp count at which the
  barrier units saturate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.sim.arch import GPUSpec

__all__ = ["OccupancyResult", "blocks_per_sm", "max_cooperative_blocks", "active_warps_per_sm"]


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy of one launch configuration on one SM."""

    blocks_per_sm: int
    warps_per_block: int
    active_warps: int
    limiting_factor: str

    @property
    def active_threads(self) -> int:
        return self.active_warps * 32


def _warps_per_block(spec: GPUSpec, threads_per_block: int) -> int:
    return math.ceil(threads_per_block / spec.warp_size)


@lru_cache(maxsize=4096)
def blocks_per_sm(
    spec: GPUSpec,
    threads_per_block: int,
    shared_mem_per_block: int = 0,
) -> OccupancyResult:
    """Maximum co-resident blocks per SM for a block shape.

    Memoized: specs are frozen and the result is a frozen value object,
    and the sweep drivers ask for the same handful of shapes thousands
    of times per figure.

    Raises
    ------
    ValueError
        If the block shape itself is illegal (0 threads, more threads than
        ``max_threads_per_block``, or more shared memory than a block may
        allocate).
    """
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    if threads_per_block > spec.max_threads_per_block:
        raise ValueError(
            f"{threads_per_block} threads/block exceeds "
            f"{spec.name} limit {spec.max_threads_per_block}"
        )
    if shared_mem_per_block > spec.shared_mem_per_block:
        raise ValueError(
            f"{shared_mem_per_block} B shared/block exceeds "
            f"{spec.name} limit {spec.shared_mem_per_block}"
        )

    wpb = _warps_per_block(spec, threads_per_block)

    limits = {
        "warps": spec.max_warps_per_sm // wpb,
        "threads": spec.max_threads_per_sm // (wpb * spec.warp_size),
        "blocks": spec.max_blocks_per_sm,
    }
    if shared_mem_per_block > 0:
        limits["shared_mem"] = spec.shared_mem_per_sm // shared_mem_per_block

    factor = min(limits, key=lambda k: limits[k])
    blocks = limits[factor]
    if blocks == 0:
        # Block legal but cannot be resident (e.g. shared memory demand).
        return OccupancyResult(0, wpb, 0, factor)
    return OccupancyResult(blocks, wpb, blocks * wpb, factor)


def max_cooperative_blocks(
    spec: GPUSpec,
    threads_per_block: int,
    shared_mem_per_block: int = 0,
) -> int:
    """Largest grid accepted by a cooperative launch on this GPU."""
    occ = blocks_per_sm(spec, threads_per_block, shared_mem_per_block)
    return occ.blocks_per_sm * spec.sm_count


def active_warps_per_sm(
    spec: GPUSpec,
    threads_per_block: int,
    resident_blocks: int,
) -> int:
    """Active warps when ``resident_blocks`` blocks occupy an SM (clamped)."""
    occ = blocks_per_sm(spec, threads_per_block)
    blocks = min(resident_blocks, occ.blocks_per_sm)
    return blocks * occ.warps_per_block
