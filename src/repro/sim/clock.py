"""Clock domains: per-SM cycle counters and the host nanosecond clock.

The paper's measurement methodology (Section IX) hinges on *which clock you
are allowed to read*:

* Wong's intra-SM method reads the SM's ``clock`` register — valid only
  within one SM, cycle-accurate.
* The paper's new inter-SM method (Section IX-D) uses the **CPU clock**
  around ``cudaDeviceSynchronize`` — global, but noisier; the paper derives
  an error model (Eq 8) to recover instruction latencies from it.

We model both: :class:`SMClock` converts engine nanoseconds to device cycles
(exact, plus optional 1-cycle quantization), and :class:`HostClock` adds
Gaussian jitter calibrated to a commodity Xeon timer (~hundreds of ns),
which is what makes the paper's repeat-count differencing statistically
necessary in our reproduction too.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.engine import Engine
from repro.util.rng import make_rng
from repro.util.units import cycles_to_ns, ns_to_cycles

__all__ = ["SMClock", "HostClock"]


class SMClock:
    """Cycle counter of one SM (the CUDA ``clock()`` register).

    Parameters
    ----------
    engine:
        The shared event engine (time source).
    freq_mhz:
        SM clock frequency; Table VII: 1312 MHz (V100), 1189 MHz (P100).
    quantize:
        When true, reads return whole cycles (as the hardware register does).
    """

    def __init__(self, engine: Engine, freq_mhz: float, quantize: bool = True):
        if freq_mhz <= 0:
            raise ValueError("freq_mhz must be positive")
        self.engine = engine
        self.freq_mhz = float(freq_mhz)
        self.quantize = quantize

    def read(self) -> float:
        """Current SM cycle count."""
        cycles = ns_to_cycles(self.engine.now, self.freq_mhz)
        return float(np.floor(cycles)) if self.quantize else cycles

    def cycles(self, ns: float) -> float:
        """Convert a duration in ns to cycles of this domain."""
        return ns_to_cycles(ns, self.freq_mhz)

    def ns(self, cycles: float) -> float:
        """Convert a duration in cycles of this domain to ns."""
        return cycles_to_ns(cycles, self.freq_mhz)


class HostClock:
    """Host wall clock with calibrated read jitter.

    ``jitter_ns`` is the standard deviation of a zero-mean Gaussian added to
    each read.  The default (120 ns) is small enough that single kernels are
    still measurable, yet large enough that the variance algebra of Eq 8
    matters — exactly the regime the paper designed its method for.
    """

    def __init__(
        self,
        engine: Engine,
        jitter_ns: float = 120.0,
        seed: Optional[int] = None,
        tag: str = "host-clock",
    ):
        if jitter_ns < 0:
            raise ValueError("jitter_ns must be non-negative")
        self.engine = engine
        self.jitter_ns = float(jitter_ns)
        self._rng = make_rng(seed if seed is not None else 0, tag)

    def read(self) -> float:
        """Current host time in ns, with read jitter applied."""
        noise = self._rng.normal(0.0, self.jitter_ns) if self.jitter_ns else 0.0
        return self.engine.now + noise

    def read_exact(self) -> float:
        """Noise-free time (for tests that need ground truth)."""
        return self.engine.now
