"""Pluggable barrier strategies — the paper's multi-device sync methods.

The paper evaluates three ways of synchronizing work that spans a scope
the hardware cannot barrier directly (Sections VI/VII):

* **Cooperative launch** (:class:`CooperativeBarrier`) — what
  ``cudaLaunchCooperativeKernel[MultiDevice]`` provides: an arrival
  counter serviced by the memory system (serialized L2 atomics for a
  grid; leader flag exchange over the interconnect for a multi-grid),
  with the last arrival broadcasting a release flag.  This is the
  mechanism behind ``grid.sync()`` / ``multi_grid.sync()``.
* **Atomic software barrier** (:class:`SoftwareAtomicBarrier`) — the
  lock-free two-phase barrier a kernel can build itself when a
  cooperative launch is unavailable (Xiao & Feng-style; extended to
  fine-grained kernel sync by Jangda et al., see PAPERS.md): atomically
  increment a generation counter, then *spin-poll* a release flag.
  Functionally equivalent, but arrival and detection both cost extra
  memory traffic — the spin adds a detection lag of half the poll
  period on average.
* **CPU-side barrier** (:class:`CpuBarrier`) — the Fig 6 pattern: one
  host thread per device meets at an OpenMP-style barrier whose cost is
  calibrated per node (flat-ish in participant count, which is why the
  CPU-side series of Fig 9 is nearly horizontal).

A strategy owns the *counting and release* machinery only; scope-specific
costs (intra-block arrive, per-warp re-dispatch, local grid phases) stay
in the :mod:`repro.sync.groups` classes, so one scope can swap strategies
— the "atomic-vs-cooperative grid sync on any topology" sweep — without
touching its cost model.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sanitize import events as _sanitize
from repro.sim.engine import Engine, Signal, Timeout
from repro.sim.memory import L2AtomicUnit, MemoryChannel

__all__ = [
    "Round",
    "BarrierStrategy",
    "CooperativeBarrier",
    "SoftwareAtomicBarrier",
    "CpuBarrier",
    "STRATEGY_KINDS",
]


class Round:
    """Shared state of one barrier round: arrival count + release signal."""

    __slots__ = ("index", "count", "release")

    def __init__(self, index: int, release: Signal):
        self.index = index
        self.count = 0
        self.release = release

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Round({self.index}, arrived={self.count})"


class BarrierStrategy:
    """Base class: counts arrivals, triggers and observes the release.

    Subclasses implement :meth:`arrive` (cost of one arrival + counting;
    the ``expected``-th arrival must trigger the round's release) and
    :meth:`wait` (block until released, plus any detection cost).  Both
    are generators run inside the member's process.
    """

    #: Arrivals one round must collect before it releases.
    expected: int

    def __init__(self, expected: int):
        if expected < 1:
            raise ValueError("a barrier needs at least one participant")
        self.expected = expected
        self.engine: Optional[Engine] = None
        self.rounds_released = 0

    def bind(self, engine: Engine) -> None:
        """Attach engine-backed resources.  Called once by the scope."""
        self.engine = engine

    def _count_arrival(self, rnd: Round, release_delay_ns: float) -> bool:
        """Count one arrival; the last one schedules the release.

        Returns ``True`` for the releasing (last) arrival.
        """
        rnd.count += 1
        if rnd.count == self.expected:
            self.rounds_released += 1
            if _sanitize.MONITOR is not None:
                _sanitize.MONITOR.on_release(rnd, self.engine.now, release_delay_ns)
            self.engine.schedule_fire(release_delay_ns, rnd.release)
            return True
        return False

    def arrive(self, rnd: Round) -> Generator:  # pragma: no cover - abstract
        raise NotImplementedError

    def wait(self, rnd: Round) -> Generator:  # pragma: no cover - abstract
        raise NotImplementedError


class CooperativeBarrier(BarrierStrategy):
    """Hardware cooperative-launch barrier (``grid.sync()`` family).

    ``atomic_service_ns`` models the serialized arrival-counter port: the
    grid barrier's per-block ``atomicAdd`` in L2 (pass the calibrated
    service time), while the multi-grid cross-GPU phase counts leader
    reports without a serialized port (pass ``None`` — arrival order is
    already serialized by each GPU's local phase).  The last arrival
    broadcasts the release flag after ``release_delay_ns`` (flag write
    round-trips for a grid; interconnect flag exchange for a multi-grid).
    """

    def __init__(
        self,
        expected: int,
        release_delay_ns: float,
        atomic_service_ns: Optional[float] = None,
    ):
        super().__init__(expected)
        if release_delay_ns < 0:
            raise ValueError("release_delay_ns must be non-negative")
        self.release_delay_ns = float(release_delay_ns)
        self.atomic_service_ns = atomic_service_ns
        self._counter_port: Optional[L2AtomicUnit] = None

    def bind(self, engine: Engine) -> None:
        super().bind(engine)
        if self.atomic_service_ns is not None:
            self._counter_port = L2AtomicUnit(
                engine, self.atomic_service_ns, name="barrier-arrival-counter"
            )

    def arrive(self, rnd: Round) -> Generator:
        if self._counter_port is not None:
            yield from self._counter_port.atomic()
        self._count_arrival(rnd, self.release_delay_ns)

    def wait(self, rnd: Round) -> Generator:
        yield rnd.release


class SoftwareAtomicBarrier(BarrierStrategy):
    """Lock-free software barrier: atomic counter + spin-polled flag.

    Every arrival is a serialized atomic RMW on the counter; the last
    arrival performs one more serialized atomic (the generation-flag
    write) and releases.  Waiters spin-read the flag, so on top of the
    release they pay a detection lag — the price of not having the
    cooperative launch's hardware broadcast.

    Without a ``channel`` the lag is the classic expected half poll period
    (``poll_ns / 2``, plus ``flag_rtt_ns`` of propagation for a remotely
    homed flag).  With a :class:`~repro.sim.memory.MemoryChannel` the poll
    reads are injected as load on that channel, so the lag is computed
    per wait from the *effective* poll period — it grows with spinner
    count and with concurrent workload traffic (Stuart & Owens's
    contention effect; see :meth:`detection_lag_ns`).

    The detection-lag timeout is constructed **per wait**: the lag is
    state-dependent under contention, and a fresh ``Timeout`` per waiter
    and round keeps every resume record independent (the shared-instance
    reuse the pre-contention code relied on is pinned safe only for the
    constant-lag path by the regression tests).
    """

    def __init__(
        self,
        expected: int,
        atomic_service_ns: float,
        poll_ns: float = 120.0,
        channel: Optional[MemoryChannel] = None,
        flag_rtt_ns: float = 0.0,
    ):
        super().__init__(expected)
        if atomic_service_ns < 0:
            raise ValueError("atomic_service_ns must be non-negative")
        if poll_ns <= 0:
            raise ValueError("poll_ns must be positive")
        if flag_rtt_ns < 0:
            raise ValueError("flag_rtt_ns must be non-negative")
        self.atomic_service_ns = float(atomic_service_ns)
        self.poll_ns = float(poll_ns)
        self.channel = channel
        self.flag_rtt_ns = float(flag_rtt_ns)
        self._counter_port: Optional[L2AtomicUnit] = None

    def bind(self, engine: Engine) -> None:
        super().bind(engine)
        self._counter_port = L2AtomicUnit(
            engine, self.atomic_service_ns, name="swbarrier-counter"
        )

    def detection_lag_ns(self) -> float:
        """Expected spin-poll detection lag of one waiter, right now.

        * No channel: ``poll_ns / 2 + flag_rtt_ns`` — the historical
          constant (exactly ``poll_ns / 2`` for a locally homed flag).
        * With a channel: half the *effective* poll period (the spinners'
          own reads are offered load on the channel; once they exceed the
          capacity left over by workload traffic, the period is
          service-bound) plus one contention-stretched flag read round
          trip.  Monotone in ``expected`` and in the channel's
          ``workload_util`` — and bounded, because the channel rejects
          utilizations above its documented capacity floor
          (:data:`repro.sim.memory.MAX_WORKLOAD_UTIL`) where the
          ``1/(1-util)`` stretch would diverge into physically
          meaningless lags.
        """
        if self.channel is None:
            return self.poll_ns * 0.5 + self.flag_rtt_ns
        n_pollers = max(0, self.expected - 1)
        half_period = 0.5 * self.channel.effective_poll_ns(n_pollers, self.poll_ns)
        return half_period + self.channel.stretched_read_ns(self.flag_rtt_ns)

    def arrive(self, rnd: Round) -> Generator:
        yield from self._counter_port.atomic()
        if rnd.count + 1 == self.expected:
            # Last arrival: one more serialized atomic writes the
            # generation flag, then the release is visible.
            yield from self._counter_port.atomic()
        self._count_arrival(rnd, 0.0)

    def wait(self, rnd: Round) -> Generator:
        yield rnd.release
        if self.channel is not None:
            self.channel.detections += 1
            if _sanitize.MONITOR is not None:
                _sanitize.MONITOR.on_poll(self.channel, rnd)
        yield Timeout(self.detection_lag_ns())


class CpuBarrier(BarrierStrategy):
    """Host-side rendezvous (the ``#pragma omp barrier`` of Fig 6).

    ``cost_ns`` is the node-calibrated barrier cost
    (:meth:`~repro.sim.arch.NodeSpec.omp_barrier_ns`); the last arrival
    pays it as the release delay, exactly as the
    :class:`~repro.host.openmp.OmpTeam` rendezvous has always modeled it.
    """

    def __init__(self, expected: int, cost_ns: float):
        super().__init__(expected)
        if cost_ns < 0:
            raise ValueError("cost_ns must be non-negative")
        self.cost_ns = float(cost_ns)

    def arrive(self, rnd: Round) -> Generator:
        self._count_arrival(rnd, self.cost_ns)
        return
        yield  # pragma: no cover - generator marker, never reached

    def wait(self, rnd: Round) -> Generator:
        yield rnd.release


#: Registry of strategy kinds for scenario knobs / CLI sweeps.
STRATEGY_KINDS = ("cooperative", "atomic", "cpu")
