"""``repro.sync`` — the unified cooperative-groups-style barrier API.

One composable surface for every synchronization scope the paper
studies (warp, block, grid, multi-device) and every mechanism it
compares (cooperative launch, atomic software barrier, CPU-side
barrier).  Scopes implement the :class:`~repro.sync.scope.SyncScope`
protocol (``arrive``/``wait``/``sync`` + ``size``/``latency_model``);
mechanisms are pluggable :class:`~repro.sync.strategies.BarrierStrategy`
objects, so scope x strategy sweeps are plain constructor knobs.

See ``docs/sync.md`` for the API reference and the scope/strategy
matrix mapped to the paper's taxonomy.
"""

from repro.sync.factory import (
    cpu_barrier_team,
    this_block,
    this_grid,
    this_multi_grid,
    this_warp,
)
from repro.sync.groups import (
    STRATEGY_KNOB_KEYS,
    BlockGroup,
    GridGroup,
    HostBarrierGroup,
    MultiGridGroup,
    WarpGroup,
)
from repro.sync.scope import BarrierScope, ScopeRun, SyncScope
from repro.sync.strategies import (
    STRATEGY_KINDS,
    BarrierStrategy,
    CooperativeBarrier,
    CpuBarrier,
    Round,
    SoftwareAtomicBarrier,
)

__all__ = [
    # protocol + scaffolding
    "SyncScope",
    "BarrierScope",
    "ScopeRun",
    "Round",
    # strategies
    "BarrierStrategy",
    "CooperativeBarrier",
    "SoftwareAtomicBarrier",
    "CpuBarrier",
    "STRATEGY_KINDS",
    "STRATEGY_KNOB_KEYS",
    # concrete scopes
    "WarpGroup",
    "BlockGroup",
    "GridGroup",
    "MultiGridGroup",
    "HostBarrierGroup",
    # factories
    "this_warp",
    "this_block",
    "this_grid",
    "this_multi_grid",
    "cpu_barrier_team",
]
