"""Factory entry points mirroring the CUDA Cooperative Groups namespace.

These hang off a :class:`~repro.cudasim.runtime.CudaRuntime`: the group
binds the runtime's engine and node, so barrier protocols interleave
with launches, streams and host threads on one timeline::

    rt = CudaRuntime.for_node(DGX1_V100, gpu_count=4)
    grid = this_grid(rt, blocks_per_sm=2, threads_per_block=256)
    mgrid = this_multi_grid(rt, blocks_per_sm=1, threads_per_block=128)

    # closed-form cost model
    t = mgrid.latency_model()
    # or the full DES protocol (deadlocks on partial participation)
    result = mgrid.simulate(n_syncs=4)

``CudaRuntime.this_grid`` / ``CudaRuntime.this_multi_grid`` delegate
here, so call sites can stay method-style.  The runtime argument is duck
typed (needs ``engine``, ``device()``, ``node``/``gpu_count``) to keep
this package importable from the pure-``sim`` layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cudasim.runtime import CudaRuntime

from repro.sync.groups import (
    BlockGroup,
    GridGroup,
    HostBarrierGroup,
    MultiGridGroup,
    StrategyArg,
    WarpGroup,
)

__all__ = [
    "this_warp",
    "this_block",
    "this_grid",
    "this_multi_grid",
    "cpu_barrier_team",
]


def this_warp(
    rt: CudaRuntime,
    size: int = 32,
    kind: str = "tile",
    device: int = 0,
    strategy: StrategyArg = None,
    strategy_knobs: Optional[Mapping[str, float]] = None,
) -> WarpGroup:
    """Warp-level group on one of the runtime's devices."""
    return WarpGroup(
        rt.device(device).spec, size=size, kind=kind, engine=rt.engine,
        strategy=strategy, strategy_knobs=strategy_knobs,
    )


def this_block(
    rt: CudaRuntime,
    warps_per_block: int,
    device: int = 0,
    strategy: StrategyArg = None,
    strategy_knobs: Optional[Mapping[str, float]] = None,
) -> BlockGroup:
    """Block-level group (``__syncthreads``) on one device."""
    return BlockGroup(
        rt.device(device).spec, warps_per_block, engine=rt.engine,
        strategy=strategy, strategy_knobs=strategy_knobs,
    )


def this_grid(
    rt: CudaRuntime,
    blocks_per_sm: int,
    threads_per_block: int,
    device: int = 0,
    strategy: StrategyArg = None,
    strategy_knobs: Optional[Mapping[str, float]] = None,
) -> GridGroup:
    """Device-wide group — requires the grid to be co-resident, the same
    validation ``cudaLaunchCooperativeKernel`` performs.

    ``strategy`` accepts a kind string (``"cooperative"``, ``"atomic"``,
    ``"cpu"``) or a ready-made :class:`~repro.sync.strategies.BarrierStrategy`;
    ``strategy_knobs`` tunes a kind string (``poll_ns``, ``poll_read_ns``,
    ``workload_util``, ``atomic_service_ns``) — the ``Scenario``
    ``sync_strategy`` / ``extra.<knob>`` plumbing lands here.
    """
    return GridGroup(
        rt.device(device).spec,
        blocks_per_sm,
        threads_per_block,
        engine=rt.engine,
        strategy=strategy,
        strategy_knobs=strategy_knobs,
    )


def this_multi_grid(
    rt: CudaRuntime,
    blocks_per_sm: int,
    threads_per_block: int,
    gpu_ids: Optional[Sequence[int]] = None,
    strategy: StrategyArg = None,
    strategy_knobs: Optional[Mapping[str, float]] = None,
    full_local_participation: bool = True,
) -> MultiGridGroup:
    """Multi-device group over the runtime's node (default: every GPU).

    ``strategy``/``strategy_knobs`` as in :func:`this_grid` — a kind
    string selects the paper's sync method (cooperative launch, atomic
    software barrier, CPU-side barrier) calibrated to this node's
    interconnect.
    """
    return MultiGridGroup(
        rt.node,
        blocks_per_sm,
        threads_per_block,
        gpu_ids=gpu_ids,
        engine=rt.engine,
        strategy=strategy,
        strategy_knobs=strategy_knobs,
        full_local_participation=full_local_participation,
    )


def cpu_barrier_team(
    rt: CudaRuntime,
    n_threads: Optional[int] = None,
    strategy: StrategyArg = None,
    strategy_knobs: Optional[Mapping[str, float]] = None,
) -> HostBarrierGroup:
    """CPU-side barrier scope: one host thread per GPU (Fig 6 pattern)."""
    n = n_threads if n_threads is not None else rt.gpu_count
    return HostBarrierGroup(
        n, rt.node.spec.omp_barrier_ns(n), engine=rt.engine,
        strategy=strategy, strategy_knobs=strategy_knobs,
    )
