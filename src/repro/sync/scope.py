"""The ``SyncScope`` protocol and the engine-level barrier scaffolding.

CUDA Cooperative Groups presents every synchronization granularity —
warp, block, grid, multi-device — through one interface (``group.sync()``)
even though the hardware mechanisms differ wildly (Figure 2 of the paper;
Section III).  This module is the simulator-side analogue: a *scope* is a
set of participants that rendezvous on the shared engine, and every scope
exposes the same four operations regardless of the barrier machinery
behind it:

``arrive(member, round)``
    Generator performing the member's arrival half of one barrier round
    (intra-scope costs, arrival counting, possibly triggering release).
``wait(member, round)``
    Generator blocking the member until the round is released, plus any
    per-member release cost (e.g. warp re-dispatch).
``sync(member, round)``
    ``arrive`` then ``wait`` — the Cooperative Groups ``sync()``.
``size`` / ``latency_model()``
    Participant count and the closed-form expected latency of one sync
    (nanoseconds), for cost-model consumers that don't need the DES run.

Splitting ``sync`` into ``arrive``/``wait`` mirrors the
``cuda::barrier``-style split-phase API and is what lets workloads
overlap independent work between the two halves.

The *mechanism* — how arrivals are counted and how the release propagates
— is a pluggable :class:`~repro.sync.strategies.BarrierStrategy`; see that
module for the paper's three multi-device methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    Generator,
    Iterable,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.sanitize import events as _sanitize
from repro.sim.engine import Engine, SimulationError

from repro.sync.strategies import BarrierStrategy, Round

__all__ = ["SyncScope", "BarrierScope", "ScopeRun"]


@runtime_checkable
class SyncScope(Protocol):
    """Structural interface every synchronization scope implements."""

    @property
    def size(self) -> int:
        """Number of participants one barrier round must collect."""
        ...

    def latency_model(self) -> float:
        """Closed-form expected latency of one sync, in nanoseconds."""
        ...

    def arrive(self, member: int, round_index: int) -> Generator:
        ...

    def wait(self, member: int, round_index: int) -> Generator:
        ...

    def sync(self, member: int, round_index: int) -> Generator:
        ...


@dataclass(frozen=True)
class ScopeRun:
    """Outcome of :meth:`BarrierScope.run_rounds` — the generic trace.

    ``release_ns`` maps ``(member, round)`` to the simulated time at which
    that member completed that round's ``sync()``.  The barrier-semantics
    property tests are written against this trace.
    """

    members: Tuple[int, ...]
    n_syncs: int
    total_ns: float
    release_ns: Dict[Tuple[int, int], float] = field(repr=False, default_factory=dict)

    def releases_of(self, member: int) -> list:
        """Release times of one member, in round order."""
        return [
            self.release_ns[(member, r)]
            for r in range(self.n_syncs)
            if (member, r) in self.release_ns
        ]


class BarrierScope:
    """Shared machinery for engine-level scopes.

    Concrete scopes supply ``arrive``/``wait`` (usually delegating the
    counting/release part to their :class:`BarrierStrategy`) and inherit:

    * lazy per-round state (:class:`~repro.sync.strategies.Round`) with
      stable signal names, so deadlock reports read the same whether a
      protocol runs standalone or inside a larger simulation;
    * ``sync`` = ``arrive`` + ``wait``;
    * :meth:`run_rounds`, the generic driver that spawns one process per
      member and records the release trace.
    """

    #: Signal-name prefix for round releases (subclasses override).
    release_name = "scope-release"
    #: Process-name format for :meth:`run_rounds` members.
    member_name = "member{}"

    def __init__(
        self,
        engine: Optional[Engine],
        strategy: BarrierStrategy,
        backend: Optional[str] = None,
    ):
        self.engine = engine or Engine()
        self.strategy = strategy
        self.strategy.bind(self.engine)
        self.backend = backend
        self._rounds: Dict[int, Round] = {}

    # -- round state -----------------------------------------------------

    def round_state(self, round_index: int) -> Round:
        """Per-round shared state, created on first touch.

        Creation allocates only (a signal object, a counter) — no engine
        events — so lazily creating round *r* when the first member
        arrives is observationally identical to pre-allocating all rounds.
        """
        rnd = self._rounds.get(round_index)
        if rnd is None:
            rnd = Round(
                index=round_index,
                release=self.engine.signal(f"{self.release_name}-{round_index}"),
            )
            self._rounds[round_index] = rnd
            if _sanitize.MONITOR is not None:
                _sanitize.MONITOR.on_round(self, rnd)
        return rnd

    @property
    def rounds_released(self) -> int:
        """Barrier rounds whose release has been triggered so far."""
        return self.strategy.rounds_released

    # -- the SyncScope operations ---------------------------------------

    @property
    def size(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def latency_model(self) -> float:  # pragma: no cover - overridden
        raise NotImplementedError

    def arrive(self, member: int, round_index: int) -> Generator:
        if _sanitize.MONITOR is not None:
            _sanitize.MONITOR.on_arrive(self, member, round_index, self.engine.now)
        yield from self.strategy.arrive(self.round_state(round_index))

    def wait(self, member: int, round_index: int) -> Generator:
        if _sanitize.MONITOR is not None:
            _sanitize.MONITOR.on_wait(self, member, round_index, self.engine.now)
            yield from self.strategy.wait(self.round_state(round_index))
            _sanitize.MONITOR.on_wait_return(
                self, member, round_index, self.engine.now
            )
            return
        yield from self.strategy.wait(self.round_state(round_index))

    def sync(self, member: int, round_index: int) -> Generator:
        """One full barrier: arrive, then wait for the release."""
        yield from self.arrive(member, round_index)
        yield from self.wait(member, round_index)

    # -- generic DES driver ----------------------------------------------

    def _member_proc(
        self, member: int, n_syncs: int, trace: Dict[Tuple[int, int], float]
    ) -> Generator:
        engine = self.engine
        for r in range(n_syncs):
            yield from self.sync(member, r)
            trace[(member, r)] = engine.now

    def run_rounds(
        self,
        n_syncs: int = 1,
        members: Optional[Iterable[int]] = None,
        backend: Optional[str] = None,
        collect_trace: bool = True,
    ) -> ScopeRun:
        """Drive ``n_syncs`` barrier rounds across ``members`` (default:
        all ``size`` participants) and return the release trace.

        ``backend`` overrides the scope's construction-time backend
        choice for this run (``"engine"``, ``"analytic"``, ``"auto"``;
        ``None`` keeps the engine path with zero dispatch overhead).
        ``collect_trace=False`` lets the analytic backend skip building
        the per-member release map when only ``total_ns`` is wanted; the
        engine records the trace as a side effect either way.

        A strict subset of participants leaves the arrival counter short
        and the engine raises
        :class:`~repro.sim.engine.DeadlockError` — the Section VIII-B
        partial-group pitfall, uniformly across every scope whose
        strategy counts arrivals.
        """
        if n_syncs < 1:
            raise ValueError("n_syncs must be >= 1")
        if self._rounds:
            raise SimulationError(
                "scope has already driven barrier rounds; "
                "create a fresh group per simulation"
            )
        ids = tuple(members) if members is not None else tuple(range(self.size))
        choice = backend if backend is not None else self.backend
        if choice is None or choice == "engine":
            return self._run_rounds_engine(n_syncs, ids)
        from repro.sim.backends import dispatch

        return dispatch(self, n_syncs, ids, choice, collect_trace)

    def _run_rounds_engine(
        self, n_syncs: int, ids: Tuple[int, ...]
    ) -> ScopeRun:
        """The event-precise driver: one process per member on the shared
        engine.  Backends call this; it is the pre-backend code path,
        unchanged."""
        trace: Dict[Tuple[int, int], float] = {}
        t0 = self.engine.now
        for m in ids:
            self.engine.process(
                self._member_proc(m, n_syncs, trace),
                name=self.member_name.format(m),
            )
        self.engine.run()
        return ScopeRun(
            members=ids,
            n_syncs=n_syncs,
            total_ns=self.engine.now - t0,
            release_ns=trace,
        )
