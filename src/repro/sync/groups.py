"""Concrete synchronization scopes: warp, block, grid, multi-grid, host.

Each class binds one level of the paper's scope taxonomy (Figure 2 /
Table VIII) to the shared :class:`~repro.sync.scope.BarrierScope`
machinery, with the level's calibrated costs and its default
:class:`~repro.sync.strategies.BarrierStrategy`:

=============== =========================== ==========================
scope           participants                default strategy
=============== =========================== ==========================
WarpGroup       lanes (<= warp size)        CooperativeBarrier
BlockGroup      warps of one block          CooperativeBarrier over the
                                            SM barrier unit
GridGroup       blocks of one device grid   CooperativeBarrier over the
                                            serialized L2 atomic
MultiGridGroup  GPUs of one multi-device    CooperativeBarrier over the
                launch                      interconnect flag exchange
HostBarrierGroup host threads (one per GPU) CpuBarrier
=============== =========================== ==========================

``GridGroup`` and ``MultiGridGroup`` run exactly the DES protocols that
previously lived in ``sim/device.py::simulate_grid_sync`` and
``sim/node.py::simulate_multigrid_sync`` (which now deprecate into thin
shims over these classes): the per-member event sequences are identical,
so every regenerated table and figure is byte-for-byte unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Mapping, Optional, Sequence, Tuple, Union

from repro.sanitize import events as _sanitize
from repro.sim.arch import GPUSpec
from repro.sim.engine import Engine, Resource, Signal, Timeout
from repro.sim.memory import MemoryChannel
from repro.sim.occupancy import blocks_per_sm as occ_blocks_per_sm
from repro.sim.sm import block_sync_latency_cycles

from repro.sync.scope import BarrierScope
from repro.sync.strategies import (
    STRATEGY_KINDS,
    BarrierStrategy,
    CooperativeBarrier,
    CpuBarrier,
    SoftwareAtomicBarrier,
)

__all__ = [
    "WarpGroup",
    "BlockGroup",
    "GridGroup",
    "MultiGridGroup",
    "HostBarrierGroup",
    "STRATEGY_KNOB_KEYS",
]

# How the grid barrier's calibrated fixed cost splits between the arrive
# and release phases.  The split does not affect totals; it shapes
# intermediate event times.  (Moved verbatim from sim/device.py.)
GRID_ARRIVE_FRACTION = 0.4

#: Per-strategy tuning knobs a scope accepts alongside a strategy *kind*
#: (the ``Scenario`` ``extra.<knob>`` namespace maps straight onto these).
STRATEGY_KNOB_KEYS = ("poll_ns", "poll_read_ns", "workload_util", "atomic_service_ns")

#: A strategy argument: a concrete instance, a registry kind from
#: :data:`~repro.sync.strategies.STRATEGY_KINDS`, or ``None`` (scope default).
StrategyArg = Union[BarrierStrategy, str, None]


class _KnobTracker:
    """Dict-shaped knob view that records which keys a builder consulted.

    ``_resolve_strategy`` uses the read-set to reject knobs the chosen
    (scope, kind) pair never looks at — ``extra.poll_ns`` on a CPU
    barrier must fail loudly, not silently leave the numbers unchanged.
    """

    def __init__(self, knobs: Mapping[str, float]):
        self.knobs = dict(knobs)
        self.read: set = set()

    def get(self, key: str, default: Optional[float] = None) -> Optional[float]:
        self.read.add(key)
        return self.knobs.get(key, default)

    @property
    def unused(self) -> list:
        return sorted(set(self.knobs) - self.read)


def _check_knobs(knobs: Optional[Mapping[str, float]], scope_name: str) -> "_KnobTracker":
    knobs = dict(knobs) if knobs else {}
    unknown = set(knobs) - set(STRATEGY_KNOB_KEYS)
    if unknown:
        raise ValueError(
            f"unknown strategy knob(s) {sorted(unknown)} for {scope_name}; "
            f"valid knobs: {', '.join(STRATEGY_KNOB_KEYS)}"
        )
    return _KnobTracker(knobs)


def _resolve_strategy(
    scope: Any, strategy: StrategyArg, knobs: Optional[Mapping[str, float]]
) -> Optional[BarrierStrategy]:
    """Turn a strategy *kind* into a concrete, scope-calibrated instance.

    ``None`` and ready-made :class:`BarrierStrategy` instances pass
    through untouched (knobs apply only to kind strings — a constructed
    strategy already carries its parameters).  Kind strings dispatch to
    the scope's ``_build_strategy``, which owns the level's calibrated
    costs; unsupported kinds fail loudly with the scope named.
    """
    scope_name = type(scope).__name__
    if strategy is None or isinstance(strategy, BarrierStrategy):
        if knobs:
            raise ValueError(
                f"strategy knobs {sorted(knobs)} apply only to strategy kind "
                f"strings, not to {'the default' if strategy is None else 'a constructed'} "
                f"strategy on {scope_name}"
            )
        return strategy
    if strategy not in STRATEGY_KINDS:
        raise ValueError(
            f"unknown sync strategy {strategy!r}; available: "
            f"{', '.join(STRATEGY_KINDS)}"
        )
    tracker = _check_knobs(knobs, scope_name)
    resolved = scope._build_strategy(strategy, tracker)
    if resolved is None:
        raise ValueError(
            f"strategy {strategy!r} is not supported by {scope_name}"
        )
    if tracker.unused:
        raise ValueError(
            f"strategy knob(s) {tracker.unused} have no effect on "
            f"{scope_name} with strategy {strategy!r}"
        )
    return resolved


class WarpGroup(BarrierScope):
    """Warp-level group (``cg::thread_block_tile`` / coalesced threads).

    Participants are lanes; one sync costs the Table II latency of the
    chosen ``kind`` (``"tile"`` or ``"coalesced"`` — V100 fast-paths the
    full-warp coalesced case).  On Pascal the barrier does not actually
    hold threads (Section VIII-A); :attr:`blocks_all_threads` reports it.
    """

    release_name = "warp-release"
    member_name = "lane{}"

    def __init__(
        self,
        spec: GPUSpec,
        size: int = 32,
        kind: str = "tile",
        engine: Optional[Engine] = None,
        strategy: StrategyArg = None,
        strategy_knobs: Optional[Mapping[str, float]] = None,
        backend: Optional[str] = None,
    ):
        if not (1 <= size <= spec.warp_size):
            raise ValueError(f"warp group size must be in [1, {spec.warp_size}]")
        if kind not in ("tile", "coalesced"):
            raise ValueError(f"unknown warp group kind {kind!r}")
        self.spec = spec
        self.kind = kind
        self._size = size
        super().__init__(
            engine,
            _resolve_strategy(self, strategy, strategy_knobs)
            or self._build_strategy("cooperative", {}),
            backend=backend,
        )

    def _build_strategy(
        self, kind: str, knobs: Mapping[str, float]
    ) -> Optional[BarrierStrategy]:
        if kind != "cooperative":
            return None  # warp barriers have no software/CPU variant
        return CooperativeBarrier(
            expected=self._size,
            release_delay_ns=self.spec.cycles_to_ns(
                self._latency_cycles(self.spec, self.kind, self._size)
            ),
        )

    @staticmethod
    def _latency_cycles(spec: GPUSpec, kind: str, size: int) -> float:
        ws = spec.warp_sync
        if kind == "tile":
            return ws.tile_latency
        if size >= spec.warp_size:
            return ws.coalesced_full_latency
        return ws.coalesced_partial_latency

    @property
    def size(self) -> int:
        return self._size

    @property
    def blocks_all_threads(self) -> bool:
        """Whether this barrier actually holds threads (false on Pascal)."""
        return self.spec.warp_sync.blocking

    def latency_model(self) -> float:
        return self.spec.cycles_to_ns(
            self._latency_cycles(self.spec, self.kind, self._size)
        )


class BlockGroup(BarrierScope):
    """Block-level group (``__syncthreads`` / ``cg::this_thread_block``).

    Participants are the block's warps.  Arrivals drain through the SM's
    barrier unit at one calibrated service interval each (the Fig 4
    throughput plateau); the last arrival pays the residual of the
    single-shot latency ``L(w) = base + per_warp * w`` (Table IV), so an
    uncontended sync costs exactly ``L(w)`` while saturated back-to-back
    syncs are service-bound — the same model as
    :func:`repro.sim.sm.simulate_block_sync`.
    """

    release_name = "block-release"
    member_name = "warp{}"

    def __init__(
        self,
        spec: GPUSpec,
        warps_per_block: int,
        engine: Optional[Engine] = None,
        strategy: StrategyArg = None,
        strategy_knobs: Optional[Mapping[str, float]] = None,
        backend: Optional[str] = None,
    ):
        if warps_per_block < 1:
            raise ValueError("a block has at least one warp")
        if warps_per_block * spec.warp_size > spec.max_threads_per_block:
            raise ValueError(
                f"{warps_per_block} warps exceed {spec.name}'s "
                f"{spec.max_threads_per_block}-thread block limit"
            )
        self.spec = spec
        self.warps_per_block = warps_per_block
        super().__init__(
            engine,
            _resolve_strategy(self, strategy, strategy_knobs)
            or self._build_strategy("cooperative", {}),
            backend=backend,
        )

    def _build_strategy(
        self, kind: str, knobs: Mapping[str, float]
    ) -> Optional[BarrierStrategy]:
        if kind != "cooperative":
            return None  # __syncthreads is always the hardware barrier unit
        spec = self.spec
        service_ns = spec.cycles_to_ns(spec.block_sync.per_warp_service_cycles)
        latency_ns = spec.cycles_to_ns(
            block_sync_latency_cycles(spec, self.warps_per_block)
        )
        return CooperativeBarrier(
            expected=self.warps_per_block,
            release_delay_ns=max(
                0.0, latency_ns - self.warps_per_block * service_ns
            ),
            atomic_service_ns=service_ns,
        )

    @property
    def size(self) -> int:
        return self.warps_per_block

    def latency_model(self) -> float:
        return self.spec.cycles_to_ns(
            block_sync_latency_cycles(self.spec, self.warps_per_block)
        )


class GridGroup(BarrierScope):
    """Device-wide group (``cg::this_grid()``) — the Fig 5 protocol.

    One barrier round is the four-step software protocol CUDA uses under
    a cooperative launch:

    1. every block synchronizes internally (arrive),
    2. one leader warp per block performs a serialized atomic increment
       on an arrival counter in L2 (the default
       :class:`~repro.sync.strategies.CooperativeBarrier`),
    3. the last arrival writes a release flag,
    4. every SM re-dispatches its resident warps, serialized per SM.

    Step 2's serialization over *all* blocks is why grid-sync latency
    tracks blocks/SM much more strongly than threads/block (Fig 5);
    step 4 contributes the weaker per-warp term.  Partial participation
    deadlocks (Section VIII-B).
    """

    release_name = "grid-release"
    member_name = "grid-block{}"

    def __init__(
        self,
        spec: GPUSpec,
        blocks_per_sm: int,
        threads_per_block: int,
        engine: Optional[Engine] = None,
        sm_count: Optional[int] = None,
        strategy: StrategyArg = None,
        strategy_knobs: Optional[Mapping[str, float]] = None,
        backend: Optional[str] = None,
    ):
        if blocks_per_sm < 1:
            raise ValueError("blocks_per_sm must be >= 1")
        occ = occ_blocks_per_sm(spec, threads_per_block)
        if blocks_per_sm > occ.blocks_per_sm:
            raise ValueError(
                f"cooperative grid of {blocks_per_sm} blocks/SM x "
                f"{threads_per_block} threads/block cannot co-reside on {spec.name}"
            )
        self.spec = spec
        self.blocks_per_sm = blocks_per_sm
        self.threads_per_block = threads_per_block
        self.sm_count = sm_count if sm_count is not None else spec.sm_count
        self.warps_per_block = occ.warps_per_block
        self.total_blocks = blocks_per_sm * self.sm_count

        gs = spec.grid_sync
        self._t_arrive = Timeout(gs.base_ns * GRID_ARRIVE_FRACTION)
        self._t_release = Timeout(gs.per_warp_release_ns)
        super().__init__(
            engine,
            _resolve_strategy(self, strategy, strategy_knobs)
            or self._build_strategy("cooperative", {}),
            backend=backend,
        )
        self._release_ports = [
            Resource(self.engine, capacity=1, name=f"sm{j}-release")
            for j in range(self.sm_count)
        ]

    def _build_strategy(
        self, kind: str, knobs: Mapping[str, float]
    ) -> Optional[BarrierStrategy]:
        gs = self.spec.grid_sync

        def service() -> float:
            knob = knobs.get("atomic_service_ns")
            if knob is not None:
                return knob
            return gs.atomic_service_ns(self.blocks_per_sm, self.sm_count)

        if kind == "cooperative":
            return CooperativeBarrier(
                expected=self.total_blocks,
                release_delay_ns=gs.base_ns * (1.0 - GRID_ARRIVE_FRACTION),
                atomic_service_ns=service(),
            )
        if kind == "atomic":
            # The kernel-built barrier: same serialized arrival counter,
            # but release detection is a spin-poll on an L2-homed flag
            # whose reads contend on the L2 port with every other spinner
            # (a plain read costs a fraction of the atomic RMW service).
            svc = service()
            return SoftwareAtomicBarrier(
                expected=self.total_blocks,
                atomic_service_ns=svc,
                poll_ns=knobs.get("poll_ns", 120.0),
                channel=MemoryChannel(
                    read_ns=knobs.get("poll_read_ns", 0.25 * svc),
                    workload_util=knobs.get("workload_util", 0.0),
                    name=f"{self.spec.name}-l2-poll",
                ),
            )
        if kind == "cpu":
            # CPU-side grid sync = end the kernel and relaunch it: every
            # block "arrives" by terminating, and the host pays one
            # traditional launch gap plus the dispatch depth before the
            # grid is running again (the Table I null-kernel pipeline).
            calib = self.spec.launch_calib("traditional")
            return CpuBarrier(
                expected=self.total_blocks,
                cost_ns=calib.gap_for(1) + calib.dispatch_for(1),
            )
        return None  # pragma: no cover - STRATEGY_KINDS is closed

    @property
    def size(self) -> int:
        return self.total_blocks

    def latency_model(self) -> float:
        """Closed-form expected latency of one grid sync (Fig 5 fit)."""
        from repro.sim.device import grid_sync_latency_ns

        return grid_sync_latency_ns(
            self.spec, self.blocks_per_sm, self.threads_per_block
        )

    def arrive(self, member: int, round_index: int) -> Generator:
        if _sanitize.MONITOR is not None:
            _sanitize.MONITOR.on_arrive(self, member, round_index, self.engine.now)
        # 1. intra-block arrive + flag write round-trip; 2-3. strategy.
        yield self._t_arrive
        yield from self.strategy.arrive(self.round_state(round_index))

    def wait(self, member: int, round_index: int) -> Generator:
        if _sanitize.MONITOR is not None:
            _sanitize.MONITOR.on_wait(self, member, round_index, self.engine.now)
        yield from self.strategy.wait(self.round_state(round_index))
        # 4. warp re-dispatch, serialized per SM.
        port = self._release_ports[member % self.sm_count]
        for _ in range(self.warps_per_block):
            yield port.acquire()
            yield self._t_release
            port.release()
        if _sanitize.MONITOR is not None:
            _sanitize.MONITOR.on_wait_return(self, member, round_index, self.engine.now)

    def _member_proc(
        self, member: int, n_syncs: int, trace: Dict[Tuple[int, int], float]
    ) -> Generator:
        # Fused fast path for the default strategy: the Fig 5 heat-maps
        # drive thousands of block processes through this generator, and
        # the composable arrive/wait nesting costs ~30% wall-clock there.
        # The yield sequence below is identical to sync(member, r) — the
        # engine sees the same events — only the Python generator frames
        # are flattened.  Custom strategies keep the composable path.
        # The sanitizer needs the hook-bearing composable path; both paths
        # produce the same engine events, so falling back is observationally
        # pure (the bench guard pins that).
        strategy = self.strategy
        if (
            strategy.__class__ is not CooperativeBarrier
            or strategy._counter_port is None
            or _sanitize.MONITOR is not None
        ):
            yield from BarrierScope._member_proc(self, member, n_syncs, trace)
            return
        engine = self.engine
        counter = strategy._counter_port
        acquire = counter.port.acquire()
        t_service = counter._service
        expected = strategy.expected
        delay = strategy.release_delay_ns
        t_arrive, t_release = self._t_arrive, self._t_release
        port = self._release_ports[member % self.sm_count]
        wpb = self.warps_per_block
        for r in range(n_syncs):
            rnd = self.round_state(r)
            # 1. intra-block arrive + flag write round-trip.
            yield t_arrive
            # 2. serialized atomic increment (inlined counter.atomic()).
            yield acquire
            yield t_service
            counter.ops += 1
            counter.port.release()
            rnd.count += 1
            if rnd.count == expected:
                # 3. last arrival broadcasts the release flag.
                strategy.rounds_released += 1
                engine.schedule_fire(delay, rnd.release)
            yield rnd.release
            # 4. warp re-dispatch, serialized per SM.
            for _ in range(wpb):
                yield port.acquire()
                yield t_release
                port.release()
            trace[(member, r)] = engine.now

    def simulate(
        self,
        n_syncs: int = 1,
        participating_blocks: Optional[int] = None,
    ) -> "GridSyncResult":
        """Run ``n_syncs`` grid barriers; returns the classic result record.

        ``participating_blocks`` short of the grid size leaves the
        arrival counter short and raises
        :class:`~repro.sim.engine.DeadlockError`.
        """
        from repro.sim.device import GridSyncResult

        participants = (
            self.total_blocks
            if participating_blocks is None
            else participating_blocks
        )
        if not (0 < participants <= self.total_blocks):
            raise ValueError("participating_blocks must be in (0, total_blocks]")
        run = self.run_rounds(
            n_syncs, members=range(participants), collect_trace=False
        )
        return GridSyncResult(
            blocks_per_sm=self.blocks_per_sm,
            threads_per_block=self.threads_per_block,
            total_blocks=self.total_blocks,
            warps_per_sm=self.blocks_per_sm * self.warps_per_block,
            n_syncs=n_syncs,
            total_ns=run.total_ns,
        )


class MultiGridGroup(BarrierScope):
    """Multi-device group (``cg::this_multi_grid()``) — Figs 7/8.

    One barrier round has two phases: a **local phase** per GPU
    (structurally the grid barrier but with system-scope fences, so every
    per-block and per-warp cost is heavier) and a **cross-GPU phase**
    whose cost depends on the interconnect topology — on the DGX-1
    cube-mesh any two-hop member forces flag traffic through an
    intermediate GPU, creating the paper's 2-5 vs 6-8 GPU plateaus.

    Partial participation — a missing GPU, or ``full_local_participation
    = False`` modelling a missing block inside one GPU — hangs the
    barrier (Section VIII-B).
    """

    release_name = "mgrid-release"
    member_name = "mgrid-gpu{}"

    def __init__(
        self,
        node: "Node",
        blocks_per_sm: int,
        threads_per_block: int,
        gpu_ids: Optional[Sequence[int]] = None,
        engine: Optional[Engine] = None,
        strategy: StrategyArg = None,
        strategy_knobs: Optional[Mapping[str, float]] = None,
        full_local_participation: bool = True,
        backend: Optional[str] = None,
    ):
        from repro.sim.node import cross_gpu_latency_ns, multigrid_local_latency_ns

        ids = tuple(gpu_ids) if gpu_ids is not None else tuple(range(node.gpu_count))
        if not ids:
            raise ValueError("gpu_ids must not be empty")
        for g in ids:
            node.device(g)  # validates range
        self.node = node
        self.gpu_ids = ids
        self.blocks_per_sm = blocks_per_sm
        self.threads_per_block = threads_per_block
        self.full_local_participation = full_local_participation

        self.local_ns = multigrid_local_latency_ns(
            node.spec, blocks_per_sm, threads_per_block
        )
        self.cross_ns = cross_gpu_latency_ns(
            node.spec, node.interconnect, ids, blocks_per_sm
        )
        arrive_ns = 0.5 * self.local_ns
        self._t_arrive = Timeout(arrive_ns)
        self._t_release_local = Timeout(self.local_ns - arrive_ns)
        super().__init__(
            engine,
            _resolve_strategy(self, strategy, strategy_knobs)
            or self._build_strategy("cooperative", {}),
            backend=backend,
        )

    def _build_strategy(
        self, kind: str, knobs: Mapping[str, float]
    ) -> Optional[BarrierStrategy]:
        ids = self.gpu_ids
        if kind == "cooperative":
            return CooperativeBarrier(
                expected=len(ids), release_delay_ns=self.cross_ns
            )
        if kind == "atomic":
            # Software multi-device barrier: each GPU's leader block does a
            # remote atomic RMW on a flag homed on the leader GPU (one link
            # latency of serialized service per arrival), then spin-polls
            # it over the interconnect.  The poll reads are offered load on
            # the flag-home link, and remote members additionally pay
            # their hop distance per read — so detection lag carries the
            # topology (cube-mesh two-hop members, ring staircase) as well
            # as the participant count and any injected workload traffic.
            ic = self.node.interconnect
            link = ic.link
            leader = min(ids)
            others = [m for m in ids if m != leader]
            mean_hops = (
                sum(ic.hops(leader, m) for m in others) / len(others)
                if others
                else 0.0
            )
            return SoftwareAtomicBarrier(
                expected=len(ids),
                atomic_service_ns=knobs.get("atomic_service_ns", link.latency_ns),
                poll_ns=knobs.get("poll_ns", 2.0 * link.latency_ns),
                channel=MemoryChannel(
                    read_ns=knobs.get("poll_read_ns", 0.5 * link.latency_ns),
                    workload_util=knobs.get("workload_util", 0.0),
                    name=f"{ic.name}-flag-link",
                ),
                flag_rtt_ns=mean_hops * link.latency_ns,
            )
        if kind == "cpu":
            # Fig 6 pattern priced at this group's width: one host thread
            # per participating GPU meets at the node's OpenMP barrier.
            return CpuBarrier(
                expected=len(ids),
                cost_ns=self.node.spec.omp_barrier_ns(len(ids)),
            )
        return None  # pragma: no cover - STRATEGY_KINDS is closed

    @property
    def size(self) -> int:
        return len(self.gpu_ids)

    def latency_model(self) -> float:
        """Closed-form: local phase + topology-dependent cross phase."""
        return self.local_ns + self.cross_ns

    def arrive(self, member: int, round_index: int) -> Generator:
        yield self._t_arrive
        if not self.full_local_participation:
            # A block inside this GPU never arrived: the local grid phase
            # can never finish, so this GPU never reports.  (No arrive
            # event either: this member never reaches the counter, which
            # is exactly what the divergence check should see.)
            yield Signal(self.engine, name=f"gpu{member}-stuck-local")
        if _sanitize.MONITOR is not None:
            _sanitize.MONITOR.on_arrive(self, member, round_index, self.engine.now)
        yield from self.strategy.arrive(self.round_state(round_index))

    def wait(self, member: int, round_index: int) -> Generator:
        if _sanitize.MONITOR is not None:
            _sanitize.MONITOR.on_wait(self, member, round_index, self.engine.now)
        yield from self.strategy.wait(self.round_state(round_index))
        yield self._t_release_local
        if _sanitize.MONITOR is not None:
            _sanitize.MONITOR.on_wait_return(self, member, round_index, self.engine.now)

    def simulate(
        self,
        n_syncs: int = 1,
        participating_gpus: Optional[Sequence[int]] = None,
    ) -> "MultiGridSyncResult":
        """Run ``n_syncs`` multi-grid barriers across the group's GPUs.

        ``participating_gpus`` must be a subset of the group's
        ``gpu_ids``; a strict subset deadlocks (Section VIII-B).
        """
        from repro.sim.node import MultiGridSyncResult

        if n_syncs < 1:
            raise ValueError("n_syncs must be >= 1")
        arrivals_expected = set(self.gpu_ids)
        callers = (
            set(participating_gpus)
            if participating_gpus is not None
            else arrivals_expected
        )
        if not callers <= arrivals_expected:
            raise ValueError("participating_gpus must be a subset of gpu_ids")
        run = self.run_rounds(
            n_syncs, members=sorted(callers), collect_trace=False
        )
        return MultiGridSyncResult(
            gpu_ids=self.gpu_ids,
            blocks_per_sm=self.blocks_per_sm,
            threads_per_block=self.threads_per_block,
            n_syncs=n_syncs,
            total_ns=run.total_ns,
            local_ns=self.local_ns,
            cross_ns=self.cross_ns,
        )


class HostBarrierGroup(BarrierScope):
    """CPU-side barrier across host threads (the paper's Fig 6 pattern).

    The third multi-device method: one pinned host thread per GPU meets
    at an OpenMP-style barrier whose cost follows the node's calibrated
    model.  :class:`~repro.host.openmp.OmpTeam` runs its rendezvous
    through this scope; :meth:`barrier` keeps that call-site contract
    (per-thread implicit round counting — mismatched call counts
    deadlock, as in real OpenMP).
    """

    release_name = "omp-barrier"
    member_name = "host{}"

    def __init__(
        self,
        n_threads: int,
        cost_ns: float,
        engine: Optional[Engine] = None,
        strategy: StrategyArg = None,
        strategy_knobs: Optional[Mapping[str, float]] = None,
        backend: Optional[str] = None,
    ):
        if n_threads < 1:
            raise ValueError("team needs at least one thread")
        self.n_threads = n_threads
        self.cost_ns = float(cost_ns)
        super().__init__(
            engine,
            _resolve_strategy(self, strategy, strategy_knobs)
            or self._build_strategy("cpu", {}),
            backend=backend,
        )
        self._counters: dict = {}

    def _build_strategy(
        self, kind: str, knobs: Mapping[str, float]
    ) -> Optional[BarrierStrategy]:
        if kind != "cpu":
            return None  # host threads rendezvous only at the OpenMP barrier
        return CpuBarrier(expected=self.n_threads, cost_ns=self.cost_ns)

    @property
    def size(self) -> int:
        return self.n_threads

    def latency_model(self) -> float:
        return self.cost_ns

    def barrier(self, tid: int) -> Generator:
        """One rendezvous round for thread ``tid``, rounds counted
        implicitly per thread (the ``#pragma omp barrier`` contract)."""
        if not (0 <= tid < self.n_threads):
            raise ValueError(f"tid {tid} out of range [0,{self.n_threads})")
        idx = self._counters.get(tid, 0)
        self._counters[tid] = idx + 1
        yield from self.sync(tid, idx)
