"""The paper's inter-SM measurement method (Section IX-D).

Wong's method cannot time operations that span SMs (each SM clock is
local), so the paper times whole kernels from the **CPU clock** around
``cudaDeviceSynchronize`` and differences two repeat counts (Eq 7); the
launch/dispatch/sync terms cancel, and Eq 8 bounds the uncertainty.

Our host clock carries calibrated Gaussian jitter, so the statistics are
exercised for real: a single-kernel measurement is noisy, the differenced
estimate converges as ``sqrt(sigma1^2+sigma2^2)/(r1-r2)``.

The module also provides the paper's two validation protocols:

* the float-add cross-check (both methods must agree: 4 cy on V100,
  6 cy on P100, matching Jia et al.);
* the repeat-invariance check for sync instructions (block/grid sync
  latency must not depend on how many times the instruction repeats).
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.cudasim import instructions as ins
from repro.cudasim.kernel import LaunchConfig, WorkKernel
from repro.cudasim.runtime import CudaRuntime
from repro.microbench.harness import Measurement, MeasurementConfig, collect
from repro.microbench.stats import DerivedLatency, derive_instruction_latency
from repro.sim.arch import GPUSpec
from repro.sim.exec_thread import ThreadCtx, WarpExecutor
from repro.sync import BlockGroup, GridGroup

__all__ = [
    "measure_kernel_total_latency_host",
    "measure_instruction_latency_inter_sm",
    "verify_sync_repeat_invariance",
]

_PROBE_CONFIG = LaunchConfig(grid_blocks=1, threads_per_block=32)


def _chain_duration_ns(spec: GPUSpec, instruction: str, repeats: int) -> float:
    """Execution time of a kernel chaining ``repeats`` instructions,
    obtained by actually running the chain on the thread executor."""
    op_map = {
        "fadd": ins.FAdd(count=repeats),
        "dadd": ins.DAdd(count=repeats),
        "chain": ins.ChainStep(count=repeats),
    }
    try:
        op = op_map[instruction]
    except KeyError:
        raise ValueError(f"unknown instruction {instruction!r}") from None

    def program(ctx: ThreadCtx) -> Generator:
        if ctx.tid == 0:
            yield op

    run = WarpExecutor(spec, nthreads=1).run(program)
    return run.duration_ns


def _sync_latency_ns(spec: GPUSpec, level: str) -> float:
    """Cost of one sync at ``level``, from the unified sync API's
    per-scope ``latency_model`` (the closed forms the cooperative-groups
    scopes expose).  Called once per measurement, not per sample — the
    scope construction is not free."""
    if level == "block":
        return BlockGroup(spec, warps_per_block=8).latency_model()
    if level == "grid":
        return GridGroup(spec, blocks_per_sm=1, threads_per_block=256).latency_model()
    raise ValueError(f"unknown sync level {level!r}")


def measure_kernel_total_latency_host(
    spec: GPUSpec,
    duration_fn: Callable[[int], float],
    repeats: int,
    config: MeasurementConfig = MeasurementConfig(warmup=1, samples=12),
    seed: int = 0,
) -> Measurement:
    """Host-clock total latency of one kernel repeating an op ``repeats``
    times (launch + execution + synchronize, with clock jitter)."""
    counter = [0]

    def sample() -> float:
        counter[0] += 1
        rt = CudaRuntime.single_gpu(spec, seed=seed + counter[0])
        kernel = WorkKernel(duration_fn(repeats), name=f"probe-r{repeats}")
        out: dict = {}

        def host() -> Generator:
            yield from rt.launch(kernel, _PROBE_CONFIG)  # warm-up
            yield from rt.device_synchronize()
            t1 = rt.host_clock.read()
            yield from rt.launch(kernel, _PROBE_CONFIG)
            yield from rt.device_synchronize()
            t2 = rt.host_clock.read()
            out["v"] = t2 - t1

        rt.run_host(host())
        return out["v"]

    return collect(sample, config)


def measure_instruction_latency_inter_sm(
    spec: GPUSpec,
    instruction: str = "fadd",
    r1: int = 2048,
    r2: int = 512,
    config: MeasurementConfig = MeasurementConfig(warmup=1, samples=12),
    seed: int = 0,
) -> DerivedLatency:
    """Eq 7/8: derive one instruction's latency from the CPU clock."""
    if r1 == r2:
        raise ValueError("repeat counts must differ")

    def duration(r: int) -> float:
        return _chain_duration_ns(spec, instruction, r)

    m1 = measure_kernel_total_latency_host(spec, duration, r1, config, seed)
    m2 = measure_kernel_total_latency_host(spec, duration, r2, config, seed + 10_000)
    return derive_instruction_latency(m1, r1, m2, r2)


def verify_sync_repeat_invariance(
    spec: GPUSpec,
    level: str = "grid",
    repeat_pairs: tuple = ((64, 16), (128, 32)),
    config: MeasurementConfig = MeasurementConfig(warmup=1, samples=10),
    seed: int = 0,
) -> dict:
    """Check that per-sync latency is independent of the repeat count.

    The paper verifies this for block and grid sync (Section IX-D); warp
    sync is excluded — on real hardware it destabilizes via instruction-
    cache overflow, so the paper only reports its fastest result.
    Returns ``{pair: derived_latency_ns}`` plus the spread.
    """
    per_sync_ns = _sync_latency_ns(spec, level)
    results = {}
    for i, (r1, r2) in enumerate(repeat_pairs):
        derived = derive_instruction_latency(
            measure_kernel_total_latency_host(
                spec, lambda r: per_sync_ns * r, r1, config,
                seed + i * 31,
            ),
            r1,
            measure_kernel_total_latency_host(
                spec, lambda r: per_sync_ns * r, r2, config,
                seed + i * 31 + 7,
            ),
            r2,
        )
        results[(r1, r2)] = derived.latency_ns
    values = list(results.values())
    spread = (max(values) - min(values)) / max(values) if max(values) else 0.0
    return {"per_pair_ns": results, "relative_spread": spread}
