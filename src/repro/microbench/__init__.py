"""Micro-benchmark methodology (Section IX of the paper)."""

from repro.microbench.harness import Measurement, MeasurementConfig, collect
from repro.microbench.implicit import (
    LaunchOverheadResult,
    cpu_side_barrier_overhead,
    measure_kernel_total_latency,
    measure_launch_overhead,
)
from repro.microbench.inter_sm import (
    measure_instruction_latency_inter_sm,
    measure_kernel_total_latency_host,
    verify_sync_repeat_invariance,
)
from repro.microbench.intra_sm import (
    SharedBandwidthResult,
    measure_instruction_latency_wong,
    measure_shared_bandwidth,
)
from repro.microbench.stats import (
    DerivedLatency,
    derive_instruction_latency,
    propagated_sigma,
)

__all__ = [
    "Measurement",
    "MeasurementConfig",
    "collect",
    "LaunchOverheadResult",
    "measure_launch_overhead",
    "measure_kernel_total_latency",
    "cpu_side_barrier_overhead",
    "measure_instruction_latency_wong",
    "measure_shared_bandwidth",
    "SharedBandwidthResult",
    "measure_instruction_latency_inter_sm",
    "measure_kernel_total_latency_host",
    "verify_sync_repeat_invariance",
    "DerivedLatency",
    "derive_instruction_latency",
    "propagated_sigma",
]
