"""Wong-style intra-SM micro-benchmarks (Section IX-C).

Wong's method builds a chain of *dependent* operations, reads the SM clock
register before and after, and divides by the repeat count.  It is exact
within one SM (the clock is local) — the paper uses it for warp-level
instruction latencies and we additionally use it for the shared-memory
proxy kernel of Section VII-B (Fig 10), whose measured bandwidth/latency
feeds Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.cudasim import instructions as ins
from repro.sim.arch import GPUSpec
from repro.sim.engine import Engine, Resource, Timeout
from repro.sim.exec_thread import ThreadCtx, WarpExecutor

__all__ = [
    "measure_instruction_latency_wong",
    "SharedBandwidthResult",
    "measure_shared_bandwidth",
]


def measure_instruction_latency_wong(
    spec: GPUSpec,
    instruction: str = "fadd",
    repeats: int = 512,
) -> float:
    """Latency (cycles) of one instruction via a dependent chain.

    ``instruction`` is one of ``"fadd"``, ``"dadd"``, ``"chain"`` (the
    shared-memory load+add iteration).  Uses a single thread so the chain
    is strictly dependent, exactly as in the paper's Fig 19 kernel.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    op_map = {
        "fadd": lambda: ins.FAdd(count=repeats),
        "dadd": lambda: ins.DAdd(count=repeats),
        "chain": lambda: ins.ChainStep(count=repeats),
    }
    try:
        make_op = op_map[instruction]
    except KeyError:
        raise ValueError(
            f"unknown instruction {instruction!r}; expected {sorted(op_map)}"
        ) from None

    result: dict = {}

    def program(ctx: ThreadCtx) -> Generator:
        if ctx.tid != 0:
            return
        t0 = yield ins.ReadClock()
        yield make_op()
        t1 = yield ins.ReadClock()
        result["cycles"] = t1 - t0

    WarpExecutor(spec, nthreads=1).run(program)
    # Subtract the trailing clock-read cost included in the window.
    window = result["cycles"] - spec.instructions.timer_read
    return window / repeats


@dataclass(frozen=True)
class SharedBandwidthResult:
    """Measured shared-memory proxy bandwidth (the Table III inputs)."""

    n_threads: int
    bandwidth_bytes_per_cycle: float
    chain_latency_cycles: float

    @property
    def concurrency_bytes(self) -> float:
        """Little's law (Eq 1): C = T x Thr."""
        return self.bandwidth_bytes_per_cycle * self.chain_latency_cycles


def measure_shared_bandwidth(
    spec: GPUSpec,
    n_threads: int,
    iterations: int = 64,
    engine: Engine | None = None,
) -> SharedBandwidthResult:
    """Bandwidth of the Fig-10 proxy loop for a given thread count.

    Each warp iterates the dependent load+add chain (one 8-byte element per
    thread per iteration); all warps share the SM's load/store port, whose
    byte throughput is capped by the architecture (Table III's 1024-thread
    row is port-bound; the 1-warp row is latency-bound).
    """
    if n_threads < 1 or n_threads > spec.max_threads_per_block:
        raise ValueError(f"n_threads must be in [1,{spec.max_threads_per_block}]")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")

    sm = spec.shared_mem
    eng = engine or Engine()
    port = Resource(eng, capacity=1, name="smem-port")

    full_warps, rem = divmod(n_threads, spec.warp_size)
    warp_threads = [spec.warp_size] * full_warps + ([rem] if rem else [])
    chain_ns = spec.cycles_to_ns(sm.chain_latency_cycles)

    def warp_proc(threads: int) -> Generator:
        bytes_per_iter = threads * sm.element_bytes
        port_ns = spec.cycles_to_ns(bytes_per_iter / sm.sm_cap_bytes_per_cycle)
        t_port = Timeout(port_ns)
        for _ in range(iterations):
            start = eng.now
            yield port.acquire()
            yield t_port
            port.release()
            remaining = chain_ns - (eng.now - start)
            if remaining > 0:
                yield Timeout(remaining)

    t0 = eng.now
    for i, threads in enumerate(warp_threads):
        eng.process(warp_proc(threads), name=f"bw-warp{i}")
    eng.run()

    total_bytes = n_threads * sm.element_bytes * iterations
    cycles = spec.ns_to_cycles(eng.now - t0)
    return SharedBandwidthResult(
        n_threads=n_threads,
        bandwidth_bytes_per_cycle=total_bytes / cycles,
        chain_latency_cycles=sm.chain_latency_cycles,
    )
