"""Micro-benchmarks for implicit barriers (Sections IV and IX-B).

Two measurements, both host-clock based:

* **Kernel-fusion launch overhead** (Eq 6): compare launching ``i`` kernels
  of ``j`` sleep units against ``j`` kernels of ``i`` units — the work is
  identical, so the time difference divided by ``i - j`` is the overhead of
  one extra kernel boundary.  Valid only when the kernels are long enough
  to saturate the dispatch pipeline (~5 µs single-GPU, ~250 µs for 8-GPU
  multi-device launches); needs ``nanosleep``, hence V100-only.
* **Fig-3 null-kernel estimator**: ``((t3-t2) - (t2-t1)) / (5-1)`` around
  one launch+sync and five launches+sync — the steady-state *kernel total
  latency* including the dispatch pipeline a short kernel cannot hide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence

from repro.cudasim.kernel import LaunchConfig, NullKernel, SleepKernel
from repro.cudasim.runtime import CudaRuntime
from repro.microbench.harness import Measurement, MeasurementConfig, collect
from repro.sim.arch import NodeSpec

__all__ = [
    "LaunchOverheadResult",
    "measure_launch_overhead",
    "measure_kernel_total_latency",
    "cpu_side_barrier_overhead",
]

_PROBE_CONFIG = LaunchConfig(grid_blocks=1, threads_per_block=32)


def _launch(rt: CudaRuntime, kernel, launch_type: str,
            devices: Optional[Sequence[int]]) -> Generator:
    """Dispatch through the launch function under test."""
    if launch_type == "traditional":
        yield from rt.launch(kernel, _PROBE_CONFIG)
    elif launch_type == "cooperative":
        yield from rt.launch_cooperative(kernel, _PROBE_CONFIG)
    elif launch_type == "multi_device":
        yield from rt.launch_cooperative_multi_device(
            kernel, _PROBE_CONFIG, devices=devices
        )
    else:
        raise ValueError(f"unknown launch type {launch_type!r}")


def _sync(rt: CudaRuntime, launch_type: str,
          devices: Optional[Sequence[int]]) -> Generator:
    if launch_type == "multi_device":
        yield from rt.synchronize_all()
    else:
        yield from rt.device_synchronize(launch_type=launch_type)


@dataclass(frozen=True)
class LaunchOverheadResult:
    """Fusion-method outcome (Eq 6)."""

    launch_type: str
    n_gpus: int
    overhead_ns: float
    overhead_std_ns: float
    i_launches: int
    j_launches: int


def _burst_latency(
    rt_factory,
    launch_type: str,
    n_launches: int,
    sleep_units: int,
    unit_ns: float,
    devices: Optional[Sequence[int]],
) -> float:
    """Host-clock latency of ``n_launches`` sleep kernels + one sync."""
    rt: CudaRuntime = rt_factory()
    kernel = SleepKernel(units=sleep_units, unit_ns=unit_ns, launch_type=launch_type)
    out: dict = {}

    def host() -> Generator:
        # Warm-up launch, not timed (Section IX-B).
        yield from _launch(rt, kernel, launch_type, devices)
        yield from _sync(rt, launch_type, devices)
        t1 = rt.host_clock.read()
        for _ in range(n_launches):
            yield from _launch(rt, kernel, launch_type, devices)
        yield from _sync(rt, launch_type, devices)
        t2 = rt.host_clock.read()
        out["latency"] = t2 - t1

    rt.run_host(host())
    return out["latency"]


def measure_launch_overhead(
    rt_factory,
    launch_type: str = "traditional",
    i_launches: int = 5,
    j_launches: int = 1,
    unit_ns: float = 1000.0,
    units_scale: int = 10,
    devices: Optional[Sequence[int]] = None,
    config: MeasurementConfig = MeasurementConfig(warmup=1, samples=5),
) -> LaunchOverheadResult:
    """Kernel-fusion launch overhead, Eq 6.

    ``rt_factory`` builds a fresh runtime per sample (cold stream, warm-up
    handled inside).  ``units_scale`` sets the sleep length per "wait unit"
    (10 x 1 µs by default, as in Fig 3); for multi-device launches over many
    GPUs pass a larger scale so the kernels outlast the deeper dispatch
    pipeline — the paper's ~250 µs requirement on 8 GPUs.
    """
    if i_launches == j_launches:
        raise ValueError("i and j must differ (Eq 6 divides by i - j)")
    n_gpus = len(devices) if devices is not None else (
        rt_factory().gpu_count if launch_type == "multi_device" else 1
    )

    def sample_ij() -> float:
        return _burst_latency(
            rt_factory, launch_type, i_launches, j_launches * units_scale,
            unit_ns, devices,
        )

    def sample_ji() -> float:
        return _burst_latency(
            rt_factory, launch_type, j_launches, i_launches * units_scale,
            unit_ns, devices,
        )

    m_ij = collect(sample_ij, config)
    m_ji = collect(sample_ji, config)
    denom = i_launches - j_launches
    overhead = (m_ij.mean - m_ji.mean) / denom
    std = (m_ij.std**2 + m_ji.std**2) ** 0.5 / abs(denom)
    return LaunchOverheadResult(
        launch_type=launch_type,
        n_gpus=n_gpus,
        overhead_ns=overhead,
        overhead_std_ns=std,
        i_launches=i_launches,
        j_launches=j_launches,
    )


def measure_kernel_total_latency(
    rt_factory,
    launch_type: str = "traditional",
    devices: Optional[Sequence[int]] = None,
    config: MeasurementConfig = MeasurementConfig(warmup=1, samples=5),
) -> Measurement:
    """Fig-3 estimator: steady-state total latency of a *null* kernel.

    ``((t3 - t2) - (t2 - t1)) / (5 - 1)`` with one launch+sync between
    t1..t2 and five launches+sync between t2..t3.
    """

    def sample() -> float:
        rt: CudaRuntime = rt_factory()
        kernel = NullKernel(launch_type=launch_type)
        out: dict = {}

        def host() -> Generator:
            yield from _launch(rt, kernel, launch_type, devices)  # warm-up
            yield from _sync(rt, launch_type, devices)
            t1 = rt.host_clock.read()
            yield from _launch(rt, kernel, launch_type, devices)
            yield from _sync(rt, launch_type, devices)
            t2 = rt.host_clock.read()
            for _ in range(5):
                yield from _launch(rt, kernel, launch_type, devices)
            yield from _sync(rt, launch_type, devices)
            t3 = rt.host_clock.read()
            out["v"] = ((t3 - t2) - (t2 - t1)) / (5 - 1)

        rt.run_host(host())
        return out["v"]

    return collect(sample, config)


def cpu_side_barrier_overhead(
    node_spec: NodeSpec,
    n_gpus: int,
    config: MeasurementConfig = MeasurementConfig(warmup=1, samples=5),
) -> Measurement:
    """Per-iteration overhead of the Fig-6 CPU-side barrier pattern.

    One OpenMP thread per GPU launches a kernel, calls
    ``cudaDeviceSynchronize``, then meets at an OpenMP barrier.  Returns
    the steady-state overhead per iteration beyond kernel execution (the
    "Launch Overhead in CPU-side barriers" series of Fig 9).
    """
    from repro.host.openmp import OmpTeam  # deferred: host depends on microbench-free core

    iters = 4
    sleep_units = 10

    def sample() -> float:
        rt = CudaRuntime.for_node(node_spec, gpu_count=n_gpus)
        team = OmpTeam(rt, n_threads=n_gpus)
        out: dict = {}

        def worker(tid: int) -> Generator:
            kernel = SleepKernel(units=sleep_units, unit_ns=1000.0)
            if not rt.device(tid).spec.has_nanosleep:
                kernel = NullKernel()
            # warm-up iteration
            yield from rt.launch(kernel, _PROBE_CONFIG, device=tid)
            yield from rt.device_synchronize(device=tid)
            yield from team.barrier(tid)
            if tid == 0:
                out["t1"] = rt.host_clock.read()
            for _ in range(iters):
                yield from rt.launch(kernel, _PROBE_CONFIG, device=tid)
                yield from rt.device_synchronize(device=tid)
                yield from team.barrier(tid)
            if tid == 0:
                out["t2"] = rt.host_clock.read()

        team.run(worker)
        per_iter = (out["t2"] - out["t1"]) / iters
        exec_ns = sleep_units * 1000.0 if node_spec.gpu.has_nanosleep else 0.0
        return per_iter - exec_ns

    return collect(sample, config)
