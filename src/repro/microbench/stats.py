"""Error model of the inter-SM measurement method (Section IX-D, Eq 7/8).

The paper measures an instruction's latency from the *CPU clock* by running
two kernels that differ only in how many times they repeat the instruction::

    T_instruction = (L_k1 - L_k2) / (r1 - r2)                       (Eq 7)

and shows the derived standard deviation shrinks with the repeat-count gap::

    sigma = sqrt(sigma_k1^2 + sigma_k2^2) / (r1 - r2)               (Eq 8)

(the two kernel measurements being independent).  These helpers implement
exactly that algebra so both the micro-benchmarks and the tests share one
definition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.microbench.harness import Measurement

__all__ = ["DerivedLatency", "derive_instruction_latency", "propagated_sigma"]


def propagated_sigma(sigma1: float, sigma2: float, r1: int, r2: int) -> float:
    """Eq 8: standard deviation of the derived per-instruction latency."""
    if r1 == r2:
        raise ValueError("repeat counts must differ (Eq 7 divides by r1 - r2)")
    return math.sqrt(sigma1**2 + sigma2**2) / abs(r1 - r2)


@dataclass(frozen=True)
class DerivedLatency:
    """Instruction latency derived from two kernel total latencies."""

    latency_ns: float
    sigma_ns: float
    r1: int
    r2: int

    def latency_cycles(self, freq_mhz: float) -> float:
        return self.latency_ns * freq_mhz / 1e3

    def sigma_cycles(self, freq_mhz: float) -> float:
        return self.sigma_ns * freq_mhz / 1e3


def derive_instruction_latency(
    m1: Measurement, r1: int, m2: Measurement, r2: int
) -> DerivedLatency:
    """Apply Eq 7 (mean) and Eq 8 (uncertainty) to two kernel measurements.

    ``m1``/``m2`` are total-latency measurements of kernels repeating the
    target instruction ``r1``/``r2`` times.
    """
    if r1 == r2:
        raise ValueError("repeat counts must differ")
    latency = (m1.mean - m2.mean) / (r1 - r2)
    sigma = propagated_sigma(m1.std, m2.std, r1, r2)
    return DerivedLatency(latency_ns=latency, sigma_ns=sigma, r1=r1, r2=r2)
