"""Measurement harness: warm-up, repetition, summary statistics.

Implements the protocol discipline of Section IX: every measurement does a
warm-up pass that is discarded (Section IX-B: "we do a warm-up kernel call
before every measurement that we don't report the results for"), then
collects ``samples`` repetitions and summarizes them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

__all__ = ["MeasurementConfig", "Measurement", "collect"]


@dataclass(frozen=True)
class MeasurementConfig:
    """Repetition policy for one micro-benchmark."""

    warmup: int = 1
    samples: int = 5

    def __post_init__(self):
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.samples < 1:
            raise ValueError("samples must be >= 1")


@dataclass(frozen=True)
class Measurement:
    """Summary of repeated samples of one quantity."""

    values: tuple
    unit: str = "ns"

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1); 0 for a single sample."""
        if len(self.values) < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values) / (len(self.values) - 1))

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(len(self.values)) if len(self.values) else 0.0

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Measurement(mean={self.mean:.1f}{self.unit}, std={self.std:.1f}, n={self.n})"


def collect(
    sample_fn: Callable[[], float],
    config: MeasurementConfig = MeasurementConfig(),
    unit: str = "ns",
) -> Measurement:
    """Run warm-ups (discarded), then gather ``config.samples`` samples."""
    for _ in range(config.warmup):
        sample_fn()
    values = tuple(sample_fn() for _ in range(config.samples))
    return Measurement(values=values, unit=unit)
