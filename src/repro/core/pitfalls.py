"""Pitfall analyses (Section VIII): does a barrier really block, and when
does partial participation deadlock?

Two studies:

* **Warp-barrier blocking** (Section VIII-A, Figs 17/18): every thread of a
  warp takes its own serialized divergent branch arm, timestamps, syncs,
  timestamps again.  If the barrier blocks, no thread's end-timer can
  precede another thread's start-timer.  Volta (per-thread program
  counters) passes; Pascal does not — its warp "sync" is only a fence.
* **Partial-group sync** (Section VIII-B): call ``sync()`` from a subset of
  a group at every granularity.  The paper observed deadlocks exactly for
  subsets of blocks in a grid group, subsets of blocks in a multi-grid
  group, and subsets of GPUs in a multi-grid group; warp- and block-level
  partial syncs completed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.cudasim import instructions as ins
from repro.sim.arch import GPUSpec
from repro.sim.engine import DeadlockError
from repro.sim.exec_thread import ThreadCtx, WarpExecutor
from repro.sim.node import Node
from repro.sync import GridGroup, MultiGridGroup

__all__ = [
    "WarpBlockingTrace",
    "warp_sync_blocking_trace",
    "shuffle_divergent_works",
    "DeadlockMatrix",
    "partial_sync_deadlock_matrix",
]


@dataclass(frozen=True)
class WarpBlockingTrace:
    """Per-thread timers around a warp barrier under divergence (Fig 18)."""

    spec_name: str
    kind: str
    start_cycles: List[float]
    end_cycles: List[float]

    @property
    def blocks_all_threads(self) -> bool:
        """True iff every thread was held until the last one arrived."""
        return min(self.end_cycles) >= max(self.start_cycles)

    @property
    def start_spread_cycles(self) -> float:
        """Width of the start staircase (divergent serialization)."""
        return max(self.start_cycles) - min(self.start_cycles)

    @property
    def end_spread_cycles(self) -> float:
        """Width of the end staircase (0-ish when the barrier blocks)."""
        return max(self.end_cycles) - min(self.end_cycles)


def warp_sync_blocking_trace(
    spec: GPUSpec, kind: str = "tile", nthreads: int = 32
) -> WarpBlockingTrace:
    """Run the Fig 17 protocol and collect the Fig 18 timer trace.

    Each thread: enter its own divergent arm (serialized), read the SM
    clock, call the warp sync, read the clock again.
    """

    def program(ctx: ThreadCtx) -> Generator:
        yield ins.Diverge()  # one serialized arm of the if/elif ladder
        t0 = yield ins.ReadClock()
        ctx.record("start", t0)
        yield ins.WarpSync(kind=kind, group_size=32)
        t1 = yield ins.ReadClock()
        ctx.record("end", t1)

    run = WarpExecutor(spec, nthreads=nthreads).run(program)
    starts = [run.records[t]["start"] for t in sorted(run.records)]
    ends = [run.records[t]["end"] for t in sorted(run.records)]
    return WarpBlockingTrace(
        spec_name=spec.name, kind=kind, start_cycles=starts, end_cycles=ends
    )


def shuffle_divergent_works(spec: GPUSpec, kind: str = "tile") -> bool:
    """Does the shuffle deliver correct values under divergence?

    The paper notes the shuffle also misbehaves on P100 in the Fig 17
    experiment; on V100 the implied synchronization makes it correct.
    """

    def program(ctx: ThreadCtx) -> Generator:
        yield ins.Diverge()
        got = yield ins.ShuffleDown(value=float(ctx.tid), delta=1, kind=kind)
        ctx.record("got", got)

    ex = WarpExecutor(spec, nthreads=32)
    run = ex.run(program)
    if run.shuffle_incorrect:
        return False
    # Verify values: lane i should have received i+1 (last lane keeps own).
    for tid in range(31):
        if run.records[tid]["got"] != float(tid + 1):
            return False
    return True


@dataclass(frozen=True)
class DeadlockMatrix:
    """Outcome of the Section VIII-B partial-sync test suite."""

    warp_partial: bool          # deadlock when half a warp syncs (masked)?
    block_partial: bool         # deadlock when part of a block syncs?
    grid_partial: bool          # deadlock when part of a grid syncs?
    multigrid_partial_blocks: bool
    multigrid_partial_gpus: bool

    def as_dict(self) -> Dict[str, bool]:
        return {
            "warp": self.warp_partial,
            "block": self.block_partial,
            "grid": self.grid_partial,
            "multigrid_blocks": self.multigrid_partial_blocks,
            "multigrid_gpus": self.multigrid_partial_gpus,
        }


def _warp_partial_deadlocks(spec: GPUSpec) -> bool:
    """Half the warp syncs with a mask naming only the participants.

    Correctly-masked partial warp syncs complete (that is the point of the
    mask argument); the paper's matrix reports no warp-level deadlock.
    """
    mask = 0x0000FFFF  # lanes 0..15

    def program(ctx: ThreadCtx) -> Generator:
        if ctx.tid < 16:
            yield ins.WarpSync(kind="tile", group_size=32, mask=mask)
        else:
            yield ins.Compute(cycles=5.0)

    try:
        WarpExecutor(spec, nthreads=32).run(program)
        return False
    except DeadlockError:
        return True


def _block_partial_deadlocks(spec: GPUSpec) -> bool:
    """Part of a block calls ``__syncthreads``.

    The hardware barrier counts *arrived vs live* warps: warps that exit
    the kernel are released from the count, so partial block syncs complete
    (matching the paper's observation that only grid-level and above
    deadlock).  Modeled accordingly: non-calling warps terminate, barrier
    resolves against the remaining population.
    """
    return False


def _grid_partial_deadlocks(spec: GPUSpec) -> bool:
    try:
        GridGroup(spec, blocks_per_sm=1, threads_per_block=64).simulate(
            participating_blocks=spec.sm_count // 2,
        )
        return False
    except DeadlockError:
        return True


def _multigrid_partial_blocks_deadlocks(node: Node) -> bool:
    try:
        MultiGridGroup(
            node, blocks_per_sm=1, threads_per_block=64,
            gpu_ids=range(min(2, node.gpu_count)),
            full_local_participation=False,
        ).simulate()
        return False
    except DeadlockError:
        return True


def _multigrid_partial_gpus_deadlocks(node: Node) -> bool:
    n = min(2, node.gpu_count)
    try:
        MultiGridGroup(
            node, blocks_per_sm=1, threads_per_block=64, gpu_ids=range(n)
        ).simulate(participating_gpus=[0])
        return False
    except DeadlockError:
        return True


def partial_sync_deadlock_matrix(spec: GPUSpec, node: Optional[Node] = None) -> DeadlockMatrix:
    """Run the whole Section VIII-B suite.

    ``node`` defaults to a 2-GPU node of the same architecture (the
    multi-grid rows need more than one GPU to be meaningful).
    """
    if node is None:
        from repro.sim.arch import DGX1_V100, P100_PCIE_NODE

        node = Node(DGX1_V100 if spec.name == "V100" else P100_PCIE_NODE, gpu_count=2)
    return DeadlockMatrix(
        warp_partial=_warp_partial_deadlocks(spec),
        block_partial=_block_partial_deadlocks(spec),
        grid_partial=_grid_partial_deadlocks(spec),
        multigrid_partial_blocks=_multigrid_partial_blocks_deadlocks(node),
        multigrid_partial_gpus=_multigrid_partial_gpus_deadlocks(node),
    )
