"""Characterization sweeps: the measured side of Tables II and Figures 4-8.

Every function *measures the simulated machine* through the appropriate
executor — the same division of labour as the paper:

* warp-level latencies: thread-precise executor, one warp, one block
  (Section V-A protocol);
* warp-level throughput: best sustained rate over thread/block
  configurations (Section V-A);
* block sync: warp-count scan on one SM (Fig 4);
* grid / multi-grid sync: full-device barrier protocol over the
  occupancy-legal launch grid (Figs 5/7/8 heat-maps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.cudasim import instructions as ins
from repro.sim.arch import GPUSpec
from repro.sim.exec_thread import ThreadCtx, WarpExecutor
from repro.sim.node import Node
from repro.sim.occupancy import blocks_per_sm as occ_blocks_per_sm
from repro.sim.sm import simulate_block_sync, simulate_warp_sync_throughput
from repro.sync import GridGroup, MultiGridGroup

__all__ = [
    "measure_warp_sync_latency",
    "measure_shuffle_latency",
    "measure_warp_sync_throughput_best",
    "table2_rows",
    "BlockSyncPoint",
    "block_sync_scan",
    "heatmap_cells",
    "grid_sync_heatmap",
    "multigrid_sync_heatmap",
]

# The paper's heat-map axes (Figs 5/7/8).
_HEATMAP_BLOCKS = (1, 2, 4, 8, 16, 32)
_HEATMAP_THREADS = (32, 64, 128, 256, 512, 1024)


def measure_warp_sync_latency(
    spec: GPUSpec, kind: str = "tile", group_size: int = 32
) -> float:
    """Latency (cycles) of one warp-level sync (the Table II protocol).

    A *coalesced* group consists of the currently-active lanes, so a
    partial coalesced group (size < 32) is formed by running that many
    live threads — which is how V100's slow partial-coalesced path
    (108 cycles vs 14 for the full warp) is exposed.
    """

    def program(ctx: ThreadCtx) -> Generator:
        yield ins.WarpSync(kind=kind, group_size=group_size)

    nthreads = group_size if (kind == "coalesced" and group_size < 32) else 32
    run = WarpExecutor(spec, nthreads=nthreads).run(program)
    return run.duration_cycles


def measure_shuffle_latency(spec: GPUSpec, kind: str = "tile") -> float:
    """Latency (cycles) of one shuffle through a tile or coalesced group."""

    def program(ctx: ThreadCtx) -> Generator:
        yield ins.ShuffleDown(value=float(ctx.tid), delta=16, kind=kind)

    run = WarpExecutor(spec, nthreads=32).run(program)
    return run.duration_cycles


def measure_warp_sync_throughput_best(
    spec: GPUSpec,
    kind: str,
    group_size: int = 32,
    warp_counts: Sequence[int] = (8, 16, 32, 64),
    repeats: int = 64,
) -> float:
    """Best sustained throughput (ops/cycle) over several configurations —
    the Table II protocol ("recording only the highest result")."""
    best = 0.0
    for n_warps in warp_counts:
        r = simulate_warp_sync_throughput(
            spec, kind, group_size, n_warps=n_warps, repeats=repeats
        )
        best = max(best, r.throughput_ops_per_cycle)
    return best


def warp_sync_size_sweep(spec: GPUSpec) -> Dict[str, Dict[int, float]]:
    """Section V-A's exhaustive group-size sweep.

    Tile sizes are the powers of two 1..32; coalesced sizes range 1..32.
    The paper's findings, which the sweep reproduces:

    * tile-group size influences neither latency nor throughput (the
      concurrent tile syncs merge into one instruction);
    * coalesced-group size does not matter on P100, but on V100 only the
      full-warp group takes the fast path.
    """
    tile = {
        size: measure_warp_sync_latency(spec, "tile", size)
        for size in (1, 2, 4, 8, 16, 32)
    }
    coalesced = {
        size: measure_warp_sync_latency(spec, "coalesced", size)
        for size in range(1, 33)
    }
    return {"tile": tile, "coalesced": coalesced}


def table2_rows(spec: GPUSpec) -> Dict[str, Dict[str, float]]:
    """Measure every Table II row on one architecture."""
    rows: Dict[str, Dict[str, float]] = {}
    rows["tile"] = {
        "latency": measure_warp_sync_latency(spec, "tile", 32),
        "throughput": measure_warp_sync_throughput_best(spec, "tile"),
    }
    rows["shuffle_tile"] = {
        "latency": measure_shuffle_latency(spec, "tile"),
        "throughput": measure_warp_sync_throughput_best(spec, "shuffle_tile"),
    }
    rows["coalesced_partial"] = {
        "latency": measure_warp_sync_latency(spec, "coalesced", 16),
        "throughput": measure_warp_sync_throughput_best(spec, "coalesced", 16),
    }
    rows["coalesced_full"] = {
        "latency": measure_warp_sync_latency(spec, "coalesced", 32),
        "throughput": measure_warp_sync_throughput_best(spec, "coalesced", 32),
    }
    rows["shuffle_coalesced"] = {
        "latency": measure_shuffle_latency(spec, "coalesced"),
        "throughput": measure_warp_sync_throughput_best(spec, "shuffle_coalesced"),
    }
    # Block sync from the per-warp perspective: single-warp latency and
    # saturated per-warp throughput (Fig 4 plateau).
    sat = simulate_block_sync(spec, warps_per_block=16, n_blocks=4, repeats=8)
    one = simulate_block_sync(spec, warps_per_block=1, n_blocks=1, repeats=8)
    rows["block_per_warp"] = {
        "latency": one.latency_per_sync_cycles,
        "throughput": sat.per_warp_throughput,
    }
    return rows


@dataclass(frozen=True)
class BlockSyncPoint:
    """One point of the Fig 4 scan."""

    warps_per_sm: int
    active_warps: int
    latency_cycles: float
    per_warp_throughput: float


def block_sync_scan(
    spec: GPUSpec,
    warp_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
    repeats: int = 8,
) -> List[BlockSyncPoint]:
    """Fig 4: block-sync latency and per-warp throughput vs warps/SM.

    Beyond the residency limit the extra warps come from queued blocks
    (time-sharing), which is where the latency curve kinks upward while
    throughput stays on its plateau.
    """
    points = []
    for w in warp_counts:
        wpb = min(w, spec.max_threads_per_block // spec.warp_size)
        n_blocks = max(1, w // wpb)
        r = simulate_block_sync(spec, wpb, n_blocks, repeats=repeats)
        points.append(
            BlockSyncPoint(
                warps_per_sm=w,
                active_warps=r.active_warps,
                latency_cycles=r.latency_per_sync_cycles,
                per_warp_throughput=r.per_warp_throughput,
            )
        )
    return points


def heatmap_cells(spec: GPUSpec) -> List[Tuple[int, int]]:
    """The occupancy-legal (blocks/SM, threads/block) cells of Figs 5/7/8.

    A cell exists iff the whole grid can be co-resident — the cooperative
    launch requirement that blanks the upper-right of the paper's tables.
    """
    cells = []
    for b in _HEATMAP_BLOCKS:
        for t in _HEATMAP_THREADS:
            occ = occ_blocks_per_sm(spec, t)
            if b <= occ.blocks_per_sm:
                cells.append((b, t))
    return cells


def grid_sync_heatmap(
    spec: GPUSpec,
    n_syncs: int = 1,
    strategy=None,
    strategy_knobs=None,
    backend=None,
) -> Dict[Tuple[int, int], float]:
    """Fig 5: measured grid-sync latency (us) per launch configuration.

    ``strategy``/``strategy_knobs`` select the barrier strategy per cell
    (kind string or instance factory input, see :class:`repro.sync.GridGroup`)
    — ``None`` keeps the cooperative default the paper measures.
    ``backend`` routes every cell through one execution backend
    (:data:`repro.sim.backends.BACKEND_CHOICES`); each cell's group owns
    a private engine, so the analytic closed forms apply to all of them.
    """
    out = {}
    for b, t in heatmap_cells(spec):
        r = GridGroup(
            spec, b, t, strategy=strategy, strategy_knobs=strategy_knobs,
            backend=backend,
        ).simulate(n_syncs=n_syncs)
        out[(b, t)] = r.latency_per_sync_us
    return out


def multigrid_sync_heatmap(
    node: Node,
    gpu_ids: Optional[Sequence[int]] = None,
    n_syncs: int = 1,
    strategy=None,
    strategy_knobs=None,
    backend=None,
) -> Dict[Tuple[int, int], float]:
    """Figs 7/8: measured multi-grid sync latency (us) per configuration."""
    out = {}
    for b, t in heatmap_cells(node.spec.gpu):
        r = MultiGridGroup(
            node, b, t, gpu_ids=gpu_ids, strategy=strategy,
            strategy_knobs=strategy_knobs, backend=backend,
        ).simulate(n_syncs=n_syncs)
        out[(b, t)] = r.latency_per_sync_us
    return out
