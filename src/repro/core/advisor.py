"""Synchronization advisor: Table VIII as an executable API.

The paper closes with a table of design guidance ("use shuffle in real
code", "grid sync is acceptable at <=2 blocks/SM", "multi-grid is fine if
thread/SM <= 1024 and block/SM <= 8", ...).  :func:`advise` turns that
guidance into a queryable decision procedure backed by the cost models, so
a framework can ask *for its actual launch geometry* which mechanism to
use and what it will cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.sim.arch import GPUSpec, NodeSpec
from repro.sim.device import grid_sync_latency_ns
from repro.sim.node import Node, cross_gpu_latency_ns, multigrid_local_latency_ns
from repro.sim.occupancy import blocks_per_sm as occ_blocks_per_sm
from repro.sim.sm import block_sync_latency_cycles

__all__ = ["SyncAdvice", "advise_warp", "advise_block", "advise_device", "advise_multi_gpu"]


@dataclass(frozen=True)
class SyncAdvice:
    """A recommendation with its quantitative backing."""

    scope: str
    recommendation: str
    estimated_cost_ns: float
    alternatives: List[str] = field(default_factory=list)
    caveats: List[str] = field(default_factory=list)

    @property
    def estimated_cost_us(self) -> float:
        return self.estimated_cost_ns / 1e3


def advise_warp(spec: GPUSpec, exchanging_data: bool = True) -> SyncAdvice:
    """Warp-scope advice (Table VIII rows 1-2, Table V evidence)."""
    ws = spec.warp_sync
    caveats = []
    if not ws.blocking:
        caveats.append(
            "warp-level sync does not block threads on Pascal — it is only "
            "a memory fence; never use it for timing or control dependences "
            "(Section VIII-A)"
        )
    caveats.append(
        "a partial coalesced group pays a slow path on Volta "
        f"({ws.coalesced_partial_latency:.0f} vs {ws.coalesced_full_latency:.0f} "
        "cycles) — prefer full-warp groups"
    )
    if exchanging_data:
        cost = spec.cycles_to_ns(ws.shuffle_tile_latency)
        return SyncAdvice(
            scope="warp",
            recommendation="tile-group shfl_down (sync implied)",
            estimated_cost_ns=cost,
            alternatives=[
                "tile.sync() + shared memory (equal cost, more traffic)",
                "volatile shared memory (no explicit sync, same latency)",
            ],
            caveats=caveats + [
                "never omit the sync: the unsynchronized tree reads stale "
                "partials (Table V footnote)"
            ],
        )
    return SyncAdvice(
        scope="warp",
        recommendation="tiled_partition<32>().sync()",
        estimated_cost_ns=spec.cycles_to_ns(ws.tile_latency),
        alternatives=["coalesced_threads().sync() (full warp only)"],
        caveats=caveats,
    )


def advise_block(spec: GPUSpec, threads_per_block: int = 256) -> SyncAdvice:
    """Block-scope advice (Table VIII row 3)."""
    occ = occ_blocks_per_sm(spec, threads_per_block)
    cost = spec.cycles_to_ns(block_sync_latency_cycles(spec, occ.warps_per_block))
    return SyncAdvice(
        scope="block",
        recommendation="block.sync() / __syncthreads()",
        estimated_cost_ns=cost,
        alternatives=["restructure to warp-local steps below 32 threads"],
        caveats=[
            "throughput saturates with active warps/SM "
            f"(at {1.0 / spec.block_sync.per_warp_service_cycles:.2f} "
            "warp-sync/cycle); heavily synchronized kernels gain nothing "
            "from oversubscription (Fig 4)",
        ],
    )


def advise_device(
    spec: GPUSpec,
    blocks_per_sm: int = 2,
    threads_per_block: int = 256,
    barriers_per_launch: int = 1,
    reuses_on_chip_state: bool = False,
) -> SyncAdvice:
    """Device-scope advice: grid sync vs implicit barrier (Sections IV/V/VII).

    ``barriers_per_launch`` is how many device-wide barriers the algorithm
    needs before the host next looks at the data; ``reuses_on_chip_state``
    marks algorithms (e.g. iterative stencils) that would otherwise reload
    shared memory/registers after every kernel boundary.
    """
    if barriers_per_launch < 1:
        raise ValueError("barriers_per_launch must be >= 1")
    trad = spec.launch_calib("traditional")
    implicit_each = trad.gap_ns + trad.dispatch_ns  # Table I kernel total latency
    grid_each = grid_sync_latency_ns(spec, blocks_per_sm, threads_per_block)
    implicit_total = barriers_per_launch * implicit_each
    grid_total = (
        barriers_per_launch * grid_each
        + (spec.launch_calib("cooperative").api_ns - trad.api_ns)
    )
    caveats = [
        "every block must call grid.sync(): a partial barrier deadlocks "
        "(Section VIII-B)",
        "the cooperative grid must be fully co-resident "
        f"(here <= {occ_blocks_per_sm(spec, threads_per_block).blocks_per_sm} "
        "blocks/SM at this block size)",
    ]
    if blocks_per_sm > 2:
        caveats.append(
            "grid sync cost grows with blocks/SM; the paper calls <= 2 "
            "blocks/SM the comfortable regime (Fig 5)"
        )
    if reuses_on_chip_state or grid_total < implicit_total:
        return SyncAdvice(
            scope="device",
            recommendation="persistent cooperative kernel with grid.sync()",
            estimated_cost_ns=grid_total,
            alternatives=[
                f"implicit barriers: ~{implicit_total / 1e3:.1f} us for "
                f"{barriers_per_launch} barrier(s), but on-chip state is lost "
                "at every kernel boundary"
            ],
            caveats=caveats,
        )
    return SyncAdvice(
        scope="device",
        recommendation="implicit barrier (consecutive kernels in one stream)",
        estimated_cost_ns=implicit_total,
        alternatives=[
            f"grid.sync(): ~{grid_each / 1e3:.2f} us per barrier once the "
            "cooperative kernel is resident — pays off for many barriers or "
            "on-chip data reuse"
        ],
        caveats=["loses shared-memory/register state between kernels"],
    )


def advise_multi_gpu(
    node_spec: NodeSpec,
    gpu_ids: Optional[Sequence[int]] = None,
    blocks_per_sm: int = 1,
    threads_per_block: int = 256,
    values_programmability: bool = True,
) -> SyncAdvice:
    """Multi-GPU advice (Table VIII rows 4-5, Fig 9)."""
    node = Node(node_spec)
    ids = list(gpu_ids) if gpu_ids is not None else list(range(node.gpu_count))
    n = len(ids)
    mgrid = multigrid_local_latency_ns(
        node_spec, blocks_per_sm, threads_per_block
    ) + cross_gpu_latency_ns(node_spec, node.interconnect, ids, blocks_per_sm)
    trad = node_spec.gpu.launch_calib("traditional")
    cpu_side = (
        trad.api_ns + trad.dispatch_ns + trad.exec_null_ns + trad.sync_return_ns
        + node_spec.omp_barrier_ns(n)
    )
    md = node_spec.gpu.launch_calib("multi_device")
    md_launch = md.gap_for(n) + md.exec_null_ns

    caveats = [
        "never launch the multi-grid group on a strict GPU subset and sync "
        "— it deadlocks (Section VIII-B)",
        "stay at <= 8 blocks/SM and <= 1024 threads/SM for acceptable "
        "multi-grid latency (Table VIII)",
    ]
    two_hop = node.interconnect.two_hop_members(min(ids), ids)
    if two_hop:
        caveats.append(
            f"GPUs {two_hop} are two NVLink hops from the leader: expect the "
            "upper latency plateau (Figs 8/9)"
        )
    alternatives = [
        f"CPU-side openMP barrier: ~{cpu_side / 1e3:.1f} us, flat in GPU count",
        f"multi-device launch as implicit barrier: ~{md_launch / 1e3:.1f} us "
        f"at {n} GPUs (grows quadratically — avoid beyond 2 GPUs)",
    ]
    if values_programmability and mgrid <= 3.0 * cpu_side:
        return SyncAdvice(
            scope="multi_gpu",
            recommendation="multi_grid.sync() in one multi-device cooperative kernel",
            estimated_cost_ns=mgrid,
            alternatives=alternatives,
            caveats=caveats + [
                "within 3x of the CPU-side barrier here; the paper argues the "
                "programmability is worth it (Section VI-D)"
            ],
        )
    return SyncAdvice(
        scope="multi_gpu",
        recommendation="CPU-side barrier (one thread per GPU + omp barrier)",
        estimated_cost_ns=cpu_side,
        alternatives=[f"multi_grid.sync(): ~{mgrid / 1e3:.1f} us"] + alternatives[1:],
        caveats=caveats + ["requires openMP/MPI choreography on the host"],
    )
