"""The paper's primary contribution: synchronization characterization,
cooperative-groups API, performance model, and pitfall analyses."""

from repro.core.advisor import (
    SyncAdvice,
    advise_block,
    advise_device,
    advise_multi_gpu,
    advise_warp,
)
from repro.core.characterize import (
    BlockSyncPoint,
    block_sync_scan,
    grid_sync_heatmap,
    heatmap_cells,
    measure_shuffle_latency,
    measure_warp_sync_latency,
    measure_warp_sync_throughput_best,
    multigrid_sync_heatmap,
    table2_rows,
)
from repro.core.groups import (
    VALID_TILE_SIZES,
    CoalescedGroup,
    GridGroup,
    KernelEnv,
    MultiGridGroup,
    ThreadBlockGroup,
    ThreadBlockTile,
    coalesced_threads,
    this_grid,
    this_multi_grid,
    this_thread_block,
    tiled_partition,
)
from repro.core.perfmodel import (
    SwitchingPoints,
    WorkerConfig,
    choose_workers,
    completion_time_cycles,
    little_concurrency,
    scenario_sync_cycles,
    switching_points,
    table3_rows,
    table4_rows,
)
from repro.core.pitfalls import (
    DeadlockMatrix,
    WarpBlockingTrace,
    partial_sync_deadlock_matrix,
    shuffle_divergent_works,
    warp_sync_blocking_trace,
)

__all__ = [
    # advisor
    "SyncAdvice",
    "advise_warp",
    "advise_block",
    "advise_device",
    "advise_multi_gpu",
    # groups
    "KernelEnv",
    "ThreadBlockTile",
    "CoalescedGroup",
    "ThreadBlockGroup",
    "GridGroup",
    "MultiGridGroup",
    "tiled_partition",
    "coalesced_threads",
    "this_thread_block",
    "this_grid",
    "this_multi_grid",
    "VALID_TILE_SIZES",
    # characterization
    "measure_warp_sync_latency",
    "measure_shuffle_latency",
    "measure_warp_sync_throughput_best",
    "table2_rows",
    "BlockSyncPoint",
    "block_sync_scan",
    "heatmap_cells",
    "grid_sync_heatmap",
    "multigrid_sync_heatmap",
    # performance model
    "WorkerConfig",
    "SwitchingPoints",
    "little_concurrency",
    "completion_time_cycles",
    "switching_points",
    "choose_workers",
    "scenario_sync_cycles",
    "table3_rows",
    "table4_rows",
    # pitfalls
    "WarpBlockingTrace",
    "warp_sync_blocking_trace",
    "shuffle_divergent_works",
    "DeadlockMatrix",
    "partial_sync_deadlock_matrix",
]
