"""Cooperative-groups API (the paper's Figure 2 hierarchy).

Mirrors CUDA's ``cooperative_groups`` namespace over the simulator::

    env = KernelEnv.cooperative(V100, blocks_per_sm=2, threads_per_block=256)
    grid = this_grid(env)
    t = grid.sync_latency_ns()        # cost model
    grid.sync_simulated()             # DES protocol run

    tile = tiled_partition(env, 32)
    instr = tile.sync()               # instruction for thread-level kernels

Hierarchy and constraints follow the paper:

* **tile / coalesced groups** only synchronize within a warp in CUDA 10
  (Section III-A) — ``tiled_partition`` rejects sizes above 32;
* **grid groups** require a cooperative launch
  (``cudaLaunchCooperativeKernel``) — constructing one from a traditional
  launch raises;
* **multi-grid groups** require the multi-device launch;
* synchronizing a *subset* of a grid/multi-grid group deadlocks
  (Section VIII-B) — reproduced by the simulation, see
  :mod:`repro.core.pitfalls`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro import sync as engine_sync
from repro.cudasim import instructions as ins
from repro.cudasim.errors import CooperativeLaunchTooLarge, CudaError, InvalidConfiguration
from repro.sim.arch import GPUSpec
from repro.sim.device import grid_sync_latency_ns
from repro.sim.node import (
    Node,
    cross_gpu_latency_ns,
    multigrid_local_latency_ns,
)
from repro.sim.occupancy import max_cooperative_blocks
from repro.sim.sm import block_sync_latency_cycles

__all__ = [
    "KernelEnv",
    "ThreadBlockTile",
    "CoalescedGroup",
    "ThreadBlockGroup",
    "GridGroup",
    "MultiGridGroup",
    "tiled_partition",
    "coalesced_threads",
    "this_thread_block",
    "this_grid",
    "this_multi_grid",
    "VALID_TILE_SIZES",
]

# CUDA tile sizes are powers of two up to the warp (Section V-A).
VALID_TILE_SIZES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class KernelEnv:
    """Launch context a kernel-side group is created under.

    ``launch_kind`` is one of ``"traditional"``, ``"cooperative"``,
    ``"multi_device"`` — the capability ladder of the paper's Section III.
    """

    spec: GPUSpec
    blocks_per_sm: int
    threads_per_block: int
    launch_kind: str = "traditional"
    node: Optional[Node] = None
    gpu_ids: Tuple[int, ...] = (0,)

    def __post_init__(self):
        if self.launch_kind not in ("traditional", "cooperative", "multi_device"):
            raise InvalidConfiguration(f"unknown launch kind {self.launch_kind!r}")
        if self.blocks_per_sm < 1 or self.threads_per_block < 1:
            raise InvalidConfiguration("empty launch configuration")
        if self.threads_per_block > self.spec.max_threads_per_block:
            raise InvalidConfiguration(
                f"{self.threads_per_block} threads/block exceeds "
                f"{self.spec.name} limit"
            )
        if self.launch_kind in ("cooperative", "multi_device"):
            limit = max_cooperative_blocks(self.spec, self.threads_per_block)
            if self.blocks_per_sm * self.spec.sm_count > limit:
                raise CooperativeLaunchTooLarge(
                    f"{self.blocks_per_sm} blocks/SM x {self.threads_per_block} "
                    f"threads/block cannot co-reside on {self.spec.name}"
                )
        if self.launch_kind == "multi_device" and self.node is None:
            raise InvalidConfiguration("multi_device launch needs a node")

    # -- constructors ------------------------------------------------------

    @classmethod
    def traditional(cls, spec: GPUSpec, blocks_per_sm: int = 1,
                    threads_per_block: int = 128) -> "KernelEnv":
        return cls(spec, blocks_per_sm, threads_per_block, "traditional")

    @classmethod
    def cooperative(cls, spec: GPUSpec, blocks_per_sm: int = 1,
                    threads_per_block: int = 128) -> "KernelEnv":
        return cls(spec, blocks_per_sm, threads_per_block, "cooperative")

    @classmethod
    def multi_device(cls, node: Node, blocks_per_sm: int = 1,
                     threads_per_block: int = 128,
                     gpu_ids: Optional[Sequence[int]] = None) -> "KernelEnv":
        ids = tuple(gpu_ids) if gpu_ids is not None else tuple(range(node.gpu_count))
        return cls(node.spec.gpu, blocks_per_sm, threads_per_block,
                   "multi_device", node=node, gpu_ids=ids)

    @property
    def warps_per_block(self) -> int:
        return math.ceil(self.threads_per_block / self.spec.warp_size)

    @property
    def warps_per_sm(self) -> int:
        return self.blocks_per_sm * self.warps_per_block

    @property
    def total_blocks(self) -> int:
        return self.blocks_per_sm * self.spec.sm_count


class ThreadBlockTile:
    """``cg::thread_block_tile<Size>`` — a static warp-level partition."""

    def __init__(self, env: KernelEnv, size: int):
        if size not in VALID_TILE_SIZES:
            raise InvalidConfiguration(
                f"tile size must be one of {VALID_TILE_SIZES} "
                "(CUDA 10 tiles only synchronize within a warp, Section III-A)"
            )
        self.env = env
        self.size = size

    def sync(self) -> ins.WarpSync:
        """Instruction performing the tile's barrier (for thread kernels)."""
        return ins.WarpSync(kind="tile", group_size=self.size)

    def shfl_down(self, value: float, delta: int) -> ins.ShuffleDown:
        """Instruction performing ``shfl_down`` within the tile."""
        return ins.ShuffleDown(value=value, delta=delta, kind="tile", width=self.size)

    def sync_latency_cycles(self) -> float:
        """Calibrated latency of one tile sync (Table II row)."""
        return self.env.spec.warp_sync.tile_latency

    @property
    def blocks_all_threads(self) -> bool:
        """Whether this barrier actually holds threads (false on Pascal)."""
        return self.env.spec.warp_sync.blocking


class CoalescedGroup:
    """``cg::coalesced_threads()`` — the currently-active lanes."""

    def __init__(self, env: KernelEnv, size: int = 32):
        if not (1 <= size <= 32):
            raise InvalidConfiguration("coalesced group size must be in [1, 32]")
        self.env = env
        self.size = size

    def sync(self) -> ins.WarpSync:
        return ins.WarpSync(kind="coalesced", group_size=self.size)

    def shfl_down(self, value: float, delta: int) -> ins.ShuffleDown:
        return ins.ShuffleDown(
            value=value, delta=delta, kind="coalesced", width=self.size
        )

    def sync_latency_cycles(self) -> float:
        """Calibrated latency: V100 fast-paths the full-warp case (Table II)."""
        ws = self.env.spec.warp_sync
        if self.size >= self.env.spec.warp_size:
            return ws.coalesced_full_latency
        return ws.coalesced_partial_latency

    @property
    def blocks_all_threads(self) -> bool:
        return self.env.spec.warp_sync.blocking


class ThreadBlockGroup:
    """``cg::this_thread_block()`` — block-level barrier (syncthreads)."""

    def __init__(self, env: KernelEnv):
        self.env = env

    def sync_latency_cycles(self) -> float:
        """One block sync over this launch's warps/block (Table IV model)."""
        return block_sync_latency_cycles(self.env.spec, self.env.warps_per_block)

    def sync_latency_ns(self) -> float:
        return self.env.spec.cycles_to_ns(self.sync_latency_cycles())

    @property
    def size(self) -> int:
        return self.env.threads_per_block


class GridGroup:
    """``cg::this_grid()`` — device-wide barrier.

    Only valid under a cooperative launch; the traditional ``<<<>>>``
    launch cannot create one (Section III-A.3).
    """

    def __init__(self, env: KernelEnv):
        if env.launch_kind not in ("cooperative", "multi_device"):
            raise CudaError(
                "grid group requires cudaLaunchCooperativeKernel "
                "(launched traditionally here)"
            )
        self.env = env

    @property
    def size(self) -> int:
        return self.env.total_blocks * self.env.threads_per_block

    def sync_latency_ns(self) -> float:
        """Closed-form cost model (Fig 5 fit)."""
        return grid_sync_latency_ns(
            self.env.spec, self.env.blocks_per_sm, self.env.threads_per_block
        )

    def sync_simulated(self, n_syncs: int = 1,
                       participating_blocks: Optional[int] = None):
        """Run the DES barrier protocol; deadlocks on partial participation."""
        return engine_sync.GridGroup(
            self.env.spec,
            self.env.blocks_per_sm,
            self.env.threads_per_block,
        ).simulate(n_syncs=n_syncs, participating_blocks=participating_blocks)


class MultiGridGroup:
    """``cg::this_multi_grid()`` — multi-GPU barrier.

    Only valid under ``cudaLaunchCooperativeKernelMultiDevice``.
    """

    def __init__(self, env: KernelEnv):
        if env.launch_kind != "multi_device":
            raise CudaError(
                "multi-grid group requires cudaLaunchCooperativeKernelMultiDevice"
            )
        assert env.node is not None
        self.env = env
        self.node = env.node

    @property
    def num_grids(self) -> int:
        return len(self.env.gpu_ids)

    def sync_latency_ns(self) -> float:
        """Closed-form cost model: local phase + topology-dependent cross phase."""
        local = multigrid_local_latency_ns(
            self.node.spec, self.env.blocks_per_sm, self.env.threads_per_block
        )
        cross = cross_gpu_latency_ns(
            self.node.spec,
            self.node.interconnect,
            self.env.gpu_ids,
            self.env.blocks_per_sm,
        )
        return local + cross

    def sync_simulated(self, n_syncs: int = 1,
                       participating_gpus: Optional[Sequence[int]] = None,
                       full_local_participation: bool = True):
        """Run the DES barrier protocol; deadlocks on any partial participation."""
        return engine_sync.MultiGridGroup(
            self.node,
            self.env.blocks_per_sm,
            self.env.threads_per_block,
            gpu_ids=self.env.gpu_ids,
            full_local_participation=full_local_participation,
        ).simulate(n_syncs=n_syncs, participating_gpus=participating_gpus)


# -- factory functions mirroring the CUDA namespace -------------------------


def tiled_partition(env: KernelEnv, size: int) -> ThreadBlockTile:
    """``cg::tiled_partition<size>(cg::this_thread_block())``."""
    return ThreadBlockTile(env, size)


def coalesced_threads(env: KernelEnv, size: int = 32) -> CoalescedGroup:
    """``cg::coalesced_threads()`` with ``size`` currently-active lanes."""
    return CoalescedGroup(env, size)


def this_thread_block(env: KernelEnv) -> ThreadBlockGroup:
    """``cg::this_thread_block()``."""
    return ThreadBlockGroup(env)


def this_grid(env: KernelEnv) -> GridGroup:
    """``cg::this_grid()`` — raises unless cooperatively launched."""
    return GridGroup(env)


def this_multi_grid(env: KernelEnv) -> MultiGridGroup:
    """``cg::this_multi_grid()`` — raises unless multi-device launched."""
    return MultiGridGroup(env)
