"""The paper's performance model (Section VII-A, Equations 1-5).

Given a "basic" worker set and a "more" worker set (e.g. one thread vs one
warp, or 32 threads vs 1024 threads), with measured throughput and latency
for each, the model predicts the input size at which switching to more
workers pays off despite their synchronization cost:

* Eq 1  — Little's law: concurrency ``C = T * Thr``.
* Eq 2  — the decision inequality between basic and more workers.
* Eq 3  — ``T_more = T_basic + T_sync``.
* Eq 4  — switching point when N is within "more"'s concurrency:
  ``N_m < (T + T_sync) * Thr_basic``.
* Eq 5  — switching point when N exceeds both concurrencies:
  ``N_l < T_sync * Thr_more * Thr_basic / (Thr_more - Thr_basic)``.

All quantities are in the paper's units: cycles for latency, bytes/cycle
for throughput, bytes for sizes.  Feeding the Table III measurements in
reproduces Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.microbench.intra_sm import measure_shared_bandwidth
from repro.sim.arch import GPUSpec
from repro.sim.sm import block_sync_latency_cycles

__all__ = [
    "WorkerConfig",
    "SwitchingPoints",
    "little_concurrency",
    "completion_time_cycles",
    "switching_points",
    "choose_workers",
    "table3_rows",
    "table4_rows",
]


def little_concurrency(latency_cycles: float, throughput: float) -> float:
    """Eq 1: concurrency (bytes in flight) = latency x throughput."""
    if latency_cycles <= 0 or throughput <= 0:
        raise ValueError("latency and throughput must be positive")
    return latency_cycles * throughput


@dataclass(frozen=True)
class WorkerConfig:
    """One worker configuration with its measured proxy characteristics."""

    name: str
    throughput: float       # bytes / cycle
    latency_cycles: float   # dependent-chain latency T

    def __post_init__(self):
        if self.throughput <= 0:
            raise ValueError(f"{self.name}: throughput must be positive")
        if self.latency_cycles <= 0:
            raise ValueError(f"{self.name}: latency must be positive")

    @property
    def concurrency(self) -> float:
        """Eq 1."""
        return little_concurrency(self.latency_cycles, self.throughput)


def completion_time_cycles(
    worker: WorkerConfig, n_bytes: float, sync_cycles: float = 0.0
) -> float:
    """LHS/RHS of Eq 2: ``T (+ T_sync) + max(0, N - C) / Thr``."""
    if n_bytes < 0:
        raise ValueError("n_bytes must be non-negative")
    t = worker.latency_cycles + sync_cycles
    overflow = max(0.0, n_bytes - worker.concurrency)
    return t + overflow / worker.throughput


@dataclass(frozen=True)
class SwitchingPoints:
    """Predicted switch sizes (bytes) between two worker configurations."""

    basic: WorkerConfig
    more: WorkerConfig
    sync_cycles: float
    n_medium: float  # Eq 4
    n_large: float   # Eq 5

    def prefer_basic(self, n_bytes: float) -> bool:
        """Eq 2 evaluated directly: is the basic configuration faster?"""
        return completion_time_cycles(self.basic, n_bytes) < completion_time_cycles(
            self.more, n_bytes, self.sync_cycles
        )


def switching_points(
    basic: WorkerConfig, more: WorkerConfig, sync_cycles: float
) -> SwitchingPoints:
    """Eq 4/5 switching points for a basic-vs-more worker decision."""
    if sync_cycles < 0:
        raise ValueError("sync_cycles must be non-negative")
    if more.throughput <= basic.throughput:
        raise ValueError(
            "'more' workers must have higher throughput than 'basic' "
            f"({more.throughput} <= {basic.throughput})"
        )
    n_medium = (basic.latency_cycles + sync_cycles) * basic.throughput
    n_large = (
        sync_cycles * more.throughput * basic.throughput
        / (more.throughput - basic.throughput)
    )
    return SwitchingPoints(
        basic=basic, more=more, sync_cycles=sync_cycles,
        n_medium=n_medium, n_large=n_large,
    )


def choose_workers(
    basic: WorkerConfig, more: WorkerConfig, sync_cycles: float, n_bytes: float
) -> WorkerConfig:
    """Apply Eq 2 and return the faster configuration for ``n_bytes``.

    This is the decision the reduction case study makes per input size
    (Section VII-B's three scenarios fall out of the same inequality).
    """
    t_basic = completion_time_cycles(basic, n_bytes)
    t_more = completion_time_cycles(more, n_bytes, sync_cycles)
    return basic if t_basic < t_more else more


# ---------------------------------------------------------------------------
# Tables III and IV
# ---------------------------------------------------------------------------

# The paper's two configuration scenarios (Section VII-B):
#   1. one thread  vs one warp   (sync = 5 shuffle steps)
#   2. 32 threads  vs 1024 threads (sync = 5 block syncs of a 32-warp block)
_SCENARIOS = {
    "warp": {"basic_threads": 1, "more_threads": 32},
    "block1024": {"basic_threads": 32, "more_threads": 1024},
}


def _worker(spec: GPUSpec, name: str, n_threads: int) -> WorkerConfig:
    bw = measure_shared_bandwidth(spec, n_threads)
    return WorkerConfig(
        name=name,
        throughput=bw.bandwidth_bytes_per_cycle,
        latency_cycles=bw.chain_latency_cycles,
    )


def table3_rows(spec: GPUSpec) -> Dict[str, Dict[str, float]]:
    """Reproduce Table III: proxy bandwidth / latency / concurrency.

    Bandwidths are *measured* through the shared-memory micro-benchmark,
    not read from calibration.
    """
    rows = {}
    for label, n in (
        ("1_thread", 1), ("1_warp", 32), ("32_threads", 32), ("1024_threads", 1024),
    ):
        w = _worker(spec, label, n)
        rows[label] = {
            "bandwidth": w.throughput,
            "latency": w.latency_cycles,
            "concurrency": w.concurrency,
        }
    return rows


def scenario_sync_cycles(spec: GPUSpec, scenario: str, steps: int = 5) -> float:
    """Total synchronization cost of one reduction pass in a scenario.

    Scenario "warp" synchronizes via the tile shuffle (5 tree steps);
    scenario "block1024" via 5 block syncs of a 32-warp block — exactly
    the footnote of Table IV ("5 times synchronization").
    """
    if scenario == "warp":
        return steps * spec.warp_sync.shuffle_tile_latency
    if scenario == "block1024":
        return steps * block_sync_latency_cycles(spec, warps=32)
    raise ValueError(f"unknown scenario {scenario!r}")


def table4_rows(spec: GPUSpec) -> Dict[str, Dict[str, float]]:
    """Reproduce Table IV: sync latency and switching points per scenario."""
    rows = {}
    for scenario, cfg in _SCENARIOS.items():
        basic = _worker(spec, "basic", cfg["basic_threads"])
        more = _worker(spec, "more", cfg["more_threads"])
        sync = scenario_sync_cycles(spec, scenario)
        pts = switching_points(basic, more, sync)
        rows[scenario] = {
            "sync_latency": sync,
            "n_large": pts.n_large,
            "n_medium": pts.n_medium,
        }
    return rows
