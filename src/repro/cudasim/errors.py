"""CUDA-like error types raised by the simulated runtime."""

from __future__ import annotations

__all__ = [
    "CudaError",
    "InvalidConfiguration",
    "CooperativeLaunchTooLarge",
    "InvalidDevice",
    "PeerAccessError",
]


class CudaError(RuntimeError):
    """Base class for simulated CUDA runtime errors."""


class InvalidConfiguration(CudaError):
    """Launch configuration violates a hardware limit
    (``cudaErrorInvalidConfiguration``)."""


class CooperativeLaunchTooLarge(CudaError):
    """Cooperative grid exceeds the co-residency limit
    (``cudaErrorCooperativeLaunchTooLarge``).

    Real CUDA refuses cooperative launches whose grid cannot be resident
    all at once — the reason the paper's Figures 5/7/8 heat-maps have blank
    cells wherever blocks/SM x threads/block exceeds 2048 threads.
    """


class InvalidDevice(CudaError):
    """Device ordinal out of range (``cudaErrorInvalidDevice``)."""


class PeerAccessError(CudaError):
    """Kernel touched a peer buffer without peer access enabled."""
