"""Memory copies: host<->device and peer-to-peer transfers.

The CPU-side multi-GPU reduction (Fig 14) moves partial results between
GPUs with ``cudaMemcpyPeerAsync``; with GPUDirect peer access the payload
rides NVLink/PCIe directly (Section VII-E).  The copy engine is modeled as
a stream-ordered operation whose duration comes from the interconnect
model (peer) or a calibrated host-link bandwidth (H2D/D2H).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.cudasim.errors import CudaError, PeerAccessError
from repro.cudasim.kernel import LaunchConfig, WorkKernel
from repro.cudasim.runtime import CudaRuntime
from repro.sim.memory import DeviceBuffer

__all__ = ["MemcpyApi", "HOST_LINK_GBPS"]

# PCIe 3.0 x16 effective host-link bandwidth (both platforms in Table VII).
HOST_LINK_GBPS = 12.0
_MEMCPY_API_NS = 300.0
_COPY_CFG = LaunchConfig(1, 32)


class MemcpyApi:
    """Copy operations bound to a runtime (stream-ordered, async)."""

    def __init__(self, rt: CudaRuntime):
        self.rt = rt

    # -- host <-> device ---------------------------------------------------

    def to_device(self, dst: DeviceBuffer, src: np.ndarray) -> Generator:
        """``cudaMemcpyAsync`` H2D on the destination device's stream."""
        if src.nbytes != dst.nbytes:
            raise CudaError(
                f"H2D size mismatch: host {src.nbytes} B vs device {dst.nbytes} B"
            )
        duration = dst.nbytes / HOST_LINK_GBPS
        host_view = src.copy()

        def body(device, config):
            dst.copy_from_host(host_view)

        rec = yield from self._enqueue(dst.device_index, duration, "h2d", body)
        return rec

    def from_device(self, src: DeviceBuffer) -> Generator:
        """``cudaMemcpyAsync`` D2H; yields, returns (record, out_array).

        The returned array is filled when the copy completes — synchronize
        the device before reading it.
        """
        out = np.zeros_like(src.data)
        duration = src.nbytes / HOST_LINK_GBPS

        def body(device, config):
            out[...] = src.data

        rec = yield from self._enqueue(src.device_index, duration, "d2h", body)
        return rec, out

    # -- peer to peer --------------------------------------------------------

    def peer(self, dst: DeviceBuffer, src: DeviceBuffer) -> Generator:
        """``cudaMemcpyPeerAsync`` over the node interconnect.

        Requires peer access between the devices (GPUDirect); raises
        :class:`PeerAccessError` otherwise, as the driver would fall back
        to staging through the host.
        """
        if src.nbytes != dst.nbytes:
            raise CudaError("peer copy size mismatch")
        src_dev = self.rt.device(src.device_index)
        if not src_dev.can_access(dst):
            raise PeerAccessError(
                f"peer access {src.device_index}->{dst.device_index} not enabled"
            )
        duration = self.rt.node.interconnect.peer_transfer_ns(
            src.device_index, dst.device_index, src.nbytes
        )

        def body(device, config):
            dst.data[...] = src.data

        rec = yield from self._enqueue(src.device_index, duration, "p2p", body)
        return rec

    # -- internals -------------------------------------------------------------

    def _enqueue(self, device: int, duration_ns: float, kind: str, body) -> Generator:
        from repro.sim.engine import Timeout

        yield Timeout(_MEMCPY_API_NS)
        calib = self.rt.device(device).spec.launch_calib("traditional")
        kernel = WorkKernel(duration_ns, name=f"memcpy-{kind}", body=body)
        rec = self.rt.stream(device).enqueue(
            kernel, _COPY_CFG, calib, enqueue_done_ns=self.rt.engine.now
        )
        return rec
