"""Host-observable kernel abstraction.

At the runtime level a kernel is characterized by what the host can see:
its execution duration and its memory effects.  (Intra-kernel behaviour —
barriers, shared memory, timers — is simulated by the executors in
:mod:`repro.sim`; the reduction case study composes those results into the
durations used here.)

``duration_ns(device, config)`` returns the kernel's *execution latency*,
excluding all launch machinery — the paper's "Kernel Execution Latency"
term (Section IV).  ``on_complete`` runs the functional body when the
kernel retires, so data effects land in device buffers at the simulated
completion time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.cudasim.errors import InvalidConfiguration
from repro.sim.arch import GPUSpec
from repro.sim.device import Device

__all__ = ["LaunchConfig", "Kernel", "NullKernel", "SleepKernel", "WorkKernel"]


@dataclass(frozen=True)
class LaunchConfig:
    """Grid/block geometry of one launch."""

    grid_blocks: int
    threads_per_block: int
    shared_mem_per_block: int = 0

    def __post_init__(self):
        if self.grid_blocks < 1:
            raise InvalidConfiguration("grid must have at least one block")
        if self.threads_per_block < 1:
            raise InvalidConfiguration("block must have at least one thread")
        if self.shared_mem_per_block < 0:
            raise InvalidConfiguration("negative shared memory request")

    def validate(self, spec: GPUSpec) -> None:
        """Raise if the block shape violates ``spec``'s hard limits."""
        if self.threads_per_block > spec.max_threads_per_block:
            raise InvalidConfiguration(
                f"{self.threads_per_block} threads/block exceeds "
                f"{spec.name} limit {spec.max_threads_per_block}"
            )
        if self.shared_mem_per_block > spec.shared_mem_per_block:
            raise InvalidConfiguration(
                f"{self.shared_mem_per_block} B shared/block exceeds "
                f"{spec.name} limit {spec.shared_mem_per_block}"
            )

    @property
    def total_threads(self) -> int:
        return self.grid_blocks * self.threads_per_block

    @property
    def warps_per_block(self) -> int:
        return math.ceil(self.threads_per_block / 32)


class Kernel:
    """Base kernel: subclass or pass ``duration_fn`` / ``body``.

    Parameters
    ----------
    name:
        Shown in traces and error messages.
    duration_fn:
        ``(device, config) -> ns`` execution latency model.
    body:
        ``(device, config) -> None`` functional effect applied at
        completion time.
    """

    def __init__(
        self,
        name: str = "kernel",
        duration_fn: Optional[Callable[[Device, LaunchConfig], float]] = None,
        body: Optional[Callable[[Device, LaunchConfig], None]] = None,
    ):
        self.name = name
        self._duration_fn = duration_fn
        self._body = body

    def duration_ns(self, device: Device, config: LaunchConfig) -> float:
        """Execution latency on ``device`` (excluding launch overheads)."""
        if self._duration_fn is None:
            raise NotImplementedError(
                f"kernel {self.name!r} has no duration model"
            )
        d = self._duration_fn(device, config)
        if d < 0:
            raise InvalidConfiguration(f"kernel {self.name!r} negative duration")
        return d

    def on_complete(self, device: Device, config: LaunchConfig) -> None:
        """Apply the kernel's memory effects (runs at completion time)."""
        if self._body is not None:
            self._body(device, config)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Kernel({self.name!r})"


class NullKernel(Kernel):
    """An empty kernel: execution latency is the bare pipeline cost.

    This is the kernel behind Table I's "Null Kernel ... Kernel Total
    Latency" column; its execution component is the launch-type's
    ``exec_null_ns`` calibration.
    """

    def __init__(self, launch_type: str = "traditional"):
        super().__init__(name=f"null[{launch_type}]")
        self.launch_type = launch_type

    def duration_ns(self, device: Device, config: LaunchConfig) -> float:
        return device.spec.launch_calib(self.launch_type).exec_null_ns


class SleepKernel(Kernel):
    """``repeat_n(nanosleep(unit))`` — the paper's Fig 3 probe kernel.

    Requires the Volta ``nanosleep`` instruction; constructing a duration
    for a Pascal device raises, mirroring the paper's V100-only use of the
    fusion method (Section IX-B).
    """

    def __init__(self, units: int = 10, unit_ns: float = 1000.0,
                 launch_type: str = "traditional"):
        if units < 0 or unit_ns < 0:
            raise InvalidConfiguration("sleep units must be non-negative")
        super().__init__(name=f"sleep[{units}x{unit_ns:.0f}ns]")
        self.units = units
        self.unit_ns = unit_ns
        self.launch_type = launch_type

    def duration_ns(self, device: Device, config: LaunchConfig) -> float:
        if not device.spec.has_nanosleep:
            from repro.sim.exec_thread import UnsupportedInstruction

            raise UnsupportedInstruction(
                f"nanosleep unavailable on {device.spec.name} "
                "(Volta-only; Section IX-B restricts the fusion method to V100)"
            )
        base = device.spec.launch_calib(self.launch_type).exec_null_ns
        return base + self.units * self.unit_ns


class WorkKernel(Kernel):
    """Kernel with a fixed, precomputed execution latency."""

    def __init__(self, duration_ns: float, name: str = "work",
                 body: Optional[Callable[[Device, LaunchConfig], None]] = None):
        if duration_ns < 0:
            raise InvalidConfiguration("duration must be non-negative")
        super().__init__(name=name, body=body)
        self._fixed_ns = float(duration_ns)

    def duration_ns(self, device: Device, config: LaunchConfig) -> float:
        return self._fixed_ns
