"""CUDA stream model: the ordered launch/dispatch pipeline.

The paper's implicit-barrier study (Section IV) is entirely a property of
this pipeline.  Model (constants from the launch-type's
:class:`~repro.sim.arch.LaunchCalib`)::

    enqueue_done = host API return time (api_ns spent on the host thread)
    start_k = max(enqueue_done_k + dispatch,
                  end_{k-1} + gap + max(0, dispatch - exec_{k-1}))
    end_k   = start_k + exec_k

The ``max(0, dispatch - exec_{k-1})`` term is the *unsaturated pipeline*
effect the paper reports: when kernels are shorter than the dispatch
pipeline depth, part of the dispatch cannot be hidden behind execution, so
back-to-back null kernels cost ``gap + dispatch`` each (Table I "kernel
total latency"), while kernels longer than ~5 µs cost only ``gap`` extra
(Table I "launch overhead", recovered by the kernel-fusion method).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cudasim.kernel import Kernel, LaunchConfig
from repro.sim.arch import LaunchCalib
from repro.sim.device import Device
from repro.sim.engine import Engine, Signal

__all__ = ["Stream", "LaunchRecord"]


@dataclass
class LaunchRecord:
    """Bookkeeping for one launched kernel (useful for tests/traces)."""

    kernel_name: str
    enqueue_done_ns: float
    start_ns: float
    end_ns: float
    exec_ns: float
    completion: Signal


class Stream:
    """One in-order command queue attached to a device."""

    def __init__(self, engine: Engine, device: Device, index: int = 0):
        self.engine = engine
        self.device = device
        self.index = index
        self._pipeline_end_ns: Optional[float] = None
        self._last_exec_ns: Optional[float] = None
        self.records: List[LaunchRecord] = []

    # -- pipeline queries --------------------------------------------------

    @property
    def pipeline_end_ns(self) -> float:
        """Completion time of the last enqueued kernel (or now if idle)."""
        return self._pipeline_end_ns if self._pipeline_end_ns is not None else self.engine.now

    def earliest_start(
        self, enqueue_done_ns: float, calib: LaunchCalib, n_gpus: int = 1
    ) -> float:
        """Earliest start time for a kernel enqueued at ``enqueue_done_ns``."""
        dispatch = calib.dispatch_for(n_gpus)
        start = enqueue_done_ns + dispatch
        if self._pipeline_end_ns is not None:
            stall = max(0.0, dispatch - (self._last_exec_ns or 0.0))
            start = max(start, self._pipeline_end_ns + calib.gap_for(n_gpus) + stall)
        return start

    # -- enqueue -----------------------------------------------------------

    def enqueue(
        self,
        kernel: Kernel,
        config: LaunchConfig,
        calib: LaunchCalib,
        enqueue_done_ns: float,
        n_gpus: int = 1,
        start_override_ns: Optional[float] = None,
    ) -> LaunchRecord:
        """Commit a kernel to the pipeline; returns its launch record.

        ``start_override_ns`` implements the multi-device launch's
        synchronized start (all participating devices begin together, no
        earlier than any device's own constraint).
        """
        exec_ns = kernel.duration_ns(self.device, config)
        start = self.earliest_start(enqueue_done_ns, calib, n_gpus)
        if start_override_ns is not None:
            if start_override_ns < start - 1e-9:
                raise ValueError(
                    "start_override must not precede the stream's own constraint"
                )
            start = start_override_ns
        end = start + exec_ns
        completion = Signal(self.engine, name=f"{kernel.name}@s{self.index}.done")
        # Functional side effects run as a fire callback, so the deferred
        # completion is a plain (signal, value) record on the engine.
        completion.callbacks.append(
            lambda _v, kernel=kernel, config=config: kernel.on_complete(
                self.device, config
            )
        )
        self.engine.schedule_fire(end - self.engine.now, completion)

        self._pipeline_end_ns = end
        self._last_exec_ns = exec_ns
        rec = LaunchRecord(
            kernel_name=kernel.name,
            enqueue_done_ns=enqueue_done_ns,
            start_ns=start,
            end_ns=end,
            exec_ns=exec_ns,
            completion=completion,
        )
        self.records.append(rec)
        return rec

    @property
    def pending(self) -> List[Signal]:
        """Completion signals not yet fired."""
        return [r.completion for r in self.records if not r.completion.fired]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Stream(dev={self.device.index}, idx={self.index}, "
            f"launches={len(self.records)})"
        )
