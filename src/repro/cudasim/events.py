"""CUDA events: fine-grained stream timing without host round-trips.

``cudaEventRecord`` / ``cudaEventElapsedTime`` are how practitioners time
kernels when the host-clock protocol of Section IX is too coarse.  The
simulated event records the stream's pipeline position when recorded and
resolves to the completion time of the preceding work, exactly like the
hardware event queue.

Typical host code::

    ev0, ev1 = rt_events.create(), rt_events.create()
    yield from rt_events.record(ev0, device=0)
    yield from rt.launch(kernel, cfg)
    yield from rt_events.record(ev1, device=0)
    yield from rt_events.synchronize(ev1)
    elapsed_ms = rt_events.elapsed_ms(ev0, ev1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.cudasim.errors import CudaError
from repro.cudasim.runtime import CudaRuntime
from repro.sim.engine import Signal, Timeout

__all__ = ["CudaEvent", "EventApi"]

# Host-side cost of the record call itself.
_RECORD_API_NS = 150.0


@dataclass
class CudaEvent:
    """One CUDA event: unrecorded until ``record`` places it in a stream."""

    index: int
    recorded: bool = False
    complete_ns: Optional[float] = None
    _signal: Optional[Signal] = None

    @property
    def query(self) -> bool:
        """``cudaEventQuery``: has the event completed (non-blocking)?"""
        return self._signal is not None and self._signal.fired


class EventApi:
    """Event operations bound to a runtime."""

    def __init__(self, rt: CudaRuntime):
        self.rt = rt
        self._count = 0

    def create(self) -> CudaEvent:
        """``cudaEventCreate``."""
        self._count += 1
        return CudaEvent(index=self._count)

    def record(self, event: CudaEvent, device: int = 0) -> Generator:
        """``cudaEventRecord``: complete when prior stream work completes.

        Recording is in-order: the event resolves at the completion time of
        everything already enqueued on the stream (or immediately if idle).
        """
        yield Timeout(_RECORD_API_NS)
        stream = self.rt.stream(device)
        pending = stream.pending
        sig = Signal(self.rt.engine, name=f"event{event.index}")
        event._signal = sig
        event.recorded = True
        when = stream.pipeline_end_ns
        sig.callbacks.append(lambda _v: setattr(event, "complete_ns", when))
        if pending:
            # Resolve when the last pending kernel retires.
            pending[-1].callbacks.append(lambda _v: sig.fire(when))
        else:
            self.rt.engine.schedule_fire(
                max(0.0, when - self.rt.engine.now), sig, when
            )
        return event

    def synchronize(self, event: CudaEvent) -> Generator:
        """``cudaEventSynchronize``: block the host thread until complete."""
        if not event.recorded or event._signal is None:
            raise CudaError(f"event {event.index} synchronized before record")
        yield event._signal

    def elapsed_ms(self, start: CudaEvent, end: CudaEvent) -> float:
        """``cudaEventElapsedTime`` (milliseconds, as in CUDA)."""
        if start.complete_ns is None or end.complete_ns is None:
            raise CudaError("elapsed_ms requires both events completed")
        return (end.complete_ns - start.complete_ns) / 1e6
