"""The simulated CUDA runtime: launch functions and synchronization APIs.

Host code is written as generator processes over the shared engine, so the
examples read like the paper's host listings (Figs 3/6/14)::

    rt = CudaRuntime.single_gpu(V100)

    def main():
        yield from rt.launch(NullKernel(), LaunchConfig(80, 128))
        yield from rt.device_synchronize()
        t = rt.host_clock.read()
        ...

    rt.run_host(main())

Three launch functions mirror CUDA's:

* :meth:`CudaRuntime.launch` — traditional ``<<<>>>``,
* :meth:`CudaRuntime.launch_cooperative` —
  ``cudaLaunchCooperativeKernel`` (validates grid co-residency),
* :meth:`CudaRuntime.launch_cooperative_multi_device` —
  ``cudaLaunchCooperativeKernelMultiDevice`` (synchronized start across
  devices; acts as an implicit barrier over all involved streams [17]).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from repro.cudasim.errors import CooperativeLaunchTooLarge, InvalidDevice
from repro.cudasim.kernel import Kernel, LaunchConfig
from repro.cudasim.stream import Stream
from repro.sim.arch import GPUSpec, NodeSpec
from repro.sim.clock import HostClock
from repro.sim.device import Device
from repro.sim.engine import AllOf, Engine, Timeout
from repro.sim.node import Node
from repro.sim.occupancy import max_cooperative_blocks

__all__ = ["CudaRuntime"]


class CudaRuntime:
    """Host-side runtime over one node (one or more devices)."""

    def __init__(self, node: Node, engine: Optional[Engine] = None,
                 host_jitter_ns: Optional[float] = None, seed: int = 0):
        self.node = node
        self.engine = engine or Engine()
        jitter = (
            host_jitter_ns
            if host_jitter_ns is not None
            else node.spec.host_clock_jitter_ns
        )
        self.host_clock = HostClock(self.engine, jitter_ns=jitter, seed=seed)
        self.streams: List[Stream] = [
            Stream(self.engine, dev, index=i) for i, dev in enumerate(node.devices)
        ]

    # -- constructors -------------------------------------------------------

    @classmethod
    def single_gpu(cls, spec: GPUSpec, **kw) -> "CudaRuntime":
        """Runtime over a single GPU of the given architecture."""
        node_spec = NodeSpec(
            name=f"single-{spec.name}",
            gpu=spec,
            gpu_count=1,
            interconnect="pcie",
            cross_gpu=_NULL_CROSS,
        )
        return cls(Node(node_spec, gpu_count=1), **kw)

    @classmethod
    def for_node(
        cls, node_spec: NodeSpec, gpu_count: Optional[int] = None, **kw
    ) -> "CudaRuntime":
        """Runtime over a multi-GPU node (DGX-1, dual-P100, ...)."""
        return cls(Node(node_spec, gpu_count=gpu_count), **kw)

    # -- device access ------------------------------------------------------

    @property
    def gpu_count(self) -> int:
        return self.node.gpu_count

    def device(self, index: int = 0) -> Device:
        if not (0 <= index < self.gpu_count):
            raise InvalidDevice(f"device {index} out of range [0,{self.gpu_count})")
        return self.node.devices[index]

    def stream(self, device: int = 0) -> Stream:
        self.device(device)
        return self.streams[device]

    # -- launch functions -----------------------------------------------------

    def launch(
        self,
        kernel: Kernel,
        config: LaunchConfig,
        device: int = 0,
        launch_type: str = "traditional",
    ) -> Generator:
        """Traditional ``<<<>>>`` launch.  Yields; returns a LaunchRecord."""
        dev = self.device(device)
        config.validate(dev.spec)
        calib = dev.spec.launch_calib(launch_type)
        yield Timeout(calib.api_ns)  # host-side API cost
        rec = self.stream(device).enqueue(
            kernel, config, calib, enqueue_done_ns=self.engine.now
        )
        return rec

    def launch_cooperative(
        self,
        kernel: Kernel,
        config: LaunchConfig,
        device: int = 0,
    ) -> Generator:
        """``cudaLaunchCooperativeKernel``: validates grid co-residency."""
        dev = self.device(device)
        config.validate(dev.spec)
        limit = max_cooperative_blocks(
            dev.spec, config.threads_per_block, config.shared_mem_per_block
        )
        if config.grid_blocks > limit:
            raise CooperativeLaunchTooLarge(
                f"grid of {config.grid_blocks} blocks x "
                f"{config.threads_per_block} threads cannot co-reside on "
                f"{dev.spec.name} (limit {limit} blocks)"
            )
        calib = dev.spec.launch_calib("cooperative")
        yield Timeout(calib.api_ns)
        rec = self.stream(device).enqueue(
            kernel, config, calib, enqueue_done_ns=self.engine.now
        )
        return rec

    def launch_cooperative_multi_device(
        self,
        kernel: Kernel,
        config: LaunchConfig,
        devices: Optional[Sequence[int]] = None,
    ) -> Generator:
        """``cudaLaunchCooperativeKernelMultiDevice``.

        With the default flags the kernels start together, after *all*
        previous work in every involved stream — the implicit-barrier
        behaviour Section VI-A evaluates.  Yields; returns the list of
        launch records (one per device).
        """
        ids = list(devices) if devices is not None else list(range(self.gpu_count))
        if not ids:
            raise InvalidDevice("multi-device launch needs at least one device")
        n = len(ids)
        for d in ids:
            dev = self.device(d)
            config.validate(dev.spec)
            limit = max_cooperative_blocks(
                dev.spec, config.threads_per_block, config.shared_mem_per_block
            )
            if config.grid_blocks > limit:
                raise CooperativeLaunchTooLarge(
                    f"grid of {config.grid_blocks} blocks cannot co-reside "
                    f"on device {d} ({dev.spec.name}, limit {limit})"
                )
        calib = self.device(ids[0]).spec.launch_calib("multi_device")
        yield Timeout(calib.api_ns)
        enqueue_done = self.engine.now
        # Synchronized start: no device starts before every device's own
        # pipeline constraint allows it.
        common_start = max(
            self.stream(d).earliest_start(enqueue_done, calib, n_gpus=n) for d in ids
        )
        records = [
            self.stream(d).enqueue(
                kernel,
                config,
                calib,
                enqueue_done_ns=enqueue_done,
                n_gpus=n,
                start_override_ns=common_start,
            )
            for d in ids
        ]
        return records

    # -- cooperative groups (repro.sync) ------------------------------------

    def this_grid(self, blocks_per_sm: int, threads_per_block: int,
                  device: int = 0, strategy=None, strategy_knobs=None):
        """``cg::this_grid()``: device-wide group bound to this runtime.

        Performs the co-residency validation a cooperative launch would;
        see :mod:`repro.sync` for the scope/strategy API.  ``strategy``
        accepts a kind string (``"cooperative"``/``"atomic"``/``"cpu"``)
        or a strategy instance; ``strategy_knobs`` tunes a kind string.
        """
        from repro.sync import this_grid

        return this_grid(self, blocks_per_sm, threads_per_block,
                         device=device, strategy=strategy,
                         strategy_knobs=strategy_knobs)

    def this_multi_grid(self, blocks_per_sm: int, threads_per_block: int,
                        devices: Optional[Sequence[int]] = None, strategy=None,
                        strategy_knobs=None):
        """``cg::this_multi_grid()``: multi-device group over this node."""
        from repro.sync import this_multi_grid

        return this_multi_grid(self, blocks_per_sm, threads_per_block,
                               gpu_ids=devices, strategy=strategy,
                               strategy_knobs=strategy_knobs)

    # -- synchronization -------------------------------------------------------

    def device_synchronize(self, device: int = 0,
                           launch_type: str = "traditional") -> Generator:
        """``cudaDeviceSynchronize``: block until the device drains."""
        dev = self.device(device)
        pending = self.stream(device).pending
        if pending:
            # The stream is in-order, so the last pending completion fires
            # no earlier than every other: wait on it alone rather than
            # fanning an AllOf across the whole queue.
            yield pending[-1]
        yield Timeout(dev.spec.launch_calib(launch_type).sync_return_ns)

    def synchronize_all(self) -> Generator:
        """Synchronize every device (used after multi-device launches)."""
        pending = [s for d in range(self.gpu_count) for s in self.stream(d).pending]
        if pending:
            yield AllOf(pending)
        spec = self.device(0).spec
        yield Timeout(spec.launch_calib("traditional").sync_return_ns)

    # -- driving -----------------------------------------------------------------

    def run_host(self, gen: Generator, name: str = "host"):
        """Run a host program (generator) to completion; returns its value."""
        return self.engine.run_process(gen, name=name)

    def spawn_host(self, gen: Generator, name: str = "host"):
        """Start a host thread without blocking (for OpenMP-style teams)."""
        return self.engine.process(gen, name=name)


# A null cross-GPU calibration for single-GPU runtimes (never exercised).
from repro.sim.arch import CrossGpuCalib as _CrossGpuCalib  # noqa: E402

_NULL_CROSS = _CrossGpuCalib(
    base_ns=0.0,
    per_gpu_ns=0.0,
    hop2_penalty_ns=0.0,
    per_2hop_gpu_ns=0.0,
    release_coef_ns=0.0,
)
