"""Instruction vocabulary for thread-precise kernels.

Kernels for the thread-level executor are generator functions over a
:class:`~repro.sim.exec_thread.ThreadCtx`, yielding instruction objects from
this module.  Each instruction corresponds to a PTX/SASS-level operation the
paper's micro-benchmarks exercise; latencies come from the architecture's
:class:`~repro.sim.arch.InstructionCalib` and
:class:`~repro.sim.arch.WarpSyncCalib` blocks.

Instructions that produce a value deliver it as the result of the ``yield``::

    t0 = yield ReadClock()
    v = yield ShuffleDown(my_val, delta=16)
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Instruction",
    "Compute",
    "FAdd",
    "DAdd",
    "ChainStep",
    "ReadClock",
    "Nanosleep",
    "Diverge",
    "SharedLoad",
    "SharedStore",
    "WarpSync",
    "ShuffleDown",
    "MethodOverhead",
]


class Instruction:
    """Marker base class for all thread-level instructions."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Instruction):
    """Occupy the thread for a fixed number of cycles."""

    cycles: float

    def __post_init__(self):
        if self.cycles < 0:
            raise ValueError("Compute cycles must be non-negative")


@dataclass(frozen=True)
class FAdd(Instruction):
    """``count`` dependent single-precision adds (latency-chained)."""

    count: int = 1


@dataclass(frozen=True)
class DAdd(Instruction):
    """``count`` dependent double-precision adds (latency-chained)."""

    count: int = 1


@dataclass(frozen=True)
class ChainStep(Instruction):
    """One iteration of the shared-memory load+add dependent chain.

    This is the inner loop of the paper's bandwidth proxy (Fig 10); its
    latency is the Table III "latency" column (13.0 / 18.5 cycles).
    """

    count: int = 1


@dataclass(frozen=True)
class ReadClock(Instruction):
    """Read the SM cycle counter (CUDA ``clock()``).  Yields the value."""


@dataclass(frozen=True)
class Nanosleep(Instruction):
    """Volta ``nanosleep.u32``; raises on Pascal (Section IX-B)."""

    ns: float

    def __post_init__(self):
        if self.ns < 0:
            raise ValueError("Nanosleep duration must be non-negative")


@dataclass(frozen=True)
class Diverge(Instruction):
    """Enter a serialized divergent branch arm.

    Models the cost of one arm of a 32-way ``if tid == k`` ladder (the
    Fig 17 protocol): arms are issued one at a time per warp, each paying
    the architecture's divergent-arm overhead.  This produces the start-
    timer staircase of Fig 18.
    """

    arms: int = 1


@dataclass(frozen=True)
class SharedLoad(Instruction):
    """Load from block shared memory.  Yields the value."""

    slot: int
    volatile: bool = False


@dataclass(frozen=True)
class SharedStore(Instruction):
    """Store to block shared memory."""

    slot: int
    value: float
    volatile: bool = False


@dataclass(frozen=True)
class WarpSync(Instruction):
    """Warp-level synchronization.

    ``kind`` selects the CUDA construct:

    * ``"tile"``       — ``tiled_partition<N>(...).sync()``
    * ``"coalesced"``  — ``coalesced_threads().sync()``

    ``mask`` is the participating-lane bitmask (default: full warp).  On
    Volta the instruction blocks until every masked thread arrives; on
    Pascal it degrades to a memory fence that does not block (Section
    VIII-A) — the executor implements both behaviours.
    """

    kind: str = "tile"
    mask: int = 0xFFFFFFFF
    group_size: int = 32

    def __post_init__(self):
        if self.kind not in ("tile", "coalesced"):
            raise ValueError(f"unknown warp sync kind {self.kind!r}")
        if not (1 <= self.group_size <= 32):
            raise ValueError("group_size must be in [1, 32]")


@dataclass(frozen=True)
class BlockSync(Instruction):
    """``__syncthreads()`` / ``this_thread_block().sync()``.

    Only meaningful under a :class:`~repro.sim.exec_block.BlockExecutor`
    (cross-warp rendezvous + shared-memory commit); a lone warp executor
    treats it as a barrier over its own threads.
    """


@dataclass(frozen=True)
class ShuffleDown(Instruction):
    """``shfl_down_sync``: yields the ``value`` posted by lane ``tid+delta``.

    ``kind`` mirrors :class:`WarpSync` — the paper measures the shuffle both
    through a tile group and through a coalesced group, with very different
    costs (Table II / Table V).  Lanes whose source is out of range receive
    their own value back (CUDA semantics).
    """

    value: float
    delta: int
    kind: str = "tile"
    width: int = 32

    def __post_init__(self):
        if self.kind not in ("tile", "coalesced"):
            raise ValueError(f"unknown shuffle kind {self.kind!r}")
        if self.delta < 0:
            raise ValueError("delta must be non-negative")


@dataclass(frozen=True)
class MethodOverhead(Instruction):
    """Calibrated per-method issue overhead (Table V residuals).

    Represents the extra SASS instructions a particular reduction variant
    emits per step (group materialization, predicate setup, volatile
    load/store path).  Kept explicit so the cost composition in
    ``reduction/warp.py`` is auditable.
    """

    cycles: float

    def __post_init__(self):
        if self.cycles < -50:
            raise ValueError("implausible negative method overhead")
