"""CUDA-like runtime substrate: kernels, streams, launch functions."""

from repro.cudasim.errors import (
    CooperativeLaunchTooLarge,
    CudaError,
    InvalidConfiguration,
    InvalidDevice,
    PeerAccessError,
)
from repro.cudasim.events import CudaEvent, EventApi
from repro.cudasim.kernel import Kernel, LaunchConfig, NullKernel, SleepKernel, WorkKernel
from repro.cudasim.memcpy import MemcpyApi
from repro.cudasim.runtime import CudaRuntime
from repro.cudasim.stream import LaunchRecord, Stream

__all__ = [
    "CudaEvent",
    "EventApi",
    "MemcpyApi",
    "CudaError",
    "InvalidConfiguration",
    "CooperativeLaunchTooLarge",
    "InvalidDevice",
    "PeerAccessError",
    "Kernel",
    "LaunchConfig",
    "NullKernel",
    "SleepKernel",
    "WorkKernel",
    "CudaRuntime",
    "Stream",
    "LaunchRecord",
]
