"""Application case studies built on the library.

Currently the iterative stencil of the paper's Section VII discussion —
the workload where a persistent cooperative kernel's data reuse pays for
its grid syncs.
"""

from repro.apps.stencil import (
    StencilResult,
    stencil_multi_kernel,
    stencil_persistent,
    stencil_reference,
    stencil_strategy_crossover,
)

__all__ = [
    "StencilResult",
    "stencil_reference",
    "stencil_multi_kernel",
    "stencil_persistent",
    "stencil_strategy_crossover",
]
