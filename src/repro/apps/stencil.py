"""Iterative stencil: launch-per-step vs persistent kernel with grid sync.

The paper's Section VII points out a benefit of grid synchronization that
the reduction case study cannot show: *replacing several kernel invocations
with a single persistent kernel that includes the time loop inside the
kernel* — e.g. iterative stencils — both avoids per-step launch machinery
and "eliminates the possibility of data reuse in shared memory and
registers" being lost.  This module makes that trade-off measurable.

Two strategies for ``steps`` Jacobi iterations on an ``n``-point 1-D grid:

* **multi-kernel** (one launch per step): every step streams the full grid
  from HBM and back, and pays the stream's marginal kernel cost — the
  launch *gap* when the step outlasts the dispatch pipeline, or the full
  Table I null-kernel latency when it does not.
* **persistent** (one cooperative launch): every step pays one
  ``grid.sync()``; when a block's working set fits shared memory, steps
  after the first run out of shared memory instead of HBM (the data-reuse
  win).

Both strategies compute the *actual* Jacobi result with numpy and agree
exactly; only the timing model differs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.cudasim.kernel import LaunchConfig, NullKernel, WorkKernel
from repro.cudasim.runtime import CudaRuntime
from repro.sim.arch import GPUSpec
from repro.sim.device import grid_sync_latency_ns
from repro.sim.occupancy import blocks_per_sm as occ_blocks_per_sm

__all__ = [
    "StencilResult",
    "stencil_reference",
    "stencil_multi_kernel",
    "stencil_persistent",
    "stencil_strategy_crossover",
]

_BYTES_PER_POINT = 8  # float64, one read + one write stream per step


def stencil_reference(initial: np.ndarray, steps: int) -> np.ndarray:
    """Ground-truth Jacobi smoothing: u[i] <- (u[i-1] + u[i+1]) / 2.

    Fixed (Dirichlet) boundaries; ``steps`` whole-grid iterations.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    u = np.asarray(initial, dtype=np.float64).copy()
    if u.ndim != 1 or len(u) < 3:
        raise ValueError("stencil needs a 1-D grid of at least 3 points")
    for _ in range(steps):
        nxt = u.copy()
        nxt[1:-1] = 0.5 * (u[:-2] + u[2:])
        u = nxt
    return u


@dataclass(frozen=True)
class StencilResult:
    """Outcome of one measured stencil run."""

    strategy: str
    n_points: int
    steps: int
    values: np.ndarray
    total_ns: float
    per_step_overhead_ns: float
    reused_shared_memory: bool = False

    @property
    def per_step_us(self) -> float:
        return self.total_ns / self.steps / 1e3 if self.steps else 0.0

    def matches(self, reference: np.ndarray) -> bool:
        return bool(np.allclose(self.values, reference, rtol=1e-12, atol=1e-12))


def _step_stream_ns(spec: GPUSpec, n_points: int) -> float:
    """HBM time for one step (read + write the full grid)."""
    nbytes = 2 * n_points * _BYTES_PER_POINT
    return nbytes / spec.hbm.effective_gbps("implicit")


def stencil_multi_kernel(
    spec: GPUSpec,
    initial: np.ndarray,
    steps: int,
    threads_per_block: int = 256,
    seed: int = 0,
) -> StencilResult:
    """One traditional launch per time step (the pre-CUDA-9 pattern)."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    u = np.asarray(initial, dtype=np.float64)
    n = len(u)
    rt = CudaRuntime.single_gpu(spec, seed=seed)
    eps = spec.launch_calib("traditional").exec_null_ns
    step_ns = eps + _step_stream_ns(spec, n)
    blocks = max(1, math.ceil(n / threads_per_block))
    cfg = LaunchConfig(blocks, threads_per_block)

    state = {"u": u.copy()}

    def body(device, config):
        cur = state["u"]
        nxt = cur.copy()
        nxt[1:-1] = 0.5 * (cur[:-2] + cur[2:])
        state["u"] = nxt

    def host() -> Generator:
        yield from rt.launch(NullKernel(), LaunchConfig(1, 32))  # warm-up
        yield from rt.device_synchronize()
        t0 = rt.host_clock.read_exact()
        for _ in range(steps):
            yield from rt.launch(WorkKernel(step_ns, name="jacobi", body=body), cfg)
        yield from rt.device_synchronize()
        return rt.host_clock.read_exact() - t0

    total = rt.run_host(host())
    per_step_overhead = total / steps - _step_stream_ns(spec, n)
    return StencilResult(
        strategy="multi_kernel",
        n_points=n,
        steps=steps,
        values=state["u"],
        total_ns=total,
        per_step_overhead_ns=per_step_overhead,
    )


def stencil_persistent(
    spec: GPUSpec,
    initial: np.ndarray,
    steps: int,
    threads_per_block: int = 256,
    blocks_per_sm: int = 2,
    seed: int = 0,
) -> StencilResult:
    """One cooperative launch; the time loop lives inside the kernel.

    Each step costs one ``grid.sync()``.  When the per-block working set
    (points/block plus halo) fits shared memory, steps after the first hit
    shared memory instead of HBM — the reuse factor is taken from the
    shared-vs-HBM bandwidth ratio of the architecture's calibration.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    occ = occ_blocks_per_sm(spec, threads_per_block)
    if blocks_per_sm > occ.blocks_per_sm:
        raise ValueError(
            f"persistent stencil config {blocks_per_sm}x{threads_per_block} "
            f"not co-resident on {spec.name}"
        )
    u = np.asarray(initial, dtype=np.float64)
    n = len(u)
    rt = CudaRuntime.single_gpu(spec, seed=seed)

    n_blocks = blocks_per_sm * spec.sm_count
    points_per_block = math.ceil(n / n_blocks)
    working_set = (points_per_block + 2) * _BYTES_PER_POINT
    reuse = working_set <= spec.shared_mem_per_block

    hbm_step = _step_stream_ns(spec, n)
    if reuse:
        # Shared-memory step: the whole device streams through the SM
        # ports; only halo exchange still crosses L2 (folded into the
        # grid sync it already requires).
        sm_gbps = (
            spec.shared_mem.sm_cap_bytes_per_cycle / spec.cycle_ns * spec.sm_count
        )
        smem_step = 2 * n * _BYTES_PER_POINT / sm_gbps
        step_compute = smem_step
    else:
        step_compute = hbm_step

    sync_ns = grid_sync_latency_ns(spec, blocks_per_sm, threads_per_block)
    eps = spec.launch_calib("cooperative").exec_null_ns
    # First step always loads from HBM; subsequent steps reuse if possible.
    duration = eps + hbm_step + (steps - 1) * step_compute + steps * sync_ns

    state = {"u": u.copy()}

    def body(device, config):
        cur = state["u"]
        for _ in range(steps):
            nxt = cur.copy()
            nxt[1:-1] = 0.5 * (cur[:-2] + cur[2:])
            cur = nxt
        state["u"] = cur

    cfg = LaunchConfig(n_blocks, threads_per_block)
    kernel = WorkKernel(duration, name="jacobi-persistent", body=body)

    def host() -> Generator:
        yield from rt.launch(NullKernel(), LaunchConfig(1, 32))  # warm-up
        yield from rt.device_synchronize()
        t0 = rt.host_clock.read_exact()
        yield from rt.launch_cooperative(kernel, cfg)
        yield from rt.device_synchronize(launch_type="cooperative")
        return rt.host_clock.read_exact() - t0

    total = rt.run_host(host())
    return StencilResult(
        strategy="persistent",
        n_points=n,
        steps=steps,
        values=state["u"],
        total_ns=total,
        per_step_overhead_ns=sync_ns,
        reused_shared_memory=reuse,
    )


def _multi_kernel_cost_ns(
    spec: GPUSpec, n_points: int, steps: int, threads_per_block: int
) -> float:
    """Analytic total for launch-per-step at the *requested* size.

    Steps longer than the dispatch pipeline hide it and pay only the launch
    gap; short steps expose the pipeline (the Table I mechanism).
    """
    calib = spec.launch_calib("traditional")
    exec_ns = calib.exec_null_ns + _step_stream_ns(spec, n_points)
    stall = max(0.0, calib.dispatch_ns - exec_ns)
    first = calib.api_ns + calib.dispatch_ns + exec_ns
    marginal = exec_ns + calib.gap_ns + stall
    return first + (steps - 1) * marginal + calib.sync_return_ns


def _persistent_cost_ns(
    spec: GPUSpec,
    n_points: int,
    steps: int,
    threads_per_block: int,
    blocks_per_sm: int,
) -> tuple[float, bool]:
    """Analytic total + reuse flag for the persistent strategy."""
    calib = spec.launch_calib("cooperative")
    n_blocks = blocks_per_sm * spec.sm_count
    working_set = (math.ceil(n_points / n_blocks) + 2) * _BYTES_PER_POINT
    reuse = working_set <= spec.shared_mem_per_block
    hbm_step = _step_stream_ns(spec, n_points)
    if reuse:
        sm_gbps = (
            spec.shared_mem.sm_cap_bytes_per_cycle / spec.cycle_ns * spec.sm_count
        )
        step_compute = 2 * n_points * _BYTES_PER_POINT / sm_gbps
    else:
        step_compute = hbm_step
    sync_ns = grid_sync_latency_ns(spec, blocks_per_sm, threads_per_block)
    duration = (
        calib.exec_null_ns + hbm_step + (steps - 1) * step_compute + steps * sync_ns
    )
    total = calib.api_ns + calib.dispatch_ns + duration + calib.sync_return_ns
    return total, reuse


def stencil_strategy_crossover(
    spec: GPUSpec,
    n_points: int,
    steps: int = 100,
    threads_per_block: int = 256,
    blocks_per_sm: int = 2,
    seed: int = 0,
) -> dict:
    """Compare both strategies at a problem size; returns a summary dict.

    Timing comes from the analytic cost models evaluated at the requested
    ``n_points`` (including the shared-memory-reuse decision); correctness
    is verified by actually running both strategies on a materialized grid
    (capped at 64 Ki points).
    """
    if n_points < 3:
        raise ValueError("n_points must be >= 3")
    rng = np.random.default_rng(seed)
    initial = rng.uniform(0.0, 1.0, min(n_points, 1 << 16))
    multi = stencil_multi_kernel(spec, initial, steps, threads_per_block, seed)
    persistent = stencil_persistent(
        spec, initial, steps, threads_per_block, blocks_per_sm, seed=seed
    )
    reference = stencil_reference(initial, steps)

    multi_total = _multi_kernel_cost_ns(spec, n_points, steps, threads_per_block)
    persistent_total, reuse = _persistent_cost_ns(
        spec, n_points, steps, threads_per_block, blocks_per_sm
    )
    return {
        "n_points": n_points,
        "steps": steps,
        "multi_kernel_us": multi_total / 1e3,
        "persistent_us": persistent_total / 1e3,
        "winner": "persistent" if persistent_total < multi_total else "multi_kernel",
        "reused_shared_memory": reuse,
        "correct": multi.matches(reference) and persistent.matches(reference),
    }
