"""Content-addressed result cache with concurrent-safe claim/publish.

The cache layer of the sweep service.  A finished report is stored under
``(driver id, scenario hash, code version)``; any edit to the ``repro``
package changes :func:`code_version` and therefore every key, so the
cache can never serve results produced by different code.

Many writers may race on one key (shared cache dir, duplicated points
across sweeps, several sweep shards).  A claim file, created with
``O_EXCL`` next to the entry, elects the single computing writer;
everyone else waits for the published result.  Claims are advisory: a
claim whose owning pid is dead (worker crash) or older than the TTL is
*taken over*, and a waiter that exhausts its patience computes anyway —
duplicate work is always preferred over a deadlock.  Corrupt entries
are quarantined to ``*.corrupt`` (warned once), never re-parsed forever.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional, Set, Tuple

from repro.experiments import faults
from repro.experiments.base import ExperimentReport
from repro.experiments.scenario import Scenario

__all__ = [
    "CacheClaim",
    "await_claimed_result",
    "cache_load",
    "cache_path",
    "cache_store",
    "code_version",
    "default_cache_dir",
    "pin_code_version",
]

# -- cache keys ----------------------------------------------------------

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of every ``repro`` source file (16 hex digits, memoized).

    Part of the cache key: any edit to the package invalidates every
    cached report, so the cache can never serve results produced by
    different code.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        pkg_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(pkg_root.rglob("*.py")):
            digest.update(str(path.relative_to(pkg_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def pin_code_version(version: str) -> None:
    """Pin the memo to a version computed elsewhere (pool workers).

    Under the ``spawn`` start method a fresh worker interpreter would
    otherwise recompute the digest from the filesystem mid-run, so a
    source edit during a parallel sweep could split one run across two
    cache keys (and mix results from two code states).
    """
    global _CODE_VERSION
    _CODE_VERSION = version


def default_cache_dir() -> Path:
    """Result-cache directory (override with ``REPRO_EXPERIMENTS_CACHE``)."""
    env = os.environ.get("REPRO_EXPERIMENTS_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-experiments"


def cache_path(cache_dir: Path, exp_id: str, scenario: Scenario) -> Path:
    return cache_dir / f"{exp_id}-{scenario.content_hash}-{code_version()}.json"


# Corrupt-entry quarantine: warn once per path per process, and rename
# the bad file out of the key's way so it is recomputed once — not
# silently re-parsed (and re-failed) on every run forever.
_QUARANTINE_WARNED: Set[str] = set()


def _quarantine(path: Path, reason: str) -> None:
    target = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, target)
        where = f"quarantined to {target.name}"
    except OSError as exc:
        where = f"could not quarantine ({exc})"
    if str(path) not in _QUARANTINE_WARNED:
        _QUARANTINE_WARNED.add(str(path))
        print(
            f"warning: corrupt result cache entry {path} ({reason}); {where}; "
            "the point will be recomputed",
            file=sys.stderr,
        )


def cache_load(path: Path) -> Optional[ExperimentReport]:
    try:
        text = path.read_text()
    except OSError:
        return None  # missing entry -> plain miss
    try:
        return ExperimentReport.from_json(text)
    except (ValueError, KeyError, TypeError) as exc:
        _quarantine(path, f"{type(exc).__name__}: {exc}")
        return None


def cache_store(
    path: Path, report: ExperimentReport, exp_id: str = "", scenario_desc: str = ""
) -> None:
    faults.maybe_fail_cache_write(exp_id, scenario_desc)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Write-then-rename so concurrent workers never observe a torn file.
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(report.to_json())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


# -- concurrent-safe claim/publish ---------------------------------------

_CLAIM_TTL_S = 600.0  # age past which a claim is stale even if pid unknown
_CLAIM_WAIT_S = 30.0  # max wait on a live claim before computing anyway
_CLAIM_POLL_S = 0.02


class CacheClaim:
    """Advisory ``O_EXCL`` claim electing one computing writer per key."""

    def __init__(self, entry_path: Path):
        self.path = entry_path.with_name(entry_path.name + ".claim")
        self.held = False

    def acquire(self) -> bool:
        try:
            fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        except OSError:
            return True  # unwritable dir: run uncoordinated (store will warn)
        with os.fdopen(fd, "w") as fh:
            json.dump({"pid": os.getpid(), "time": time.time()}, fh)
        self.held = True
        return True

    def release(self) -> None:
        if self.held:
            try:
                os.unlink(self.path)
            except OSError:
                pass
            self.held = False

    def is_stale(self) -> bool:
        """True when the current holder is provably not coming back."""
        try:
            data = json.loads(self.path.read_text())
        except OSError:
            return False  # claim vanished: holder released it, not stale
        except ValueError:
            return True  # torn claim file: holder died mid-write
        pid = data.get("pid")
        if isinstance(pid, int) and pid > 0:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True  # owner is gone (crashed worker)
            except OSError:
                pass  # alive but not ours / cross-host: fall through to TTL
        return (time.time() - float(data.get("time", 0.0))) > _CLAIM_TTL_S

    def takeover(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass


def await_claimed_result(
    path: Path, claim: CacheClaim
) -> Tuple[Optional[ExperimentReport], bool]:
    """Wait for a rival claimant to publish; returns (report, we_claimed).

    Polls until the result appears, the claim goes stale (dead owner ->
    takeover), or patience runs out (compute anyway, unclaimed).
    """
    deadline = time.monotonic() + _CLAIM_WAIT_S
    while time.monotonic() < deadline:
        report = cache_load(path)
        if report is not None:
            return report, False
        if not claim.path.exists():
            # Holder released without publishing (its point failed):
            # contend for the claim ourselves.
            if claim.acquire():
                return None, True
            continue
        if claim.is_stale():
            claim.takeover()
            if claim.acquire():
                return None, True
            continue
        time.sleep(_CLAIM_POLL_S)
    return None, False
