"""Shard scheduler: retry/timeout/blame policy over N worker shards.

The policy layer of the sweep service.  A :class:`ShardScheduler` drives
a :class:`~repro.experiments.service.queue.JobQueue` to completion over
one or more *shards* — each shard owns its own
:class:`~repro.experiments.service.workers.WorkerPool`, so a worker
death or stuck worker takes down exactly one shard's pool while the
others keep running.  Jobs are pre-partitioned across shards by
deterministic hash-sharding on the scenario hash; a shard that drains
its partition steals ready jobs from the most-backlogged sibling, so a
straggler shard cannot serialize the sweep.

Supervision invariants (per shard, generalized from the original
single-pool runner):

* at most ``workers`` futures are in flight per shard, so every
  in-flight future is actually *running* — which is what lets the
  per-point deadline start at submit time;
* a ``BrokenProcessPool`` affects only that shard's in-flight points
  (finished futures keep their results) and restarts that shard's pool;
* crash *attribution* is exact: when several points were in flight on
  the broken shard, the executor cannot say whose worker died, so none
  is charged an attempt — all casualties become **suspects** and re-run
  one at a time on their shard.  A point that breaks the pool while
  running alone is unambiguously the culprit: it is charged a ``crash``
  attempt and retried/failed under the policy.  Suspect isolation
  pauses only the affected shard; siblings (and work stealing by them)
  continue;
* a future past its deadline kills that shard's pool (a stuck worker
  cannot be cancelled), records a timeout for that point — the expired
  future is known, so timeout attribution is always exact — and
  requeues innocent in-flight victims without charging them.
"""

from __future__ import annotations

import hashlib
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments import faults
from repro.experiments.base import ExperimentReport
from repro.experiments.journal import SweepJournal
from repro.experiments.service import cache
from repro.experiments.service.queue import (
    KIND_CRASH,
    KIND_ERROR,
    KIND_TIMEOUT,
    Job,
    JobQueue,
    PointResult,
)
from repro.experiments.service.workers import (
    ResultSlab,
    WorkerPool,
    WorkItem,
    execute_point,
)

__all__ = [
    "NO_RETRY",
    "RetryPolicy",
    "ShardScheduler",
    "SweepStats",
    "run_serial",
]

#: Callback fired as each point settles: (input index, outcome).
ResultCallback = Callable[[int, PointResult], None]


@dataclass(frozen=True)
class RetryPolicy:
    """When and how to retry a failed point.

    ``retryable`` maps a failure kind (``KIND_*``) to whether another
    attempt may help; the default retries worker crashes, timeouts and
    transient driver errors, and fails deterministic errors fast.
    Backoff is exponential from ``base_delay`` (capped at ``max_delay``)
    plus *deterministic* jitter — a hash of the point key and attempt
    number, so retry schedules decorrelate across points yet reproduce
    exactly run to run.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25  # extra fraction of the backoff step, [0, jitter)
    retryable: Optional[Callable[[str], bool]] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def is_retryable(self, kind: str) -> bool:
        if self.retryable is not None:
            return self.retryable(kind)
        return kind != KIND_ERROR

    def should_retry(self, kind: str, attempt: int) -> bool:
        return attempt < self.max_attempts and self.is_retryable(kind)

    def backoff(self, attempt: int, key: str = "") -> float:
        delay = min(self.base_delay * (2 ** (attempt - 1)), self.max_delay)
        if self.jitter > 0 and delay > 0:
            h = int.from_bytes(
                hashlib.sha256(f"{key}:{attempt}".encode()).digest()[:4], "big"
            )
            delay += delay * self.jitter * (h / 2**32)
        return delay


#: Retry nothing — the pre-supervision behaviour, useful in tests.
NO_RETRY = RetryPolicy(max_attempts=1)


@dataclass
class SweepStats:
    """Observability counters for one scheduled sweep."""

    shards: int = 1
    steals: int = 0
    crashes: int = 0
    timeouts: int = 0
    slab_points: int = 0  # reports that rode the shared-memory slab
    pickle_bytes_avoided: int = 0  # report bytes kept off the result pipe


class _Shard:
    """One shard's runtime: its pool, in-flight futures, crash suspects."""

    __slots__ = ("id", "workers", "pool", "inflight", "suspects")

    def __init__(self, shard_id: int, workers: int):
        self.id = shard_id
        self.workers = workers
        self.pool = WorkerPool(workers)
        self.inflight: Dict[Future, Tuple[Job, Optional[float]]] = {}
        # Crash suspects awaiting a solo (attributable) re-run; while
        # this queue is non-empty, this shard's normal dispatch pauses.
        self.suspects: List[Job] = []


class ShardScheduler:
    """Drive a job queue to completion across sharded worker pools."""

    def __init__(
        self,
        queue: JobQueue,
        jobs: int = 1,
        shards: int = 1,
        use_cache: bool = True,
        cache_dir: Optional[Path] = None,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        journal: Optional[SweepJournal] = None,
        on_result: Optional[ResultCallback] = None,
    ):
        self.queue = queue
        self.jobs = jobs
        self.shards = max(1, shards)
        self.use_cache = use_cache
        self.cache_dir = cache_dir
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.journal = journal
        self.on_result = on_result
        self.stats = SweepStats(shards=self.shards)
        self._slab: Optional[ResultSlab] = None
        self._version: Optional[str] = None
        self._plan_json: Optional[str] = None

    # -- lifecycle transitions ------------------------------------------

    def _submit(self, shard: _Shard, job: Job) -> None:
        self.queue.claim(job)
        if self.journal is not None:
            self.journal.point_start(
                job.index, job.exp_id, job.attempt, shard=shard.id
            )
        slab = self._slab
        item = WorkItem(
            exp_id=job.exp_id,
            scenario=job.scenario.to_dict(),
            use_cache=self.use_cache,
            cache_dir=str(self.cache_dir) if self.cache_dir else None,
            code_version=self._version,
            attempt=job.attempt,
            plan_json=self._plan_json,
            index=job.index,
            slab_name=slab.name if slab is not None else None,
            slab_slots=slab.slots if slab is not None else 0,
            slab_slot_bytes=slab.slot_bytes if slab is not None else 0,
        )
        fut = shard.pool.submit(item)
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        shard.inflight[fut] = (job, deadline)

    def _finish(self, job: Job, result: PointResult) -> None:
        result.attempts = job.attempt
        result.crashes = job.crashes
        result.timeouts = job.timeouts
        self.queue.finish(job, result)
        if self.journal is not None:
            self.journal.point_finish(
                job.index, result.exp_id, job.attempt, result.cached
            )
        if self.on_result is not None:
            self.on_result(job.index, result)

    def _fail(self, job: Job, kind: str, error: str) -> None:
        if kind == KIND_CRASH:
            job.crashes += 1
            self.stats.crashes += 1
        elif kind == KIND_TIMEOUT:
            job.timeouts += 1
            self.stats.timeouts += 1
        if self.journal is not None:
            self.journal.point_fail(job.index, job.exp_id, job.attempt, kind, error)
        if self.retry.should_retry(kind, job.attempt):
            delay = self.retry.backoff(job.attempt, job.key)
            job.attempt += 1
            self.queue.requeue(job, time.monotonic() + delay)
        else:
            result = PointResult(
                job.exp_id, job.scenario, error=error, error_kind=kind,
                attempts=job.attempt, crashes=job.crashes, timeouts=job.timeouts,
            )
            self.queue.fail(job, result)
            if self.on_result is not None:
                self.on_result(job.index, result)

    def _consume(self, fut: Future, job: Job) -> bool:
        """Fold one completed future into the queue; True if pool broke.

        A ``BrokenProcessPool`` outcome does *not* judge the point here —
        whether it is charged as the culprit or spared as a casualty
        depends on how many futures were in flight on its shard, which
        only the main loop knows.
        """
        try:
            reply = fut.result()
        except BrokenProcessPool:
            return True
        except Exception:
            self._fail(job, KIND_ERROR, traceback.format_exc())
            return False
        if reply.exp_id != job.exp_id:
            # Ordering invariant between dispatch and results; a real
            # error (not an assert) so it cannot vanish under python -O.
            raise RuntimeError(
                f"pool returned a result for {reply.exp_id!r} on the future "
                f"of {job.exp_id!r}: dispatch bookkeeping is corrupt"
            )
        if reply.error is not None:
            self._fail(job, reply.error_kind or KIND_ERROR, reply.error)
            return False
        if reply.slab_bytes > 0:
            taken = self._slab.take(job.index) if self._slab is not None else None
            if taken is None:
                raise RuntimeError(
                    f"worker published {job.exp_id} (point {job.index}) to the "
                    "result slab but the slot is empty: slab bookkeeping is "
                    "corrupt"
                )
            data, _ = taken
            report = ExperimentReport.from_json(data.decode("utf-8"))
            self.stats.slab_points += 1
            self.stats.pickle_bytes_avoided += reply.slab_bytes
        else:
            report = ExperimentReport.from_json(reply.report_json or "")
        self._finish(
            job,
            PointResult(job.exp_id, job.scenario, report=report,
                        cached=reply.cached),
        )
        return False

    # -- main-loop helpers ----------------------------------------------

    def _dispatch(self, shard: _Shard, now: float) -> None:
        # Suspect isolation takes priority: while crash suspects exist,
        # exactly one runs at a time on this shard (so a repeat crash is
        # attributable) and this shard's normal dispatch pauses.
        if shard.suspects:
            if not shard.inflight and shard.suspects[0].ready_at <= now:
                self._submit(shard, shard.suspects.pop(0))
            return
        free = shard.workers - len(shard.inflight)
        if free <= 0:
            return
        for job in self.queue.ready(shard.id, now)[:free]:
            self._submit(shard, job)
        # Work stealing: this shard's partition is drained (or backing
        # off) but it still has idle workers — take ready jobs from the
        # most-backlogged sibling.  Stealing from a suspect-paused shard
        # is safe: attribution is per *pool*, and the stolen job runs on
        # this shard's pool.
        while len(shard.inflight) < shard.workers:
            job = self.queue.steal(shard.id, now)
            if job is None:
                break
            self.stats.steals += 1
            self._submit(shard, job)

    def _handle_broken(
        self, shard: _Shard, casualties: List[Job], now: float
    ) -> None:
        # The shard's pool is dead.  Drain the rest: futures that
        # finished before the crash still carry real results.
        wait(list(shard.inflight), timeout=5.0)
        for fut, (job, _) in list(shard.inflight.items()):
            del shard.inflight[fut]
            if not fut.done() or self._consume(fut, job):
                casualties.append(job)
        if len(casualties) == 1:
            # Every other in-flight point finished with a real result,
            # so the dead worker was provably this one's.
            job = casualties[0]
            self._fail(
                job, KIND_CRASH,
                f"worker process died while running {job.exp_id} "
                f"[{job.scenario.describe()}] (BrokenProcessPool)",
            )
        else:
            # Ambiguous: any of the casualties may be the culprit.
            # Nobody is charged an attempt; all re-run solo so the next
            # crash (if any) is attributable.
            for job in casualties:
                job.ready_at = now
                shard.suspects.append(job)
            shard.suspects.sort(key=lambda j: j.index)
        shard.pool.restart()

    def _handle_timeouts(self, shard: _Shard, now: float) -> None:
        # Deadline enforcement: a stuck worker cannot be cancelled, so
        # the shard's pool dies with it and innocents are requeued (same
        # attempt — they did nothing wrong).
        expired = [
            (fut, job)
            for fut, (job, dl) in shard.inflight.items()
            if dl is not None and now >= dl and not fut.done()
        ]
        if not expired:
            return
        assert self.timeout is not None
        for fut, job in expired:
            del shard.inflight[fut]
            self._fail(
                job, KIND_TIMEOUT,
                f"point {job.exp_id} [{job.scenario.describe()}] exceeded the "
                f"{self.timeout:g}s wall-clock timeout on attempt "
                f"{job.attempt}",
            )
        for fut, (job, _) in list(shard.inflight.items()):
            del shard.inflight[fut]
            if not fut.done():
                # Innocent victim of the pool teardown: requeue at the
                # same attempt.
                self.queue.requeue(job, now)
            elif self._consume(fut, job):
                # The pool also broke under this future (crash and
                # timeout in the same round): treat as a suspect.
                job.ready_at = now
                shard.suspects.append(job)
        shard.pool.restart()

    def _next_wake(self, shards: List[_Shard]) -> Optional[float]:
        """Earliest time anything becomes dispatchable (nothing in flight)."""
        wakes: List[float] = []
        for shard in shards:
            if shard.suspects:
                wakes.extend(j.ready_at for j in shard.suspects)
        # Pending jobs only matter if some shard is free to run (or
        # steal) them; a suspect-paused shard dispatches nothing else.
        if any(not shard.suspects for shard in shards):
            wakes.extend(j.ready_at for j in self.queue.pending())
        return min(wakes) if wakes else None

    # -- entry -----------------------------------------------------------

    def run(self) -> List[PointResult]:
        q = self.queue
        if not q.jobs:
            return []
        self._version = cache.code_version()
        plan = faults.active_plan()
        self._plan_json = plan.to_json() if plan is not None else None

        total_workers = max(1, min(self.jobs, len(q.jobs)))
        nshards = min(self.shards, len(q.jobs))
        # Split the worker budget across shards (every shard gets at
        # least one even when oversubscribed).
        base, rem = divmod(total_workers, nshards)
        shards = [
            _Shard(s, max(1, base + (1 if s < rem else 0)))
            for s in range(nshards)
        ]
        try:
            self._slab = ResultSlab(len(q.jobs))
        except (OSError, ValueError):
            self._slab = None  # no shared memory here: pickle everything

        try:
            while q.unsettled:
                now = time.monotonic()
                for shard in shards:
                    self._dispatch(shard, now)
                owners: Dict[Future, _Shard] = {
                    fut: shard for shard in shards for fut in shard.inflight
                }
                if not owners:
                    # Everything runnable is backing off; sleep to the
                    # nearest wake-up.
                    wake = self._next_wake(shards)
                    if wake is not None:
                        time.sleep(max(0.0, wake - time.monotonic()))
                    continue

                # Wake on the first completion, the earliest deadline, or
                # the earliest backoff expiry — whichever comes first.
                horizon: List[float] = []
                for shard in shards:
                    horizon.extend(
                        dl - now
                        for (_, dl) in shard.inflight.values()
                        if dl is not None
                    )
                    horizon.extend(
                        j.ready_at - now
                        for j in shard.suspects
                        if j.ready_at > now
                    )
                # Only *future* backoff expiries matter here: a pending
                # point that is already ready just needs a worker slot,
                # which only a completion can free — so it must not clamp
                # the wait to zero.
                horizon.extend(
                    j.ready_at - now
                    for j in self.queue.pending()
                    if j.ready_at > now
                )
                wait_for = max(0.0, min(horizon)) if horizon else None
                done, _ = wait(
                    list(owners), timeout=wait_for, return_when=FIRST_COMPLETED
                )

                broken: Dict[int, List[Job]] = {}
                for fut in done:
                    shard = owners[fut]
                    job, _ = shard.inflight.pop(fut)
                    if self._consume(fut, job):
                        broken.setdefault(shard.id, []).append(job)
                if broken:
                    now = time.monotonic()
                    for shard in shards:
                        if shard.id in broken:
                            self._handle_broken(shard, broken[shard.id], now)
                    continue

                now = time.monotonic()
                for shard in shards:
                    self._handle_timeouts(shard, now)
        finally:
            for shard in shards:
                shard.pool.shutdown()
            if self._slab is not None:
                self._slab.close()
                self._slab.unlink()
                self._slab = None

        return q.results()


# -- serial path ---------------------------------------------------------


def run_serial(
    queue: JobQueue,
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[SweepJournal] = None,
    on_result: Optional[ResultCallback] = None,
) -> List[PointResult]:
    """In-process execution with retry/backoff (no crash isolation).

    ``jobs=1`` runs here: a worker kill cannot be survived in-process
    (the fault layer downgrades it to a transient raise) and timeouts are
    unenforceable without a subprocess, but transient failures still
    retry under the policy and the journal still records progress.
    """
    policy = retry if retry is not None else RetryPolicy()
    for job in queue.jobs:
        while True:
            if journal is not None:
                journal.point_start(job.index, job.exp_id, job.attempt,
                                    shard=job.shard)
            res = execute_point(
                job.exp_id, job.scenario, use_cache=use_cache,
                cache_dir=cache_dir, attempt=job.attempt,
            )
            if res.ok:
                if journal is not None:
                    journal.point_finish(
                        job.index, job.exp_id, job.attempt, res.cached
                    )
                break
            kind = res.error_kind or KIND_ERROR
            if journal is not None:
                journal.point_fail(job.index, job.exp_id, job.attempt, kind,
                                   res.error or "")
            if not policy.should_retry(kind, job.attempt):
                break
            time.sleep(policy.backoff(job.attempt, job.key))
            job.attempt += 1
        res.attempts = job.attempt
        if res.ok:
            queue.finish(job, res)
        else:
            queue.fail(job, res)
        if on_result is not None:
            on_result(job.index, res)
    return queue.results()
