"""Streaming report aggregation: fold points into reports as they land.

The top layer of the sweep service.  A :class:`ReportAggregator`
receives every settled :class:`~repro.experiments.service.queue.PointResult`
through the scheduler's result callback and folds it incrementally —
per-experiment buckets stay sorted by input position, so a merged report
asked for *mid-sweep* (``partial_report``) is a byte-stable prefix of
the final one, and the end-of-sweep reports are exactly what the old
positional merge produced.  The CLI's ``--json`` execution counters and
the ``status`` subcommand's partial renders both consume this.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.base import ExperimentReport, merge_reports
from repro.experiments.registry import get_spec
from repro.experiments.service.queue import PointResult

__all__ = ["ReportAggregator", "merge_experiment"]


def merge_experiment(exp_id: str, results: List[PointResult]) -> ExperimentReport:
    """Merge an experiment's point results into its single report.

    Public so interfaces that keep partial results on failure (the CLI)
    can reassemble reports through the same path ``run_all`` uses.
    """
    spec = get_spec(exp_id)
    reports = [r.report for r in results if r.report is not None]
    return merge_reports(exp_id, spec.title, reports)


class ReportAggregator:
    """Incrementally fold settled points into per-experiment reports."""

    def __init__(self) -> None:
        self._results: Dict[int, PointResult] = {}

    def add(self, index: int, result: PointResult) -> None:
        """Fold one settled point (the scheduler's result callback)."""
        self._results[index] = result

    # -- views -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._results)

    def results(self) -> List[PointResult]:
        """Settled results so far, in input order."""
        return [self._results[i] for i in sorted(self._results)]

    def results_for(self, exp_id: str) -> List[PointResult]:
        return [r for r in self.results() if r.exp_id == exp_id]

    def experiment_ids(self) -> List[str]:
        """Experiment ids seen so far, in first-settled input order."""
        return list(dict.fromkeys(r.exp_id for r in self.results()))

    def partial_report(self, exp_id: str) -> Optional[ExperimentReport]:
        """Merged report over the points finished *so far* (or ``None``).

        Incremental by construction: results merge in input order, so a
        partial report's rows are a prefix-stable subset of the final
        report's rows.
        """
        ok = [r for r in self.results_for(exp_id) if r.report is not None]
        if not ok:
            return None
        return merge_experiment(exp_id, ok)

    def reports(self, ids: List[str]) -> List[ExperimentReport]:
        """One merged report per requested experiment that has results."""
        out = []
        for exp_id in ids:
            report = self.partial_report(exp_id)
            if report is not None:
                out.append(report)
        return out

    def execution_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-experiment supervision counters (the ``--json`` block).

        How many attempts the sweep spent on the experiment's points,
        and how many were lost to crashes/timeouts — the observability
        face of the supervised runner (points that failed outright are
        counted here too, even though their rows are absent).
        """
        stats: Dict[str, Dict[str, int]] = {}
        for res in self.results():
            st = stats.setdefault(
                res.exp_id,
                {"points": 0, "attempts": 0, "retries": 0, "crashes": 0,
                 "timeouts": 0, "cached": 0, "failed": 0},
            )
            st["points"] += 1
            st["attempts"] += res.attempts
            st["retries"] += res.retries
            st["crashes"] += res.crashes
            st["timeouts"] += res.timeouts
            st["cached"] += 1 if res.cached else 0
            st["failed"] += 0 if res.ok else 1
        return stats
