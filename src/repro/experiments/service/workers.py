"""Worker fleet: process pool + shared-memory result slab + driver entry.

The execution layer of the sweep service.  Three pieces live here:

* :func:`execute_point` — the single place a driver is invoked.  Serial
  runs, pool workers, the CLI and the registry all come through here, so
  caching and error capture behave identically everywhere.
* :class:`WorkerPool` — the process-pool fleet one scheduler shard owns.
  This is the **only** module allowed to construct a
  ``ProcessPoolExecutor`` (lint rule SAN109 enforces it), so pool
  lifecycle quirks — submit racing a worker death, killing a pool whose
  workers are stuck — are handled once.
* :class:`ResultSlab` — a Synkhronos-style tagged shared-memory segment.
  The parent creates one slab per sweep with a fixed slot per point-ID;
  workers attach by name (once per process, cached) and publish the
  finished report's bytes into their point's slot instead of pickling it
  back through the result pipe.  The future's completion is the
  synchronization point: the parent only reads a slot after the worker's
  (tiny) control tuple arrives, so slots never need locks.  Oversized
  reports fall back to the pickle channel transparently.
"""

from __future__ import annotations

import struct
import sys
import traceback
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.experiments import faults
from repro.experiments.base import ExperimentReport
from repro.experiments.faults import TransientPointError
from repro.experiments.registry import get_spec
from repro.experiments.scenario import Scenario
from repro.experiments.service import cache
from repro.experiments.service.queue import (
    KIND_ERROR,
    KIND_TRANSIENT,
    PointResult,
)

__all__ = [
    "ResultSlab",
    "WorkItem",
    "WorkerPool",
    "WorkerReply",
    "execute_point",
    "worker_main",
]


# -- the single driver entry path ----------------------------------------


def _run_driver(spec: Any, scenario: Scenario) -> ExperimentReport:
    """Invoke the driver, under a sanitizer session when the scenario asks.

    ``scenario.sanitize`` installs a :class:`repro.sanitize.SanitizerSession`
    around the driver call, so every instrumented engine/scope/memory hook
    inside the driver's simulations records into one stream; the session's
    findings ride on the report (``report.sanitizer``) into ``--json`` and
    the rendered output.  A :class:`~repro.sim.engine.DeadlockError`
    escaping a sanitized driver is re-raised with the findings appended to
    its message — the captured traceback then carries the diagnosis
    (which members diverged, at which round, in which scope) instead of
    just the list of hung processes.
    """
    if scenario.sanitize is None:
        return spec.driver(scenario)
    from repro.sanitize import SanitizerSession, render_findings
    from repro.sim.engine import DeadlockError

    with SanitizerSession(scenario.sanitize) as session:
        try:
            report = spec.driver(scenario)
        except DeadlockError as exc:
            lines = render_findings(session.findings())
            if lines:
                exc.args = (
                    str(exc)
                    + "\nsanitizer findings:\n"
                    + "\n".join(f"  {line}" for line in lines),
                )
            raise
    report.sanitizer = session.summary()
    return report


def execute_point(
    exp_id: str,
    scenario: Scenario,
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
    attempt: int = 1,
) -> PointResult:
    """Run one (experiment, scenario) point: cache lookup, driver, store.

    This is the only place a driver is invoked — serial runs, pool
    workers, the CLI and the registry all come through here, so caching
    and error capture behave identically everywhere.  ``attempt`` is the
    1-based attempt number under the caller's retry policy; it selects
    which fault-plan rules fire and is recorded on the result.
    """
    spec = get_spec(exp_id)
    desc = scenario.describe()
    cdir = Path(cache_dir) if cache_dir is not None else cache.default_cache_dir()
    path = cache.cache_path(cdir, exp_id, scenario)
    claim: Optional[cache.CacheClaim] = None
    if use_cache:
        report = cache.cache_load(path)
        if report is not None:
            return PointResult(
                exp_id, scenario, report=report, cached=True, attempts=attempt
            )
        claim = cache.CacheClaim(path)
        if not claim.acquire():
            report, _ = cache.await_claimed_result(path, claim)
            if report is not None:
                return PointResult(
                    exp_id, scenario, report=report, cached=True, attempts=attempt
                )
    try:
        try:
            faults.apply_driver_faults(exp_id, desc, attempt)
            report = _run_driver(spec, scenario)
        except TransientPointError:
            return PointResult(
                exp_id, scenario, error=traceback.format_exc(),
                error_kind=KIND_TRANSIENT, attempts=attempt,
            )
        except Exception:
            return PointResult(
                exp_id, scenario, error=traceback.format_exc(),
                error_kind=KIND_ERROR, attempts=attempt,
            )
        report.scenario = scenario.to_dict()
        if scenario.backend is not None and report.backend is None:
            # The driver ignored the backend knob — this experiment has no
            # backend-routed sweeps.  Record the engine truthfully and say
            # so when something faster than the engine was requested.
            report.backend = "engine"
            if scenario.backend != "engine":
                report.notes.append(
                    f"backend={scenario.backend} requested but "
                    f"{exp_id} has no analytic-eligible sweeps; "
                    "ran on the event-precise engine"
                )
        if use_cache:
            # A cache-store failure (read-only dir, full disk) must not
            # turn a finished report into a failed point — or, worse,
            # abort the whole sweep and lose every sibling's result.  The
            # CLI's contract is that partial results always reach the
            # merged report/JSON output; the cache is an optimization, so
            # degrade to uncached and warn.
            try:
                cache.cache_store(path, report, exp_id, desc)
            except OSError as exc:
                print(
                    f"warning: could not write result cache entry {path}: {exc}",
                    file=sys.stderr,
                )
        return PointResult(exp_id, scenario, report=report, attempts=attempt)
    finally:
        if claim is not None:
            claim.release()


# -- shared-memory result slab -------------------------------------------

# Per-slot header: status byte (0 empty, 1 published), cached flag,
# 2 reserved bytes, little-endian u32 payload length.
_SLOT_HEADER = struct.Struct("<BBxxI")
DEFAULT_SLOT_BYTES = 1 << 16  # 64 KiB of payload per point


class ResultSlab:
    """Tagged shared-memory segment of per-point result slots.

    The parent creates the slab (``name=None``) sized to the sweep's
    point count; workers attach to the same tag with
    ``ResultSlab(slots, slot_bytes, name=...)``.  Exactly one worker
    writes a given slot per attempt, and the parent reads it only after
    that worker's future resolves — the pipe carries the 'published'
    signal, the slab carries the bytes.
    """

    def __init__(self, slots: int, slot_bytes: int = DEFAULT_SLOT_BYTES,
                 name: Optional[str] = None):
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._stride = _SLOT_HEADER.size + slot_bytes
        size = max(1, self.slots * self._stride)
        if name is None:
            self._shm = shared_memory.SharedMemory(create=True, size=size)
            self._shm.buf[: self.slots * self._stride] = bytes(
                self.slots * self._stride
            )
            self._owner = True
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False

    @property
    def name(self) -> str:
        """The tag workers attach by."""
        return self._shm.name

    def publish(self, index: int, data: bytes, cached: bool) -> bool:
        """Write one point's report bytes; False when the slot is too small."""
        if not 0 <= index < self.slots or len(data) > self.slot_bytes:
            return False
        base = index * self._stride
        body = base + _SLOT_HEADER.size
        self._shm.buf[body: body + len(data)] = data
        # Header written after the payload: a reader that sees status=1
        # (it only looks after the worker's future resolved) is guaranteed
        # the full payload is in place.
        self._shm.buf[base: base + _SLOT_HEADER.size] = _SLOT_HEADER.pack(
            1, 1 if cached else 0, len(data)
        )
        return True

    def take(self, index: int) -> Optional[Tuple[bytes, bool]]:
        """Read one published slot: (payload, cached), or None if empty."""
        if not 0 <= index < self.slots:
            return None
        base = index * self._stride
        status, cached, length = _SLOT_HEADER.unpack(
            bytes(self._shm.buf[base: base + _SLOT_HEADER.size])
        )
        if status != 1 or length > self.slot_bytes:
            return None
        body = base + _SLOT_HEADER.size
        return bytes(self._shm.buf[body: body + length]), bool(cached)

    def close(self) -> None:
        try:
            self._shm.close()
        except OSError:
            pass

    def unlink(self) -> None:
        """Destroy the segment (parent only; workers just close)."""
        if self._owner:
            try:
                self._shm.unlink()
            except OSError:
                pass


# One cached attachment per (process, tag): a pool worker runs many
# points of the same sweep, so it attaches once and keeps the mapping
# until process exit.
_SLAB_CACHE: Dict[str, ResultSlab] = {}


def _attach_slab(name: str, slots: int, slot_bytes: int) -> Optional[ResultSlab]:
    slab = _SLAB_CACHE.get(name)
    if slab is None:
        try:
            slab = ResultSlab(slots, slot_bytes, name=name)
        except (OSError, ValueError):
            return None  # slab gone (parent tore down): fall back to pickle
        _SLAB_CACHE[name] = slab
    return slab


# -- pool entry ----------------------------------------------------------


@dataclass(frozen=True)
class WorkItem:
    """Picklable pool payload: the scenario travels as its dict form.

    The parent's ``code_version`` travels with the payload and pins the
    worker's memo: under the ``spawn`` start method a fresh interpreter
    would otherwise recompute the digest from the filesystem mid-run, so
    a source edit during a parallel sweep could split one run across two
    cache keys (and mix results from two code states).  The parent's
    programmatic fault plan ships the same way (the env-var channel
    already survives both start methods on its own).
    """

    exp_id: str
    scenario: Dict[str, Any]
    use_cache: bool = True
    cache_dir: Optional[str] = None
    code_version: Optional[str] = None
    attempt: int = 1
    plan_json: Optional[str] = None
    index: int = 0
    slab_name: Optional[str] = None
    slab_slots: int = 0
    slab_slot_bytes: int = 0


@dataclass(frozen=True)
class WorkerReply:
    """Control-channel result: tiny when the report rode the slab."""

    exp_id: str
    report_json: Optional[str] = None
    error: Optional[str] = None
    cached: bool = False
    error_kind: Optional[str] = None
    slab_bytes: int = 0  # >0: report published to the slab slot instead


def worker_main(item: WorkItem) -> WorkerReply:
    """Top-level (picklable) pool entry."""
    if item.code_version:
        cache.pin_code_version(item.code_version)
    faults.IN_WORKER = True  # kill faults may really take this process down
    if item.plan_json is not None:
        faults.set_plan(faults.FaultPlan.from_json(item.plan_json))
    result = execute_point(
        item.exp_id,
        Scenario.from_dict(item.scenario),
        use_cache=item.use_cache,
        cache_dir=Path(item.cache_dir) if item.cache_dir else None,
        attempt=item.attempt,
    )
    if result.report is None:
        return WorkerReply(
            result.exp_id, error=result.error, cached=result.cached,
            error_kind=result.error_kind,
        )
    # Ship the JSON form: ExperimentReport is plain data either way, and
    # JSON keeps the parent <-> worker contract identical to the cache.
    report_json = result.report.to_json()
    if item.slab_name is not None:
        slab = _attach_slab(item.slab_name, item.slab_slots, item.slab_slot_bytes)
        data = report_json.encode("utf-8")
        if slab is not None and slab.publish(item.index, data, result.cached):
            return WorkerReply(
                result.exp_id, cached=result.cached, slab_bytes=len(data)
            )
    return WorkerReply(result.exp_id, report_json=report_json, cached=result.cached)


# -- the pool fleet ------------------------------------------------------


class WorkerPool:
    """One shard's process pool, with crash-tolerant submit and teardown.

    The only construction site for ``ProcessPoolExecutor`` in the
    codebase (SAN109): schedulers ask for a pool of ``max_workers`` and
    get submit/kill/restart semantics that survive worker death.
    """

    def __init__(self, max_workers: int):
        self.max_workers = max_workers
        self._pool = ProcessPoolExecutor(max_workers=max_workers)

    def submit(self, item: WorkItem) -> Future:
        """Submit one work item; recycles the pool if a worker just died."""
        from concurrent.futures.process import BrokenProcessPool

        while True:
            try:
                return self._pool.submit(worker_main, item)
            except BrokenProcessPool:
                # A worker died between the last drain and this submit;
                # recycle the pool and resubmit.
                self.restart()

    def kill(self) -> None:
        """Tear down a pool whose workers may be stuck (best effort)."""
        for proc in list(getattr(self._pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except (OSError, ValueError):
                pass  # already dead/closed: that is the goal
        try:
            self._pool.shutdown(wait=False, cancel_futures=True)
        except (OSError, RuntimeError):
            pass  # pool already broken; nothing left to tear down

    def restart(self) -> None:
        self.kill()
        self._pool = ProcessPoolExecutor(max_workers=self.max_workers)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)
