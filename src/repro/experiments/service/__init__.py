"""Layered sweep service: queue → shard scheduler → worker pool → aggregator.

The execution path of the experiment pipeline, decomposed into four
explicit seams (each its own module):

* :mod:`~repro.experiments.service.queue` — sweep points as schedulable
  :class:`Job` units with ``pending/claimed/done/failed`` states, fed
  from the registry or replayed from a sweep journal;
* :mod:`~repro.experiments.service.scheduler` — the
  :class:`ShardScheduler`, partitioning the queue across N worker
  shards (deterministic hash-sharding on the scenario hash, work
  stealing for stragglers) and owning the retry/timeout/blame policy;
* :mod:`~repro.experiments.service.workers` — the process-pool worker
  fleet plus the shared-memory :class:`ResultSlab` workers publish
  finished reports into by point-ID (no per-point pickle round-trip);
* :mod:`~repro.experiments.service.aggregate` — the streaming
  :class:`ReportAggregator`, folding settled points into per-experiment
  reports incrementally (partial reports on demand).

:class:`SweepService` composes the four; the historical
:mod:`repro.experiments.runner` module is a thin facade over it.  The
cache/claim machinery both paths share lives in
:mod:`~repro.experiments.service.cache`.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.experiments.journal import SweepJournal
from repro.experiments.scenario import Scenario
from repro.experiments.service import cache
from repro.experiments.service.aggregate import ReportAggregator, merge_experiment
from repro.experiments.service.queue import (
    ExperimentError,
    Job,
    JobQueue,
    PointResult,
    shard_of,
)
from repro.experiments.service.scheduler import (
    NO_RETRY,
    RetryPolicy,
    ShardScheduler,
    SweepStats,
    run_serial,
)
from repro.experiments.service.workers import (
    ResultSlab,
    WorkerPool,
    execute_point,
)

__all__ = [
    "ExperimentError",
    "Job",
    "JobQueue",
    "NO_RETRY",
    "PointResult",
    "ReportAggregator",
    "ResultSlab",
    "RetryPolicy",
    "ShardScheduler",
    "SweepService",
    "SweepStats",
    "WorkerPool",
    "execute_point",
    "merge_experiment",
    "run_serial",
    "shard_of",
]


class SweepService:
    """One sweep, end to end: build the queue, schedule it, aggregate it.

    The composition root of the service layers.  ``run`` executes a
    point list exactly like the historical ``runner.run_points`` —
    results in input order, identical reports for any ``jobs``/
    ``shards`` setting — while exposing the streaming ``aggregator``
    (partial reports, execution counters) and the scheduler ``stats``
    (steals, slab traffic) afterwards.
    """

    def __init__(
        self,
        jobs: int = 1,
        shards: int = 1,
        use_cache: bool = True,
        cache_dir: Optional[Path] = None,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        journal: Optional[SweepJournal] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self.jobs = jobs
        self.shards = shards
        self.use_cache = use_cache
        self.cache_dir = cache_dir
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.journal = journal
        self.aggregator = ReportAggregator()
        self.stats = SweepStats(shards=shards)

    def run(self, points: Sequence[Tuple[str, Scenario]]) -> List[PointResult]:
        """Execute points (optionally across sharded pools), in input order."""
        points = list(points)
        # A sweep never runs more shards than points; the clamp also
        # keeps single-point sweeps on the serial path.
        nshards = max(1, min(self.shards, len(points)))
        queue = JobQueue.from_points(points, shards=nshards)
        return self.run_queue(queue)

    def run_queue(self, queue: JobQueue) -> List[PointResult]:
        """Execute a pre-built queue (the resume/replay entry)."""
        points = [(job.exp_id, job.scenario) for job in queue.jobs]
        if self.journal is not None:
            self.journal.sweep_start(
                points, cache.code_version(), self.jobs, shards=queue.shards
            )
        if not points:
            return []
        if self.timeout is None and queue.shards == 1 and (
            self.jobs == 1 or len(points) == 1
        ):
            return run_serial(
                queue, use_cache=self.use_cache, cache_dir=self.cache_dir,
                retry=self.retry, journal=self.journal,
                on_result=self.aggregator.add,
            )
        scheduler = ShardScheduler(
            queue,
            jobs=self.jobs,
            shards=queue.shards,
            use_cache=self.use_cache,
            cache_dir=self.cache_dir,
            timeout=self.timeout,
            retry=self.retry,
            journal=self.journal,
            on_result=self.aggregator.add,
        )
        results = scheduler.run()
        self.stats = scheduler.stats
        return results
