"""Job queue: sweep points as schedulable units with explicit states.

The bottom layer of the sweep service.  A :class:`JobQueue` holds one
:class:`Job` per (experiment, scenario) point — fed from the registry's
point lists or replayed from a sweep journal — and tracks each through
the ``pending -> claimed -> done | failed`` lifecycle.  Jobs carry their
shard assignment (deterministic hash-sharding on the scenario's content
hash), readiness time (retry backoff), and supervision counters; the
:class:`~repro.experiments.service.scheduler.ShardScheduler` owns *when*
those fields change, the queue owns *what* is true right now.

Failure kinds (``KIND_*``) and the per-point outcome record
(:class:`PointResult`) live here because every layer above speaks them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentReport
from repro.experiments.journal import JournalState
from repro.experiments.scenario import Scenario

__all__ = [
    "ExperimentError",
    "Job",
    "JobQueue",
    "PointResult",
    "shard_of",
    "KIND_ERROR",
    "KIND_TRANSIENT",
    "KIND_CRASH",
    "KIND_TIMEOUT",
    "PENDING",
    "CLAIMED",
    "DONE",
    "FAILED",
]

# Failure kinds, attached to PointResult.error_kind and fed to the retry
# policy.  "error" is a deterministic driver exception (fails fast by
# default); the other three are transient infrastructure/driver faults.
KIND_ERROR = "error"
KIND_TRANSIENT = "transient"
KIND_CRASH = "crash"
KIND_TIMEOUT = "timeout"

# Job lifecycle states.
PENDING = "pending"  # dispatchable (once ready_at has passed)
CLAIMED = "claimed"  # submitted to a worker, or held for a solo re-run
DONE = "done"  # finished with a report
FAILED = "failed"  # terminally failed (retry budget exhausted)


class ExperimentError(RuntimeError):
    """One or more (experiment, scenario) points failed."""

    def __init__(self, failures: List["PointResult"]):
        self.failures = failures
        lines = [f"{len(failures)} experiment point(s) failed:"]
        for f in failures:
            first = (f.error or "").strip().splitlines()
            lines.append(f"  {f.exp_id} [{f.scenario.describe()}]: "
                         f"{first[-1] if first else 'unknown error'}")
        super().__init__("\n".join(lines))


@dataclass
class PointResult:
    """Outcome of one (experiment, scenario) point."""

    exp_id: str
    scenario: Scenario
    report: Optional[ExperimentReport] = None
    error: Optional[str] = None  # formatted traceback on failure
    cached: bool = False
    # Supervision counters: how hard the runner had to work for this
    # outcome.  attempts counts driver dispatches (1 = first try worked);
    # crashes/timeouts count the attempts lost to a dead or stuck worker.
    attempts: int = 1
    crashes: int = 0
    timeouts: int = 0
    error_kind: Optional[str] = None  # KIND_* of the *final* failure

    @property
    def ok(self) -> bool:
        return self.report is not None

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)


def shard_of(scenario: Scenario, shards: int) -> int:
    """Deterministic shard assignment: hash-shard on the scenario hash.

    The content hash is already a uniform digest of the canonical
    scenario form, so taking it mod ``shards`` spreads points evenly and
    reproducibly — the same sweep always shards the same way.
    """
    if shards <= 1:
        return 0
    return int(scenario.content_hash, 16) % shards


@dataclass
class Job:
    """One sweep point moving through the queue's lifecycle."""

    index: int
    exp_id: str
    scenario: Scenario
    shard: int = 0
    state: str = PENDING
    attempt: int = 1  # next attempt number to dispatch
    ready_at: float = 0.0  # monotonic time before which we must not resubmit
    crashes: int = 0
    timeouts: int = 0
    result: Optional[PointResult] = field(default=None, repr=False)

    @property
    def key(self) -> str:
        """Stable point key (retry-jitter seed, claim coordination)."""
        return f"{self.exp_id}/{self.scenario.content_hash}"

    @property
    def settled(self) -> bool:
        return self.state in (DONE, FAILED)


class JobQueue:
    """All jobs of one sweep, indexable by position and queryable by shard."""

    def __init__(self, jobs: Sequence[Job], shards: int = 1):
        self.jobs: List[Job] = list(jobs)
        self.shards = max(1, shards)

    @classmethod
    def from_points(
        cls, points: Sequence[Tuple[str, Scenario]], shards: int = 1
    ) -> "JobQueue":
        return cls(
            [
                Job(i, exp_id, scen, shard=shard_of(scen, shards))
                for i, (exp_id, scen) in enumerate(points)
            ],
            shards=shards,
        )

    @classmethod
    def from_journal(cls, state: JournalState, shards: int = 1) -> "JobQueue":
        """Rebuild a queue from a parsed sweep journal (resume path).

        Every point is queued as pending — finished points re-execute as
        cache hits, which is how resume recovers their reports without
        re-invoking drivers.
        """
        return cls.from_points(state.points, shards=shards)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    # -- queries ---------------------------------------------------------

    @property
    def unsettled(self) -> int:
        return sum(1 for job in self.jobs if not job.settled)

    def ready(self, shard: int, now: float) -> List[Job]:
        """Dispatchable jobs of ``shard``, in input order."""
        return [
            job
            for job in self.jobs
            if job.state == PENDING and job.shard == shard and job.ready_at <= now
        ]

    def pending(self, shard: Optional[int] = None) -> List[Job]:
        return [
            job
            for job in self.jobs
            if job.state == PENDING and (shard is None or job.shard == shard)
        ]

    def results(self) -> List[PointResult]:
        """Settled results in input order (the sweep's merge order)."""
        return [job.result for job in self.jobs if job.result is not None]

    # -- transitions -----------------------------------------------------

    def claim(self, job: Job) -> None:
        job.state = CLAIMED

    def requeue(self, job: Job, ready_at: float = 0.0) -> None:
        job.state = PENDING
        job.ready_at = ready_at

    def finish(self, job: Job, result: PointResult) -> None:
        job.state = DONE
        job.result = result

    def fail(self, job: Job, result: PointResult) -> None:
        job.state = FAILED
        job.result = result

    def steal(self, to_shard: int, now: float) -> Optional[Job]:
        """Reassign one ready job from the most-backlogged other shard.

        Work stealing for stragglers: a shard that drained its own
        partition takes the *last* ready job (coldest work) from the
        shard with the largest pending backlog.  Returns the reassigned
        job, or ``None`` when no other shard has dispatchable work.
        """
        donors: Dict[int, List[Job]] = {}
        for job in self.jobs:
            if (
                job.state == PENDING
                and job.shard != to_shard
                and job.ready_at <= now
            ):
                donors.setdefault(job.shard, []).append(job)
        if not donors:
            return None
        # Largest backlog first; ties break toward the lowest shard id so
        # stealing is deterministic given the queue state.
        donor = max(donors, key=lambda s: (len(donors[s]), -s))
        job = donors[donor][-1]
        job.shard = to_shard
        return job
