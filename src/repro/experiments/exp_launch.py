"""Experiments E-T1 (Table I) and E-F9 (Figure 9): implicit barriers.

Drivers take a :class:`~repro.experiments.scenario.Scenario`; Table I's
paper values are published for the V100 only, so its default scenario
measures that GPU, but the same protocol runs against any scenario GPU.
"""

from __future__ import annotations

from typing import Optional

from repro.cudasim.runtime import CudaRuntime
from repro.experiments.base import ExperimentReport
from repro.experiments.paper_data import FIG9_US, TABLE1_NS
from repro.experiments.scenario import PAPER_SCENARIO, Scenario
from repro.microbench.implicit import (
    cpu_side_barrier_overhead,
    measure_kernel_total_latency,
    measure_launch_overhead,
)
from repro.sim.node import Node
from repro.sync import MultiGridGroup
from repro.viz.tables import render_table

__all__ = ["run_table1", "run_fig9"]

# Table I is published for the V100 / DGX-1 platform only.
TABLE1_SCENARIO = Scenario(gpus=("V100",))


def run_table1(scenario: Optional[Scenario] = None) -> ExperimentReport:
    """Table I: launch overhead and null-kernel total latency, V100.

    Both columns are *measured* through the paper's own protocols: the
    kernel-fusion method (Eq 6) and the Fig-3 estimator.
    """
    scenario = scenario or TABLE1_SCENARIO
    gpu = scenario.gpu_specs()[0]
    node_spec = scenario.node_spec()
    report = ExperimentReport("table1", "Launch overhead / null-kernel latency (V100)")

    for launch_type in ("traditional", "cooperative", "multi_device"):
        if launch_type == "multi_device":
            factory = lambda: CudaRuntime.for_node(node_spec, gpu_count=1)
            devices = [0]
        else:
            factory = lambda: CudaRuntime.single_gpu(gpu, seed=3)
            devices = None
        ov = measure_launch_overhead(factory, launch_type, devices=devices)
        total = measure_kernel_total_latency(factory, launch_type, devices=devices)
        paper = TABLE1_NS[launch_type]
        report.add(
            f"{launch_type} overhead", paper["launch_overhead"], ov.overhead_ns, "ns"
        )
        report.add(
            f"{launch_type} total latency",
            paper["kernel_total_latency"],
            total.mean,
            "ns",
        )
    report.notes.append(
        "overhead via kernel fusion (Eq 6, 10us sleep kernels); total via the "
        "Fig 3 estimator on null kernels"
    )
    return report


# Fig 9's three multi-grid series: (blocks/SM, threads/block).
_MGRID_SERIES = {
    "mgrid_fastest": (1, 32),
    "mgrid_general": (1, 1024),
    "mgrid_slowest": (32, 64),
}


def run_fig9(
    scenario: Optional[Scenario] = None, gpu_counts=None
) -> ExperimentReport:
    """Figure 9: multi-device launch vs CPU-side barrier vs multi-grid."""
    scenario = scenario or PAPER_SCENARIO
    counts = (
        tuple(gpu_counts)
        if gpu_counts is not None
        else scenario.sweep_counts((1, 2, 3, 4, 5, 6, 7, 8))
    )
    node_spec = scenario.node_spec()
    report = ExperimentReport(
        "fig9", "Implicit vs CPU-side vs multi-grid barriers across DGX-1"
    )
    series: dict = {"gpu_count": list(counts)}

    # Multi-device launch overhead (fusion method, scaled sleep kernels).
    md = []
    for n in counts:
        factory = lambda n=n: CudaRuntime.for_node(node_spec, gpu_count=n)
        ov = measure_launch_overhead(
            factory, "multi_device", devices=list(range(n)), units_scale=400
        )
        md.append(ov.overhead_ns / 1e3)
    series["multi_device_launch_overhead"] = md

    # CPU-side barrier overhead.
    cpu = [cpu_side_barrier_overhead(node_spec, n).mean / 1e3 for n in counts]
    series["cpu_side_barrier"] = cpu

    # Multi-grid sync, three configurations — under the scenario's barrier
    # strategy (default: the cooperative launch the figure measures).
    strategy = scenario.sync_strategy
    knobs = scenario.sync_knobs() if strategy is not None else None
    node = Node(node_spec)
    for name, (b, t) in _MGRID_SERIES.items():
        series[name] = [
            MultiGridGroup(
                node, b, t, gpu_ids=range(n),
                strategy=strategy, strategy_knobs=knobs,
                backend=scenario.backend,
            )
            .simulate()
            .latency_per_sync_us
            for n in counts
        ]

    from repro.experiments.exp_sync import anchors_apply

    for key, anchors in FIG9_US.items():
        if not anchors_apply(scenario) and key.startswith("mgrid_"):
            # The published multi-grid series are stock cooperative-launch
            # measurements; they do not anchor another strategy.
            continue
        for n, paper_val in anchors.items():
            if n in counts:
                measured = series[key][list(counts).index(n)]
                report.add(f"{key} @ {n} GPU", paper_val, measured, "us")
    if not anchors_apply(scenario):
        report.notes.append(
            f"multi-grid series measured under sync_strategy={strategy}; "
            "their paper anchors are suppressed"
        )

    rows = list(
        zip(
            series["gpu_count"],
            series["multi_device_launch_overhead"],
            series["cpu_side_barrier"],
            series["mgrid_fastest"],
            series["mgrid_general"],
            series["mgrid_slowest"],
        )
    )
    report.add_artifact(
        render_table(
            ["GPUs", "md-launch", "cpu-side", "mgrid 1x32", "mgrid 1x1024", "mgrid 32x64"],
            rows,
            title="Fig 9 series (us)",
        )
    )

    # Qualitative acceptance: the paper's three headline observations.
    idx2 = list(counts).index(2) if 2 in counts else None
    if idx2 is not None:
        report.notes.append(
            "CPU-side beats multi-device launch for >2 GPUs: "
            + str(all(c < m for c, m in zip(cpu[idx2 + 1:], md[idx2 + 1:])))
        )
    report.notes.append(
        "multi-grid (general config) <= 3x CPU-side at 8 GPUs: "
        + str(series["mgrid_general"][-1] <= 3.0 * cpu[-1])
    )
    # Only the multi-grid series route through a backend; the launch and
    # CPU-side series are engine-independent measurements.
    report.backend = scenario.backend
    return report
