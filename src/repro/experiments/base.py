"""Experiment report infrastructure.

Every table/figure of the paper has a driver returning an
:class:`ExperimentReport`: comparison rows of *paper vs measured* plus any
rendered artifacts (heat-maps, series).  The registry in
:mod:`repro.experiments.registry` maps experiment ids to drivers; the CLI
and EXPERIMENTS.md generation both walk it.

Reports are **losslessly JSON-able** (:meth:`ExperimentReport.to_json` /
:meth:`ExperimentReport.from_json`): floats round-trip exactly via their
``repr``, so the on-disk result cache and ``--json`` machine output carry
the same bits the drivers produced — a cached report renders byte-identical
to a fresh one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.viz.tables import render_table

__all__ = ["ComparisonRow", "ExperimentReport", "merge_reports"]


@dataclass(frozen=True)
class ComparisonRow:
    """One paper-vs-measured comparison."""

    label: str
    paper: Optional[float]
    measured: Optional[float]
    unit: str = ""
    note: str = ""

    @property
    def rel_err(self) -> Optional[float]:
        if self.paper is None or self.measured is None or self.paper == 0:
            return None
        return (self.measured - self.paper) / self.paper

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "paper": self.paper,
            "measured": self.measured,
            "unit": self.unit,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ComparisonRow":
        return cls(
            label=data["label"],
            paper=data["paper"],
            measured=data["measured"],
            unit=data.get("unit", ""),
            note=data.get("note", ""),
        )


@dataclass
class ExperimentReport:
    """Structured outcome of one experiment driver.

    ``scenario`` records the scenario the driver ran against (its
    ``to_dict`` form; a merged report carries one entry per point under
    ``{"points": [...]}``).  ``backend`` records which simulation backend
    actually executed the driver's sweeps (``None`` = the pre-backend
    engine default).  Both are provenance only — :meth:`render` does not
    display them, so the bookkeeping never perturbs the rendered paper
    artifacts.
    """

    exp_id: str
    title: str
    rows: List[ComparisonRow] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    scenario: Optional[Dict[str, Any]] = None
    backend: Optional[str] = None
    #: Sanitizer payload when the run was sanitized (mode, event counts,
    #: findings — :meth:`repro.sanitize.SanitizerSession.summary`); ``None``
    #: (omitted from JSON) on unsanitized runs.
    sanitizer: Optional[Dict[str, Any]] = None

    def add(
        self,
        label: str,
        paper: Optional[float],
        measured: Optional[float],
        unit: str = "",
        note: str = "",
    ) -> None:
        self.rows.append(ComparisonRow(label, paper, measured, unit, note))

    def add_artifact(self, text: str) -> None:
        self.artifacts.append(text)

    @property
    def mean_rel_err(self) -> Optional[float]:
        errs = [abs(r.rel_err) for r in self.rows if r.rel_err is not None]
        return sum(errs) / len(errs) if errs else None

    @property
    def max_rel_err(self) -> Optional[float]:
        errs = [abs(r.rel_err) for r in self.rows if r.rel_err is not None]
        return max(errs) if errs else None

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native representation (used by the cache and ``--json``)."""
        data = {
            "exp_id": self.exp_id,
            "title": self.title,
            "rows": [r.to_dict() for r in self.rows],
            "artifacts": list(self.artifacts),
            "notes": list(self.notes),
            "scenario": self.scenario,
            "mean_rel_err": self.mean_rel_err,
            "max_rel_err": self.max_rel_err,
        }
        # Omitted when unset so default-engine reports stay byte-identical
        # to the pre-backend pipeline (same contract as scenario knobs).
        if self.backend is not None:
            data["backend"] = self.backend
        # Same omit-when-unset contract for sanitizer findings.
        if self.sanitizer is not None:
            data["sanitizer"] = self.sanitizer
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentReport":
        return cls(
            exp_id=data["exp_id"],
            title=data["title"],
            rows=[ComparisonRow.from_dict(r) for r in data.get("rows", ())],
            artifacts=list(data.get("artifacts", ())),
            notes=list(data.get("notes", ())),
            scenario=data.get("scenario"),
            backend=data.get("backend"),
            sanitizer=data.get("sanitizer"),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Lossless JSON: ``json`` serializes floats via ``repr``, which
        Python guarantees round-trips every finite float exactly."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentReport":
        return cls.from_dict(json.loads(text))

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        """Full ASCII report: comparison table, then artifacts and notes."""
        table_rows = [
            [
                r.label,
                r.paper,
                r.measured,
                r.unit,
                "-" if r.rel_err is None else f"{r.rel_err:+.1%}",
                r.note,
            ]
            for r in self.rows
        ]
        parts = [
            render_table(
                ["metric", "paper", "measured", "unit", "err", "note"],
                table_rows,
                title=f"[{self.exp_id}] {self.title}",
            )
        ]
        for artifact in self.artifacts:
            parts.append("")
            parts.append(artifact)
        for note in self.notes:
            parts.append(f"note: {note}")
        if self.sanitizer is not None:
            findings = self.sanitizer.get("findings", [])
            parts.append(
                f"sanitizer[{self.sanitizer.get('mode', '?')}]: "
                f"{len(findings)} finding(s), "
                f"{self.sanitizer.get('events', 0)} events"
            )
            for f in findings:
                parts.append(
                    f"  [{f.get('rule', '?')}] {f.get('severity', '?')}: "
                    f"{f.get('message', '')}"
                )
        if self.mean_rel_err is not None:
            parts.append(
                f"summary: mean |err| {self.mean_rel_err:.1%}, "
                f"max |err| {self.max_rel_err:.1%}"
            )
        return "\n".join(parts)


def merge_reports(
    exp_id: str, title: str, reports: List[ExperimentReport]
) -> ExperimentReport:
    """Merge per-scenario reports into one experiment report.

    Rows and artifacts concatenate in the given (deterministic) scenario
    order; notes are deduplicated preserving first occurrence, since a note
    shared by every per-scenario run (a qualitative observation about the
    experiment as a whole) should appear once, not once per scenario.
    """
    if not reports:
        raise ValueError(f"no reports to merge for {exp_id!r}")
    merged = ExperimentReport(exp_id, title)
    for rep in reports:
        merged.rows.extend(rep.rows)
        merged.artifacts.extend(rep.artifacts)
        merged.notes.extend(n for n in rep.notes if n not in merged.notes)
    merged.scenario = {
        "points": [rep.scenario for rep in reports if rep.scenario is not None]
    }
    backends = {rep.backend for rep in reports if rep.backend is not None}
    if backends:
        merged.backend = backends.pop() if len(backends) == 1 else "mixed"
    sanitized = [rep.sanitizer for rep in reports if rep.sanitizer is not None]
    if sanitized:
        modes = {s.get("mode") for s in sanitized}
        merged.sanitizer = {
            "mode": modes.pop() if len(modes) == 1 else "mixed",
            "events": sum(s.get("events", 0) for s in sanitized),
            "dropped": sum(s.get("dropped", 0) for s in sanitized),
            "scopes": sum(s.get("scopes", 0) for s in sanitized),
            "findings": [f for s in sanitized for f in s.get("findings", ())],
        }
    return merged
