"""Experiment report infrastructure.

Every table/figure of the paper has a driver returning an
:class:`ExperimentReport`: comparison rows of *paper vs measured* plus any
rendered artifacts (heat-maps, series).  The registry in
:mod:`repro.experiments.registry` maps experiment ids to drivers; the CLI
and EXPERIMENTS.md generation both walk it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.viz.tables import render_table

__all__ = ["ComparisonRow", "ExperimentReport"]


@dataclass(frozen=True)
class ComparisonRow:
    """One paper-vs-measured comparison."""

    label: str
    paper: Optional[float]
    measured: Optional[float]
    unit: str = ""
    note: str = ""

    @property
    def rel_err(self) -> Optional[float]:
        if self.paper is None or self.measured is None or self.paper == 0:
            return None
        return (self.measured - self.paper) / self.paper


@dataclass
class ExperimentReport:
    """Structured outcome of one experiment driver."""

    exp_id: str
    title: str
    rows: List[ComparisonRow] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(
        self,
        label: str,
        paper: Optional[float],
        measured: Optional[float],
        unit: str = "",
        note: str = "",
    ) -> None:
        self.rows.append(ComparisonRow(label, paper, measured, unit, note))

    def add_artifact(self, text: str) -> None:
        self.artifacts.append(text)

    @property
    def mean_rel_err(self) -> Optional[float]:
        errs = [abs(r.rel_err) for r in self.rows if r.rel_err is not None]
        return sum(errs) / len(errs) if errs else None

    @property
    def max_rel_err(self) -> Optional[float]:
        errs = [abs(r.rel_err) for r in self.rows if r.rel_err is not None]
        return max(errs) if errs else None

    def render(self) -> str:
        """Full ASCII report: comparison table, then artifacts and notes."""
        table_rows = [
            [
                r.label,
                r.paper,
                r.measured,
                r.unit,
                "-" if r.rel_err is None else f"{r.rel_err:+.1%}",
                r.note,
            ]
            for r in self.rows
        ]
        parts = [
            render_table(
                ["metric", "paper", "measured", "unit", "err", "note"],
                table_rows,
                title=f"[{self.exp_id}] {self.title}",
            )
        ]
        for artifact in self.artifacts:
            parts.append("")
            parts.append(artifact)
        for note in self.notes:
            parts.append(f"note: {note}")
        if self.mean_rel_err is not None:
            parts.append(
                f"summary: mean |err| {self.mean_rel_err:.1%}, "
                f"max |err| {self.max_rel_err:.1%}"
            )
        return "\n".join(parts)
