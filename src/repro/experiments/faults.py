"""Deterministic fault injection for the experiment execution layer.

Every failure mode the supervised runner must survive — a worker process
dying mid-point, a driver hanging past the sweep timeout, a point that
fails transiently for its first N attempts, a cache write that errors —
can be triggered *on purpose* through a :class:`FaultPlan`, so the
crash-isolation / timeout / retry / claim-takeover machinery in
:mod:`repro.experiments.runner` is testable without races or luck.

A plan is a sequence of :class:`FaultRule` entries.  Each rule names the
fault ``kind`` plus a match predicate (experiment-id glob, scenario
substring, attempt window), and fires only while the point's attempt
number is ``<= attempts`` — so a ``kill`` rule with ``attempts=1``
crashes the first attempt and lets the retry succeed, deterministically.

Plans reach the runner two ways:

* programmatically — ``faults.set_plan(plan)`` (or the :func:`injected`
  context manager in tests);
* via the environment — ``REPRO_FAULT_PLAN`` holding the plan's JSON
  form, which survives into pool workers under both the ``fork`` and
  ``spawn`` start methods and is how CI's chaos job injects faults
  through the real CLI.

When neither is set, :func:`active_plan` returns ``None`` after one dict
lookup — the hooks cost nothing in normal operation.
"""

from __future__ import annotations

import fnmatch
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

__all__ = [
    "FAULT_KINDS",
    "FaultRule",
    "FaultPlan",
    "TransientPointError",
    "InjectedFaultError",
    "active_plan",
    "set_plan",
    "injected",
    "apply_driver_faults",
    "maybe_fail_cache_write",
]

# The injectable failure modes, in the order the runner meets them:
#   kill   -- os._exit() inside a pool worker (BrokenProcessPool upstream)
#   delay  -- sleep before the driver runs (trips the per-point timeout)
#   flaky  -- raise a transient error (retryable) while attempt <= N
#   error  -- raise a deterministic error (fails fast, never retried)
#   cache-write -- the cache store raises OSError (publish must degrade)
FAULT_KINDS = ("kill", "delay", "flaky", "error", "cache-write")


class TransientPointError(RuntimeError):
    """A point failure the retry policy should treat as transient.

    Drivers (and the ``flaky`` fault) raise this to request a retry with
    backoff instead of failing the point fast; any other exception from a
    driver is considered deterministic and is never retried.
    """


class InjectedFaultError(TransientPointError):
    """Transient error raised by a ``flaky`` fault rule."""


@dataclass(frozen=True)
class FaultRule:
    """One injectable fault: what to do, and exactly where/when to do it."""

    kind: str
    match: str = "*"  # fnmatch glob over the experiment id
    scenario: str = ""  # substring of Scenario.describe() ("" = any)
    attempts: int = 1  # fire while the point's attempt number is <= this
    delay: float = 0.0  # seconds, for kind="delay"
    exit_code: int = 1  # for kind="kill"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}"
            )
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")

    def applies(self, exp_id: str, scenario_desc: str, attempt: int) -> bool:
        return (
            attempt <= self.attempts
            and fnmatch.fnmatchcase(exp_id, self.match)
            and (not self.scenario or self.scenario in scenario_desc)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "match": self.match,
            "scenario": self.scenario,
            "attempts": self.attempts,
            "delay": self.delay,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultRule":
        unknown = set(data) - {
            "kind", "match", "scenario", "attempts", "delay", "exit_code",
        }
        if unknown:
            raise ValueError(f"unknown fault rule field(s): {sorted(unknown)}")
        if "kind" not in data:
            raise ValueError("fault rule missing required field 'kind'")
        return cls(
            kind=data["kind"],
            match=data.get("match", "*"),
            scenario=data.get("scenario", ""),
            attempts=int(data.get("attempts", 1)),
            delay=float(data.get("delay", 0.0)),
            exit_code=int(data.get("exit_code", 1)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault rules; the first matching rule fires."""

    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def first_match(
        self, kinds: Sequence[str], exp_id: str, scenario_desc: str, attempt: int
    ) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.kind in kinds and rule.applies(exp_id, scenario_desc, attempt):
                return rule
        return None

    def to_json(self) -> str:
        return json.dumps([r.to_dict() for r in self.rules])

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, list):
            raise ValueError("fault plan must be a JSON array of rule objects")
        return cls(tuple(FaultRule.from_dict(d) for d in data))


# -- active-plan resolution ----------------------------------------------

ENV_VAR = "REPRO_FAULT_PLAN"

_PLAN: Optional[FaultPlan] = None
# Env parses are memoized on the raw string so the common case (variable
# set once for a whole chaos run) parses exactly once per process.
_ENV_MEMO: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def set_plan(plan: Optional[FaultPlan]) -> None:
    """Install (or with ``None`` clear) the process-local fault plan."""
    global _PLAN
    _PLAN = plan


class injected:
    """Context manager installing a plan for the enclosed block (tests)."""

    def __init__(self, *rules: FaultRule):
        self._plan = FaultPlan(tuple(rules))

    def __enter__(self) -> FaultPlan:
        set_plan(self._plan)
        return self._plan

    def __exit__(self, *exc: Any) -> None:
        set_plan(None)


def active_plan() -> Optional[FaultPlan]:
    """The plan in effect: ``set_plan`` wins, else ``$REPRO_FAULT_PLAN``."""
    if _PLAN is not None:
        return _PLAN
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    global _ENV_MEMO
    if _ENV_MEMO[0] != raw:
        _ENV_MEMO = (raw, FaultPlan.from_json(raw))
    return _ENV_MEMO[1]


# -- runner hooks --------------------------------------------------------

# Set by the runner's pool worker: ``kill`` faults only ever _exit a
# disposable worker process.  In-process execution (jobs=1) downgrades a
# kill to a transient raise so a misconfigured plan cannot take down the
# CLI, a test process, or a notebook kernel.
IN_WORKER = False


def apply_driver_faults(exp_id: str, scenario_desc: str, attempt: int) -> None:
    """Fire any kill/delay/flaky/error rule matching this driver attempt.

    Called by ``execute_point`` immediately before the driver runs (after
    the cache lookup, so cache hits are never faulted).  No-op without an
    active plan.
    """
    plan = active_plan()
    if plan is None:
        return
    rule = plan.first_match(
        ("kill", "delay", "flaky", "error"), exp_id, scenario_desc, attempt
    )
    if rule is None:
        return
    if rule.kind == "kill":
        if IN_WORKER:
            # A real crash: no exception propagation, no cleanup, the
            # worker is simply gone -- exactly what an OOM kill/segfault
            # looks like to the parent's ProcessPoolExecutor.
            os._exit(rule.exit_code)
        raise InjectedFaultError(
            f"fault plan requested a worker kill for {exp_id} "
            f"[{scenario_desc}] attempt {attempt}, but the point ran "
            "in-process; raising transiently instead"
        )
    if rule.kind == "delay":
        time.sleep(rule.delay)
        return
    if rule.kind == "flaky":
        raise InjectedFaultError(
            f"injected flaky failure for {exp_id} [{scenario_desc}] "
            f"attempt {attempt}/{rule.attempts}"
        )
    raise RuntimeError(
        f"injected deterministic failure for {exp_id} [{scenario_desc}]"
    )


def maybe_fail_cache_write(exp_id: str, scenario_desc: str) -> None:
    """Raise OSError if a ``cache-write`` rule matches (store-path hook)."""
    plan = active_plan()
    if plan is None:
        return
    if plan.first_match(("cache-write",), exp_id, scenario_desc, 1) is not None:
        raise OSError(
            f"injected cache write failure for {exp_id} [{scenario_desc}]"
        )
