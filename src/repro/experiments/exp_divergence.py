"""Experiment E-DIV: divergence-heavy barrier-delimited phases.

The paper's single-device workloads (Figs 3-5, Table V) are tight loops
of uniform work punctuated by ``__syncthreads`` — exactly the shape where
real SIMT hardware re-fuses lanes after every reconvergence point.  This
experiment runs that shape *with* divergent ladders injected into some
phases, through the thread-precise block executor, and reports per-phase
cost plus the fast path's mode counters.  It serves two purposes:

* **Scenario diversity** — a registered, sweepable divergence workload
  (knobs: ``extra.phases``, ``extra.arms``, ``extra.threads_per_block``,
  ``extra.divergent_every``) alongside the paper's pure-sync scans, and
* **A regression tripwire** — the rows assert that the SIMT fast path
  re-converges after every divergent phase and stays bit-identical to
  forced thread-precise execution; a silent fall-back to permanent
  per-lane simulation flips those booleans and fails the report.
"""

from __future__ import annotations

from typing import Optional

from repro.cudasim import instructions as ins
from repro.experiments.base import ExperimentReport
from repro.experiments.scenario import PAPER_SCENARIO, Scenario
from repro.sim.exec_block import BlockExecutor
from repro.viz.tables import render_table

__all__ = ["run_divergence"]

# Uniform work per phase (cycles) and the per-lane spread of the
# divergent tail — enough to stagger lanes without dominating the phase.
_UNIFORM_CYCLES = 40.0
_LANE_SPREAD = 5


def _phase_program(phases: int, divergent_every: int, arms: int):
    def program(ctx):
        for r in range(phases):
            yield ins.Compute(_UNIFORM_CYCLES)
            if divergent_every and r % divergent_every == 0:
                yield ins.Diverge(arms=arms)
                yield ins.Compute(2.0 + ctx.lane % _LANE_SPREAD)
            yield ins.BlockSync()
            t = yield ins.ReadClock()
            ctx.record(f"phase{r}", t)
        return ctx.tid

    return program


def run_divergence(scenario: Optional[Scenario] = None) -> ExperimentReport:
    """Divergence-then-barrier phases: cost and re-convergence audit."""
    scenario = scenario or PAPER_SCENARIO
    phases = scenario.extra_int("phases", 8)
    arms = scenario.extra_int("arms", 1)
    threads = scenario.extra_int("threads_per_block", 128)
    divergent_every = scenario.extra_int("divergent_every", 2)
    report = ExperimentReport(
        "divergence", "Divergence-heavy barrier-delimited phases"
    )
    program = _phase_program(phases, divergent_every, arms)
    n_divergent = (
        len(range(0, phases, divergent_every)) if divergent_every else 0
    )
    for spec in scenario.gpu_specs():
        fast_ex = BlockExecutor(spec, nthreads=threads, simt_fast_path=True)
        fast = fast_ex.run(program)
        slow = BlockExecutor(spec, nthreads=threads, simt_fast_path=False).run(
            program
        )
        identical = (
            fast.duration_ns == slow.duration_ns
            and fast.end_ns == slow.end_ns
            and fast.records == slow.records
            and fast.returns == slow.returns
        )
        refused_every_phase = (
            fast.refuse_count == fast_ex.warp_count * n_divergent
        )
        report.add(
            f"{spec.name} total ({phases} phases)",
            None,
            fast.duration_cycles,
            "cyc",
            note=f"{n_divergent} divergent, {arms}-arm ladder",
        )
        report.add(
            f"{spec.name} re-converged after every divergent phase",
            1.0,
            1.0 if refused_every_phase else 0.0,
            "bool",
            note=f"refuse_count={fast.refuse_count}",
        )
        report.add(
            f"{spec.name} fast path bit-identical to thread-precise",
            1.0,
            1.0 if identical else 0.0,
            "bool",
        )
        # Per-phase boundary times (thread 0's clock at each barrier exit).
        bounds = [fast.records[0][f"phase{r}"] for r in range(phases)]
        deltas = [bounds[0]] + [b - a for a, b in zip(bounds, bounds[1:])]
        report.add_artifact(
            render_table(
                ["phase", "divergent", "latency (cyc)"],
                [
                    [
                        r,
                        int(bool(divergent_every) and r % divergent_every == 0),
                        deltas[r],
                    ]
                    for r in range(phases)
                ],
                title=(
                    f"Phase cost - {spec.name} ({threads} thr, "
                    f"fused_rounds={fast.fused_rounds})"
                ),
                precision=1,
            )
        )
    report.notes.append(
        "divergent phases pay the serialized ladder plus the per-lane tail; "
        "the barrier is the reconvergence rendezvous, so sync cost stays a "
        "per-phase quantity (Stuart & Owens) rather than a per-kernel one"
    )
    return report
