"""Generate EXPERIMENTS.md: the paper-vs-measured record for every artifact.

``python -m repro.experiments.report [path] [--jobs N]`` runs the full
registry through the experiment runner (parallel + cached like the CLI)
and writes a markdown report with one section per table/figure, comparison
tables, and the rendered ASCII artifacts.  Sections render from the same
JSON-able report structures the cache and ``--json`` output carry, so a
document built from cached reports is byte-identical to a fresh one.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import List, Optional

from repro.experiments.base import ExperimentReport
from repro.viz.tables import render_markdown_table

__all__ = ["experiments_markdown", "write_experiments_md"]

_HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction record for every table and figure of *"A Study of Single and
Multi-device Synchronization Methods in Nvidia GPUs"* (Zhang et al., 2020),
regenerated on the simulated P100 / V100 / DGX-1 machines (see DESIGN.md
for the substitution rationale and calibration policy).

Regenerate with:

```bash
repro-experiments            # full report to stdout
python -m repro.experiments.report EXPERIMENTS.md
pytest benchmarks/ --benchmark-only   # timed regeneration, one bench per artifact
```

Absolute agreement is expected here because the substrate is calibrated to
the paper — the meaningful content is (a) that the *measurement
methodologies* recover the calibration through the same protocols the paper
used, and (b) that the *structural* results (saturation points, heat-map
shapes, plateaus, crossovers, deadlock matrix) emerge from mechanism, not
lookup.  Per-experiment error summaries quantify both.
"""


def _section(report: ExperimentReport) -> str:
    lines = [f"## {report.exp_id}: {report.title}", ""]
    if report.rows:
        cells = []
        for r in report.rows:
            paper = "-" if r.paper is None else f"{r.paper:g}"
            measured = "-" if r.measured is None else f"{r.measured:.4g}"
            err = "-" if r.rel_err is None else f"{r.rel_err:+.1%}"
            cells.append([r.label, paper, measured, r.unit, err])
        lines.append(
            render_markdown_table(
                ["metric", "paper", "measured", "unit", "err"],
                cells,
                align=["left", "right", "right", "left", "right"],
            )
        )
        lines.append("")
    if report.mean_rel_err is not None:
        lines.append(
            f"**Summary:** mean |err| {report.mean_rel_err:.1%}, "
            f"max |err| {report.max_rel_err:.1%}"
        )
        lines.append("")
    for note in report.notes:
        lines.append(f"> {note}")
        lines.append("")
    for artifact in report.artifacts:
        lines.append("```text")
        lines.append(artifact)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def experiments_markdown(
    reports: Optional[List[ExperimentReport]] = None,
    jobs: int = 1,
    use_cache: bool = True,
) -> str:
    """Render the full markdown document (runs the registry by default)."""
    if reports is None:
        from repro.experiments import runner

        reports = runner.run_all(jobs=jobs, use_cache=use_cache)
    parts = [_HEADER]
    overall = [r.mean_rel_err for r in reports if r.mean_rel_err is not None]
    parts.append(
        f"Overall: {len(reports)} experiments; "
        f"mean |err| across experiments "
        f"{sum(overall) / len(overall):.1%}.\n"
    )
    for report in reports:
        parts.append(_section(report))
    return "\n".join(parts)


def write_experiments_md(
    path: str | Path = "EXPERIMENTS.md", jobs: int = 1, use_cache: bool = True
) -> Path:
    """Run everything and write the report; returns the path."""
    out = Path(path)
    t0 = time.time()
    text = experiments_markdown(jobs=jobs, use_cache=use_cache)
    text += f"\n---\n*Generated in {time.time() - t0:.1f} s of simulation.*\n"
    out.write_text(text)
    return out


if __name__ == "__main__":  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", default="EXPERIMENTS.md")
    parser.add_argument("--jobs", type=int, default=1, metavar="N")
    parser.add_argument("--no-cache", action="store_true")
    ns = parser.parse_args()
    print(
        f"wrote {write_experiments_md(ns.path, jobs=ns.jobs, use_cache=not ns.no_cache)}"
    )
